// wsc — the WanderScript tool: assemble, verify, disassemble and run
// mobile-code programs outside the simulator. The developer-loop companion
// to the in-network code distribution path.
//
//   wsc build   prog.ws [out.wsc]   assemble + verify, write binary image
//   wsc verify  prog.ws             assemble + verify, report limits
//   wsc dis     prog.wsc            disassemble a binary image
//   wsc run     prog.ws [args...]   assemble + verify + execute hermetically
//
// `run` executes against a recording environment: emit/log are captured and
// printed, all other syscalls return 0 (as the hermetic test environment
// does). Exit code 0 = success, 1 = usage, 2 = assembly/verification error,
// 3 = runtime fault.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/hash.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "vm/verifier.h"

using namespace viator;

namespace {

struct RecordingEnv : vm::Environment {
  std::vector<std::int64_t> emissions;
  Result<std::int64_t> Invoke(vm::Syscall id,
                              std::span<const std::int64_t> args) override {
    if (id == vm::Syscall::kEmit) {
      emissions.push_back(args[0]);
      return std::int64_t{1};
    }
    if (id == vm::Syscall::kLog) {
      std::printf("[log] %lld\n", static_cast<long long>(args[0]));
      return std::int64_t{1};
    }
    return std::int64_t{0};
  }
};

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: wsc build <prog.ws> [out.wsc]\n"
               "       wsc verify <prog.ws>\n"
               "       wsc dis <prog.wsc>\n"
               "       wsc run <prog.ws> [int-args...]\n");
  return 1;
}

Result<vm::Program> AssembleFile(const std::string& path) {
  std::string source;
  if (!ReadFile(path, source)) {
    return Status(NotFound("cannot read " + path));
  }
  // Program name = basename without extension.
  std::string name = path;
  if (const auto slash = name.find_last_of('/');
      slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return vm::Assemble(name, source);
}

int ReportError(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  if (command == "dis") {
    std::string image;
    if (!ReadFile(path, image)) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 2;
    }
    auto program = vm::Program::Deserialize(
        std::as_bytes(std::span(image.data(), image.size())));
    if (!program.ok()) return ReportError(program.status());
    std::fputs(vm::Disassemble(*program).c_str(), stdout);
    return 0;
  }

  auto program = AssembleFile(path);
  if (!program.ok()) return ReportError(program.status());
  const auto info = vm::Verify(*program);
  if (!info.ok()) return ReportError(info.status());

  if (command == "verify" || command == "build") {
    std::printf("program  : %s\n", program->name().c_str());
    std::printf("digest   : %s\n", DigestToHex(program->digest()).c_str());
    std::printf("code     : %zu instructions, %zu constants\n",
                program->code().size(), program->constants().size());
    std::printf("wire     : %zu bytes\n", program->WireSize());
    std::printf("max stack: %zu  syscall sites: %zu\n",
                info->max_stack_depth, info->syscall_sites);
    if (command == "build") {
      const std::string out_path =
          argc > 3 ? argv[3] : program->name() + ".wsc";
      const auto image = program->Serialize();
      std::ofstream out(out_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(image.data()),
                static_cast<std::streamsize>(image.size()));
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 2;
      }
      std::printf("wrote    : %s\n", out_path.c_str());
    }
    return 0;
  }

  if (command == "run") {
    std::vector<std::int64_t> args;
    for (int i = 3; i < argc; ++i) args.push_back(std::atoll(argv[i]));
    RecordingEnv env;
    vm::Interpreter interpreter;
    const auto result =
        interpreter.Run(*program, env, vm::kDefaultFuel, args);
    for (std::int64_t value : env.emissions) {
      std::printf("[emit] %lld\n", static_cast<long long>(value));
    }
    switch (result.reason) {
      case vm::ExitReason::kHalted:
        std::printf("halted: top-of-stack=%lld fuel=%llu\n",
                    static_cast<long long>(result.top_of_stack),
                    static_cast<unsigned long long>(result.fuel_used));
        return 0;
      case vm::ExitReason::kOutOfFuel:
        std::printf("out of fuel after %llu instructions\n",
                    static_cast<unsigned long long>(result.fuel_used));
        return 0;
      case vm::ExitReason::kFault:
        std::fprintf(stderr, "fault: %s\n", result.fault_message.c_str());
        return 3;
    }
    return 0;
  }

  return Usage();
}
