// wnscope — Wandering Observatory telemetry tool.
//
//   wnscope record  <out-dir>            run a seeded traced scenario, write
//                                        spans.jsonl, trace.json,
//                                        metrics.jsonl, metrics.prom,
//                                        profile.json
//   wnscope inspect <spans-file>         trace/span/component summary
//   wnscope filter  <spans-file> <k=v>…  re-emit matching spans as JSONL
//                                        (component=NAME, ship=N, trace=HEX)
//   wnscope tree    <spans-file> [HEX]   causal tree(s), one box per trace
//   wnscope diff    <metrics-a> <metrics-b>  metric-by-metric comparison;
//                                        exits 0 when identical, 3 when any
//                                        metric differs (CI-stable contract)
//   wnscope timeline <out-dir>           run a seeded sharded workload with
//                                        the perf plane on, write a Perfetto
//                                        parallel timeline (timeline.json,
//                                        one track per shard + merge, plus
//                                        per-shard memory counter tracks),
//                                        shard_metrics.prom, and print the
//                                        straggler + cycle reports
//   wnscope mem     <out-dir>            run a seeded sharded workload with
//                                        the memory plane on, write mem.prom
//                                        and mem.txt, and print the
//                                        per-domain attribution table with a
//                                        coverage line against maxrss
//   wnscope latency <out-dir>            run a seeded sharded workload with
//                                        the latency plane and tracing on,
//                                        write lat.prom and lat.txt, print
//                                        the per-stage quantile table and a
//                                        worst-K tail drill-down whose rows
//                                        carry the trace id (resolvable in
//                                        the span collectors) and the birth
//                                        sim-time `wnreplay seek` travels to
//
// Span files may be either the native JSONL or the Chrome trace_event JSON
// that `record` writes; both parse back identically.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/caching.h"
#include "shard/sharded_network.h"
#include "sim/simulator.h"
#include "telemetry/export.h"
#include "telemetry/lat_stats.h"
#include "telemetry/mem_stats.h"
#include "telemetry/perf_stats.h"

namespace {

using namespace viator;  // tool code; the library never does this

int Usage() {
  std::cerr << "usage: wnscope record  <out-dir>\n"
               "       wnscope inspect <spans-file>\n"
               "       wnscope filter  <spans-file> <key=value>...\n"
               "       wnscope tree    <spans-file> [trace-hex]\n"
               "       wnscope diff    <metrics-a> <metrics-b>\n"
               "       wnscope timeline <out-dir>\n"
               "       wnscope mem     <out-dir>\n"
               "       wnscope latency <out-dir>\n";
  return 2;
}

std::string HexTrace(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

bool LoadSpans(const std::string& path,
               std::vector<telemetry::SpanRecord>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "wnscope: cannot open " << path << "\n";
    return false;
  }
  out = telemetry::ParseSpans(in);
  return true;
}

/// Seeded demo workload mirroring the acceptance scenario: a 3x3 grid with a
/// content cache at the center and an origin in the far corner; requesters
/// issue GETs (miss then hit), so traces cross several ships and two distinct
/// services (svc.caching, svc.origin).
int RunRecord(const std::string& out_dir) {
  constexpr std::uint64_t kSeed = 424242;
  sim::Simulator simulator;
  net::Topology topology = net::MakeGrid(3, 3);
  wli::WnConfig config;
  config.telemetry.enable_tracing = true;
  config.telemetry.enable_profiling = true;
  wli::WanderingNetwork network(simulator, topology, config, kSeed);
  network.PopulateAllNodes();

  services::ContentOrigin origin(network, 8, /*object_words=*/16);
  services::CachingService cache(network, 4, 8);

  // Two content ids from three requesters: first GET per id misses through
  // to the origin, later ones hit in the cache.
  const net::NodeId requesters[] = {0, 2, 6};
  std::uint64_t flow = 1;
  for (std::uint64_t content_id = 7; content_id <= 8; ++content_id) {
    for (net::NodeId requester : requesters) {
      (void)network.Inject(wli::Shuttle::Data(
          requester, 4, {services::kCacheOpGet,
                         static_cast<std::int64_t>(content_id)},
          flow++));
      simulator.RunAll();
    }
  }
  network.Pulse();
  simulator.RunAll();

  const auto& spans = network.telemetry().spans().spans();
  std::ofstream spans_out(out_dir + "/spans.jsonl");
  std::ofstream trace_out(out_dir + "/trace.json");
  std::ofstream metrics_out(out_dir + "/metrics.jsonl");
  std::ofstream prom_out(out_dir + "/metrics.prom");
  std::ofstream profile_out(out_dir + "/profile.json");
  if (!spans_out || !trace_out || !metrics_out || !prom_out || !profile_out) {
    std::cerr << "wnscope: cannot write into " << out_dir << "\n";
    return 1;
  }
  telemetry::WriteSpansJsonl(spans, spans_out);
  telemetry::WriteTraceEventJson(spans, trace_out);
  telemetry::WriteMetricsJsonl(network.stats(), metrics_out);
  telemetry::WritePrometheusText(network.stats(), prom_out);
  network.telemetry().profiler().WriteJson(profile_out);

  const auto traces = telemetry::GroupByTrace(spans);
  std::size_t connected = 0;
  for (const auto& [id, trace_spans] : traces) {
    if (telemetry::IsConnectedTree(trace_spans)) ++connected;
  }
  std::cout << "recorded " << spans.size() << " spans across "
            << traces.size() << " traces (" << connected
            << " connected) into " << out_dir << "\n";
  return 0;
}

/// Seeded sharded demo with a deliberately hot band: a 16x16 grid cut into 4
/// row bands, with traffic skewed into band 2, so the straggler report and
/// the Perfetto timeline have something visible to say.
int RunTimeline(const std::string& out_dir) {
  constexpr std::uint64_t kSeed = 515151;
  net::Topology global = net::MakeGrid(16, 16);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 0;  // hardware concurrency: a real parallel timeline
  config.seed = kSeed;
  config.assignment = shard::GridRowBands(16, 16, 4);
  shard::ShardedNetwork world(global, config);

  telemetry::perf::SetEnabled(true);
  Rng traffic(kSeed ^ 0xabcdef);
  for (int round = 0; round < 24; ++round) {
    for (int i = 0; i < 64; ++i) {
      // Three of four shuttles live entirely inside band 2 (rows 8..11):
      // the injected imbalance the report must name.
      const bool hot = (i % 4) != 0;
      const std::uint64_t lo = hot ? 8 * 16 : 0;
      const std::uint64_t hi = hot ? 12 * 16 - 1 : 255;
      const auto src = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      auto dst = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      if (dst == src) dst = static_cast<net::NodeId>(lo + (dst - lo + 1) % 16);
      (void)world.Inject(src, dst, {round, i}, round * 100 + i + 1);
    }
    world.RunWindows(4);
  }
  world.RunUntilQuiescent();
  telemetry::perf::SetEnabled(false);

  std::ofstream timeline_out(out_dir + "/timeline.json");
  std::ofstream prom_out(out_dir + "/shard_metrics.prom");
  if (!timeline_out || !prom_out) {
    std::cerr << "wnscope: cannot write into " << out_dir << "\n";
    return 1;
  }
  telemetry::WriteShardTimelineJson(world.observatory(), timeline_out);
  telemetry::PublishPerfStats(world.stats());
  telemetry::WritePrometheusText(world.stats(), prom_out);

  const telemetry::StragglerReport report = world.observatory().Report();
  std::cout << report.Format() << "\n"
            << telemetry::FormatPerfReport() << "recorded "
            << world.observatory().windows().size() << " of "
            << report.windows << " windows into " << out_dir
            << "/timeline.json (load in ui.perfetto.dev)\n";
  telemetry::perf::ResetAll();
  return 0;
}

/// Seeded single-threaded sharded demo with the memory plane enabled before
/// the world is built (construction-time pool growth is attributed too).
/// Single-threaded so the summed per-thread peaks are the exact peaks.
int RunMem(const std::string& out_dir) {
  constexpr std::uint64_t kSeed = 616161;
  telemetry::mem::ResetAll();
  telemetry::mem::SetEnabled(true);

  net::Topology global = net::MakeGrid(12, 12);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 1;
  config.seed = kSeed;
  config.assignment = shard::GridRowBands(12, 12, 4);
  int rc = 0;
  {
    shard::ShardedNetwork world(global, config);
    Rng traffic(kSeed ^ 0x5eed);
    for (int round = 0; round < 16; ++round) {
      for (int i = 0; i < 48; ++i) {
        const auto src = static_cast<net::NodeId>(traffic.UniformInt(0, 143));
        auto dst = static_cast<net::NodeId>(traffic.UniformInt(0, 143));
        if (dst == src) dst = static_cast<net::NodeId>((dst + 1) % 144);
        (void)world.Inject(src, dst, {round, i}, round * 100 + i + 1);
      }
      world.RunWindows(4);
    }
    world.RunUntilQuiescent();

    const auto aggregate = telemetry::mem::Aggregate();
    const std::uint64_t maxrss = telemetry::ReadMaxRssBytes();
    telemetry::PublishMemStats(world.stats(), aggregate);
    telemetry::PublishProcStats(world.stats(), telemetry::ReadRssBytes(),
                                maxrss);
    std::ofstream prom_out(out_dir + "/mem.prom");
    std::ofstream report_out(out_dir + "/mem.txt");
    if (!prom_out || !report_out) {
      std::cerr << "wnscope: cannot write into " << out_dir << "\n";
      rc = 1;
    } else {
      telemetry::WritePrometheusText(world.stats(), prom_out);
      const std::string report = telemetry::FormatMemReport(aggregate, maxrss);
      report_out << report;
      std::cout << report << "wrote " << out_dir << "/mem.prom and "
                << out_dir << "/mem.txt\n";
    }
  }
  telemetry::mem::SetEnabled(false);
  telemetry::mem::ResetAll();
  return rc;
}

/// Seeded single-threaded sharded demo with the latency plane and tracing
/// enabled: windows are stepped one at a time so every barrier fold's
/// worst-delivery exemplars are harvested, then the per-stage quantile table
/// (merged across shards) is printed next to a worst-K tail drill-down. Each
/// drill-down row carries the exemplar's trace id — resolved against the
/// shards' span collectors right here, the same join `bench_latency` gates —
/// and its birth sim-time, the coordinate `wnreplay seek` travels to.
int RunLatency(const std::string& out_dir) {
  constexpr std::uint64_t kSeed = 717171;
  namespace lat = telemetry::lat;
  lat::SetEnabled(true);

  net::Topology global = net::MakeGrid(12, 12);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 1;
  config.seed = kSeed;
  config.assignment = shard::GridRowBands(12, 12, 4);
  config.wn.telemetry.enable_tracing = true;
  // Keep the whole run's spans alive so every drill-down trace resolves.
  config.wn.telemetry.span_capacity = 1 << 18;
  int rc = 0;
  {
    shard::ShardedNetwork world(global, config);
    Rng traffic(kSeed ^ 0x1a7e);
    std::vector<lat::Exemplar> tail;
    const auto harvest = [&] {
      for (std::uint32_t shard = 0; shard < world.shard_count(); ++shard) {
        const lat::Lane::WindowStats& fold = world.LatencyWindow(shard);
        tail.insert(tail.end(), fold.worst.begin(), fold.worst.end());
      }
    };
    for (int round = 0; round < 16; ++round) {
      for (int i = 0; i < 48; ++i) {
        const auto src = static_cast<net::NodeId>(traffic.UniformInt(0, 143));
        auto dst = static_cast<net::NodeId>(traffic.UniformInt(0, 143));
        if (dst == src) dst = static_cast<net::NodeId>((dst + 1) % 144);
        (void)world.Inject(src, dst, {round, i}, round * 100 + i + 1);
      }
      for (int window = 0; window < 4; ++window) {
        world.RunWindows(1);
        harvest();
      }
    }
    world.RunUntilQuiescent();
    harvest();

    lat::Lane merged;
    for (std::uint32_t shard = 0; shard < world.shard_count(); ++shard) {
      world.shard_network(shard).lat_lane().MergeInto(merged);
    }

    std::sort(tail.begin(), tail.end(),
              [](const lat::Exemplar& a, const lat::Exemplar& b) {
                return a.WorseThan(b);
              });
    tail.erase(std::unique(tail.begin(), tail.end(),
                           [](const lat::Exemplar& a, const lat::Exemplar& b) {
                             return a.trace_id == b.trace_id;
                           }),
               tail.end());
    if (tail.size() > 8) tail.resize(8);

    TablePrinter drill(
        {"trace", "latency_ns", "class", "spans", "birth_ns (wnreplay seek)"});
    for (const lat::Exemplar& ex : tail) {
      std::size_t spans = 0;
      for (std::uint32_t shard = 0; shard < world.shard_count(); ++shard) {
        for (const telemetry::SpanRecord& s :
             world.shard_network(shard).telemetry().spans().spans()) {
          if (s.trace_id == ex.trace_id) ++spans;
        }
      }
      drill.AddRow({HexTrace(ex.trace_id), std::to_string(ex.duration_ns),
                    lat::ClassName(ex.cls), std::to_string(spans),
                    std::to_string(ex.birth)});
    }

    telemetry::PublishLatStats(world.stats(), merged);
    std::ofstream prom_out(out_dir + "/lat.prom");
    std::ofstream report_out(out_dir + "/lat.txt");
    if (!prom_out || !report_out) {
      std::cerr << "wnscope: cannot write into " << out_dir << "\n";
      rc = 1;
    } else {
      telemetry::WritePrometheusText(world.stats(), prom_out);
      const std::string report = telemetry::FormatLatReport(merged);
      report_out << report;
      std::cout << report << "worst tail exemplars:\n";
      drill.Print(std::cout);
      std::cout << "wrote " << out_dir << "/lat.prom and " << out_dir
                << "/lat.txt\n";
    }
  }
  lat::SetEnabled(false);
  return rc;
}

int RunInspect(const std::string& path) {
  std::vector<telemetry::SpanRecord> spans;
  if (!LoadSpans(path, spans)) return 1;
  const auto traces = telemetry::GroupByTrace(spans);

  TablePrinter per_trace({"trace", "spans", "ships", "services", "tree"});
  for (const auto& [id, trace_spans] : traces) {
    std::set<std::uint64_t> ships;
    std::set<std::string> services;
    for (const auto& s : trace_spans) {
      ships.insert(s.ship);
      services.insert(s.component);
    }
    per_trace.AddRow({HexTrace(id), std::to_string(trace_spans.size()),
                      std::to_string(ships.size()),
                      std::to_string(services.size()),
                      telemetry::IsConnectedTree(trace_spans) ? "connected"
                                                              : "broken"});
  }
  std::cout << spans.size() << " spans, " << traces.size() << " traces\n";
  per_trace.Print(std::cout);

  std::map<std::string, std::uint64_t> by_component;
  for (const auto& s : spans) ++by_component[s.component + "/" + s.name];
  TablePrinter per_component({"component/name", "spans"});
  for (const auto& [key, count] : by_component) {
    per_component.AddRow({key, std::to_string(count)});
  }
  per_component.Print(std::cout);
  return 0;
}

int RunFilter(const std::string& path, const std::vector<std::string>& terms) {
  std::vector<telemetry::SpanRecord> spans;
  if (!LoadSpans(path, spans)) return 1;
  for (const std::string& term : terms) {
    const auto eq = term.find('=');
    if (eq == std::string::npos) {
      std::cerr << "wnscope: bad filter '" << term << "' (want key=value)\n";
      return 2;
    }
    const std::string key = term.substr(0, eq);
    const std::string value = term.substr(eq + 1);
    auto keep = [&](const telemetry::SpanRecord& s) {
      if (key == "component") return s.component == value;
      if (key == "ship") return std::to_string(s.ship) == value;
      if (key == "trace") return HexTrace(s.trace_id) == value;
      return false;
    };
    if (key != "component" && key != "ship" && key != "trace") {
      std::cerr << "wnscope: unknown filter key '" << key << "'\n";
      return 2;
    }
    std::erase_if(spans, [&](const auto& s) { return !keep(s); });
  }
  telemetry::WriteSpansJsonl(spans, std::cout);
  return 0;
}

int RunTree(const std::string& path, const std::string& trace_hex) {
  std::vector<telemetry::SpanRecord> spans;
  if (!LoadSpans(path, spans)) return 1;
  const auto traces = telemetry::GroupByTrace(spans);
  bool found = false;
  for (const auto& [id, trace_spans] : traces) {
    if (!trace_hex.empty() && HexTrace(id) != trace_hex) continue;
    found = true;
    std::cout << telemetry::FormatTraceTree(trace_spans);
  }
  if (!found) {
    std::cerr << "wnscope: no trace "
              << (trace_hex.empty() ? "records" : trace_hex) << " in " << path
              << "\n";
    return 1;
  }
  return 0;
}

int RunDiff(const std::string& path_a, const std::string& path_b) {
  std::ifstream in_a(path_a), in_b(path_b);
  if (!in_a || !in_b) {
    std::cerr << "wnscope: cannot open " << (!in_a ? path_a : path_b) << "\n";
    return 1;
  }
  const auto a = telemetry::ParseMetricsJsonl(in_a);
  const auto b = telemetry::ParseMetricsJsonl(in_b);

  TablePrinter table({"metric", "a", "b", "delta"});
  std::size_t differing = 0;
  std::set<std::string> names;
  for (const auto& [name, value] : a) names.insert(name);
  for (const auto& [name, value] : b) names.insert(name);
  for (const std::string& name : names) {
    const auto it_a = a.find(name);
    const auto it_b = b.find(name);
    const bool in_a_only = it_b == b.end();
    const bool in_b_only = it_a == a.end();
    if (!in_a_only && !in_b_only && it_a->second == it_b->second) continue;
    ++differing;
    table.AddRow({name,
                  in_b_only ? "-" : FormatDouble(it_a->second, 6),
                  in_a_only ? "-" : FormatDouble(it_b->second, 6),
                  in_a_only || in_b_only
                      ? "-"
                      : FormatDouble(it_b->second - it_a->second, 6)});
  }
  if (differing == 0) {
    std::cout << "identical (" << a.size() << " metrics)\n";
    return 0;
  }
  table.Print(std::cout);
  std::cout << differing << " of " << names.size() << " metrics differ\n";
  // Stable CI contract: 0 = identical, 3 = traces differ (1/2 stay usage
  // and I/O errors).
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "record") return RunRecord(argv[2]);
  if (cmd == "timeline") return RunTimeline(argv[2]);
  if (cmd == "mem") return RunMem(argv[2]);
  if (cmd == "latency") return RunLatency(argv[2]);
  if (cmd == "inspect") return RunInspect(argv[2]);
  if (cmd == "filter") {
    return RunFilter(argv[2],
                     std::vector<std::string>(argv + 3, argv + argc));
  }
  if (cmd == "tree") return RunTree(argv[2], argc > 3 ? argv[3] : "");
  if (cmd == "diff") {
    if (argc < 4) return Usage();
    return RunDiff(argv[2], argv[3]);
  }
  return Usage();
}
