// wnhealth — Self-Referential Health Plane tool and regression gate.
//
//   wnhealth record <out-dir> [--degrade]   run the seeded probe scenario,
//                                        write health.jsonl (full report),
//                                        anomalies.jsonl (events only) and
//                                        health.prom (Prometheus text);
//                                        --degrade fails a transit ship
//                                        mid-run so probes flag it
//   wnhealth check  <health.jsonl> [--max-events N]
//                                        gate: exit 4 when the report holds
//                                        more than N anomalies (default 0)
//   wnhealth diff   <baseline.jsonl> <current.jsonl> [--tolerance T]
//                                        gate: exit 4 on score drops beyond
//                                        T (default 0.05), vanished ships or
//                                        per-kind anomaly growth
//   wnhealth bench  <baseline.json> <current.json> [--tolerance T]
//                                        gate: exit 4 when BENCH_*.json
//                                        metrics drift beyond T (default
//                                        0.25); wall-clock keys are ignored
//   wnhealth trend  <bench-dir> <out.json>  merge every BENCH_<name>.json in
//                                        the directory into one flat
//                                        "<name>.<metric>" JSON — the
//                                        per-commit bench-trajectory artifact
//                                        CI archives as BENCH_trend.json
//
// Exit codes are CI-stable: 0 pass, 1 I/O error, 2 usage, 4 gate failure.
// Identical-seed record runs write byte-identical health.jsonl files.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/wandering_network.h"
#include "health/probe.h"
#include "health/report.h"
#include "net/failure.h"
#include "net/topology.h"
#include "services/caching.h"
#include "sim/simulator.h"
#include "telemetry/export.h"

namespace {

using namespace viator;  // tool code; the library never does this

int Usage() {
  std::cerr << "usage: wnhealth record <out-dir> [--degrade]\n"
               "       wnhealth check  <health.jsonl> [--max-events N]\n"
               "       wnhealth diff   <baseline.jsonl> <current.jsonl>"
               " [--tolerance T]\n"
               "       wnhealth bench  <baseline.json> <current.json>"
               " [--tolerance T]\n"
               "       wnhealth trend  <bench-dir> <out.json>\n";
  return 2;
}

std::optional<health::HealthReport> LoadReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "wnhealth: cannot open " << path << "\n";
    return std::nullopt;
  }
  auto report = health::ParseHealthJsonl(in);
  if (!report) {
    std::cerr << "wnhealth: " << path << " is not a health report\n";
  }
  return report;
}

/// Seeded probe scenario: the wnscope demo workload (3x3 grid, center cache,
/// corner origin, three requesters) with the health plane on top — probes
/// every 50ms from ship 0 for two simulated seconds. With `degrade`, ship 5
/// goes down for good at t=500ms; probe losses then flag it as degraded.
int RunRecord(const std::string& out_dir, bool degrade) {
  constexpr std::uint64_t kSeed = 424242;
  constexpr sim::TimePoint kRunEnd = 2 * sim::kSecond;
  sim::Simulator simulator;
  net::Topology topology = net::MakeGrid(3, 3);
  wli::WnConfig config;
  config.telemetry.enable_tracing = true;
  wli::WanderingNetwork network(simulator, topology, config, kSeed);
  network.PopulateAllNodes();

  health::HealthConfig hconfig;
  hconfig.enable_probes = true;
  hconfig.collector = 0;
  health::ProbePlane plane(network, hconfig, kSeed);
  plane.StartProbes(kRunEnd);

  services::ContentOrigin origin(network, 8, /*object_words=*/16);
  services::CachingService cache(network, 4, 8);
  // Private stream: the failure process must not perturb network draws.
  net::FailureInjector failures(simulator, topology, Rng(kSeed ^ 0xFA17ED));
  if (degrade) {
    failures.FailNode(5, 500 * sim::kMillisecond, /*outage=*/0);
  }

  // Requesters fire every 150ms so workload and probes interleave.
  const net::NodeId requesters[] = {0, 2, 6};
  std::uint64_t flow = 1;
  sim::TimePoint at = 100 * sim::kMillisecond;
  for (std::uint64_t content_id = 7; content_id <= 8; ++content_id) {
    for (net::NodeId requester : requesters) {
      simulator.ScheduleAt(
          at,
          [&network, requester, content_id, flow] {
            (void)network.Inject(wli::Shuttle::Data(
                requester, 4,
                {services::kCacheOpGet,
                 static_cast<std::int64_t>(content_id)},
                flow));
          },
          "wnhealth.workload");
      ++flow;
      at += 150 * sim::kMillisecond;
    }
  }
  simulator.RunUntil(kRunEnd);
  simulator.RunAll();
  plane.Evaluate();  // final scoring pass over everything deposited

  const health::HealthReport report = plane.BuildReport();
  std::ofstream health_out(out_dir + "/health.jsonl");
  std::ofstream anomalies_out(out_dir + "/anomalies.jsonl");
  std::ofstream prom_out(out_dir + "/health.prom");
  if (!health_out || !anomalies_out || !prom_out) {
    std::cerr << "wnhealth: cannot write into " << out_dir << "\n";
    return 1;
  }
  health::WriteHealthJsonl(report, health_out);
  health::HealthReport anomalies_only;
  anomalies_only.events = report.events;
  anomalies_only.summary = report.summary;
  health::WriteHealthJsonl(anomalies_only, anomalies_out);
  telemetry::WritePrometheusText(network.stats(), prom_out);

  std::cout << "recorded " << report.summary.probes_absorbed << "/"
            << report.summary.probes_emitted << " probes ("
            << report.summary.probes_lost << " lost), "
            << report.summary.hops_observed << " hop samples, "
            << report.events.size() << " anomalies into " << out_dir << "\n";
  return 0;
}

int RunCheck(const std::string& path, std::size_t max_events) {
  const auto report = LoadReport(path);
  if (!report) return 1;
  for (const health::HealthEvent& event : report->events) {
    std::cout << "anomaly t=" << event.time << " "
              << health::HealthEventKindName(event.kind) << " ship "
              << event.ship << ": " << event.detail << "\n";
  }
  if (report->events.size() > max_events) {
    std::cout << "FAIL: " << report->events.size() << " anomalies (max "
              << max_events << ")\n";
    return 4;
  }
  std::cout << "OK: " << report->events.size() << " anomalies within budget ("
            << report->ships.size() << " ships scored)\n";
  return 0;
}

int RunDiff(const std::string& base_path, const std::string& cur_path,
            double tolerance) {
  const auto baseline = LoadReport(base_path);
  const auto current = LoadReport(cur_path);
  if (!baseline || !current) return 1;
  health::HealthDiffOptions options;
  options.score_tolerance = tolerance;
  const auto regressions =
      health::DiffHealthReports(*baseline, *current, options);
  for (const std::string& r : regressions) std::cout << "REGRESSION: " << r
                                                     << "\n";
  if (!regressions.empty()) {
    std::cout << "FAIL: " << regressions.size() << " regressions\n";
    return 4;
  }
  std::cout << "OK: " << current->ships.size() << " ships within tolerance "
            << tolerance << "\n";
  return 0;
}

int RunBench(const std::string& base_path, const std::string& cur_path,
             double tolerance) {
  std::ifstream base_in(base_path), cur_in(cur_path);
  if (!base_in || !cur_in) {
    std::cerr << "wnhealth: cannot open "
              << (!base_in ? base_path : cur_path) << "\n";
    return 1;
  }
  const auto baseline = health::ParseFlatJson(base_in);
  const auto current = health::ParseFlatJson(cur_in);
  if (baseline.empty()) {
    std::cerr << "wnhealth: no metrics in " << base_path << "\n";
    return 1;
  }
  health::BenchGateOptions options;
  options.tolerance = tolerance;
  const auto regressions =
      health::CompareBenchMetrics(baseline, current, options);
  for (const std::string& r : regressions) std::cout << "REGRESSION: " << r
                                                     << "\n";
  if (!regressions.empty()) {
    std::cout << "FAIL: " << regressions.size() << " regressions\n";
    return 4;
  }
  std::cout << "OK: " << baseline.size() << " baseline metrics within "
            << tolerance * 100.0 << "%\n";
  return 0;
}

int RunTrend(const std::string& bench_dir, const std::string& out_path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<fs::path> reports;
  for (const auto& entry : fs::directory_iterator(bench_dir, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0) continue;
    if (entry.path().extension() != ".json") continue;
    if (file == "BENCH_trend.json") continue;  // never fold ourselves back in
    reports.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "wnhealth: cannot read directory " << bench_dir << "\n";
    return 1;
  }
  std::sort(reports.begin(), reports.end());  // deterministic merge order

  // "<bench>.<metric>" keys: BENCH_health.json's "probes_emitted" becomes
  // "health.probes_emitted", so one artifact carries every bench's numbers
  // and stays diffable commit to commit.
  std::map<std::string, double> merged;
  for (const fs::path& path : reports) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "wnhealth: cannot open " << path.string() << "\n";
      return 1;
    }
    const std::string stem = path.stem().string();  // BENCH_<name>
    const std::string bench = stem.substr(std::string("BENCH_").size());
    for (const auto& [metric, value] : health::ParseFlatJson(in)) {
      merged[bench + "." + metric] = value;
    }
  }

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "wnhealth: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n";
  bool first = true;
  for (const auto& [metric, value] : merged) {
    if (!first) out << ",\n";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << "  \"" << metric << "\": " << buf;
  }
  out << "\n}\n";
  std::cout << "merged " << reports.size() << " bench reports ("
            << merged.size() << " metrics) into " << out_path << "\n";
  return 0;
}

double ParseToleranceFlag(int argc, char** argv, int from, double fallback) {
  for (int i = from; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--tolerance") return std::stod(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "record") {
    const bool degrade = argc > 3 && std::string(argv[3]) == "--degrade";
    return RunRecord(argv[2], degrade);
  }
  if (cmd == "check") {
    std::size_t max_events = 0;
    for (int i = 3; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--max-events") {
        max_events = static_cast<std::size_t>(std::stoull(argv[i + 1]));
      }
    }
    return RunCheck(argv[2], max_events);
  }
  if (cmd == "diff") {
    if (argc < 4) return Usage();
    return RunDiff(argv[2], argv[3], ParseToleranceFlag(argc, argv, 4, 0.05));
  }
  if (cmd == "bench") {
    if (argc < 4) return Usage();
    return RunBench(argv[2], argv[3], ParseToleranceFlag(argc, argv, 4, 0.25));
  }
  if (cmd == "trend") {
    if (argc < 4) return Usage();
    return RunTrend(argv[2], argv[3]);
  }
  return Usage();
}
