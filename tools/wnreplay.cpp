// wnreplay — Wandering Flight Recorder tool: record, time-travel, bisect.
//
//   wnreplay record <out.wnj> [--seed N] [--rows N] [--cols N] [--steps N]
//                   [--perturb STEP] [--trace]
//                                        run the seeded scenario start to
//                                        finish and save the flight file
//                                        (scenario config + decision journal)
//   wnreplay inspect <file.wnj>          print the journal summary (records,
//                                        digest, steps, final state hash)
//   wnreplay seek  <file.wnj> <step>     re-record, travel to the step via
//                                        checkpoint restore + re-execution
//                                        and verify the state hash against
//                                        the recorded run (exit 4 on
//                                        mismatch — the travel left the
//                                        recorded timeline)
//   wnreplay step  <file.wnj> <step> <n> single-step: seek, then dispatch n
//                                        events one at a time, printing the
//                                        virtual time of each
//   wnreplay watch <file.wnj> <spec>     re-execute until a metric crosses
//                                        the predicate; spec grammar is
//                                        counter:name>=42 / gauge:name<=0.5
//                                        (ops >=, <=, ==, !=); exit 3 when
//                                        it never fires
//   wnreplay diff  <a.wnj> <b.wnj>       compare two journals: exit 0 when
//                                        identical, 3 with the first
//                                        divergent step when they differ
//   wnreplay bisect <a.wnj> <b.wnj>      checkpoint-assisted bisection: find
//                                        the exact first divergent decision
//                                        (exit 3 when the runs are
//                                        identical, nothing to bisect)
//
// Exit codes are CI-stable: 0 ok/identical/found, 1 I/O error, 2 usage,
// 3 differ/no-hit, 4 replay gate mismatch.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "base/tlv.h"
#include "replay/auditor.h"
#include "replay/controller.h"
#include "replay/journal.h"
#include "replay/scenario.h"

namespace {

using namespace viator;  // tool code; the library never does this

// .wnj flight-file framing: TLV with a magic string, the nested scenario
// config and the nested journal payload.
constexpr TlvTag kTagMagic = 1;
constexpr TlvTag kTagConfig = 2;
constexpr TlvTag kTagJournal = 3;
constexpr std::string_view kMagic = "wnj1";

int Usage() {
  std::cerr
      << "usage: wnreplay record <out.wnj> [--seed N] [--rows N] [--cols N]"
         " [--steps N] [--perturb STEP] [--trace]\n"
         "       wnreplay inspect <file.wnj>\n"
         "       wnreplay seek   <file.wnj> <step>\n"
         "       wnreplay step   <file.wnj> <step> <n>\n"
         "       wnreplay watch  <file.wnj> <spec>\n"
         "       wnreplay diff   <a.wnj> <b.wnj>\n"
         "       wnreplay bisect <a.wnj> <b.wnj>\n";
  return 2;
}

struct FlightFile {
  replay::ScenarioConfig config;
  replay::DecisionJournal journal;
};

bool WriteFlightFile(const std::string& path,
                     const replay::ScenarioConfig& config,
                     const replay::DecisionJournal& journal) {
  TlvWriter writer;
  writer.PutString(kTagMagic, kMagic);
  writer.PutNested(kTagConfig, config.Save());
  writer.PutNested(kTagJournal, journal.Save());
  const std::vector<std::byte> bytes = writer.Finish();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "wnreplay: cannot open " << path << " for writing\n";
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<FlightFile> ReadFlightFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "wnreplay: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* data = reinterpret_cast<const std::byte*>(raw.data());
  TlvReader reader({data, raw.size()});
  if (!reader.Verify().ok()) {
    std::cerr << "wnreplay: " << path << " is not a flight file\n";
    return std::nullopt;
  }
  FlightFile file;
  bool magic_ok = false, config_ok = false, journal_ok = false;
  while (reader.HasNext()) {
    auto record = reader.Next();
    if (!record.ok()) break;
    switch (record->tag) {
      case kTagMagic:
        magic_ok = record->AsString() == kMagic;
        break;
      case kTagConfig: {
        auto config = replay::ScenarioConfig::Load(record->payload);
        if (config.ok()) {
          file.config = *config;
          config_ok = true;
        }
        break;
      }
      case kTagJournal:
        journal_ok = file.journal.Load(record->payload).ok();
        break;
      default:
        break;  // forward compatible
    }
  }
  if (!magic_ok || !config_ok || !journal_ok) {
    std::cerr << "wnreplay: " << path << " is malformed\n";
    return std::nullopt;
  }
  return file;
}

int RunRecord(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string out_path = argv[0];
  replay::ScenarioConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::uint64_t> {
      if (i + 1 >= argc) return std::nullopt;
      return std::strtoull(argv[++i], nullptr, 0);
    };
    if (arg == "--trace") {
      config.tracing = true;
    } else if (arg == "--seed") {
      if (auto v = next()) config.seed = *v; else return Usage();
    } else if (arg == "--rows") {
      if (auto v = next()) config.rows = *v; else return Usage();
    } else if (arg == "--cols") {
      if (auto v = next()) config.cols = *v; else return Usage();
    } else if (arg == "--steps") {
      if (auto v = next()) config.steps = *v; else return Usage();
    } else if (arg == "--perturb") {
      if (auto v = next()) config.perturb_step = *v; else return Usage();
    } else {
      return Usage();
    }
  }
  replay::ReplayWorld world(config);
  world.RunToStep(config.steps);
  if (!WriteFlightFile(out_path, config, world.journal())) return 1;
  std::cout << "recorded " << config.steps << " steps, "
            << world.journal().total_records() << " decisions, digest 0x"
            << std::hex << world.journal().rolling_digest() << std::dec
            << " -> " << out_path << "\n";
  return 0;
}

int RunInspect(const std::string& path) {
  const auto file = ReadFlightFile(path);
  if (!file) return 1;
  const auto& journal = file->journal;
  std::cout << "scenario: seed=" << file->config.seed << " grid="
            << file->config.rows << "x" << file->config.cols << " steps="
            << file->config.steps << " perturb=" << file->config.perturb_step
            << "\n"
            << "journal: " << journal.total_records() << " decisions ("
            << journal.size() << " in ring, " << journal.dropped_records()
            << " dropped), digest 0x" << std::hex << journal.rolling_digest()
            << std::dec << "\n"
            << "windows: " << journal.window_hashes().size() << " step hashes";
  if (!journal.window_hashes().empty()) {
    std::cout << ", final 0x" << std::hex
              << journal.window_hashes().back().second << std::dec;
  }
  std::cout << "\n";
  return 0;
}

/// Re-records the scenario and positions the cursor; shared by seek/step.
std::optional<replay::ReplayController> SeekCursor(const FlightFile& file,
                                                   std::size_t step) {
  replay::ReplayController controller(file.config);
  controller.RecordFull();
  if (auto status = controller.SeekToStep(step); !status.ok()) {
    std::cerr << "wnreplay: seek failed: " << status.message() << "\n";
    return std::nullopt;
  }
  return controller;
}

int RunSeek(const std::string& path, std::size_t step) {
  const auto file = ReadFlightFile(path);
  if (!file) return 1;
  auto controller = SeekCursor(*file, step);
  if (!controller) return 1;
  const std::uint64_t hash = controller->cursor()->StateHash();
  // Gate 1: the re-execution matches its own recording.
  if (auto status = controller->VerifySeek(); !status.ok()) {
    std::cerr << "wnreplay: " << status.message() << "\n";
    return 4;
  }
  // Gate 2: it also matches the hash the flight file recorded — the travel
  // landed on the original run's timeline, not merely a self-consistent one.
  for (const auto& [window, recorded] : file->journal.window_hashes()) {
    if (window == step && recorded != hash) {
      std::cerr << "wnreplay: state hash 0x" << std::hex << hash
                << " diverges from recorded 0x" << recorded << std::dec
                << " at step " << step << "\n";
      return 4;
    }
  }
  std::cout << "step " << step << " t=" << controller->cursor()->simulator().now()
            << " state 0x" << std::hex << hash << std::dec << " (verified)\n";
  return 0;
}

int RunStep(const std::string& path, std::size_t step, std::size_t count) {
  const auto file = ReadFlightFile(path);
  if (!file) return 1;
  auto controller = SeekCursor(*file, step);
  if (!controller) return 1;
  for (std::size_t i = 0; i < count; ++i) {
    const auto when = controller->StepDispatch();
    if (!when) {
      std::cout << "scenario exhausted after " << i << " dispatches\n";
      return 0;
    }
    std::cout << "dispatch " << (i + 1) << " t=" << *when << " step="
              << controller->cursor()->step() << "\n";
  }
  return 0;
}

int RunWatch(const std::string& path, const std::string& spec) {
  const auto file = ReadFlightFile(path);
  if (!file) return 1;
  const auto watch = replay::Watchpoint::Parse(spec);
  if (!watch.ok()) {
    std::cerr << "wnreplay: " << watch.status().message() << "\n";
    return 2;
  }
  auto controller = SeekCursor(*file, 0);
  if (!controller) return 1;
  const auto hit = controller->RunUntilWatch(*watch);
  if (!hit.ok()) {
    std::cout << "watchpoint never fired: " << spec << "\n";
    return 3;
  }
  std::cout << "watchpoint hit at step " << hit->step << " t=" << hit->time
            << " value=" << hit->observed << "\n";
  return 0;
}

int RunDiff(const std::string& path_a, const std::string& path_b) {
  const auto a = ReadFlightFile(path_a);
  const auto b = ReadFlightFile(path_b);
  if (!a || !b) return 1;
  const auto report =
      replay::DivergenceAuditor::Compare(a->journal, b->journal);
  std::cout << report.summary << "\n";
  return report.diverged ? 3 : 0;
}

int RunBisect(const std::string& path_a, const std::string& path_b) {
  const auto a = ReadFlightFile(path_a);
  const auto b = ReadFlightFile(path_b);
  if (!a || !b) return 1;
  replay::ReplayController controller_a(a->config);
  replay::ReplayController controller_b(b->config);
  controller_a.RecordFull();
  controller_b.RecordFull();
  // The re-recordings must reproduce the flight files before bisection means
  // anything.
  const bool reproduced =
      a->journal.rolling_digest() ==
          controller_a.recorded().journal().rolling_digest() &&
      b->journal.rolling_digest() ==
          controller_b.recorded().journal().rolling_digest();
  if (!reproduced) {
    std::cerr << "wnreplay: re-recording diverged from the flight file"
                 " (non-reproducible build?)\n";
    return 4;
  }
  const auto report =
      replay::DivergenceAuditor::Bisect(controller_a, controller_b);
  if (!report.ok()) {
    std::cerr << "wnreplay: bisect failed: " << report.status().message()
              << "\n";
    return 1;
  }
  std::cout << report->summary << "\n";
  return report->diverged ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "record") return RunRecord(argc - 2, argv + 2);
  if (command == "inspect" && argc == 3) return RunInspect(argv[2]);
  if (command == "seek" && argc == 4) {
    return RunSeek(argv[2], std::strtoull(argv[3], nullptr, 0));
  }
  if (command == "step" && argc == 5) {
    return RunStep(argv[2], std::strtoull(argv[3], nullptr, 0),
                   std::strtoull(argv[4], nullptr, 0));
  }
  if (command == "watch" && argc == 4) return RunWatch(argv[2], argv[3]);
  if (command == "diff" && argc == 4) return RunDiff(argv[2], argv[3]);
  if (command == "bisect" && argc == 4) return RunBisect(argv[2], argv[3]);
  return Usage();
}
