# Byte-exact golden-output checker, run as a ctest command:
#
#   cmake -DCMD="<tool> <args...>" -DGOLDEN=<file> [-DEXPECTED_EXIT=N]
#         -P check_golden.cmake
#
# Runs CMD (split on ';'), captures stdout, and fails unless the exit code
# matches EXPECTED_EXIT (default 0) and stdout is byte-identical to GOLDEN.
# A diff-style mismatch report goes to stderr so CI logs show the drift.
if(NOT DEFINED CMD OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "check_golden.cmake needs -DCMD and -DGOLDEN")
endif()
if(NOT DEFINED EXPECTED_EXIT)
  set(EXPECTED_EXIT 0)
endif()

separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(COMMAND ${cmd_list}
                OUTPUT_VARIABLE actual
                RESULT_VARIABLE exit_code)

if(NOT exit_code EQUAL EXPECTED_EXIT)
  message(FATAL_ERROR
          "golden check: '${CMD}' exited ${exit_code}, expected"
          " ${EXPECTED_EXIT}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  # Write the actual output next to nothing permanent — a temp file — so a
  # plain `diff` shows the drift in the test log.
  string(SHA1 stamp "${GOLDEN}")
  set(actual_file "${CMAKE_CURRENT_BINARY_DIR}/golden_actual_${stamp}.txt")
  file(WRITE "${actual_file}" "${actual}")
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  "${GOLDEN}" "${actual_file}" RESULT_VARIABLE ignored)
  message(STATUS "--- expected (${GOLDEN}) ---\n${expected}")
  message(STATUS "--- actual (${actual_file}) ---\n${actual}")
  message(FATAL_ERROR "golden check: output differs from ${GOLDEN}")
endif()
