# check_schema.cmake — assert a JSON/text artifact carries every required
# key. Values are deliberately NOT pinned (host-varying metrics live next to
# deterministic ones); this guards the *schema* a downstream consumer keys
# on. Usage:
#   cmake -DFILE=<artifact> "-DKEYS=<key;key;...>" -P check_schema.cmake
if(NOT DEFINED FILE OR NOT DEFINED KEYS)
  message(FATAL_ERROR "check_schema.cmake needs -DFILE and -DKEYS")
endif()
if(NOT EXISTS "${FILE}")
  message(FATAL_ERROR "schema check: ${FILE} does not exist")
endif()
file(READ "${FILE}" contents)
set(missing "")
foreach(key IN LISTS KEYS)
  string(FIND "${contents}" "\"${key}\"" at)
  if(at EQUAL -1)
    list(APPEND missing "${key}")
  endif()
endforeach()
if(missing)
  message(FATAL_ERROR "schema check: ${FILE} is missing keys: ${missing}")
endif()
list(LENGTH KEYS count)
message(STATUS "schema check: ${count} keys present in ${FILE}")
