// wngen — Network Genesis snapshot tool.
//
//   wngen inspect <snapshot>          header + section table
//   wngen verify  <snapshot>          strict validation, exit 0/1
//   wngen diff    <a> <b>             section-level comparison
//   wngen merge   <base> <delta> <out> apply a delta to its base full
//   wngen demo    <out-dir>           run a seeded scenario, write
//                                     full.wns + delta.wns
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/wandering_network.h"
#include "genesis/manager.h"
#include "genesis/snapshot.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace {

using namespace viator;  // tool code; the library never does this

int Usage() {
  std::cerr << "usage: wngen inspect <snapshot>\n"
               "       wngen verify  <snapshot>\n"
               "       wngen diff    <a> <b>\n"
               "       wngen merge   <base> <delta> <out>\n"
               "       wngen demo    <out-dir>\n";
  return 2;
}

bool ReadFile(const std::string& path, std::vector<std::byte>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "wngen: cannot open " << path << "\n";
    return false;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  out.resize(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return true;
}

bool WriteFile(const std::string& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "wngen: cannot write " << path << "\n";
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

/// Seeded demo workload: a grid network exchanging shuttles across several
/// metamorphosis pulses, snapshotted quiescent. Produces one full snapshot,
/// then keeps running and emits a delta against it.
int RunDemo(const std::string& out_dir) {
  constexpr std::uint64_t kSeed = 424242;
  sim::Simulator simulator;
  net::Topology topology = net::MakeGrid(3, 3);
  wli::WnConfig config;
  wli::WanderingNetwork network(simulator, topology, config, kSeed);
  network.PopulateAllNodes();

  genesis::GenesisConfig gconfig;
  gconfig.scenario_tag = kSeed;
  genesis::GenesisManager manager(network, gconfig);

  const std::size_t nodes = topology.node_count();
  auto drive = [&](int steps) {
    for (int i = 0; i < steps; ++i) {
      const auto src = static_cast<net::NodeId>(
          network.rng().UniformInt(0, nodes - 1));
      auto dst = static_cast<net::NodeId>(
          network.rng().UniformInt(0, nodes - 1));
      if (dst == src) dst = (dst + 1) % nodes;
      (void)network.Inject(wli::Shuttle::Data(
          src, dst, {static_cast<std::int64_t>(i), 7, 9}, i + 1));
      simulator.RunAll();
      if (i % 8 == 7) network.Pulse();
    }
  };

  drive(64);
  auto full = manager.CaptureFull();
  if (!full.ok()) {
    std::cerr << "wngen demo: " << full.status().ToString() << "\n";
    return 1;
  }
  drive(16);
  auto delta = manager.CaptureDelta();
  if (!delta.ok()) {
    std::cerr << "wngen demo: " << delta.status().ToString() << "\n";
    return 1;
  }
  if (!WriteFile(out_dir + "/full.wns", *full) ||
      !WriteFile(out_dir + "/delta.wns", *delta)) {
    return 1;
  }
  std::cout << "wrote " << out_dir << "/full.wns (" << full->size()
            << " bytes) and " << out_dir << "/delta.wns (" << delta->size()
            << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];

  if (cmd == "demo") {
    return RunDemo(argv[2]);
  }
  if (cmd != "inspect" && cmd != "verify" && cmd != "diff" && cmd != "merge") {
    return Usage();
  }

  std::vector<std::byte> first;
  if (!ReadFile(argv[2], first)) return 1;

  if (cmd == "inspect") {
    auto text = genesis::InspectSnapshot(first);
    if (!text.ok()) {
      std::cerr << "wngen: " << text.status().ToString() << "\n";
      return 1;
    }
    std::cout << *text;
    return 0;
  }
  if (cmd == "verify") {
    if (Status s = genesis::VerifySnapshot(first); !s.ok()) {
      std::cerr << "wngen: INVALID: " << s.ToString() << "\n";
      return 1;
    }
    std::cout << "OK\n";
    return 0;
  }
  if (cmd == "diff") {
    if (argc < 4) return Usage();
    std::vector<std::byte> second;
    if (!ReadFile(argv[3], second)) return 1;
    auto text = genesis::DiffSnapshots(first, second);
    if (!text.ok()) {
      std::cerr << "wngen: " << text.status().ToString() << "\n";
      return 1;
    }
    std::cout << *text;
    return 0;
  }
  if (cmd == "merge") {
    if (argc < 5) return Usage();
    std::vector<std::byte> delta;
    if (!ReadFile(argv[3], delta)) return 1;
    auto merged = genesis::MergeDelta(first, delta);
    if (!merged.ok()) {
      std::cerr << "wngen: " << merged.status().ToString() << "\n";
      return 1;
    }
    if (!WriteFile(argv[4], *merged)) return 1;
    std::cout << "wrote " << argv[4] << " (" << merged->size() << " bytes)\n";
    return 0;
  }
  return Usage();
}
