// Shard planning: how one global topology partitions into shards.
//
// A ShardPlan is derived from a global Topology plus a pluggable assignment
// (global node -> shard id). The plan owns everything the sharded core needs
// that the per-shard networks cannot see themselves:
//   - the global<->local node id maps (each shard addresses its members as a
//     dense 0..n-1 local space, in ascending global id order);
//   - the cross-shard link metadata (the links the induced shard subgraphs
//     deliberately drop), including per-pair gateway selection;
//   - the conservative window bound: the minimum cross-shard link latency.
//     Any event a shard executes in window [W, W+window) can only influence
//     another shard at or after W + window, so windows synchronized at that
//     cadence never violate causality (Bush's AVNMP virtual-time discipline,
//     specialized to a fixed conservative lookahead);
//   - shard-level routing: for a capsule bound from shard s to shard t, the
//     deterministic choice of which cross link to exit through next.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/status.h"
#include "net/topology.h"
#include "net/types.h"
#include "sim/time.h"

namespace viator::shard {

using ShardId = std::uint32_t;
inline constexpr ShardId kInvalidShard = ~static_cast<ShardId>(0);

/// One link of the global topology whose endpoints live in different shards.
struct CrossLink {
  net::NodeId a = net::kInvalidNode;  // global endpoint in shard_a
  net::NodeId b = net::kInvalidNode;  // global endpoint in shard_b
  ShardId shard_a = kInvalidShard;
  ShardId shard_b = kInvalidShard;
  net::LinkConfig config;
};

/// Pluggable partitioner: maps every global node id to a shard id in
/// [0, shard_count). Plans are validated by BuildShardPlan.
using ShardAssignment =
    std::function<ShardId(net::NodeId node, const net::Topology& topology)>;

class ShardPlan {
 public:
  std::size_t shard_count() const { return members_.size(); }

  /// Global node ids of one shard, ascending (index = local id).
  const std::vector<net::NodeId>& members(ShardId shard) const {
    return members_[shard];
  }

  ShardId shard_of(net::NodeId global) const { return shard_of_[global]; }
  net::NodeId local_of(net::NodeId global) const { return local_of_[global]; }
  net::NodeId global_of(ShardId shard, net::NodeId local) const {
    return members_[shard][local];
  }

  const std::vector<CrossLink>& cross_links() const { return cross_links_; }

  /// The conservative window bound: minimum latency over all cross-shard
  /// links, clamped to >= 1 tick (zero-latency cross links would otherwise
  /// collapse the window; see docs/PARALLEL.md). When the plan has no cross
  /// links at all (single shard, or fully disconnected shards) this is 0 and
  /// the executor falls back to its configured default window.
  sim::Duration min_cross_latency() const { return min_cross_latency_; }

  /// Index into cross_links() of the link a capsule in `from` should exit
  /// through next on its way to `to` (BFS over the shard adjacency graph,
  /// lowest-(latency, endpoints) link per adjacent pair), or
  /// kInvalidRoute when `to` is unreachable from `from` over cross links.
  static constexpr std::size_t kInvalidRoute = ~static_cast<std::size_t>(0);
  std::size_t RouteLink(ShardId from, ShardId to) const {
    return route_[from * shard_count() + to];
  }

  /// The shard-local topology of `shard`: the induced subgraph over its
  /// members (cross links excluded — they exist only as mailbox metadata).
  net::Topology LocalTopology(const net::Topology& global,
                              ShardId shard) const {
    return global.InducedSubgraph(members_[shard]);
  }

  /// Mixes the partition structure into a state digest: shard membership and
  /// cross-link layout are part of what "the same sharded world" means.
  void MixDigest(Hasher& hasher) const;

 private:
  friend Result<ShardPlan> BuildShardPlan(const net::Topology& topology,
                                          std::size_t shard_count,
                                          const ShardAssignment& assignment);

  std::vector<std::vector<net::NodeId>> members_;
  std::vector<ShardId> shard_of_;       // global -> shard
  std::vector<net::NodeId> local_of_;   // global -> local within its shard
  std::vector<CrossLink> cross_links_;
  sim::Duration min_cross_latency_ = 0;
  std::vector<std::size_t> route_;      // (from * shards + to) -> cross link
};

/// Validates `assignment` over `topology` and derives the full plan.
/// Shards may be empty (a valid degenerate case the executor tolerates);
/// assignments out of [0, shard_count) fail with kInvalidArgument.
Result<ShardPlan> BuildShardPlan(const net::Topology& topology,
                                 std::size_t shard_count,
                                 const ShardAssignment& assignment);

/// Contiguous-block assignment: node ids split into shard_count consecutive
/// ranges of near-equal size (the first `node_count % shard_count` shards
/// take one extra node). On the row-major grids the generators produce this
/// yields contiguous ship blocks of whole grid rows — the partition the
/// paper-figure workloads shard best under.
ShardAssignment ContiguousBlocks(std::size_t shard_count);

/// Grid-aware assignment: whole rows of a rows x cols grid are banded into
/// shard_count contiguous row bands (equivalent to ContiguousBlocks when
/// rows % shard_count == 0, but never splits a row across shards).
ShardAssignment GridRowBands(std::size_t rows, std::size_t cols,
                             std::size_t shard_count);

}  // namespace viator::shard
