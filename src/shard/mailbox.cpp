#include "shard/mailbox.h"

#include <algorithm>

namespace viator::shard {

std::vector<Handoff> MailboxGrid::DrainSorted() {
  VIATOR_PERF_SCOPE(kMailboxDrain);
  std::vector<Handoff> batch;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    batch.insert(batch.end(), std::make_move_iterator(stripe.pending.begin()),
                 std::make_move_iterator(stripe.pending.end()));
    stripe.pending.clear();
  }
  std::sort(batch.begin(), batch.end());
  total_handoffs_ += batch.size();
  return batch;
}

bool MailboxGrid::Empty() const {
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (!stripe.pending.empty()) return false;
  }
  return true;
}

}  // namespace viator::shard
