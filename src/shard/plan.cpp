#include "shard/plan.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <tuple>

namespace viator::shard {

void ShardPlan::MixDigest(Hasher& hasher) const {
  hasher.Mix(static_cast<std::uint64_t>(shard_count()));
  for (const auto& shard_members : members_) {
    hasher.Mix(static_cast<std::uint64_t>(shard_members.size()));
    for (net::NodeId node : shard_members) hasher.Mix(node);
  }
  hasher.Mix(static_cast<std::uint64_t>(cross_links_.size()));
  for (const CrossLink& link : cross_links_) {
    hasher.Mix(link.a);
    hasher.Mix(link.b);
    hasher.Mix(link.config.latency);
  }
  hasher.Mix(min_cross_latency_);
}

Result<ShardPlan> BuildShardPlan(const net::Topology& topology,
                                 std::size_t shard_count,
                                 const ShardAssignment& assignment) {
  if (shard_count == 0) return InvalidArgument("shard_count must be >= 1");
  if (!assignment) return InvalidArgument("assignment must be callable");

  ShardPlan plan;
  const std::size_t n = topology.node_count();
  plan.members_.resize(shard_count);
  plan.shard_of_.resize(n, kInvalidShard);
  plan.local_of_.resize(n, net::kInvalidNode);

  for (net::NodeId node = 0; node < n; ++node) {
    const ShardId shard = assignment(node, topology);
    if (shard >= shard_count) {
      return InvalidArgument("assignment maps node outside [0, shard_count)");
    }
    plan.shard_of_[node] = shard;
    // Ascending global order within a shard because nodes are visited in
    // ascending global order — the local id space is reproducible from the
    // assignment alone.
    plan.local_of_[node] =
        static_cast<net::NodeId>(plan.members_[shard].size());
    plan.members_[shard].push_back(node);
  }

  sim::Duration min_latency = std::numeric_limits<sim::Duration>::max();
  for (net::LinkId id = 0; id < topology.link_count(); ++id) {
    const net::Link& link = topology.link(id);
    const ShardId sa = plan.shard_of_[link.a];
    const ShardId sb = plan.shard_of_[link.b];
    if (sa == sb) continue;
    CrossLink cross;
    cross.a = link.a;
    cross.b = link.b;
    cross.shard_a = sa;
    cross.shard_b = sb;
    cross.config = link.config;
    plan.cross_links_.push_back(cross);
    min_latency = std::min(min_latency, link.config.latency);
  }
  plan.min_cross_latency_ =
      plan.cross_links_.empty() ? 0
                                : std::max<sim::Duration>(1, min_latency);

  // Shard-level routing: per adjacent shard pair keep the best cross link
  // (lowest latency, then lowest global endpoint ids — a total order, so the
  // gateway choice is deterministic), then BFS the shard adjacency graph for
  // every source shard to fill the next-exit-link table.
  const std::size_t s = shard_count;
  std::vector<std::size_t> best(s * s, ShardPlan::kInvalidRoute);
  auto better = [&](std::size_t lhs, std::size_t rhs) {
    // True when cross link lhs beats rhs for the same shard pair.
    if (rhs == ShardPlan::kInvalidRoute) return true;
    const CrossLink& x = plan.cross_links_[lhs];
    const CrossLink& y = plan.cross_links_[rhs];
    return std::make_tuple(x.config.latency, x.a, x.b) <
           std::make_tuple(y.config.latency, y.a, y.b);
  };
  for (std::size_t i = 0; i < plan.cross_links_.size(); ++i) {
    const CrossLink& link = plan.cross_links_[i];
    std::size_t& ab = best[link.shard_a * s + link.shard_b];
    if (better(i, ab)) ab = i;
    std::size_t& ba = best[link.shard_b * s + link.shard_a];
    if (better(i, ba)) ba = i;
  }

  plan.route_.assign(s * s, ShardPlan::kInvalidRoute);
  for (ShardId src = 0; src < s; ++src) {
    // BFS from src over shard adjacency; route_[src][t] = first-hop link.
    std::vector<bool> visited(s, false);
    visited[src] = true;
    std::deque<ShardId> frontier{src};
    while (!frontier.empty()) {
      const ShardId at = frontier.front();
      frontier.pop_front();
      for (ShardId next = 0; next < s; ++next) {
        if (visited[next] || best[at * s + next] == ShardPlan::kInvalidRoute) {
          continue;
        }
        visited[next] = true;
        // First hop toward `next` is either the direct gateway (at == src)
        // or whatever first hop reached `at`.
        plan.route_[src * s + next] =
            at == src ? best[src * s + next] : plan.route_[src * s + at];
        frontier.push_back(next);
      }
    }
  }
  return plan;
}

ShardAssignment ContiguousBlocks(std::size_t shard_count) {
  return [shard_count](net::NodeId node, const net::Topology& topology) {
    const std::size_t n = topology.node_count();
    const std::size_t base = n / shard_count;
    const std::size_t extra = n % shard_count;
    // The first `extra` shards hold (base + 1) nodes each.
    const std::size_t boundary = extra * (base + 1);
    if (node < boundary) {
      return static_cast<ShardId>(node / (base + 1));
    }
    if (base == 0) return static_cast<ShardId>(shard_count - 1);
    return static_cast<ShardId>(extra + (node - boundary) / base);
  };
}

ShardAssignment GridRowBands(std::size_t rows, std::size_t cols,
                             std::size_t shard_count) {
  return [rows, cols, shard_count](net::NodeId node, const net::Topology&) {
    const std::size_t row = node / cols;
    const std::size_t base = rows / shard_count;
    const std::size_t extra = rows % shard_count;
    const std::size_t boundary = extra * (base + 1);
    if (row < boundary) return static_cast<ShardId>(row / (base + 1));
    if (base == 0) return static_cast<ShardId>(shard_count - 1);
    return static_cast<ShardId>(extra + (row - boundary) / base);
  };
}

}  // namespace viator::shard
