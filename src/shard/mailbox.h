// Cross-shard handoff mailboxes.
//
// During a window, shard worker threads deposit outbound cross-shard
// shuttles into per-destination-shard mailboxes (one mutex stripe per
// destination, so senders to different shards never contend). At the window
// barrier the single-threaded merge drains every mailbox and sorts the
// handoffs by (arrival_time, source_shard, sequence) — a total order that
// does not depend on which worker appended first, which is what makes the
// merged injection order (and therefore the whole run) bit-identical for
// any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/shuttle.h"
#include "net/types.h"
#include "shard/plan.h"
#include "sim/time.h"
#include "telemetry/mem_counters.h"
#include "telemetry/perf_counters.h"

namespace viator::shard {

/// One cross-shard shuttle in flight between windows.
struct Handoff {
  /// Virtual arrival time at the entry gateway (send time + link latency,
  /// clamped into the next window when a zero-latency cross link would have
  /// landed it inside the current one).
  sim::TimePoint arrival_time = 0;
  /// Shard whose gateway emitted the handoff.
  ShardId source_shard = kInvalidShard;
  /// Per-source-shard emission ordinal (each shard runs single-threaded
  /// within a window, so this needs no atomics and is deterministic).
  std::uint64_t sequence = 0;
  /// Global node id of the entry gateway in the destination shard.
  net::NodeId entry_node = net::kInvalidNode;
  /// The capsule itself; header/transit re-addressed by the merge.
  wli::Shuttle shuttle;
  /// Latency-plane continuity (telemetry/latency_plane.h): the flight's
  /// birth time carried across the shard boundary, so the destination
  /// shard's lane can resume the end-to-end delivery clock. 0 = flight not
  /// tracked. Deliberately excluded from the handoff hash: pure
  /// observability, derived from deterministic sim time.
  sim::TimePoint lat_birth = 0;

  /// The deterministic merge order.
  bool operator<(const Handoff& other) const {
    if (arrival_time != other.arrival_time) {
      return arrival_time < other.arrival_time;
    }
    if (source_shard != other.source_shard) {
      return source_shard < other.source_shard;
    }
    return sequence < other.sequence;
  }
};

class MailboxGrid {
 public:
  explicit MailboxGrid(std::size_t shard_count)
      : stripes_(shard_count), total_handoffs_(0) {}

  MailboxGrid(const MailboxGrid&) = delete;
  MailboxGrid& operator=(const MailboxGrid&) = delete;

  ~MailboxGrid() {
#if VIATOR_MEM_COUNTERS
    for (const Stripe& stripe : stripes_) {
      VIATOR_MEM_FREE(kMailbox,
                      stripe.pending.capacity() * sizeof(Handoff));
    }
#endif
  }

  /// Deposits a handoff bound for `destination_shard`. Thread-safe; called
  /// from shard workers mid-window.
  void Push(ShardId destination_shard, Handoff handoff) {
    // The timed scope covers the stripe lock acquire + deposit, so cycle
    // counts surface stripe contention directly.
    VIATOR_PERF_SCOPE(kMailboxPush);
    Stripe& stripe = stripes_[destination_shard];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    // Capacity growth lands on the pushing thread's counter block — the
    // aggregate stays exact; retained stripe capacity is never released
    // until the grid dies, mirroring the actual allocator behaviour.
    const std::size_t before = stripe.pending.capacity();
    stripe.pending.push_back(std::move(handoff));
    if (stripe.pending.capacity() != before) {
      VIATOR_MEM_ALLOC(kMailbox, (stripe.pending.capacity() - before) *
                                     sizeof(Handoff));
    }
  }

  /// Drains every mailbox into one deterministically sorted batch (barrier
  /// only — assumes no concurrent Push).
  std::vector<Handoff> DrainSorted();

  /// Handoffs drained since construction.
  std::uint64_t total_handoffs() const { return total_handoffs_; }

  /// True when every stripe is empty (quiescence check; barrier only).
  bool Empty() const;

  /// Heap bytes retained by stripe backing stores (barrier only — assumes
  /// no concurrent Push; folded into the per-window memory snapshot).
  std::size_t RetainedBytes() const {
    std::size_t bytes = 0;
    for (const Stripe& stripe : stripes_) {
      bytes += stripe.pending.capacity() * sizeof(Handoff);
    }
    return bytes;
  }

  std::size_t shard_count() const { return stripes_.size(); }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<Handoff> pending;
  };
  std::vector<Stripe> stripes_;
  std::uint64_t total_handoffs_;
};

}  // namespace viator::shard
