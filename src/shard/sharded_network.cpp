#include "shard/sharded_network.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>
#include <utility>

#include "base/rng.h"
#include "base/tlv.h"
#include "telemetry/perf_counters.h"
#include "telemetry/shard_metrics.h"

namespace viator::shard {

namespace {

// Checkpoint container tags (outer stream).
constexpr TlvTag kTagWindowIndex = 0x01;
constexpr TlvTag kTagShardCount = 0x02;
constexpr TlvTag kTagClamped = 0x03;
constexpr TlvTag kTagUnroutable = 0x04;
constexpr TlvTag kTagJournal = 0x05;
constexpr TlvTag kTagShard = 0x06;  // one nested record per shard, in order
// Per-shard nested tags.
constexpr TlvTag kTagHandoffSeq = 0x10;
constexpr TlvTag kTagGenesisBlob = 0x11;

}  // namespace

/// One shard's complete private world. Declaration order is construction
/// order: the network borrows the topology and simulator, the genesis
/// manager borrows the network.
struct ShardedNetwork::ShardSlot {
  net::Topology topology;
  sim::Simulator simulator;
  std::unique_ptr<wli::WanderingNetwork> network;
  std::unique_ptr<genesis::GenesisManager> genesis;

  /// Next per-source handoff ordinal (single-writer: this shard's worker).
  std::uint64_t handoff_seq = 0;

  /// Scratch written by this shard's worker only: the shard's state hash for
  /// the window that just ran (valid when the window had hashing due) and
  /// this window's outbound handoff count.
  std::uint64_t window_hash = 0;
  std::uint64_t window_handoffs_out = 0;
  std::uint64_t window_handoffs_in = 0;
  std::uint64_t window_unroutable = 0;

  /// The latency plane's fold of the window that just ran (barrier-written):
  /// delivery quantiles plus the worst-K tail exemplars wnscope's drill-down
  /// table resolves back to trace ids. Empty when the plane is off.
  telemetry::lat::Lane::WindowStats lat_window;
};

ShardedNetwork::ShardedNetwork(const net::Topology& global,
                               const ShardedConfig& config, bool populate)
    : config_(config),
      global_(global),
      mailbox_(config.shard_count == 0 ? 1 : config.shard_count),
      journal_(config.journal),
      observatory_(config.shard_count,
                   config.observatory_window_capacity) {
  const ShardAssignment assignment = config_.assignment
                                         ? config_.assignment
                                         : ContiguousBlocks(config_.shard_count);
  Result<ShardPlan> plan = BuildShardPlan(global_, config_.shard_count,
                                          assignment);
  // An unbuildable plan (shard_count 0, assignment out of range) is a
  // programmer error, not a runtime condition: validate partitioners with
  // BuildShardPlan directly before handing them to a ShardedNetwork.
  assert(plan.ok() && "ShardedConfig does not yield a valid ShardPlan");
  plan_ = std::move(plan).value();

  window_ = plan_.min_cross_latency() > 0 ? plan_.min_cross_latency()
                                          : config_.default_window;
  window_ = std::max<sim::Duration>(1, window_);

  Hasher plan_hasher;
  plan_.MixDigest(plan_hasher);
  plan_digest_ = plan_hasher.digest();

  shards_.reserve(plan_.shard_count());
  for (ShardId shard = 0; shard < plan_.shard_count(); ++shard) {
    auto slot = std::make_unique<ShardSlot>();
    if (populate) slot->topology = plan_.LocalTopology(global_, shard);
    slot->network = std::make_unique<wli::WanderingNetwork>(
        slot->simulator, slot->topology, config_.wn,
        DeriveSubstreamSeed(config_.seed, shard));
    if (populate) slot->network->PopulateAllNodes();
    slot->genesis =
        std::make_unique<genesis::GenesisManager>(*slot->network);
    shards_.push_back(std::move(slot));
    simulators_.push_back(&shards_.back()->simulator);
    networks_.push_back(shards_.back()->network.get());
    InstallBoundaryHandler(shard);
  }

  executor_ =
      std::make_unique<sim::ShardedExecutor>(simulators_, config_.threads);
  observatory_.Reset(plan_.shard_count());
  stats_.GetGauge("shard.count").Set(static_cast<double>(plan_.shard_count()));
  stats_.GetGauge("shard.window_ns").Set(static_cast<double>(window_));
}

ShardedNetwork::~ShardedNetwork() = default;

void ShardedNetwork::InstallBoundaryHandler(ShardId shard) {
  networks_[shard]->SetBoundaryHandler(
      [this, shard](wli::Ship& at, wli::Shuttle shuttle, net::NodeId) {
        OnBoundary(shard, at, std::move(shuttle));
      });
}

Status ShardedNetwork::Inject(net::NodeId src, net::NodeId dst,
                              std::vector<std::int64_t> payload,
                              std::uint64_t flow) {
  if (src >= global_.node_count() || dst >= global_.node_count()) {
    return InvalidArgument("inject endpoint outside the global topology");
  }
  const ShardId src_shard = plan_.shard_of(src);
  const ShardId dst_shard = plan_.shard_of(dst);
  if (src_shard == dst_shard) {
    return networks_[src_shard]->Inject(wli::Shuttle::Data(
        plan_.local_of(src), plan_.local_of(dst), std::move(payload), flow));
  }
  const std::size_t route = plan_.RouteLink(src_shard, dst_shard);
  if (route == ShardPlan::kInvalidRoute) {
    return NotFound("destination shard unreachable over cross-shard links");
  }
  const CrossLink& link = plan_.cross_links()[route];
  const net::NodeId exit_global = link.shard_a == src_shard ? link.a : link.b;
  wli::Shuttle shuttle =
      wli::Shuttle::Data(plan_.local_of(src), plan_.local_of(exit_global),
                         std::move(payload), flow);
  shuttle.transit_destination = dst;
  return networks_[src_shard]->Inject(std::move(shuttle));
}

void ShardedNetwork::PulseAll() {
  for (const auto& slot : shards_) slot->network->Pulse();
}

void ShardedNetwork::OnBoundary(ShardId shard, wli::Ship& gateway,
                                wli::Shuttle shuttle) {
  // Worker-thread context: touches only shard-local state and the
  // mutex-striped mailbox. `gateway` is the exit ship the shuttle was
  // addressed to; the exit *link* is recomputed from the plan so the choice
  // never depends on how the shuttle got here.
  VIATOR_PERF_SCOPE(kGatewayRoute);
  (void)gateway;
  ShardSlot& slot = *shards_[shard];
  const ShardId final_shard = plan_.shard_of(shuttle.transit_destination);
  const std::size_t route = plan_.RouteLink(shard, final_shard);
  if (route == ShardPlan::kInvalidRoute) {
    ++slot.window_unroutable;
    return;
  }
  const CrossLink& link = plan_.cross_links()[route];
  const bool from_a = link.shard_a == shard;

  Handoff handoff;
  handoff.arrival_time = slot.simulator.now() + link.config.latency;
  handoff.source_shard = shard;
  handoff.sequence = slot.handoff_seq++;
  handoff.entry_node = from_a ? link.b : link.a;
  if (telemetry::lat::Enabled() && shuttle.lat_id != 0) {
    // Latency continuity across shards: close the flight out of the source
    // lane and carry its birth time so the destination lane re-seeds it at
    // merge. Observability-only — excluded from the handoff hash.
    handoff.lat_birth = slot.network->lat_lane().Depart(shuttle.lat_id).birth;
  }
  handoff.shuttle = std::move(shuttle);
  ++slot.window_handoffs_out;
  mailbox_.Push(from_a ? link.shard_b : link.shard_a, std::move(handoff));
}

const telemetry::lat::Lane::WindowStats& ShardedNetwork::LatencyWindow(
    ShardId shard) const {
  return shards_[shard]->lat_window;
}

std::uint64_t ShardedNetwork::ShardHash(ShardId shard) const {
  Hasher hasher;
  shards_[shard]->network->MixDigest(hasher);
  return hasher.digest();
}

std::uint64_t ShardedNetwork::RunWindows(std::size_t count) {
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ++window_index_;
    const sim::TimePoint window_end = window_index_ * window_;
    const bool hash_due =
        config_.hash_every != 0 && window_index_ % config_.hash_every == 0;

    sim::ShardedExecutor::PostWindowFn post;
    if (hash_due) {
      // Hash every shard on the worker that ran it, off the barrier's
      // critical path (shard-local state only, per the executor contract).
      post = [this](std::size_t shard) {
        shards_[shard]->window_hash = ShardHash(static_cast<ShardId>(shard));
      };
    }
    const std::vector<sim::ShardedExecutor::WindowResult>& results =
        executor_->RunWindow(window_end, post);
    for (const auto& result : results) events += result.dispatched;
    const auto merge_start = std::chrono::steady_clock::now();
    const std::size_t merged = MergeWindow(window_end, hash_due);
    const auto merge_wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count());

    // Telemetry (barrier context; wall_ns is diagnostic and never feeds
    // simulation state). Stall = how long a shard idled waiting for the
    // slowest shard of this window.
    std::uint64_t max_wall = 0;
    for (const auto& result : results) {
      max_wall = std::max(max_wall, result.wall_ns);
    }
    telemetry::ShardWindowRecord record;
    record.window_index = window_index_;
    record.virtual_start = window_end - window_;
    record.virtual_end = window_end;
    record.merge_wall_ns = merge_wall_ns;
    record.merge_handoffs = merged;
    record.shards.resize(shard_count());
    for (ShardId shard = 0; shard < shard_count(); ++shard) {
      ShardSlot& slot = *shards_[shard];
      // Deterministic per-shard pool footprint at the barrier: calendar
      // queue + event-slot pool + pooled shuttle shells + route cache.
      const std::uint64_t pool_bytes = static_cast<std::uint64_t>(
          slot.simulator.queue_heap_bytes() + slot.simulator.slot_pool_bytes() +
          slot.network->shuttle_pool().retained_bytes() +
          slot.topology.route_cache_bytes());
      // Fold the latency plane's window sketch at the barrier: quantiles for
      // the counter tracks and the worst-K exemplars for tail drill-down.
      // Deterministic (pure sim-time), so benches pin the series.
      if (telemetry::lat::Enabled()) {
        slot.lat_window = slot.network->lat_lane().FoldWindow();
      } else {
        slot.lat_window = {};
      }
      const telemetry::ShardWindowSample sample{
          .dispatched = results[shard].dispatched,
          .handoffs_out = slot.window_handoffs_out,
          .handoffs_in = slot.window_handoffs_in,
          .wall_ns = results[shard].wall_ns,
          .start_ns = results[shard].start_ns,
          .stall_ns = max_wall - results[shard].wall_ns,
          .queue_depth = static_cast<double>(slot.simulator.queue_depth()),
          .pool_bytes = pool_bytes,
          .lat_p50_ns = slot.lat_window.p50_ns,
          .lat_p95_ns = slot.lat_window.p95_ns,
          .lat_p99_ns = slot.lat_window.p99_ns,
          .lat_delivered = slot.lat_window.delivered};
      telemetry::PublishShardWindow(stats_, shard, sample);
      // Each shard's induced topology carries its own route cache; publish
      // its effectiveness under the shard's metric prefix.
      net::PublishRouteCacheStats(
          stats_, slot.topology,
          telemetry::ShardMetricName(shard, "route_cache"));
      record.shards[shard] = sample;
      unroutable_handoffs_ += slot.window_unroutable;
      slot.window_handoffs_out = 0;
      slot.window_handoffs_in = 0;
      slot.window_unroutable = 0;
    }
    if (config_.observatory) {
      observatory_.RecordWindow(std::move(record));
      observatory_.PublishStats(stats_);
    }
    stats_.GetCounter("shard.windows").Add(1);
  }
  return events;
}

std::size_t ShardedNetwork::MergeWindow(sim::TimePoint window_end,
                                        bool hash_due) {
  VIATOR_PERF_SCOPE(kMergeWindow);
  std::vector<Handoff> batch = mailbox_.DrainSorted();
  Hasher handoff_hasher;

  for (Handoff& handoff : batch) {
    const ShardId entry_shard = plan_.shard_of(handoff.entry_node);
    ShardSlot& slot = *shards_[entry_shard];

    sim::TimePoint arrival = handoff.arrival_time;
    if (arrival < window_end) {
      // Only possible when a cross link is faster than the window (zero or
      // sub-window latency): defer to the boundary we are merging at. The
      // deferral is itself deterministic, so determinism survives — only the
      // latency fidelity of that link degrades, and the count says so.
      arrival = window_end;
      ++clamped_handoffs_;
      stats_.GetCounter("shard.handoffs_clamped").Add(1);
    }

    wli::Shuttle shuttle = std::move(handoff.shuttle);
    const net::NodeId final_dst = shuttle.transit_destination;
    const ShardId final_shard = plan_.shard_of(final_dst);
    const net::NodeId entry_local = plan_.local_of(handoff.entry_node);
    if (final_shard == entry_shard) {
      // Last hop: hand the capsule its real (local) address back.
      shuttle.transit_destination = net::kInvalidNode;
      shuttle.header.source = entry_local;
      shuttle.header.destination = plan_.local_of(final_dst);
    } else {
      // Still in transit: re-aim at this shard's exit gateway toward the
      // final shard; the next boundary crossing repeats the dance.
      const std::size_t route = plan_.RouteLink(entry_shard, final_shard);
      if (route == ShardPlan::kInvalidRoute) {
        ++unroutable_handoffs_;
        stats_.GetCounter("shard.handoffs_unroutable").Add(1);
        continue;
      }
      const CrossLink& link = plan_.cross_links()[route];
      shuttle.header.source = entry_local;
      shuttle.header.destination = plan_.local_of(
          link.shard_a == entry_shard ? link.a : link.b);
    }

    if (telemetry::lat::Enabled() && shuttle.lat_id != 0 &&
        handoff.lat_birth != 0) {
      // Re-seed the flight in the destination shard's lane so the eventual
      // delivery measures the true end-to-end latency from global birth.
      telemetry::lat::Lane::Departure departure;
      departure.birth = handoff.lat_birth;
      departure.trace_id = shuttle.trace.trace_id;
      departure.cls = static_cast<std::uint8_t>(shuttle.header.kind);
      departure.valid = true;
      networks_[entry_shard]->lat_lane().Arrive(shuttle.lat_id, departure);
    }

    if (hash_due) {
      handoff_hasher.Mix(handoff.arrival_time);
      handoff_hasher.Mix(handoff.source_shard);
      handoff_hasher.Mix(handoff.sequence);
      handoff_hasher.Mix(handoff.entry_node);
      handoff_hasher.Mix(shuttle.header.flow_id);
      handoff_hasher.Mix(final_dst);
    }

    ++slot.window_handoffs_in;
    wli::WanderingNetwork* network = networks_[entry_shard];
    slot.simulator.ScheduleAt(
        arrival,
        [network, shuttle = std::move(shuttle)]() mutable {
          (void)network->Inject(std::move(shuttle));
        },
        "shard.handoff");
  }
  stats_.GetCounter("shard.handoffs").Add(batch.size());

  if (hash_due) {
    // The merged window hash: partition identity, window ordinal, every
    // shard's post-window digest in shard order, and the digest of the
    // deterministically ordered handoff batch — the full world state at
    // this barrier. Identical timelines <=> identical decisions.
    Hasher combined;
    combined.Mix(plan_digest_);
    combined.Mix(window_index_);
    for (ShardId shard = 0; shard < shard_count(); ++shard) {
      journal_.RecordShardHash(window_index_, shard,
                               shards_[shard]->window_hash);
      combined.Mix(shards_[shard]->window_hash);
    }
    combined.Mix(handoff_hasher.digest());
    journal_.RecordWindowHash(window_index_, combined.digest(), window_end);
  }
  return batch.size();
}

std::uint64_t ShardedNetwork::RunUntilQuiescent(std::size_t max_windows) {
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < max_windows && !IsQuiescent(); ++i) {
    events += RunWindows(1);
  }
  return events;
}

bool ShardedNetwork::IsQuiescent() const {
  for (const auto& slot : shards_) {
    if (slot->simulator.PendingEvents() != 0) return false;
  }
  return mailbox_.Empty();
}

std::uint64_t ShardedNetwork::StateHash() const {
  Hasher hasher;
  hasher.Mix(plan_digest_);
  for (const auto& slot : shards_) slot->network->MixDigest(hasher);
  return hasher.digest();
}

std::uint64_t ShardedNetwork::Delivered() const {
  std::uint64_t consumed = 0;
  for (const auto& slot : shards_) {
    const std::size_t nodes = slot->topology.node_count();
    for (net::NodeId node = 0; node < nodes; ++node) {
      const wli::Ship* ship = slot->network->ship(node);
      if (ship != nullptr) consumed += ship->shuttles_consumed();
    }
  }
  return consumed;
}

Result<std::vector<std::byte>> ShardedNetwork::CaptureCheckpoint() {
  if (!IsQuiescent()) {
    return FailedPrecondition(
        "sharded checkpoint requires a quiescent window boundary "
        "(pending events or in-flight handoffs)");
  }
  TlvWriter writer;
  writer.PutU64(kTagWindowIndex, window_index_);
  writer.PutU64(kTagShardCount, shard_count());
  writer.PutU64(kTagClamped, clamped_handoffs_);
  writer.PutU64(kTagUnroutable, unroutable_handoffs_);
  writer.PutNested(kTagJournal, journal_.Save());
  for (const auto& slot : shards_) {
    Result<std::vector<std::byte>> blob = slot->genesis->CaptureFull();
    if (!blob.ok()) return blob.status();
    TlvWriter shard_writer;
    shard_writer.PutU64(kTagHandoffSeq, slot->handoff_seq);
    shard_writer.PutNested(kTagGenesisBlob, *blob);
    writer.PutNested(kTagShard, shard_writer.Finish());
  }
  return writer.Finish();
}

Status ShardedNetwork::RestoreCheckpoint(std::span<const std::byte> bytes) {
  TlvReader reader(bytes);
  if (Status verify = reader.Verify(); !verify.ok()) return verify;

  std::uint64_t window_index = 0;
  std::uint64_t clamped = 0;
  std::uint64_t unroutable = 0;
  std::span<const std::byte> journal_blob;
  std::vector<std::span<const std::byte>> shard_blobs;
  std::uint64_t declared_shards = 0;

  while (reader.HasNext()) {
    Result<TlvRecord> record = reader.Next();
    if (!record.ok()) return record.status();
    switch (record->tag) {
      case kTagWindowIndex: window_index = record->AsU64(); break;
      case kTagShardCount: declared_shards = record->AsU64(); break;
      case kTagClamped: clamped = record->AsU64(); break;
      case kTagUnroutable: unroutable = record->AsU64(); break;
      case kTagJournal: journal_blob = record->payload; break;
      case kTagShard: shard_blobs.push_back(record->payload); break;
      default: break;  // forward compatibility: ignore unknown tags
    }
  }
  if (declared_shards != shard_count() ||
      shard_blobs.size() != shard_count()) {
    return InvalidArgument("checkpoint shard count does not match this world");
  }

  for (ShardId shard = 0; shard < shard_count(); ++shard) {
    ShardSlot& slot = *shards_[shard];
    TlvReader shard_reader(shard_blobs[shard]);
    if (Status verify = shard_reader.Verify(); !verify.ok()) return verify;
    while (shard_reader.HasNext()) {
      Result<TlvRecord> record = shard_reader.Next();
      if (!record.ok()) return record.status();
      if (record->tag == kTagHandoffSeq) {
        slot.handoff_seq = record->AsU64();
      } else if (record->tag == kTagGenesisBlob) {
        if (Status restored = slot.genesis->RestoreFull(record->payload);
            !restored.ok()) {
          return restored;
        }
      }
    }
  }
  if (!journal_blob.empty()) {
    if (Status loaded = journal_.Load(journal_blob); !loaded.ok()) {
      return loaded;
    }
  }
  window_index_ = window_index;
  clamped_handoffs_ = clamped;
  unroutable_handoffs_ = unroutable;
  return OkStatus();
}

}  // namespace viator::shard
