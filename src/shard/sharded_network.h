// The sharded parallel simulation core.
//
// A ShardedNetwork partitions one global topology into shards (ShardPlan),
// builds one complete shard-local world per shard — its own Simulator, its
// own induced Topology, its own WanderingNetwork with an independently
// derived RNG sub-stream — and steps all of them through conservative time
// windows on a ShardedExecutor worker pool. Within a window shards share
// nothing; cross-shard shuttles leave through gateway ships (the boundary
// handler hook in src/core), ride mutex-striped mailboxes, and are merged
// into their destination shard at the window barrier in a deterministic
// total order. The window length is the minimum cross-shard link latency,
// so no message can arrive inside the window it was sent in: causality is
// conservative, never speculative.
//
// Determinism is the contract, not a hope: the same ShardedNetwork stepped
// with 1 thread and with N threads makes bit-identical decisions, proven by
// per-window state hashes (per shard and merged) fed into a DecisionJournal
// that DivergenceAuditor can diff and bisect exactly like a single-threaded
// flight recording. Checkpoints capture every shard through its own
// GenesisManager plus the merge-layer state, and restore resumes
// bit-identically from any quiescent window boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/status.h"
#include "core/wandering_network.h"
#include "genesis/manager.h"
#include "net/topology.h"
#include "replay/journal.h"
#include "shard/mailbox.h"
#include "shard/plan.h"
#include "sim/executor.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "telemetry/latency_plane.h"
#include "telemetry/shard_metrics.h"

namespace viator::shard {

struct ShardedConfig {
  std::size_t shard_count = 4;

  /// Worker threads for the window executor: 0 = hardware concurrency,
  /// 1 = the sequential reference path (same decisions, one core).
  std::size_t threads = 0;

  /// Seed of the whole sharded world; shard s derives its network seed as
  /// DeriveSubstreamSeed(seed, s), so shard streams never correlate and do
  /// not depend on thread scheduling.
  std::uint64_t seed = 0x5eed;

  /// Capture per-shard + merged state hashes every N windows (0 = never —
  /// the raw-speed setting; 1 = every window, the bisection-exact setting).
  std::size_t hash_every = 1;

  /// Window length when the plan has no cross-shard links (single shard or
  /// fully partitioned shards); otherwise min cross latency wins.
  sim::Duration default_window = sim::kMillisecond;

  /// Partitioner; defaults to ContiguousBlocks(shard_count).
  ShardAssignment assignment;

  /// Per-shard network configuration (telemetry switches, quotas, ...).
  wli::WnConfig wn;

  replay::JournalConfig journal;

  /// Shard Observatory: per-window record retention for the straggler /
  /// critical-path report and the wnscope parallel timeline. Totals always
  /// accumulate; only the per-window records are bounded. Disabling skips
  /// the recording entirely (counters in `stats()` still publish).
  bool observatory = true;
  std::size_t observatory_window_capacity =
      telemetry::ShardObservatory::kDefaultWindowCapacity;
};

class ShardedNetwork {
 public:
  /// Builds the sharded world over a copy of `global`. `populate` = true
  /// creates one server ship per node in every shard; `populate` = false
  /// builds empty shard shells to RestoreCheckpoint() into (the plan and
  /// window geometry still come from `global` + `config`, which must match
  /// the capturing world's).
  ShardedNetwork(const net::Topology& global, const ShardedConfig& config,
                 bool populate = true);
  ~ShardedNetwork();

  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  // ---- Workload injection (between windows only) ----

  /// Injects a data shuttle from global node `src` to global node `dst`.
  /// Same-shard pairs go straight into the owning shard; cross-shard pairs
  /// are addressed to the exit gateway with transit metadata and travel
  /// shard to shard across window boundaries.
  Status Inject(net::NodeId src, net::NodeId dst,
                std::vector<std::int64_t> payload, std::uint64_t flow = 0);

  /// Runs one metamorphosis pulse on every shard network, in shard order
  /// (barrier-time operation, deterministic).
  void PulseAll();

  // ---- Window-stepped execution ----

  /// Runs `count` conservative windows (all shards in parallel, one barrier
  /// merge per window). Returns events dispatched across all shards.
  std::uint64_t RunWindows(std::size_t count);

  /// Runs windows until every shard queue and mailbox is empty, capped at
  /// `max_windows`. Returns events dispatched.
  std::uint64_t RunUntilQuiescent(std::size_t max_windows = 1 << 20);

  /// True when no shard has pending events and no handoff is in flight —
  /// the only state checkpoints can capture.
  bool IsQuiescent() const;

  std::uint64_t window_index() const { return window_index_; }
  sim::Duration window() const { return window_; }
  /// Virtual time of the last window barrier.
  sim::TimePoint now() const { return window_index_ * window_; }

  // ---- Determinism proof surface ----

  /// Merged journal: per-shard kShardHash records plus the merged per-window
  /// hash timeline DivergenceAuditor binary-searches.
  replay::DecisionJournal& journal() { return journal_; }
  const replay::DecisionJournal& journal() const { return journal_; }

  /// Combined state hash right now (plan digest, every shard's MixDigest in
  /// shard order): the value the merged per-window hashes are built from.
  std::uint64_t StateHash() const;

  /// Sum of shuttles consumed across every shard (workload progress).
  std::uint64_t Delivered() const;

  // ---- Checkpoint / restore (quiescent window boundaries only) ----

  Result<std::vector<std::byte>> CaptureCheckpoint();
  Status RestoreCheckpoint(std::span<const std::byte> bytes);

  // ---- Access ----

  const ShardPlan& plan() const { return plan_; }
  std::size_t shard_count() const { return plan_.shard_count(); }
  std::size_t threads() const { return executor_->threads(); }
  wli::WanderingNetwork& shard_network(ShardId shard) {
    return *networks_[shard];
  }
  sim::Simulator& shard_simulator(ShardId shard) { return *simulators_[shard]; }
  /// Merge-layer metrics: per-shard queue depth, handoffs, stall time, plus
  /// whole-run counters. Exported via the standard telemetry exporters.
  sim::StatsRegistry& stats() { return stats_; }
  const sim::StatsRegistry& stats() const { return stats_; }
  /// Per-window performance plane: straggler report, imbalance indices,
  /// the wnscope timeline source (docs/PERF.md).
  const telemetry::ShardObservatory& observatory() const {
    return observatory_;
  }
  telemetry::ShardObservatory& observatory() { return observatory_; }
  /// The latency plane's fold of the last window that ran on `shard`:
  /// delivery quantiles plus the worst-K tail exemplars (trace ids for the
  /// wnscope drill-down / wnreplay seek handoff). Empty when the plane is
  /// off or no window has run. Barrier-time read only.
  const telemetry::lat::Lane::WindowStats& LatencyWindow(ShardId shard) const;
  std::uint64_t total_dispatched() const { return executor_->total_dispatched(); }
  /// Handoffs whose zero-latency arrival had to be deferred to the next
  /// window boundary (only possible when a cross link has latency < window).
  std::uint64_t clamped_handoffs() const { return clamped_handoffs_; }

 private:
  struct ShardSlot;  // per-shard world (defined in the .cpp)

  void InstallBoundaryHandler(ShardId shard);
  void OnBoundary(ShardId shard, wli::Ship& gateway, wli::Shuttle shuttle);
  /// Returns the number of handoffs merged at this barrier.
  std::size_t MergeWindow(sim::TimePoint window_end, bool hash_due);
  std::uint64_t ShardHash(ShardId shard) const;

  ShardedConfig config_;
  net::Topology global_;
  ShardPlan plan_;
  sim::Duration window_ = 0;
  std::uint64_t plan_digest_ = 0;

  std::vector<std::unique_ptr<ShardSlot>> shards_;
  // Borrowed views into shards_ (stable addresses) for the executor.
  std::vector<sim::Simulator*> simulators_;
  std::vector<wli::WanderingNetwork*> networks_;

  MailboxGrid mailbox_;
  std::unique_ptr<sim::ShardedExecutor> executor_;
  replay::DecisionJournal journal_;
  sim::StatsRegistry stats_;
  telemetry::ShardObservatory observatory_;

  std::uint64_t window_index_ = 0;
  std::uint64_t clamped_handoffs_ = 0;
  std::uint64_t unroutable_handoffs_ = 0;
};

}  // namespace viator::shard
