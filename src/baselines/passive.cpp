#include "baselines/passive.h"

namespace viator::baselines {

std::uint64_t PassiveEndpoints::UnicastToAll(
    net::NodeId src, const std::vector<net::NodeId>& receivers,
    const std::vector<std::int64_t>& payload, std::uint64_t flow) {
  std::uint64_t bytes = 0;
  for (net::NodeId receiver : receivers) {
    wli::Shuttle shuttle = wli::Shuttle::Data(src, receiver, payload, flow);
    bytes += shuttle.WireSize();
    (void)network_.Inject(std::move(shuttle));
  }
  return bytes;
}

std::uint64_t PassiveEndpoints::SendRaw(net::NodeId src, net::NodeId sink,
                                        const std::vector<std::int64_t>&
                                            payload,
                                        std::uint64_t flow) {
  wli::Shuttle shuttle = wli::Shuttle::Data(src, sink, payload, flow);
  const std::uint64_t bytes = shuttle.WireSize();
  (void)network_.Inject(std::move(shuttle));
  return bytes;
}

}  // namespace viator::baselines
