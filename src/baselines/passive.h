// Passive-network baseline: the legacy IP comparator every active-network
// argument in the paper is made against. Computation only at the endpoints;
// routers "transparently forward datagrams in the traditional manner".
//
// PassiveEndpoints runs the E6 workloads without in-network functions:
//   * no fusion   — every raw reading crosses the whole path; the receiver
//                   aggregates,
//   * no fission  — the source unicasts one copy per receiver,
//   * no caching  — every request travels to the origin,
//   * no delegation — the service stays pinned at a fixed server.
// It reuses the same fabric and shuttle shapes so byte/latency comparisons
// against the active services are apples-to-apples.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wandering_network.h"

namespace viator::baselines {

class PassiveEndpoints {
 public:
  /// Builds on an existing network whose ships have *no* active roles
  /// installed (the constructor does not install any).
  explicit PassiveEndpoints(wli::WanderingNetwork& network)
      : network_(network) {}

  /// Unicast replication: sends `payload` from `src` once per receiver
  /// (what multicast fission avoids). Returns total bytes injected.
  std::uint64_t UnicastToAll(net::NodeId src,
                             const std::vector<net::NodeId>& receivers,
                             const std::vector<std::int64_t>& payload,
                             std::uint64_t flow);

  /// Endpoint aggregation: raw readings go end-to-end; the sink-side
  /// aggregate is computed by the caller. Returns bytes injected.
  std::uint64_t SendRaw(net::NodeId src, net::NodeId sink,
                        const std::vector<std::int64_t>& payload,
                        std::uint64_t flow);

  wli::WanderingNetwork& network() { return network_; }

 private:
  wli::WanderingNetwork& network_;
};

}  // namespace viator::baselines
