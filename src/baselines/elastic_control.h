// Elastic-control baseline (paper ref [32], Bos et al.): control functions
// live at a fixed out-of-band controller instead of wandering through the
// network. The paper positions WLI explicitly against this: "The WLI
// approach is not the intended distribution of fixed, injected,
// programmable, or even 'elastic' control functions inside or outside the
// network."
//
// ElasticController models that architecture's cost: every adaptation
// decision requires a round trip to the controller node (observe + command),
// so adaptation latency includes 2× the controller's network distance, and
// the controller is a single point of failure (when its node dies, no
// adaptation happens at all) — the properties the E12 generation ablation
// compares against autopoietic wandering.
#pragma once

#include <cstdint>

#include "core/wandering_network.h"

namespace viator::baselines {

class ElasticController {
 public:
  ElasticController(wli::WanderingNetwork& network, net::NodeId controller);

  /// Requests a role switch at `subject` the elastic way: an observation
  /// shuttle travels subject -> controller, the decision travels back, and
  /// only then does the role flip. Returns false when the controller is
  /// unreachable (its failure mode).
  bool RequestRoleSwitch(net::NodeId subject, node::FirstLevelRole role);

  /// Completed switches (the command arrived and was applied).
  std::uint64_t switches_applied() const { return switches_applied_; }
  std::uint64_t requests_lost() const { return requests_lost_; }

  net::NodeId controller() const { return controller_; }

 private:
  void OnControl(wli::Ship& ship, const wli::Shuttle& shuttle);

  static constexpr std::int64_t kObserve = 1;
  static constexpr std::int64_t kCommand = 2;

  wli::WanderingNetwork& network_;
  net::NodeId controller_;
  std::uint64_t switches_applied_ = 0;
  std::uint64_t requests_lost_ = 0;
};

}  // namespace viator::baselines
