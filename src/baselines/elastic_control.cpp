#include "baselines/elastic_control.h"

namespace viator::baselines {

ElasticController::ElasticController(wli::WanderingNetwork& network,
                                     net::NodeId controller)
    : network_(network), controller_(controller) {
  network_.ForEachShip([this](wli::Ship& ship) {
    ship.SetControlHandler(
        [this](wli::Ship& s, const wli::Shuttle& shuttle) {
          OnControl(s, shuttle);
        });
  });
}

bool ElasticController::RequestRoleSwitch(net::NodeId subject,
                                          node::FirstLevelRole role) {
  if (!network_.topology().IsNodeUp(controller_)) {
    ++requests_lost_;
    return false;  // single point of failure
  }
  wli::Shuttle observe;
  observe.header.source = subject;
  observe.header.destination = controller_;
  observe.header.kind = wli::ShuttleKind::kControl;
  observe.payload = {kObserve, static_cast<std::int64_t>(subject),
                     static_cast<std::int64_t>(role)};
  return network_.Inject(std::move(observe)).ok();
}

void ElasticController::OnControl(wli::Ship& ship,
                                  const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() != 3) return;
  const std::int64_t type = shuttle.payload[0];
  const auto subject = static_cast<net::NodeId>(shuttle.payload[1]);
  const auto role_index = static_cast<std::uint64_t>(shuttle.payload[2]);
  if (role_index >=
      static_cast<std::uint64_t>(node::FirstLevelRole::kRoleCount)) {
    return;
  }
  const auto role = static_cast<node::FirstLevelRole>(role_index);

  if (type == kObserve && ship.id() == controller_) {
    // Decide centrally (trivially approve) and command the subject.
    wli::Shuttle command;
    command.header.source = controller_;
    command.header.destination = subject;
    command.header.kind = wli::ShuttleKind::kControl;
    command.payload = {kCommand, shuttle.payload[1], shuttle.payload[2]};
    (void)network_.Inject(std::move(command));
    return;
  }
  if (type == kCommand && ship.id() == subject) {
    if (ship.SwitchRole(role, node::SwitchMechanism::kResidentSoftware)
            .ok()) {
      ++switches_applied_;
    }
  }
}

}  // namespace viator::baselines
