#include "replay/scenario.h"

#include "base/tlv.h"
#include "core/shuttle.h"
#include "telemetry/perf_counters.h"

namespace viator::replay {

namespace {

// ScenarioConfig TLV tags.
constexpr TlvTag kTagSeed = 1;
constexpr TlvTag kTagRows = 2;
constexpr TlvTag kTagCols = 3;
constexpr TlvTag kTagSteps = 4;
constexpr TlvTag kTagInjections = 5;
constexpr TlvTag kTagPulseEvery = 6;
constexpr TlvTag kTagCheckpointEvery = 7;
constexpr TlvTag kTagPerturbStep = 8;
constexpr TlvTag kTagTracing = 9;
constexpr TlvTag kTagJournal = 10;
constexpr TlvTag kTagJournalCapacity = 11;
constexpr TlvTag kTagHashEvery = 12;

}  // namespace

std::vector<std::byte> ScenarioConfig::Save() const {
  TlvWriter writer;
  writer.PutU64(kTagSeed, seed);
  writer.PutU64(kTagRows, rows);
  writer.PutU64(kTagCols, cols);
  writer.PutU64(kTagSteps, steps);
  writer.PutU64(kTagInjections, injections_per_step);
  writer.PutU64(kTagPulseEvery, pulse_every);
  writer.PutU64(kTagCheckpointEvery, checkpoint_every);
  writer.PutU64(kTagPerturbStep, perturb_step);
  writer.PutU64(kTagTracing, tracing ? 1 : 0);
  writer.PutU64(kTagJournal, journal ? 1 : 0);
  writer.PutU64(kTagJournalCapacity, journal_config.capacity);
  writer.PutU64(kTagHashEvery, hash_every);
  return writer.Finish();
}

Result<ScenarioConfig> ScenarioConfig::Load(
    std::span<const std::byte> payload) {
  TlvReader reader(payload);
  if (auto status = reader.Verify(); !status.ok()) return status;
  ScenarioConfig config;
  while (reader.HasNext()) {
    auto record = reader.Next();
    if (!record.ok()) return record.status();
    switch (record->tag) {
      case kTagSeed: config.seed = record->AsU64(); break;
      case kTagRows: config.rows = record->AsU64(); break;
      case kTagCols: config.cols = record->AsU64(); break;
      case kTagSteps: config.steps = record->AsU64(); break;
      case kTagInjections: config.injections_per_step = record->AsU64(); break;
      case kTagPulseEvery: config.pulse_every = record->AsU64(); break;
      case kTagCheckpointEvery:
        config.checkpoint_every = record->AsU64();
        break;
      case kTagPerturbStep: config.perturb_step = record->AsU64(); break;
      case kTagTracing: config.tracing = record->AsU64() != 0; break;
      case kTagJournal: config.journal = record->AsU64() != 0; break;
      case kTagJournalCapacity:
        config.journal_config.capacity =
            static_cast<std::size_t>(record->AsU64());
        break;
      case kTagHashEvery: config.hash_every = record->AsU64(); break;
      default: break;  // ignore unknown tags (forward compatibility)
    }
  }
  if (config.rows == 0 || config.cols == 0 ||
      config.rows * config.cols < 2) {
    return InvalidArgument("scenario grid too small");
  }
  return config;
}

ReplayWorld::ReplayWorld(const ScenarioConfig& config, bool populate,
                         bool keep_checkpoints)
    : config_(config),
      keep_checkpoints_(keep_checkpoints),
      journal_(config.journal_config),
      journal_section_(journal_) {
  // Scenario boundary: the process-wide perf counter blocks would otherwise
  // leak the previous scenario's counts into this one (bench_replay runs
  // several tiers per process; regression test PerfCountersResetPerScenario).
  if (populate) telemetry::perf::ResetAll();
  wli::WnConfig wn_config;
  wn_config.telemetry.enable_tracing = config_.tracing;
  if (populate) topology_ = net::MakeGrid(config_.rows, config_.cols);
  network_ = std::make_unique<wli::WanderingNetwork>(simulator_, topology_,
                                                     wn_config, config_.seed);
  if (populate) network_->PopulateAllNodes();
  genesis::GenesisConfig genesis_config;
  genesis_config.scenario_tag = config_.seed;
  genesis_ = std::make_unique<genesis::GenesisManager>(*network_,
                                                       genesis_config);
  (void)genesis_->RegisterExtra(journal_section_);
  if (populate && config_.journal) journal_.Attach(*network_);
}

void ReplayWorld::BeginStep() {
  ++step_;
  step_open_ = true;
  if (config_.pulse_every != 0 && step_ % config_.pulse_every == 0) {
    network_->Pulse();
  }
  if (step_ == config_.perturb_step) {
    // The injected divergence: one extra draw shifts every later decision.
    (void)network_->rng().Next();
  }
  const std::size_t n = topology_.node_count();
  for (std::size_t i = 0; i < config_.injections_per_step; ++i) {
    const auto src =
        static_cast<net::NodeId>(network_->rng().UniformInt(0, n - 1));
    auto dst = static_cast<net::NodeId>(network_->rng().UniformInt(0, n - 1));
    if (dst == src) dst = static_cast<net::NodeId>((dst + 1) % n);
    (void)network_->Inject(wli::Shuttle::Data(
        src, dst,
        {static_cast<std::int64_t>(step_), static_cast<std::int64_t>(i), 7},
        step_ * 100 + i + 1));
  }
}

void ReplayWorld::FinishStep() {
  step_open_ = false;
  if (journal_.attached() && config_.hash_every != 0 &&
      step_ % config_.hash_every == 0) {
    journal_.CaptureWindowHash(step_);
  }
  if (keep_checkpoints_ && config_.checkpoint_every != 0 &&
      step_ % config_.checkpoint_every == 0) {
    auto bytes = genesis_->CaptureFull();
    if (bytes.ok()) {
      checkpoints_.push_back(
          Checkpoint{step_, simulator_.now(), std::move(*bytes)});
    }
  }
}

void ReplayWorld::RunOneStep() {
  BeginStep();
  while (StepEvent()) {
  }
  FinishStep();
}

void ReplayWorld::RunToStep(std::size_t target) {
  while (step_ < target) RunOneStep();
}

Status ReplayWorld::RestoreFromCheckpoint(const Checkpoint& checkpoint) {
  if (auto status = genesis_->RestoreFull(checkpoint.bytes); !status.ok()) {
    return status;
  }
  step_ = checkpoint.step;
  step_open_ = false;
  // Restored ships are fresh objects: re-install every journal hook.
  if (config_.journal) journal_.Attach(*network_);
  return OkStatus();
}

std::uint64_t ReplayWorld::StateHash() const {
  Hasher hasher;
  network_->MixDigest(hasher);
  return hasher.digest();
}

std::uint64_t ReplayWorld::Delivered() const {
  std::uint64_t total = 0;
  const_cast<wli::WanderingNetwork&>(*network_).ForEachShip(
      [&total](wli::Ship& ship) { total += ship.shuttles_consumed(); });
  return total;
}

}  // namespace viator::replay
