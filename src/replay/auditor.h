// Divergence audit: find the first decision where two runs part ways.
//
// Two journals of the same scenario (run vs run, build vs build, probes-on
// vs probes-off) are compared in two stages. First, a binary search over
// the per-step state hashes finds the first divergent step — valid because
// divergence is monotone: the state hash mixes every RNG stream's raw
// state, so once one extra or different draw happens the hashes never
// re-converge. Second, the divergent step is re-executed on both sides from
// the nearest genesis checkpoint (checkpoint-assisted bisection), and the
// freshly captured records are compared pairwise to pin the exact first
// divergent decision — which draw, on whose stream, at what virtual time.
// When Observatory tracing is on, the report joins that decision to the
// span covering it, naming the component and ship whose work diverged.
#pragma once

#include <cstdint>
#include <string>

#include "base/status.h"
#include "replay/controller.h"
#include "replay/journal.h"

namespace viator::replay {

struct DivergenceReport {
  bool diverged = false;

  /// First step whose end-of-step state hashes differ (1-based; 0 when the
  /// runs never produced comparable hashes).
  std::uint64_t first_divergent_step = 0;

  /// Set when record-level refinement located the exact decision.
  bool refined = false;
  JournalRecord lhs{};
  JournalRecord rhs{};
  /// Zero-based index of the divergent decision: global append index for
  /// Compare(), index within the re-executed step for Bisect().
  std::uint64_t record_index = 0;
  /// Owning stream of the divergent decision ("network", "fabric",
  /// "ship 3", or "simulator" for dispatch-order divergence).
  std::string owner;

  /// Observatory join: the span covering the divergence time (empty when
  /// tracing was off or no span covers it).
  std::string span_component;
  std::string span_name;
  std::uint64_t span_ship = 0;

  /// One-line human-readable account.
  std::string summary;
};

class DivergenceAuditor {
 public:
  /// Pure journal comparison, no re-execution: binary-searches the window
  /// hashes for the first divergent step and refines to the exact record
  /// when the rings still hold that span. Works on deserialized journals.
  static DivergenceReport Compare(const DecisionJournal& a,
                                  const DecisionJournal& b);

  /// Checkpoint-assisted bisection: Compare() both recorded runs, then seek
  /// both controllers to just before the first divergent step, re-execute it
  /// and diff the freshly captured records. Both controllers must have
  /// RecordFull() done. The exact divergent decision is always found (the
  /// re-executed step cannot have wrapped out of the ring).
  static Result<DivergenceReport> Bisect(ReplayController& a,
                                         ReplayController& b);

 private:
  static void Summarize(DivergenceReport& report);
};

}  // namespace viator::replay
