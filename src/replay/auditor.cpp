#include "replay/auditor.h"

#include <algorithm>
#include <cstdio>

#include "core/wandering_network.h"
#include "telemetry/span.h"

namespace viator::replay {

namespace {

std::string OwnerOf(const JournalRecord& record) {
  switch (record.kind) {
    case RecordKind::kRngDraw: return StreamName(record.stream);
    case RecordKind::kDispatch: return "simulator";
    case RecordKind::kWindowHash: return "journal";
    case RecordKind::kNote: return "note";
    case RecordKind::kShardHash:
      return "shard " + std::to_string(record.stream);
  }
  return "unknown";
}

std::string KindName(RecordKind kind) {
  switch (kind) {
    case RecordKind::kRngDraw: return "rng draw";
    case RecordKind::kDispatch: return "dispatch";
    case RecordKind::kWindowHash: return "window hash";
    case RecordKind::kNote: return "note";
    case RecordKind::kShardHash: return "shard hash";
  }
  return "record";
}

std::string Hex(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

DivergenceReport DivergenceAuditor::Compare(const DecisionJournal& a,
                                            const DecisionJournal& b) {
  DivergenceReport report;
  if (a.total_records() == b.total_records() &&
      a.rolling_digest() == b.rolling_digest()) {
    Summarize(report);
    return report;
  }
  report.diverged = true;

  // Stage 1: binary search the per-step state hashes for the first
  // divergent step. Divergence is monotone (the hash mixes raw RNG states),
  // so "hashes differ at step i" is a sorted predicate.
  const auto& wa = a.window_hashes();
  const auto& wb = b.window_hashes();
  const std::size_t n = std::min(wa.size(), wb.size());
  if (n > 0 && wa[n - 1] != wb[n - 1]) {
    std::size_t lo = 0;
    std::size_t hi = n - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (wa[mid] != wb[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    report.first_divergent_step = wa[lo].first;
  } else if (wa.size() != wb.size()) {
    // Identical while both ran; one run simply has more steps.
    report.first_divergent_step =
        n < wa.size() ? wa[n].first : wb[n].first;
  }

  // Stage 2 (best effort without re-execution): align the rings on global
  // append indices and scan for the first differing decision. Misses only
  // when the divergence has already wrapped out of both rings.
  const std::uint64_t start_a = a.total_records() - a.size();
  const std::uint64_t start_b = b.total_records() - b.size();
  const std::uint64_t start = std::max(start_a, start_b);
  const std::uint64_t end = std::min(a.total_records(), b.total_records());
  for (std::uint64_t g = start; g < end; ++g) {
    const JournalRecord& ra = a.at(static_cast<std::size_t>(g - start_a));
    const JournalRecord& rb = b.at(static_cast<std::size_t>(g - start_b));
    if (!ra.SameDecision(rb)) {
      report.refined = true;
      report.record_index = g;
      report.lhs = ra;
      report.rhs = rb;
      report.owner = OwnerOf(ra);
      break;
    }
  }
  Summarize(report);
  return report;
}

Result<DivergenceReport> DivergenceAuditor::Bisect(ReplayController& a,
                                                   ReplayController& b) {
  DivergenceReport report =
      Compare(a.recorded().journal(), b.recorded().journal());
  if (!report.diverged || report.first_divergent_step == 0) {
    return report;
  }
  const auto step = static_cast<std::size_t>(report.first_divergent_step);

  // Travel both runs to just before the divergent step (checkpoint restore
  // + bounded re-execution), then re-execute the step and diff the freshly
  // captured decisions.
  if (auto status = a.SeekToStep(step - 1); !status.ok()) return status;
  if (auto status = b.SeekToStep(step - 1); !status.ok()) return status;
  ReplayWorld& world_a = *a.cursor();
  ReplayWorld& world_b = *b.cursor();
  const std::uint64_t base_a = world_a.journal().total_records();
  const std::uint64_t base_b = world_b.journal().total_records();
  world_a.RunToStep(step);
  world_b.RunToStep(step);
  const std::uint64_t appended_a =
      world_a.journal().total_records() - base_a;
  const std::uint64_t appended_b =
      world_b.journal().total_records() - base_b;
  const std::uint64_t common = std::min(appended_a, appended_b);

  report.refined = false;
  for (std::uint64_t i = 0; i < common; ++i) {
    const JournalRecord& ra = world_a.journal().at(
        world_a.journal().size() - static_cast<std::size_t>(appended_a) +
        static_cast<std::size_t>(i));
    const JournalRecord& rb = world_b.journal().at(
        world_b.journal().size() - static_cast<std::size_t>(appended_b) +
        static_cast<std::size_t>(i));
    if (!ra.SameDecision(rb)) {
      report.refined = true;
      report.record_index = i;
      report.lhs = ra;
      report.rhs = rb;
      report.owner = OwnerOf(ra);
      break;
    }
  }
  if (!report.refined && appended_a != appended_b) {
    // One run made extra decisions at the end of the step.
    const bool a_longer = appended_a > appended_b;
    const DecisionJournal& longer =
        a_longer ? world_a.journal() : world_b.journal();
    const std::uint64_t appended = std::max(appended_a, appended_b);
    const JournalRecord& record = longer.at(
        longer.size() - static_cast<std::size_t>(appended) +
        static_cast<std::size_t>(common));
    report.refined = true;
    report.record_index = common;
    if (a_longer) {
      report.lhs = record;
    } else {
      report.rhs = record;
    }
    report.owner = OwnerOf(record);
  }

  // Observatory join: the span covering the divergence time in the suspect
  // (rhs) run, innermost first.
  if (report.refined) {
    const sim::TimePoint t =
        report.rhs.time != 0 ? report.rhs.time : report.lhs.time;
    const telemetry::SpanRecord* best = nullptr;
    for (const auto& span :
         world_b.network().telemetry().spans().spans()) {
      if (span.start <= t && t <= span.end) {
        if (best == nullptr || span.start >= best->start) best = &span;
      }
    }
    if (best != nullptr) {
      report.span_component = best->component;
      report.span_name = best->name;
      report.span_ship = best->ship;
    }
  }
  Summarize(report);
  return report;
}

void DivergenceAuditor::Summarize(DivergenceReport& report) {
  if (!report.diverged) {
    report.summary = "runs are identical (journal digests match)";
    return;
  }
  std::string text =
      "first divergence at step " +
      std::to_string(report.first_divergent_step);
  if (report.refined) {
    text += ", decision " + std::to_string(report.record_index) + " (" +
            report.owner + "): " + KindName(report.lhs.kind) + " t=" +
            std::to_string(report.lhs.time) + " " + Hex(report.lhs.a) +
            " vs " + Hex(report.rhs.a);
  }
  if (!report.span_component.empty()) {
    text += "; within span " + report.span_component + "/" +
            report.span_name + " on ship " +
            std::to_string(report.span_ship);
  }
  report.summary = text;
}

}  // namespace viator::replay
