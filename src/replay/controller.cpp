#include "replay/controller.h"

#include <cstdlib>

namespace viator::replay {

Result<Watchpoint> Watchpoint::Parse(const std::string& spec) {
  Watchpoint watch;
  std::string rest = spec;
  if (rest.rfind("counter:", 0) == 0) {
    watch.kind = Kind::kCounter;
    rest = rest.substr(8);
  } else if (rest.rfind("gauge:", 0) == 0) {
    watch.kind = Kind::kGauge;
    rest = rest.substr(6);
  }
  struct OpSpec {
    const char* text;
    Op op;
  };
  static constexpr OpSpec kOps[] = {
      {">=", Op::kGe}, {"<=", Op::kLe}, {"==", Op::kEq}, {"!=", Op::kNe}};
  std::size_t pos = std::string::npos;
  Op op = Op::kGe;
  for (const OpSpec& candidate : kOps) {
    const std::size_t at = rest.find(candidate.text);
    if (at != std::string::npos && at < pos) {
      pos = at;
      op = candidate.op;
    }
  }
  if (pos == std::string::npos || pos == 0) {
    return InvalidArgument("watchpoint spec needs <metric><op><value> with "
                           "op one of >= <= == != : " + spec);
  }
  watch.metric = rest.substr(0, pos);
  watch.op = op;
  const std::string number = rest.substr(pos + 2);
  char* end = nullptr;
  watch.value = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    return InvalidArgument("watchpoint value not a number: " + number);
  }
  return watch;
}

bool Watchpoint::Evaluate(double observed) const {
  switch (op) {
    case Op::kGe: return observed >= value;
    case Op::kLe: return observed <= value;
    case Op::kEq: return observed == value;
    case Op::kNe: return observed != value;
  }
  return false;
}

ReplayController::ReplayController(const ScenarioConfig& config)
    : config_(config) {}

void ReplayController::RecordFull() {
  recorded_ = std::make_unique<ReplayWorld>(config_, /*populate=*/true,
                                            /*keep_checkpoints=*/true);
  recorded_->RunToStep(config_.steps);
}

std::optional<std::uint64_t> ReplayController::RecordedWindowHash(
    std::size_t step) const {
  if (recorded_ == nullptr) return std::nullopt;
  for (const auto& [window, hash] : recorded_->journal().window_hashes()) {
    if (window == step) return hash;
  }
  return std::nullopt;
}

Status ReplayController::SeekToStep(std::size_t step) {
  if (recorded_ == nullptr) {
    return FailedPrecondition("RecordFull() before seeking");
  }
  if (step > config_.steps) {
    return InvalidArgument("seek target beyond scenario end");
  }
  const ReplayWorld::Checkpoint* best = nullptr;
  for (const auto& checkpoint : recorded_->checkpoints()) {
    if (checkpoint.step <= step &&
        (best == nullptr || checkpoint.step > best->step)) {
      best = &checkpoint;
    }
  }
  if (best != nullptr) {
    cursor_ = std::make_unique<ReplayWorld>(config_, /*populate=*/false,
                                            /*keep_checkpoints=*/false);
    if (auto status = cursor_->RestoreFromCheckpoint(*best); !status.ok()) {
      return status;
    }
  } else {
    cursor_ = std::make_unique<ReplayWorld>(config_, /*populate=*/true,
                                            /*keep_checkpoints=*/false);
  }
  cursor_->RunToStep(step);
  return OkStatus();
}

Status ReplayController::VerifySeek() const {
  if (cursor_ == nullptr) return FailedPrecondition("no replay cursor");
  const std::size_t step = cursor_->step();
  if (step == 0) return OkStatus();
  const auto expected = RecordedWindowHash(step);
  if (!expected.has_value()) {
    return FailedPrecondition("recorded run has no state hash for step " +
                              std::to_string(step));
  }
  if (cursor_->StateHash() != *expected) {
    return Internal("replay left the recorded timeline at step " +
                    std::to_string(step));
  }
  return OkStatus();
}

std::optional<sim::TimePoint> ReplayController::StepDispatch() {
  if (cursor_ == nullptr) return std::nullopt;
  ReplayWorld& world = *cursor_;
  while (!world.simulator().NextEventTime().has_value()) {
    if (world.step_open()) {
      world.FinishStep();
      continue;
    }
    if (world.step() >= config_.steps) return std::nullopt;
    world.BeginStep();
  }
  const auto when = world.simulator().NextEventTime();
  world.StepEvent();
  return when;
}

Result<WatchHit> ReplayController::RunUntilWatch(const Watchpoint& watch) {
  if (cursor_ == nullptr) {
    if (auto status = SeekToStep(0); !status.ok()) return status;
  }
  while (auto when = StepDispatch()) {
    const double observed = ReadMetric(watch);
    if (watch.Evaluate(observed)) {
      return WatchHit{cursor_->step(), *when, observed};
    }
  }
  return NotFound("watchpoint never fired");
}

double ReplayController::ReadMetric(const Watchpoint& watch) {
  sim::StatsRegistry& stats = cursor_->network().stats();
  if (watch.kind == Watchpoint::Kind::kCounter) {
    return static_cast<double>(stats.CounterValue(watch.metric));
  }
  const auto& gauges = stats.gauges();
  const auto it = gauges.find(watch.metric);
  return it == gauges.end() ? 0.0 : it->second.value();
}

}  // namespace viator::replay
