// Replayable scenarios: the step-structured worlds the flight recorder
// records, seeks and bisects.
//
// A ReplayWorld owns one complete simulation (simulator, grid topology,
// WanderingNetwork, DecisionJournal, GenesisManager) and drives it in
// numbered steps. Each step injects deterministic seeded traffic, runs the
// simulator to quiescence, captures a per-step state hash into the journal
// and (on cadence) a genesis checkpoint. Steps are the replay unit: the
// network is quiescent at every step boundary, virtual time advances
// strictly across steps, and a checkpoint restored at step k followed by
// re-executing steps k+1..n reproduces the original run bit for bit.
//
// The optional perturbation (`perturb_step`) burns one extra draw from the
// network RNG at the start of that step — a minimal, precisely located
// injected divergence that the DivergenceAuditor must find again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "base/status.h"
#include "core/wandering_network.h"
#include "genesis/manager.h"
#include "net/topology.h"
#include "replay/journal.h"
#include "sim/simulator.h"

namespace viator::replay {

struct ScenarioConfig {
  std::uint64_t seed = 0x5eed;
  std::size_t rows = 3;
  std::size_t cols = 3;
  /// Total scenario steps.
  std::size_t steps = 32;
  /// Injected shuttles per step.
  std::size_t injections_per_step = 2;
  /// Metamorphosis pulse cadence in steps (0 = never).
  std::size_t pulse_every = 8;
  /// Genesis checkpoint cadence in steps (0 = no checkpoints).
  std::size_t checkpoint_every = 8;
  /// Per-step state-hash cadence (0 = never). Bisection is exact to one
  /// step only at cadence 1; higher cadences trade hashing cost for a
  /// coarser first localization.
  std::size_t hash_every = 1;
  /// 1-based step at which to burn one extra network-RNG draw (0 = none).
  std::size_t perturb_step = 0;
  /// Observatory tracing for the run (spans joinable by the auditor).
  bool tracing = false;
  /// Journal on/off (off = measure the unobserved baseline).
  bool journal = true;
  JournalConfig journal_config;

  /// TLV round-trip (scenario metadata in .wnj files and test fixtures).
  std::vector<std::byte> Save() const;
  static Result<ScenarioConfig> Load(std::span<const std::byte> payload);
};

/// One self-contained, replayable simulation world.
class ReplayWorld {
 public:
  /// `populate` = true builds the live scenario world (grid topology, one
  /// ship per node, journal attached). `populate` = false builds an empty
  /// shell to RestoreFromCheckpoint() into.
  explicit ReplayWorld(const ScenarioConfig& config, bool populate = true,
                       bool keep_checkpoints = true);

  // ---- Step-structured execution ----

  /// Last opened step number (0 = nothing run yet). After FinishStep() this
  /// is the count of completed steps.
  std::size_t step() const { return step_; }

  /// True between BeginStep() and FinishStep().
  bool step_open() const { return step_open_; }

  /// Opens step `step()+1`: pulses on cadence, applies the perturbation if
  /// due and injects this step's seeded traffic. Pair with FinishStep().
  void BeginStep();

  /// Dispatches one simulator event of the open step; false when drained.
  bool StepEvent() { return simulator_.Step(); }

  /// Closes the open step: captures the per-step state hash and, on cadence,
  /// a genesis checkpoint.
  void FinishStep();

  /// BeginStep + drain + FinishStep.
  void RunOneStep();

  /// Runs forward to completed step `target` (no-op when already there).
  void RunToStep(std::size_t target);

  // ---- Checkpoints & restore ----

  struct Checkpoint {
    std::size_t step = 0;
    sim::TimePoint time = 0;
    std::vector<std::byte> bytes;
  };
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }

  /// Restores a checkpoint into this (populate = false) world and re-attaches
  /// the journal hooks to the restored ships.
  Status RestoreFromCheckpoint(const Checkpoint& checkpoint);

  // ---- Access ----

  const ScenarioConfig& config() const { return config_; }
  sim::Simulator& simulator() { return simulator_; }
  wli::WanderingNetwork& network() { return *network_; }
  const wli::WanderingNetwork& network() const { return *network_; }
  DecisionJournal& journal() { return journal_; }
  const DecisionJournal& journal() const { return journal_; }

  /// Current whole-network state hash (same function the journal records at
  /// step boundaries).
  std::uint64_t StateHash() const;

  /// Sum of shuttles consumed across ships (the workload-progress witness
  /// neutrality checks compare).
  std::uint64_t Delivered() const;

 private:
  ScenarioConfig config_;
  bool keep_checkpoints_;
  sim::Simulator simulator_;
  net::Topology topology_;
  std::unique_ptr<wli::WanderingNetwork> network_;
  DecisionJournal journal_;
  JournalSection journal_section_;
  std::unique_ptr<genesis::GenesisManager> genesis_;
  std::vector<Checkpoint> checkpoints_;
  std::size_t step_ = 0;
  bool step_open_ = false;
};

}  // namespace viator::replay
