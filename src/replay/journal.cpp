#include "replay/journal.h"

#include <cstring>

#include "base/tlv.h"
#include "core/wandering_network.h"

namespace viator::replay {

namespace {

// Journal TLV tags.
constexpr TlvTag kTagCapacity = 1;
constexpr TlvTag kTagTotalRecords = 2;
constexpr TlvTag kTagRollingDigest = 3;
constexpr TlvTag kTagRecords = 4;
constexpr TlvTag kTagWindowHashes = 5;

void AppendWord(std::vector<std::byte>& out, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((word >> (8 * i)) & 0xFF));
  }
}

Result<std::uint64_t> ReadWord(std::span<const std::byte> bytes,
                               std::size_t& cursor) {
  if (cursor + 8 > bytes.size()) {
    return InvalidArgument("journal blob truncated");
  }
  std::uint64_t word = 0;
  for (int i = 0; i < 8; ++i) {
    word |= static_cast<std::uint64_t>(bytes[cursor + i]) << (8 * i);
  }
  cursor += 8;
  return word;
}

}  // namespace

std::string StreamName(std::uint32_t stream) {
  if (stream == kStreamNetwork) return "network";
  if (stream == kStreamFabric) return "fabric";
  return "ship " + std::to_string(stream - kStreamShipBase);
}

DecisionJournal::DecisionJournal(JournalConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.reserve(config_.capacity);
  SyncMemBytes();
}

void DecisionJournal::SyncMemBytes() {
  mem_bytes_.Set(ring_.capacity() * sizeof(JournalRecord) +
                 window_hashes_.capacity() *
                     sizeof(std::pair<std::uint64_t, std::uint64_t>));
}

void DecisionJournal::Attach(wli::WanderingNetwork& network) {
  network_ = &network;
  network.rng().SetDrawHook(&DrawTrampoline, this, kStreamNetwork);
  network.fabric().rng().SetDrawHook(&DrawTrampoline, this, kStreamFabric);
  network.ForEachShip([this](wli::Ship& ship) {
    ship.rng().SetDrawHook(&DrawTrampoline, this,
                           kStreamShipBase + ship.id());
  });
  network.simulator().SetDispatchHook(&DispatchTrampoline, this);
}

void DecisionJournal::Detach() {
  if (network_ == nullptr) return;
  network_->rng().ClearDrawHook();
  network_->fabric().rng().ClearDrawHook();
  network_->ForEachShip([](wli::Ship& ship) { ship.rng().ClearDrawHook(); });
  network_->simulator().SetDispatchHook(nullptr, nullptr);
  network_ = nullptr;
}

void DecisionJournal::RecordDraw(std::uint32_t stream, std::uint64_t value) {
  const sim::TimePoint now =
      network_ != nullptr ? network_->simulator().now() : 0;
  Append(RecordKind::kRngDraw, stream, now, value);
}

void DecisionJournal::RecordDispatch(sim::TimePoint when, std::uint64_t seq) {
  Append(RecordKind::kDispatch, 0, when, seq);
}

void DecisionJournal::RecordNote(std::string_view text) {
  Hasher hasher;
  hasher.Mix(text);
  const sim::TimePoint now =
      network_ != nullptr ? network_->simulator().now() : 0;
  Append(RecordKind::kNote, 0, now, hasher.digest());
}

std::uint64_t DecisionJournal::CaptureWindowHash(std::uint64_t window) {
  if (network_ == nullptr) return 0;
  Hasher hasher;
  network_->MixDigest(hasher);
  const std::uint64_t hash = hasher.digest();
  RecordWindowHash(window, hash, network_->simulator().now());
  return hash;
}

void DecisionJournal::RecordWindowHash(std::uint64_t window,
                                       std::uint64_t state_hash,
                                       sim::TimePoint time) {
  Append(RecordKind::kWindowHash, static_cast<std::uint32_t>(window), time,
         state_hash);
  const std::size_t before = window_hashes_.capacity();
  window_hashes_.emplace_back(window, state_hash);
  if (window_hashes_.capacity() != before) SyncMemBytes();
}

void DecisionJournal::RecordShardHash(std::uint64_t window,
                                      std::uint32_t shard,
                                      std::uint64_t shard_hash) {
  Append(RecordKind::kShardHash, shard, static_cast<sim::TimePoint>(window),
         shard_hash);
}

const JournalRecord& DecisionJournal::at(std::size_t index) const {
  return ring_[(head_ + index) % ring_.size()];
}

void DecisionJournal::Append(RecordKind kind, std::uint32_t stream,
                             sim::TimePoint time, std::uint64_t a) {
  rolling_digest_ =
      HashCombineWord(rolling_digest_, static_cast<std::uint64_t>(kind));
  rolling_digest_ = HashCombineWord(rolling_digest_, stream);
  rolling_digest_ =
      HashCombineWord(rolling_digest_, static_cast<std::uint64_t>(time));
  rolling_digest_ = HashCombineWord(rolling_digest_, a);
  JournalRecord record{kind, stream, time, a, rolling_digest_};
  if (ring_.size() < config_.capacity) {
    ring_.push_back(record);
  } else {
    ring_[head_] = record;
    head_ = (head_ + 1) % config_.capacity;
  }
  ++total_records_;
}

void DecisionJournal::DrawTrampoline(void* ctx, std::uint32_t stream,
                                     std::uint64_t value) {
  static_cast<DecisionJournal*>(ctx)->RecordDraw(stream, value);
}

void DecisionJournal::DispatchTrampoline(void* ctx, sim::TimePoint when,
                                         std::uint64_t seq) {
  static_cast<DecisionJournal*>(ctx)->RecordDispatch(when, seq);
}

std::vector<std::byte> DecisionJournal::Save() const {
  TlvWriter writer;
  writer.PutU64(kTagCapacity, config_.capacity);
  writer.PutU64(kTagTotalRecords, total_records_);
  writer.PutU64(kTagRollingDigest, rolling_digest_);

  std::vector<std::byte> records;
  records.reserve(ring_.size() * 40);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const JournalRecord& record = at(i);
    AppendWord(records, static_cast<std::uint64_t>(record.kind));
    AppendWord(records, record.stream);
    AppendWord(records, static_cast<std::uint64_t>(record.time));
    AppendWord(records, record.a);
    AppendWord(records, record.digest);
  }
  writer.PutBytes(kTagRecords, records);

  std::vector<std::byte> windows;
  windows.reserve(window_hashes_.size() * 16);
  for (const auto& [window, hash] : window_hashes_) {
    AppendWord(windows, window);
    AppendWord(windows, hash);
  }
  writer.PutBytes(kTagWindowHashes, windows);
  return writer.Finish();
}

Status DecisionJournal::Load(std::span<const std::byte> payload) {
  TlvReader reader(payload);
  if (auto status = reader.Verify(); !status.ok()) return status;

  std::vector<JournalRecord> ring;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
  std::uint64_t capacity = config_.capacity;
  std::uint64_t total = 0;
  std::uint64_t digest = kFnvOffsetBasis;

  while (reader.HasNext()) {
    auto record = reader.Next();
    if (!record.ok()) return record.status();
    switch (record->tag) {
      case kTagCapacity:
        capacity = record->AsU64();
        break;
      case kTagTotalRecords:
        total = record->AsU64();
        break;
      case kTagRollingDigest:
        digest = record->AsU64();
        break;
      case kTagRecords: {
        std::size_t cursor = 0;
        while (cursor < record->payload.size()) {
          JournalRecord entry;
          auto kind = ReadWord(record->payload, cursor);
          auto stream = ReadWord(record->payload, cursor);
          auto time = ReadWord(record->payload, cursor);
          auto a = ReadWord(record->payload, cursor);
          auto entry_digest = ReadWord(record->payload, cursor);
          if (!kind.ok() || !stream.ok() || !time.ok() || !a.ok() ||
              !entry_digest.ok()) {
            return InvalidArgument("journal records blob truncated");
          }
          entry.kind = static_cast<RecordKind>(*kind);
          entry.stream = static_cast<std::uint32_t>(*stream);
          entry.time = static_cast<sim::TimePoint>(*time);
          entry.a = *a;
          entry.digest = *entry_digest;
          ring.push_back(entry);
        }
        break;
      }
      case kTagWindowHashes: {
        std::size_t cursor = 0;
        while (cursor < record->payload.size()) {
          auto window = ReadWord(record->payload, cursor);
          auto hash = ReadWord(record->payload, cursor);
          if (!window.ok() || !hash.ok()) {
            return InvalidArgument("journal window blob truncated");
          }
          windows.emplace_back(*window, *hash);
        }
        break;
      }
      default:
        break;  // forward compatibility: ignore unknown tags
    }
  }

  if (capacity == 0 || ring.size() > capacity || total < ring.size()) {
    return InvalidArgument("journal payload inconsistent");
  }
  config_.capacity = static_cast<std::size_t>(capacity);
  ring_ = std::move(ring);
  head_ = 0;
  total_records_ = total;
  rolling_digest_ = digest;
  window_hashes_ = std::move(windows);
  SyncMemBytes();
  return OkStatus();
}

}  // namespace viator::replay
