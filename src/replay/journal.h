// Wandering Flight Recorder — the always-on decision journal.
//
// A DecisionJournal is a bounded ring of compact records capturing every
// nondeterminism-relevant point of a run: raw RNG draws (labelled by stream:
// 0 = network orchestrator, 1 = fabric loss process, 2+node = ship-local),
// simulator dispatch order (time, seq) and per-step rolling state hashes
// computed from the MixDigest(Hasher&) hooks across core/net/vm/node/
// services. Recording is append-plus-hash only — the hooks never draw from
// any RNG and never touch simulation state, so a journaled run makes
// bit-identical decisions to an unjournaled one (replay neutrality).
//
// The ring bounds memory for arbitrarily long runs; the per-step window
// hashes are kept separately and unbounded (one 16-byte entry per step), so
// divergence bisection still works after the ring has wrapped. The journal
// serializes through the TLV layer and rides in genesis snapshots as an
// extra section (JournalSection), which is what lets time-travel replay
// resume the record stream from any checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "genesis/snapshot.h"
#include "genesis/snapshotable.h"
#include "sim/time.h"
#include "telemetry/mem_counters.h"

namespace viator::wli {
class WanderingNetwork;
}

namespace viator::replay {

/// RNG stream labels (the `stream` field of draw records).
inline constexpr std::uint32_t kStreamNetwork = 0;
inline constexpr std::uint32_t kStreamFabric = 1;
/// Ship streams are kStreamShipBase + node id.
inline constexpr std::uint32_t kStreamShipBase = 2;

/// Human name for a stream label ("network", "fabric", "ship 3").
std::string StreamName(std::uint32_t stream);

enum class RecordKind : std::uint8_t {
  kRngDraw = 1,     // a = drawn value
  kDispatch = 2,    // a = event seq
  kWindowHash = 3,  // stream = window index (steps), a = state hash
  kNote = 4,        // a = FNV-1a hash of the note text
  kShardHash = 5,   // stream = shard id, time = window index, a = shard hash
};

/// One journal entry. `digest` is the rolling journal digest *after* this
/// record — two journals with equal digests at a record agree on the entire
/// decision history up to it.
struct JournalRecord {
  RecordKind kind = RecordKind::kNote;
  std::uint32_t stream = 0;
  sim::TimePoint time = 0;
  std::uint64_t a = 0;
  std::uint64_t digest = 0;

  bool SameDecision(const JournalRecord& other) const {
    return kind == other.kind && stream == other.stream &&
           time == other.time && a == other.a;
  }
};

struct JournalConfig {
  /// Ring capacity in records; the oldest records are overwritten past it.
  std::size_t capacity = 1 << 16;
};

class DecisionJournal {
 public:
  explicit DecisionJournal(JournalConfig config = {});

  /// Installs the draw hooks (network/fabric/ship RNG streams) and the
  /// simulator dispatch hook on `network`. Call again after a genesis
  /// restore — restored ships are fresh objects with unhooked RNGs.
  void Attach(wli::WanderingNetwork& network);

  /// Removes every hook installed by Attach().
  void Detach();

  // ---- Recording (called by the hooks; also usable directly) ----

  void RecordDraw(std::uint32_t stream, std::uint64_t value);
  void RecordDispatch(sim::TimePoint when, std::uint64_t seq);
  void RecordNote(std::string_view text);

  /// Hashes the attached network's full state (MixDigest) and appends a
  /// window-hash record for step `window`. Returns the state hash.
  std::uint64_t CaptureWindowHash(std::uint64_t window);

  /// Appends an externally computed per-step/window state hash. This is how
  /// the sharded simulation core (src/shard) feeds its merged per-window
  /// hashes into an *unattached* journal: the sharding layer owns the merge
  /// order, the journal owns the bisectable hash timeline. `time` stamps the
  /// record (window-end virtual time); the hash also lands in
  /// window_hashes(), so DivergenceAuditor::Compare works unchanged.
  void RecordWindowHash(std::uint64_t window, std::uint64_t state_hash,
                        sim::TimePoint time = 0);

  /// Appends one shard's window-local state hash (ring only — the merged
  /// hash recorded by RecordWindowHash is the bisection timeline; per-shard
  /// hashes are the refinement that names the diverging shard).
  void RecordShardHash(std::uint64_t window, std::uint32_t shard,
                       std::uint64_t shard_hash);

  // ---- Inspection ----

  /// Records currently in the ring, oldest first.
  std::size_t size() const { return ring_.size(); }
  const JournalRecord& at(std::size_t index) const;

  /// Total records ever appended (including those the ring has dropped).
  std::uint64_t total_records() const { return total_records_; }
  std::uint64_t dropped_records() const {
    return total_records_ - ring_.size();
  }

  /// Rolling FNV-1a digest over every record ever appended.
  std::uint64_t rolling_digest() const { return rolling_digest_; }

  /// Per-step state hashes: (window index, hash), append-ordered. Unbounded
  /// — survives ring wrap, which is what bisection searches over.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>>& window_hashes()
      const {
    return window_hashes_;
  }

  std::size_t capacity() const { return config_.capacity; }
  bool attached() const { return network_ != nullptr; }

  // ---- Serialization (TLV; also the genesis section payload) ----

  std::vector<std::byte> Save() const;
  Status Load(std::span<const std::byte> payload);

 private:
  void Append(RecordKind kind, std::uint32_t stream, sim::TimePoint time,
              std::uint64_t a);

  // Re-mirrors the ring + window-hash capacities into the kJournalRing
  // domain. O(1): capacities only change at construction, window-hash
  // growth and Load().
  void SyncMemBytes();

  static void DrawTrampoline(void* ctx, std::uint32_t stream,
                             std::uint64_t value);
  static void DispatchTrampoline(void* ctx, sim::TimePoint when,
                                 std::uint64_t seq);

  JournalConfig config_;
  wli::WanderingNetwork* network_ = nullptr;

  std::vector<JournalRecord> ring_;  // ring buffer, head_ = oldest
  std::size_t head_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t rolling_digest_ = kFnvOffsetBasis;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> window_hashes_;
  telemetry::mem::ChargedBytes<telemetry::mem::Domain::kJournalRing>
      mem_bytes_;
};

/// Rides the journal in genesis snapshots (extra section), so a restored
/// checkpoint resumes the decision history exactly where it was captured.
class JournalSection : public genesis::Snapshotable {
 public:
  explicit JournalSection(DecisionJournal& journal,
                          std::uint32_t id = genesis::kExtraSectionBase + 6)
      : journal_(journal), id_(id) {}

  std::uint32_t section_id() const override { return id_; }
  std::string section_name() const override { return "decision-journal"; }
  std::vector<std::byte> Save() const override { return journal_.Save(); }
  Status Load(std::span<const std::byte> payload) override {
    return journal_.Load(payload);
  }

 private:
  DecisionJournal& journal_;
  std::uint32_t id_;
};

}  // namespace viator::replay
