// Time-travel replay: seek, single-step and metric watchpoints.
//
// A ReplayController records one scenario run start to finish (journal +
// genesis checkpoint ring), then positions a replay cursor at any completed
// step by restoring the nearest checkpoint at-or-before the target and
// re-executing the remaining steps — O(checkpoint cadence) work instead of
// O(run length). The cursor world is a full live simulation: it can be
// single-stepped one simulator dispatch at a time, and every re-executed
// step re-captures the per-step state hash, which VerifySeek() compares
// against the recorded run (the proof that the travel landed on the same
// timeline).
//
// Watchpoints break re-execution when a StatsRegistry metric crosses a
// predicate — "stop when wn.shuttles_delivered >= 40" — evaluated after
// every dispatched event, which pins the exact (step, virtual time) where a
// metric first misbehaved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "base/status.h"
#include "replay/scenario.h"
#include "sim/time.h"

namespace viator::replay {

/// Break condition over a StatsRegistry counter or gauge.
struct Watchpoint {
  enum class Kind { kCounter, kGauge };
  enum class Op { kGe, kLe, kEq, kNe };

  std::string metric;
  Kind kind = Kind::kCounter;
  Op op = Op::kGe;
  double value = 0.0;

  /// Parses "counter:name>=42" / "gauge:name<=0.5" (ops: >=, <=, ==, !=).
  static Result<Watchpoint> Parse(const std::string& spec);

  bool Evaluate(double observed) const;
};

/// Where a watchpoint fired.
struct WatchHit {
  std::size_t step = 0;       // scenario step that was executing
  sim::TimePoint time = 0;    // virtual time of the triggering dispatch
  double observed = 0.0;      // metric value at the break
};

class ReplayController {
 public:
  explicit ReplayController(const ScenarioConfig& config);

  /// Runs the scenario start to finish on the recording world.
  void RecordFull();

  ReplayWorld& recorded() { return *recorded_; }
  const ReplayWorld& recorded() const { return *recorded_; }

  /// Recorded per-step state hash (nullopt when the step was never run).
  std::optional<std::uint64_t> RecordedWindowHash(std::size_t step) const;

  // ---- Time travel ----

  /// Positions the replay cursor at completed step `step` (0 = fresh start):
  /// restores the nearest checkpoint at-or-before it, then re-executes.
  Status SeekToStep(std::size_t step);

  /// The cursor world; nullptr before the first SeekToStep().
  ReplayWorld* cursor() { return cursor_.get(); }

  /// Compares the cursor's state hash with the recorded hash at the cursor
  /// step. kInternal on mismatch — the replay left the recorded timeline.
  Status VerifySeek() const;

  // ---- Single-step ----

  /// Executes exactly one simulator dispatch on the cursor, opening the next
  /// scenario step when the queue is drained. Returns the dispatch time, or
  /// nullopt when the scenario is exhausted.
  std::optional<sim::TimePoint> StepDispatch();

  // ---- Watchpoints ----

  /// Re-executes from the cursor position (SeekToStep first to choose the
  /// origin) until the watchpoint fires or the scenario ends.
  Result<WatchHit> RunUntilWatch(const Watchpoint& watch);

 private:
  double ReadMetric(const Watchpoint& watch);

  ScenarioConfig config_;
  std::unique_ptr<ReplayWorld> recorded_;
  std::unique_ptr<ReplayWorld> cursor_;
};

}  // namespace viator::replay
