// Tag-length-value codec used for "genetic transcoding".
//
// Ship genomes, knowledge quanta and shuttle payload sections are serialized
// as TLV records: a 16-bit tag, a 32-bit length and the payload bytes, with a
// trailing FNV-1a checksum over the whole stream. Records may nest (a record
// payload can itself be a TLV stream), which gives the genome its
// hierarchical structure without a schema compiler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace viator {

/// Record tag. Semantics are owned by the caller; tags 0xFF00+ are reserved
/// for the codec itself (0xFFFF = checksum trailer).
using TlvTag = std::uint16_t;

inline constexpr TlvTag kTlvChecksumTag = 0xFFFF;

/// Serializes TLV records into a byte buffer. Finish() appends the checksum
/// trailer and returns the completed buffer; the writer may then be reused.
class TlvWriter {
 public:
  void PutBytes(TlvTag tag, std::span<const std::byte> bytes);
  void PutString(TlvTag tag, std::string_view text);
  void PutU64(TlvTag tag, std::uint64_t value);
  void PutU32(TlvTag tag, std::uint32_t value);
  void PutDouble(TlvTag tag, double value);
  /// Embeds a complete (already-finished or raw) TLV stream as one record.
  void PutNested(TlvTag tag, std::span<const std::byte> stream);

  /// Appends the checksum trailer and returns the buffer, resetting state.
  std::vector<std::byte> Finish();

  /// Bytes accumulated so far (excluding the trailer).
  std::size_t size() const { return buffer_.size(); }

 private:
  void PutHeader(TlvTag tag, std::uint32_t length);
  std::vector<std::byte> buffer_;
};

/// A decoded record view into the reader's underlying buffer.
struct TlvRecord {
  TlvTag tag = 0;
  std::span<const std::byte> payload;

  std::uint64_t AsU64() const;
  std::uint32_t AsU32() const;
  double AsDouble() const;
  std::string AsString() const;
};

/// Sequential reader over a TLV stream. Verify() checks the trailer checksum;
/// Next() yields records in order.
class TlvReader {
 public:
  explicit TlvReader(std::span<const std::byte> stream) : stream_(stream) {}

  /// Validates framing and the checksum trailer without consuming records.
  Status Verify() const;

  /// True while records (other than the trailer) remain.
  bool HasNext() const;

  /// Next record. Fails with kInvalidArgument on truncated input.
  Result<TlvRecord> Next();

  /// Restart iteration from the beginning.
  void Rewind() { cursor_ = 0; }

 private:
  std::span<const std::byte> stream_;
  std::size_t cursor_ = 0;
};

}  // namespace viator
