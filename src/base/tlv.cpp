#include "base/tlv.h"

#include <cstring>

#include "base/hash.h"

namespace viator {
namespace {

void AppendLe(std::vector<std::byte>& out, std::uint64_t value, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadLe(std::span<const std::byte> in, std::size_t at, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  }
  return v;
}

constexpr std::size_t kHeaderSize = 2 + 4;  // tag + length

}  // namespace

void TlvWriter::PutHeader(TlvTag tag, std::uint32_t length) {
  AppendLe(buffer_, tag, 2);
  AppendLe(buffer_, length, 4);
}

void TlvWriter::PutBytes(TlvTag tag, std::span<const std::byte> bytes) {
  PutHeader(tag, static_cast<std::uint32_t>(bytes.size()));
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void TlvWriter::PutString(TlvTag tag, std::string_view text) {
  PutBytes(tag, std::as_bytes(std::span(text.data(), text.size())));
}

void TlvWriter::PutU64(TlvTag tag, std::uint64_t value) {
  PutHeader(tag, 8);
  AppendLe(buffer_, value, 8);
}

void TlvWriter::PutU32(TlvTag tag, std::uint32_t value) {
  PutHeader(tag, 4);
  AppendLe(buffer_, value, 4);
}

void TlvWriter::PutDouble(TlvTag tag, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(tag, bits);
}

void TlvWriter::PutNested(TlvTag tag, std::span<const std::byte> stream) {
  PutBytes(tag, stream);
}

std::vector<std::byte> TlvWriter::Finish() {
  const Digest checksum = HashBytes(buffer_);
  PutHeader(kTlvChecksumTag, 8);
  AppendLe(buffer_, checksum, 8);
  std::vector<std::byte> out;
  out.swap(buffer_);
  return out;
}

std::uint64_t TlvRecord::AsU64() const {
  if (payload.size() != 8) return 0;
  return ReadLe(payload, 0, 8);
}

std::uint32_t TlvRecord::AsU32() const {
  if (payload.size() != 4) return 0;
  return static_cast<std::uint32_t>(ReadLe(payload, 0, 4));
}

double TlvRecord::AsDouble() const {
  const std::uint64_t bits = AsU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string TlvRecord::AsString() const {
  return std::string(reinterpret_cast<const char*>(payload.data()),
                     payload.size());
}

Status TlvReader::Verify() const {
  std::size_t at = 0;
  while (at + kHeaderSize <= stream_.size()) {
    const TlvTag tag = static_cast<TlvTag>(ReadLe(stream_, at, 2));
    const std::uint64_t len = ReadLe(stream_, at + 2, 4);
    if (at + kHeaderSize + len > stream_.size()) {
      return InvalidArgument("truncated TLV record");
    }
    if (tag == kTlvChecksumTag) {
      if (len != 8) return InvalidArgument("malformed checksum trailer");
      const Digest stored = ReadLe(stream_, at + kHeaderSize, 8);
      const Digest actual = HashBytes(stream_.subspan(0, at));
      if (stored != actual) return InvalidArgument("TLV checksum mismatch");
      if (at + kHeaderSize + 8 != stream_.size()) {
        return InvalidArgument("bytes after checksum trailer");
      }
      return OkStatus();
    }
    at += kHeaderSize + len;
  }
  return InvalidArgument("missing checksum trailer");
}

bool TlvReader::HasNext() const {
  if (cursor_ + kHeaderSize > stream_.size()) return false;
  const TlvTag tag = static_cast<TlvTag>(ReadLe(stream_, cursor_, 2));
  return tag != kTlvChecksumTag;
}

Result<TlvRecord> TlvReader::Next() {
  if (cursor_ + kHeaderSize > stream_.size()) {
    return Status(InvalidArgument("read past end of TLV stream"));
  }
  const TlvTag tag = static_cast<TlvTag>(ReadLe(stream_, cursor_, 2));
  const std::uint64_t len = ReadLe(stream_, cursor_ + 2, 4);
  if (cursor_ + kHeaderSize + len > stream_.size()) {
    return Status(InvalidArgument("truncated TLV record"));
  }
  TlvRecord rec;
  rec.tag = tag;
  rec.payload = stream_.subspan(cursor_ + kHeaderSize, len);
  cursor_ += kHeaderSize + len;
  return rec;
}

}  // namespace viator
