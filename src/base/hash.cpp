#include "base/hash.h"

#include <array>

namespace viator {

Digest HashBytes(std::span<const std::byte> bytes) {
  return HashCombine(kFnvOffsetBasis, bytes);
}

Digest HashString(std::string_view text) {
  return HashBytes(std::as_bytes(std::span(text.data(), text.size())));
}

Digest HashCombine(Digest seed, std::span<const std::byte> bytes) {
  Digest h = seed;
  for (std::byte b : bytes) {
    h ^= static_cast<Digest>(b);
    h *= kFnvPrime;
  }
  return h;
}

Digest HashCombineWord(Digest seed, std::uint64_t word) {
  std::array<std::byte, 8> buf;
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::byte>((word >> (8 * i)) & 0xff);
  }
  return HashCombine(seed, buf);
}

std::string DigestToHex(Digest digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

Digest KeyedTag(std::uint64_t key, std::span<const std::byte> data) {
  Digest h = HashCombineWord(kFnvOffsetBasis, key);
  h = HashCombine(h, data);
  return HashCombineWord(h, key);
}

}  // namespace viator
