#include "base/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/perf_counters.h"

namespace viator {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t DeriveSubstreamSeed(std::uint64_t base_seed,
                                  std::uint64_t stream) {
  // Decorrelate the stream index before xoring so that small consecutive
  // indices (0, 1, 2, ...) land in unrelated regions of the seed space, then
  // finalize twice through splitmix64.
  std::uint64_t salt = stream;
  std::uint64_t mixed = base_seed ^ SplitMix64(salt);
  (void)SplitMix64(mixed);
  return SplitMix64(mixed);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  // Counted, not timed: an rdtsc pair costs more than the draw itself.
  VIATOR_PERF_COUNT(kRngDraw);
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  if (hook_ != nullptr) hook_(hook_ctx_, hook_stream_, result);
  return result;
}

Rng Rng::Fork() {
  const std::uint64_t a = Next();
  const std::uint64_t b = Next();
  return Rng(a ^ Rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return Next();
  // Rejection-free Lemire reduction is overkill here; modulo bias over a
  // 64-bit draw is negligible for simulator spans.
  return lo + Next() % (span + 1);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Pareto(double alpha, double xm) {
  assert(alpha > 0.0 && xm > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::Zipf(std::size_t n, double skew) {
  assert(n > 0);
  ZipfTable* table = nullptr;
  for (auto& t : zipf_tables_) {
    if (t.n == n && t.skew == skew) {
      table = &t;
      break;
    }
  }
  if (table == nullptr) {
    ZipfTable t;
    t.n = n;
    t.skew = skew;
    t.cdf.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      t.cdf[i] = sum;
    }
    for (auto& c : t.cdf) c /= sum;
    zipf_tables_.push_back(std::move(t));
    table = &zipf_tables_.back();
  }
  const double u = NextDouble();
  const auto it = std::lower_bound(table->cdf.begin(), table->cdf.end(), u);
  return static_cast<std::size_t>(it - table->cdf.begin());
}

std::size_t Rng::Index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(UniformInt(0, n - 1));
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[Index(i)]);
  }
  return perm;
}

}  // namespace viator
