// Deterministic random number generation.
//
// Every stochastic decision in the simulator draws from an explicitly seeded
// Rng. Replicated experiments give each replica its own stream via
// Rng::Fork(), so runs are reproducible bit-for-bit regardless of thread
// scheduling. The generator is xoshiro256** seeded through splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace viator {

/// Deterministic sub-stream seed derivation: maps (base_seed, stream) to a
/// seed that is statistically independent across streams and stable across
/// platforms and runs. Used wherever one logical seed must fan out into many
/// parallel streams (replica runners, topology shards) without the streams
/// correlating or depending on spawn order. Implemented as two rounds of the
/// splitmix64 finalizer over base_seed ^ mix(stream), the same generator the
/// Rng constructor seeds with, so DeriveSubstreamSeed(s, i) != s for i > 0
/// with overwhelming probability.
std::uint64_t DeriveSubstreamSeed(std::uint64_t base_seed,
                                  std::uint64_t stream);

/// xoshiro256** PRNG with convenience distributions. Cheap to copy; forkable
/// into statistically independent child streams.
class Rng {
 public:
  /// Seeds the state by running splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t Next();

  /// Flight-recorder hook: called after every raw draw with the stream label
  /// and the drawn value. A plain function pointer (not std::function) keeps
  /// the unhooked path to one predicted branch. The hook must never draw from
  /// any Rng itself. Fork() children start unhooked; copies inherit the hook.
  using DrawHook = void (*)(void* ctx, std::uint32_t stream,
                            std::uint64_t value);
  void SetDrawHook(DrawHook hook, void* ctx, std::uint32_t stream) {
    hook_ = hook;
    hook_ctx_ = ctx;
    hook_stream_ = stream;
  }
  void ClearDrawHook() {
    hook_ = nullptr;
    hook_ctx_ = nullptr;
    hook_stream_ = 0;
  }

  /// Child generator independent of (and not advancing with) this one beyond
  /// the two draws consumed to seed it. Use one fork per replica/subsystem.
  Rng Fork();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box–Muller, scaled to (mean, stddev).
  double Normal(double mean, double stddev);

  /// Pareto-distributed value (shape alpha > 0, scale xm > 0). Used for
  /// heavy-tailed content popularity and flow sizes.
  double Pareto(double alpha, double xm);

  /// Zipf-like rank selection over n items (rank 0 most popular) by inverse
  /// CDF over precomputed weights. O(log n) after O(n) first call per size.
  std::size_t Zipf(std::size_t n, double skew);

  /// Index drawn uniformly from [0, n). Requires n > 0.
  std::size_t Index(std::size_t n);

  /// Fisher–Yates shuffle of an index vector 0..n-1.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// The raw xoshiro256** state, for snapshot/restore (genesis). Restoring a
  /// saved state resumes the stream exactly where it was captured.
  std::array<std::uint64_t, 4> SaveState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void RestoreState(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  std::uint64_t state_[4];
  DrawHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
  std::uint32_t hook_stream_ = 0;
  // Cached Zipf tables keyed by (n, skew); small and replica-local.
  struct ZipfTable {
    std::size_t n;
    double skew;
    std::vector<double> cdf;
  };
  std::vector<ZipfTable> zipf_tables_;
};

}  // namespace viator
