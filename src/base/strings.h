// Text helpers shared by benches and examples: fixed-width table rendering
// (every bench prints paper-style rows through TablePrinter) and numeric
// formatting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace viator {

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits = 2);

/// Human-readable byte count ("1.5 KiB", "3.2 MiB").
std::string FormatBytes(std::uint64_t bytes);

/// Human-readable simulated duration given nanoseconds ("1.25 ms").
std::string FormatNanos(std::uint64_t nanos);

/// Renders aligned ASCII tables; used by every experiment harness so bench
/// output has one consistent shape.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a data row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (with a rule under the header) to `out`.
  void Print(std::ostream& out) const;

  /// Convenience: renders to a string.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace viator
