// Sorted-vector map replacements for hot-path std::map uses.
//
// Two flavors:
//
//  * FlatMap<K, V>     — a sorted vector of (key, value) pairs with a
//    std::map-compatible API subset. One contiguous allocation, binary-search
//    lookups, linear memmove on insert/erase: the right trade for the small,
//    read-mostly tables on the routing data path (per-node route tables are
//    dozens of entries, probed on every hop, mutated a few times a second).
//    Iteration order is ascending key order — identical to std::map — so
//    MixDigest folds and genesis snapshot bytes are unchanged by the swap.
//
//  * FlatNameMap<T>    — a sorted vector of (name, unique_ptr<T>) rows for
//    the StatsRegistry: string_view binary-search lookups without allocation,
//    lexicographic iteration (Prometheus export order preserved), and
//    pointer-stable values — callers cache Counter*/Histogram* across
//    arbitrary registry growth, exactly as std::map guaranteed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace viator::base {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  iterator find(const K& key) {
    auto it = LowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  const_iterator find(const K& key) const {
    auto it = LowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  bool contains(const K& key) const { return find(key) != end(); }

  V& operator[](const K& key) {
    auto it = LowerBound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, value_type(key, V{}));
    }
    return it->second;
  }

  iterator erase(iterator pos) { return entries_.erase(pos); }
  std::size_t erase(const K& key) {
    auto it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }

 private:
  iterator LowerBound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  const_iterator LowerBound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

template <typename T>
class FlatNameMap {
  struct Row;

 public:
  /// Finds or creates the named value. The returned reference (and the
  /// address behind it) stays valid for the map's lifetime: values live
  /// behind unique_ptrs, only the index vector moves.
  T& GetOrCreate(std::string_view name) {
    auto it = LowerBound(name);
    if (it == rows_.end() || it->name != name) {
      it = rows_.insert(it, Row{std::string(name), std::make_unique<T>()});
    }
    return *it->value;
  }

  const T* Find(std::string_view name) const {
    auto it = LowerBound(name);
    return it != rows_.end() && it->name == name ? it->value.get() : nullptr;
  }

  bool contains(std::string_view name) const { return Find(name) != nullptr; }

  /// Precondition: the name exists (std::map::at contract).
  const T& at(std::string_view name) const { return *Find(name); }

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Const iteration in lexicographic name order, yielding
  // pair<const std::string&, const T&> so existing structured-binding loops
  // (`for (const auto& [name, metric] : reg.counters())`) compile unchanged.
  class const_iterator {
   public:
    using reference = std::pair<const std::string&, const T&>;

    reference operator*() const { return {row_->name, *row_->value}; }
    struct ArrowProxy {
      reference pair;
      const reference* operator->() const { return &pair; }
    };
    ArrowProxy operator->() const { return ArrowProxy{**this}; }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return row_ == other.row_;
    }
    bool operator!=(const const_iterator& other) const {
      return row_ != other.row_;
    }

   private:
    friend class FlatNameMap;
    explicit const_iterator(const Row* row) : row_(row) {}
    const Row* row_;
  };

  const_iterator begin() const { return const_iterator(rows_.data()); }
  const_iterator end() const {
    return const_iterator(rows_.data() + rows_.size());
  }
  const_iterator find(std::string_view name) const {
    auto it = LowerBound(name);
    if (it != rows_.end() && it->name == name) {
      return const_iterator(rows_.data() + (it - rows_.begin()));
    }
    return end();
  }

 private:
  struct Row {
    std::string name;
    std::unique_ptr<T> value;
  };

  typename std::vector<Row>::const_iterator LowerBound(
      std::string_view name) const {
    return std::lower_bound(
        rows_.begin(), rows_.end(), name,
        [](const Row& row, std::string_view n) { return row.name < n; });
  }
  typename std::vector<Row>::iterator LowerBound(std::string_view name) {
    return std::lower_bound(
        rows_.begin(), rows_.end(), name,
        [](const Row& row, std::string_view n) { return row.name < n; });
  }

  std::vector<Row> rows_;
};

}  // namespace viator::base
