// Sorted-vector map replacements for hot-path std::map uses.
//
// Two flavors:
//
//  * FlatMap<K, V>     — a sorted vector of (key, value) pairs with a
//    std::map-compatible API subset. One contiguous allocation, binary-search
//    lookups, linear memmove on insert/erase: the right trade for the small,
//    read-mostly tables on the routing data path (per-node route tables are
//    dozens of entries, probed on every hop, mutated a few times a second).
//    Iteration order is ascending key order — identical to std::map — so
//    MixDigest folds and genesis snapshot bytes are unchanged by the swap.
//
//  * FlatNameMap<T>    — a sorted vector of (name, unique_ptr<T>) rows for
//    the StatsRegistry: string_view binary-search lookups without allocation,
//    lexicographic iteration (Prometheus export order preserved), and
//    pointer-stable values — callers cache Counter*/Histogram* across
//    arbitrary registry growth, exactly as std::map guaranteed.
// Both flavors carry a MemDomain template tag (default kFlatMap; the
// StatsRegistry instantiates kStatsRegistry) and report their backing-store
// footprint to the memory observatory (telemetry/mem_counters.h): capacity
// growth on insert, the whole store on destruction. Element-payload heap
// (e.g. a TimeSeries' samples) belongs to the element's own domain, not the
// table's; long names beyond the small-string buffer are charged per row.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/mem_counters.h"

namespace viator::base {

namespace internal {

/// Heap bytes behind one std::string: zero inside the small-string buffer,
/// capacity + NUL otherwise. Deterministic for a given standard library,
/// which is all the pinned baselines require.
inline std::size_t StringHeapBytes(const std::string& s) {
  constexpr std::size_t kSsoCapacity = std::string().capacity();
  return s.capacity() <= kSsoCapacity ? 0 : s.capacity() + 1;
}

/// Domain-tagged charge/release pair shared by the flat containers.
template <telemetry::mem::Domain Domain>
inline void ChargeBytes(std::size_t bytes) {
#if VIATOR_MEM_COUNTERS
  if (bytes != 0) telemetry::mem::OnAlloc(Domain, bytes);
#else
  (void)bytes;
#endif
}

template <telemetry::mem::Domain Domain>
inline void ReleaseBytes(std::size_t bytes) {
#if VIATOR_MEM_COUNTERS
  if (bytes != 0) telemetry::mem::OnFree(Domain, bytes);
#else
  (void)bytes;
#endif
}

}  // namespace internal

template <typename K, typename V,
          telemetry::mem::Domain Domain = telemetry::mem::Domain::kFlatMap>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;
  FlatMap(const FlatMap& other) : entries_(other.entries_) {
    internal::ChargeBytes<Domain>(CapacityBytes());
  }
  // Moves transfer the charged buffer wholesale (the moved-from vector is
  // left with zero capacity), so the counters need no adjustment.
  FlatMap(FlatMap&& other) noexcept = default;
  FlatMap& operator=(const FlatMap& other) {
    if (this != &other) {
      internal::ReleaseBytes<Domain>(CapacityBytes());
      entries_ = other.entries_;
      internal::ChargeBytes<Domain>(CapacityBytes());
    }
    return *this;
  }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      internal::ReleaseBytes<Domain>(CapacityBytes());
      entries_ = std::move(other.entries_);
    }
    return *this;
  }
  ~FlatMap() { internal::ReleaseBytes<Domain>(CapacityBytes()); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  iterator find(const K& key) {
    auto it = LowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  const_iterator find(const K& key) const {
    auto it = LowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  bool contains(const K& key) const { return find(key) != end(); }

  V& operator[](const K& key) {
    auto it = LowerBound(key);
    if (it == entries_.end() || it->first != key) {
      const std::size_t before = entries_.capacity();
      const std::size_t index = static_cast<std::size_t>(it - entries_.begin());
      entries_.insert(it, value_type(key, V{}));
      if (entries_.capacity() != before) {
        internal::ChargeBytes<Domain>((entries_.capacity() - before) *
                                      sizeof(value_type));
      }
      it = entries_.begin() + static_cast<std::ptrdiff_t>(index);
    }
    return it->second;
  }

  iterator erase(iterator pos) { return entries_.erase(pos); }
  std::size_t erase(const K& key) {
    auto it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }

 private:
  std::size_t CapacityBytes() const {
    return entries_.capacity() * sizeof(value_type);
  }

  iterator LowerBound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  const_iterator LowerBound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

template <typename T,
          telemetry::mem::Domain Domain = telemetry::mem::Domain::kFlatMap>
class FlatNameMap {
  struct Row;

 public:
  FlatNameMap() = default;
  FlatNameMap(FlatNameMap&&) noexcept = default;
  FlatNameMap& operator=(FlatNameMap&& other) noexcept {
    if (this != &other) {
      internal::ReleaseBytes<Domain>(OwnedBytes());
      rows_ = std::move(other.rows_);
    }
    return *this;
  }
  ~FlatNameMap() { internal::ReleaseBytes<Domain>(OwnedBytes()); }

  /// Finds or creates the named value. The returned reference (and the
  /// address behind it) stays valid for the map's lifetime: values live
  /// behind unique_ptrs, only the index vector moves.
  T& GetOrCreate(std::string_view name) {
    auto it = LowerBound(name);
    if (it == rows_.end() || it->name != name) {
      const std::size_t before = rows_.capacity();
      const std::size_t index = static_cast<std::size_t>(it - rows_.begin());
      it = rows_.insert(it, Row{std::string(name), std::make_unique<T>()});
      std::size_t grown = sizeof(T) + internal::StringHeapBytes(it->name);
      if (rows_.capacity() != before) {
        grown += (rows_.capacity() - before) * sizeof(Row);
      }
      internal::ChargeBytes<Domain>(grown);
      it = rows_.begin() + static_cast<std::ptrdiff_t>(index);
    }
    return *it->value;
  }

  const T* Find(std::string_view name) const {
    auto it = LowerBound(name);
    return it != rows_.end() && it->name == name ? it->value.get() : nullptr;
  }

  bool contains(std::string_view name) const { return Find(name) != nullptr; }

  /// Precondition: the name exists (std::map::at contract).
  const T& at(std::string_view name) const { return *Find(name); }

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Const iteration in lexicographic name order, yielding
  // pair<const std::string&, const T&> so existing structured-binding loops
  // (`for (const auto& [name, metric] : reg.counters())`) compile unchanged.
  class const_iterator {
   public:
    using reference = std::pair<const std::string&, const T&>;

    reference operator*() const { return {row_->name, *row_->value}; }
    struct ArrowProxy {
      reference pair;
      const reference* operator->() const { return &pair; }
    };
    ArrowProxy operator->() const { return ArrowProxy{**this}; }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return row_ == other.row_;
    }
    bool operator!=(const const_iterator& other) const {
      return row_ != other.row_;
    }

   private:
    friend class FlatNameMap;
    explicit const_iterator(const Row* row) : row_(row) {}
    const Row* row_;
  };

  const_iterator begin() const { return const_iterator(rows_.data()); }
  const_iterator end() const {
    return const_iterator(rows_.data() + rows_.size());
  }
  const_iterator find(std::string_view name) const {
    auto it = LowerBound(name);
    if (it != rows_.end() && it->name == name) {
      return const_iterator(rows_.data() + (it - rows_.begin()));
    }
    return end();
  }

 private:
  struct Row {
    std::string name;
    std::unique_ptr<T> value;
  };

  /// Exactly what the incremental charges summed to: the index vector's
  /// capacity plus each row's value object and out-of-buffer name bytes.
  std::size_t OwnedBytes() const {
    std::size_t bytes = rows_.capacity() * sizeof(Row);
    for (const Row& row : rows_) {
      bytes += sizeof(T) + internal::StringHeapBytes(row.name);
    }
    return bytes;
  }

  typename std::vector<Row>::const_iterator LowerBound(
      std::string_view name) const {
    return std::lower_bound(
        rows_.begin(), rows_.end(), name,
        [](const Row& row, std::string_view n) { return row.name < n; });
  }
  typename std::vector<Row>::iterator LowerBound(std::string_view name) {
    return std::lower_bound(
        rows_.begin(), rows_.end(), name,
        [](const Row& row, std::string_view n) { return row.name < n; });
  }

  std::vector<Row> rows_;
};

}  // namespace viator::base
