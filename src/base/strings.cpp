#include "base/strings.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace viator {

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatBytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return std::to_string(bytes) + " B";
  return FormatDouble(v, 2) + " " + kUnits[unit];
}

std::string FormatNanos(std::uint64_t nanos) {
  if (nanos < 1000ULL) return std::to_string(nanos) + " ns";
  if (nanos < 1000000ULL)
    return FormatDouble(static_cast<double>(nanos) / 1e3, 2) + " us";
  if (nanos < 1000000000ULL)
    return FormatDouble(static_cast<double>(nanos) / 1e6, 2) + " ms";
  return FormatDouble(static_cast<double>(nanos) / 1e9, 3) + " s";
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace viator
