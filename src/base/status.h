// Lightweight status / result types used across the Viator libraries.
//
// We avoid exceptions on simulator hot paths (event dispatch, VM stepping);
// fallible operations return Status or Result<T> instead. Both are cheap
// value types: Status is a code plus an optional message, Result<T> is a
// tagged union of T and Status.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace viator {

/// Canonical error categories. Kept deliberately small: callers should branch
/// on category, not on message text.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup miss (code hash, node id, fact key, ...)
  kAlreadyExists,     // duplicate registration
  kResourceExhausted, // quota, fuel, queue or slot capacity hit
  kFailedPrecondition,// operation not legal in current state
  kPermissionDenied,  // security / authorization rejection
  kUnimplemented,     // capability gated off (e.g. by WN generation)
  kInternal,          // invariant violation; indicates a bug
};

/// Human-readable name of a status code (stable, for logs and tests).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// Value-or-error. Construct from a T (success) or a non-OK Status (error).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(storage_).ok() &&
           "Result constructed from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Status of the result; OK when a value is present.
  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if present, otherwise a caller-provided fallback.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace viator
