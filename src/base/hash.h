// Content hashing for the Viator code-distribution and genome subsystems.
//
// WanderScript programs, genomes and knowledge quanta are content-addressed:
// a 64-bit FNV-1a digest identifies immutable byte strings. FNV-1a is not
// cryptographic — capsule *authorization* additionally uses a keyed tag (see
// services/security) — but it is deterministic, fast, and collision-safe
// enough for a simulator's content store.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace viator {

/// 64-bit content digest (FNV-1a).
using Digest = std::uint64_t;

inline constexpr Digest kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr Digest kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over raw bytes.
Digest HashBytes(std::span<const std::byte> bytes);

/// FNV-1a over a string.
Digest HashString(std::string_view text);

/// Incrementally extend a digest with more bytes (chainable).
Digest HashCombine(Digest seed, std::span<const std::byte> bytes);

/// Extend a digest with a single 64-bit word (for hashing structured data).
Digest HashCombineWord(Digest seed, std::uint64_t word);

/// Hex rendering of a digest, e.g. "4f8a...", for traces and tables.
std::string DigestToHex(Digest digest);

/// A keyed (non-cryptographic) authentication tag: digest over key || data ||
/// key. Stands in for an HMAC in the capsule-authorization path; the security
/// *protocol* shape (shared key, tag verify, reject on mismatch) is what the
/// experiments exercise.
Digest KeyedTag(std::uint64_t key, std::span<const std::byte> data);

/// Incremental structured hasher for rolling state digests (the flight
/// recorder's `Digest(Hasher&)` hooks). Subsystems mix their
/// nondeterminism-relevant state word by word; the order of Mix calls is part
/// of the digest, so hooks must enumerate state in a deterministic order.
class Hasher {
 public:
  void Mix(std::uint64_t word) { digest_ = HashCombineWord(digest_, word); }
  void Mix(std::string_view text) {
    Mix(static_cast<std::uint64_t>(text.size()));
    digest_ = HashCombine(
        digest_, std::as_bytes(std::span(text.data(), text.size())));
  }
  void MixDouble(double value) { Mix(std::bit_cast<std::uint64_t>(value)); }
  void MixBytes(std::span<const std::byte> bytes) {
    Mix(static_cast<std::uint64_t>(bytes.size()));
    digest_ = HashCombine(digest_, bytes);
  }

  Digest digest() const { return digest_; }

 private:
  Digest digest_ = kFnvOffsetBasis;
};

}  // namespace viator
