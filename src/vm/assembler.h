// Two-pass textual assembler for WanderScript.
//
// Syntax, one statement per line:
//   ; comment                       (also "#")
//   label:                          (jump target)
//   push 42        / push -3
//   pushc 1234567890123             (large constants auto-pooled)
//   jmp label      / jz label / jnz label
//   sys get_fact                    (syscall by name)
//   load 0 / store 1 / add / halt ...
//
// Every example shuttle and most test programs are written in this syntax;
// it keeps mobile code legible in the repository while the wire format stays
// binary.
#pragma once

#include <string_view>

#include "base/status.h"
#include "vm/program.h"

namespace viator::vm {

/// Assembles `source` into a named Program. Errors carry 1-based line
/// numbers. The result is *not* yet verified — run the Verifier before
/// execution, as a ship would on arrival.
Result<Program> Assemble(std::string_view name, std::string_view source);

/// Renders a program back to assembly (labels synthesized as L<index>).
std::string Disassemble(const Program& program);

}  // namespace viator::vm
