#include "vm/assembler.h"

#include <charconv>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace viator::vm {
namespace {

struct Token {
  std::string_view text;
};

std::string_view TrimComment(std::string_view line) {
  const auto semi = line.find_first_of(";#");
  if (semi != std::string_view::npos) line = line.substr(0, semi);
  return line;
}

std::vector<std::string_view> SplitWords(std::string_view line) {
  std::vector<std::string_view> words;
  std::size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && std::isspace(static_cast<unsigned char>(line[at]))) {
      ++at;
    }
    std::size_t end = at;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    if (end > at) words.push_back(line.substr(at, end - at));
    at = end;
  }
  return words;
}

std::optional<std::int64_t> ParseInt(std::string_view text) {
  std::int64_t value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc() || result.ptr != end) return std::nullopt;
  return value;
}

Status LineError(std::size_t line_no, std::string message) {
  return InvalidArgument("line " + std::to_string(line_no) + ": " +
                         std::move(message));
}

}  // namespace

Result<Program> Assemble(std::string_view name, std::string_view source) {
  struct PendingInstruction {
    Opcode opcode;
    std::int32_t operand = 0;
    std::string label;  // non-empty when the operand is a label reference
    std::size_t line_no;
  };

  std::vector<PendingInstruction> pending;
  std::map<std::string, std::int32_t, std::less<>> labels;
  std::vector<std::int64_t> constants;

  std::size_t line_no = 0;
  std::size_t cursor = 0;
  while (cursor <= source.size()) {
    const auto newline = source.find('\n', cursor);
    std::string_view line =
        newline == std::string_view::npos
            ? source.substr(cursor)
            : source.substr(cursor, newline - cursor);
    cursor = newline == std::string_view::npos ? source.size() + 1
                                               : newline + 1;
    ++line_no;
    line = TrimComment(line);
    auto words = SplitWords(line);
    if (words.empty()) continue;

    // Label definition?
    if (words[0].back() == ':') {
      const std::string label(words[0].substr(0, words[0].size() - 1));
      if (label.empty()) return LineError(line_no, "empty label");
      if (labels.count(label) != 0) {
        return LineError(line_no, "duplicate label '" + label + "'");
      }
      labels[label] = static_cast<std::int32_t>(pending.size());
      words.erase(words.begin());
      if (words.empty()) continue;
    }

    const Opcode op = OpcodeFromName(words[0]);
    if (op == Opcode::kOpcodeCount) {
      return LineError(line_no,
                       "unknown mnemonic '" + std::string(words[0]) + "'");
    }

    PendingInstruction ins;
    ins.opcode = op;
    ins.line_no = line_no;

    if (!OpcodeHasOperand(op)) {
      if (words.size() != 1) return LineError(line_no, "unexpected operand");
      pending.push_back(ins);
      continue;
    }
    if (words.size() != 2) return LineError(line_no, "missing operand");

    const std::string_view arg = words[1];
    switch (op) {
      case Opcode::kJmp:
      case Opcode::kJz:
      case Opcode::kJnz:
      case Opcode::kCall: {
        if (const auto value = ParseInt(arg)) {
          ins.operand = static_cast<std::int32_t>(*value);
        } else {
          ins.label = std::string(arg);
        }
        break;
      }
      case Opcode::kSys: {
        const SyscallSpec* spec = FindSyscallByName(arg);
        if (spec == nullptr) {
          if (const auto value = ParseInt(arg)) {
            ins.operand = static_cast<std::int32_t>(*value);
          } else {
            return LineError(line_no,
                             "unknown syscall '" + std::string(arg) + "'");
          }
        } else {
          ins.operand = static_cast<std::int32_t>(spec->id);
        }
        break;
      }
      case Opcode::kPush: {
        const auto value = ParseInt(arg);
        if (!value) return LineError(line_no, "bad immediate");
        if (*value >= INT32_MIN && *value <= INT32_MAX) {
          ins.operand = static_cast<std::int32_t>(*value);
        } else {
          // Spill wide immediates to the constant pool transparently.
          ins.opcode = Opcode::kPushC;
          constants.push_back(*value);
          ins.operand = static_cast<std::int32_t>(constants.size() - 1);
        }
        break;
      }
      case Opcode::kPushC: {
        const auto value = ParseInt(arg);
        if (!value) return LineError(line_no, "bad constant");
        constants.push_back(*value);
        ins.operand = static_cast<std::int32_t>(constants.size() - 1);
        break;
      }
      default: {
        const auto value = ParseInt(arg);
        if (!value) return LineError(line_no, "bad operand");
        ins.operand = static_cast<std::int32_t>(*value);
        break;
      }
    }
    pending.push_back(ins);
  }

  std::vector<Instruction> code;
  code.reserve(pending.size());
  for (const auto& ins : pending) {
    Instruction out;
    out.opcode = ins.opcode;
    out.operand = ins.operand;
    if (!ins.label.empty()) {
      const auto it = labels.find(ins.label);
      if (it == labels.end()) {
        return LineError(ins.line_no, "undefined label '" + ins.label + "'");
      }
      out.operand = it->second;
    }
    code.push_back(out);
  }
  return Program(std::string(name), std::move(code), std::move(constants));
}

std::string Disassemble(const Program& program) {
  // Collect jump targets so we can synthesize labels.
  std::map<std::int32_t, std::string> targets;
  for (const Instruction& ins : program.code()) {
    if (ins.opcode == Opcode::kJmp || ins.opcode == Opcode::kJz ||
        ins.opcode == Opcode::kJnz || ins.opcode == Opcode::kCall) {
      targets.emplace(ins.operand, "L" + std::to_string(ins.operand));
    }
  }
  std::ostringstream out;
  out << "; program " << program.name() << " digest "
      << DigestToHex(program.digest()) << "\n";
  for (std::size_t i = 0; i < program.code().size(); ++i) {
    const Instruction& ins = program.code()[i];
    const auto target = targets.find(static_cast<std::int32_t>(i));
    if (target != targets.end()) out << target->second << ":\n";
    out << "  " << OpcodeName(ins.opcode);
    if (OpcodeHasOperand(ins.opcode)) {
      if (ins.opcode == Opcode::kSys) {
        const SyscallSpec* spec =
            FindSyscall(static_cast<Syscall>(ins.operand));
        out << ' ' << (spec != nullptr ? spec->name : "?");
      } else if (targets.count(ins.operand) != 0 &&
                 (ins.opcode == Opcode::kJmp || ins.opcode == Opcode::kJz ||
                  ins.opcode == Opcode::kJnz ||
                  ins.opcode == Opcode::kCall)) {
        out << ' ' << targets.at(ins.operand);
      } else if (ins.opcode == Opcode::kPushC) {
        const auto idx = static_cast<std::size_t>(ins.operand);
        out << ' '
            << (idx < program.constants().size()
                    ? std::to_string(program.constants()[idx])
                    : "?");
      } else {
        out << ' ' << ins.operand;
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace viator::vm
