#include "vm/program.h"

#include "base/tlv.h"

namespace viator::vm {
namespace {

// TLV tags for the program container.
constexpr TlvTag kTagName = 1;
constexpr TlvTag kTagCode = 2;
constexpr TlvTag kTagConstant = 3;

}  // namespace

Program::Program(std::string name, std::vector<Instruction> code,
                 std::vector<std::int64_t> constants)
    : name_(std::move(name)),
      code_(std::move(code)),
      constants_(std::move(constants)) {}

std::vector<std::byte> Program::Serialize() const {
  TlvWriter writer;
  writer.PutString(kTagName, name_);
  std::vector<std::byte> code_bytes;
  code_bytes.reserve(code_.size() * 5);
  for (const Instruction& ins : code_) {
    code_bytes.push_back(static_cast<std::byte>(ins.opcode));
    const auto operand = static_cast<std::uint32_t>(ins.operand);
    for (int i = 0; i < 4; ++i) {
      code_bytes.push_back(
          static_cast<std::byte>((operand >> (8 * i)) & 0xff));
    }
  }
  writer.PutBytes(kTagCode, code_bytes);
  for (std::int64_t c : constants_) {
    writer.PutU64(kTagConstant, static_cast<std::uint64_t>(c));
  }
  return writer.Finish();
}

Result<Program> Program::Deserialize(std::span<const std::byte> bytes) {
  TlvReader reader(bytes);
  if (Status verify = reader.Verify(); !verify.ok()) return verify;
  Program program;
  while (reader.HasNext()) {
    auto rec = reader.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagName:
        program.name_ = rec->AsString();
        break;
      case kTagCode: {
        const auto& payload = rec->payload;
        if (payload.size() % 5 != 0) {
          return Status(InvalidArgument("malformed code section"));
        }
        program.code_.reserve(payload.size() / 5);
        for (std::size_t at = 0; at < payload.size(); at += 5) {
          Instruction ins;
          ins.opcode = static_cast<Opcode>(payload[at]);
          std::uint32_t operand = 0;
          for (int i = 0; i < 4; ++i) {
            operand |= static_cast<std::uint32_t>(payload[at + 1 + i])
                       << (8 * i);
          }
          ins.operand = static_cast<std::int32_t>(operand);
          program.code_.push_back(ins);
        }
        break;
      }
      case kTagConstant:
        program.constants_.push_back(static_cast<std::int64_t>(rec->AsU64()));
        break;
      default:
        break;  // forward compatibility: unknown tags are skipped
    }
  }
  return program;
}

Digest Program::digest() const {
  if (!digest_valid_) {
    cached_digest_ = HashBytes(Serialize());
    digest_valid_ = true;
  }
  return cached_digest_;
}

std::size_t Program::WireSize() const { return Serialize().size(); }

}  // namespace viator::vm
