// A WanderScript program: instructions + 64-bit constant pool + identity.
//
// Programs are immutable once built and content-addressed by the digest of
// their canonical serialization; the digest is what shuttles reference and
// what the demand code-distribution protocol requests (ANTS-style).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "vm/isa.h"

namespace viator::vm {

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instruction> code,
          std::vector<std::int64_t> constants = {});

  const std::string& name() const { return name_; }
  const std::vector<Instruction>& code() const { return code_; }
  const std::vector<std::int64_t>& constants() const { return constants_; }

  /// Content digest over the canonical serialization. Computed lazily once.
  Digest digest() const;

  /// Canonical TLV serialization (what travels inside code shuttles).
  std::vector<std::byte> Serialize() const;

  /// Parses a serialized program; validates framing and checksum.
  static Result<Program> Deserialize(std::span<const std::byte> bytes);

  /// Wire size of the serialized form in bytes (shuttle payload accounting).
  std::size_t WireSize() const;

  bool empty() const { return code_.empty(); }

 private:
  std::string name_;
  std::vector<Instruction> code_;
  std::vector<std::int64_t> constants_;
  mutable Digest cached_digest_ = 0;
  mutable bool digest_valid_ = false;
};

}  // namespace viator::vm
