// Static safety verifier for WanderScript programs.
//
// Every ship verifies arriving code before admission (the NodeOS refuses
// unverifiable capsules). The verifier proves, by abstract interpretation of
// stack depths over the control-flow graph:
//   * all opcodes and syscall ids are valid,
//   * all jump targets are in range,
//   * local slots and constant indices are in range,
//   * the operand stack can never underflow, and never exceeds
//     kMaxStackDepth on any path,
//   * the program fits kMaxProgramLength.
// Fuel (runaway loops) is a *dynamic* property enforced by the interpreter.
#pragma once

#include "base/status.h"
#include "vm/program.h"

namespace viator::vm {

/// Result of a successful verification.
struct VerifyInfo {
  std::size_t max_stack_depth = 0;  // proven upper bound
  std::size_t syscall_sites = 0;    // how many host-call sites exist
};

/// Verifies `program`; OK iff it is safe to interpret.
Result<VerifyInfo> Verify(const Program& program);

}  // namespace viator::vm
