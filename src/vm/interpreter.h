// Fuel-metered WanderScript interpreter.
//
// The interpreter executes *verified* programs only (it still guards its own
// invariants defensively, but verification is the admission contract). Each
// run is bounded by a fuel budget charged per instruction — the NodeOS uses
// fuel to implement per-capsule CPU quotas, and runaway jets simply run out.
//
// All host effects flow through the Environment interface; the interpreter
// itself is pure and deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/status.h"
#include "vm/isa.h"
#include "vm/program.h"

namespace viator::vm {

/// Host services presented to running shuttle code. Implemented by the ship
/// execution environment; the default implementations make every syscall a
/// harmless no-op so tests can run programs hermetically.
class Environment {
 public:
  virtual ~Environment() = default;

  /// Dispatch a syscall. `args` has exactly the arity from SyscallSpec.
  /// Returning a non-OK status aborts the program (counted as a fault).
  virtual Result<std::int64_t> Invoke(Syscall id,
                                       std::span<const std::int64_t> args);
};

/// Why an execution ended.
enum class ExitReason : std::uint8_t {
  kHalted,       // HALT or fell off the end
  kOutOfFuel,    // budget exhausted
  kFault,        // trap (bad state or syscall failure)
};

struct ExecutionResult {
  ExitReason reason = ExitReason::kHalted;
  std::uint64_t fuel_used = 0;
  std::int64_t top_of_stack = 0;  // 0 when the stack ended empty
  std::string fault_message;      // set when reason == kFault
};

/// Default fuel budget for shuttle programs (NodeOS quota baseline).
inline constexpr std::uint64_t kDefaultFuel = 100000;

class Interpreter {
 public:
  /// Executes `program` against `env` with the given fuel budget.
  /// `arguments` pre-populate locals[0..n-1].
  ExecutionResult Run(const Program& program, Environment& env,
                      std::uint64_t fuel = kDefaultFuel,
                      std::span<const std::int64_t> arguments = {});
};

}  // namespace viator::vm
