#include "vm/isa.h"

#include <array>

namespace viator::vm {
namespace {

constexpr std::array<SyscallSpec,
                     static_cast<std::size_t>(Syscall::kSyscallCount)>
    kSyscallTable = {{
        {Syscall::kNodeId, "node_id", 0, true},
        {Syscall::kTime, "time", 0, true},
        {Syscall::kGetFact, "get_fact", 1, true},
        {Syscall::kPutFact, "put_fact", 3, true},
        {Syscall::kEraseFact, "erase_fact", 1, true},
        {Syscall::kSendValue, "send_value", 3, true},
        {Syscall::kRole, "role", 0, true},
        {Syscall::kRequestRole, "request_role", 1, true},
        {Syscall::kNeighborCount, "neighbor_count", 0, true},
        {Syscall::kNeighbor, "neighbor", 1, true},
        {Syscall::kReplicate, "replicate", 1, true},
        {Syscall::kPayloadSize, "payload_size", 0, true},
        {Syscall::kPayload, "payload", 1, true},
        {Syscall::kEmit, "emit", 1, true},
        {Syscall::kRandom, "random", 0, true},
        {Syscall::kLog, "log", 1, true},
        {Syscall::kMorph, "morph", 1, true},
        {Syscall::kQueueDepth, "queue_depth", 0, true},
    }};

struct OpcodeInfo {
  Opcode op;
  std::string_view name;
  bool has_operand;
};

constexpr std::array<OpcodeInfo,
                     static_cast<std::size_t>(Opcode::kOpcodeCount)>
    kOpcodeTable = {{
        {Opcode::kNop, "nop", false},
        {Opcode::kHalt, "halt", false},
        {Opcode::kPush, "push", true},
        {Opcode::kPushC, "pushc", true},
        {Opcode::kPop, "pop", false},
        {Opcode::kDup, "dup", false},
        {Opcode::kSwap, "swap", false},
        {Opcode::kOver, "over", false},
        {Opcode::kLoad, "load", true},
        {Opcode::kStore, "store", true},
        {Opcode::kAdd, "add", false},
        {Opcode::kSub, "sub", false},
        {Opcode::kMul, "mul", false},
        {Opcode::kDiv, "div", false},
        {Opcode::kMod, "mod", false},
        {Opcode::kNeg, "neg", false},
        {Opcode::kAnd, "and", false},
        {Opcode::kOr, "or", false},
        {Opcode::kXor, "xor", false},
        {Opcode::kNot, "not", false},
        {Opcode::kShl, "shl", false},
        {Opcode::kShr, "shr", false},
        {Opcode::kEq, "eq", false},
        {Opcode::kNe, "ne", false},
        {Opcode::kLt, "lt", false},
        {Opcode::kLe, "le", false},
        {Opcode::kGt, "gt", false},
        {Opcode::kGe, "ge", false},
        {Opcode::kJmp, "jmp", true},
        {Opcode::kJz, "jz", true},
        {Opcode::kJnz, "jnz", true},
        {Opcode::kCall, "call", true},
        {Opcode::kRet, "ret", false},
        {Opcode::kSys, "sys", true},
    }};

}  // namespace

const SyscallSpec* FindSyscall(Syscall id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= kSyscallTable.size()) return nullptr;
  return &kSyscallTable[idx];
}

const SyscallSpec* FindSyscallByName(std::string_view name) {
  for (const auto& spec : kSyscallTable) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string_view OpcodeName(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  if (idx >= kOpcodeTable.size()) return "?";
  return kOpcodeTable[idx].name;
}

Opcode OpcodeFromName(std::string_view name) {
  for (const auto& info : kOpcodeTable) {
    if (info.name == name) return info.op;
  }
  return Opcode::kOpcodeCount;
}

bool OpcodeHasOperand(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  if (idx >= kOpcodeTable.size()) return false;
  return kOpcodeTable[idx].has_operand;
}

}  // namespace viator::vm
