// WanderScript: the instruction set for mobile shuttle code.
//
// The paper leaves the encoding of "gene-coded" active packets open; native
// dynamic code loading is unsafe and unportable, so Viator ships a small
// verified stack machine instead. Programs are sequences of fixed-width
// instructions (opcode + immediate) over an int64 operand stack with a
// bounded local frame. All interaction with the hosting ship goes through
// numbered syscalls, which is where the NodeOS enforces capability and
// resource policy (paper §B: code "executed under the supervision of the
// NodeOS").
#pragma once

#include <cstdint>
#include <string_view>

#include "base/status.h"

namespace viator::vm {

/// Hard limits enforced by the verifier and interpreter.
inline constexpr std::size_t kMaxProgramLength = 4096;  // instructions
inline constexpr std::size_t kMaxLocals = 32;
inline constexpr std::size_t kMaxStackDepth = 256;
inline constexpr std::size_t kMaxConstants = 256;
inline constexpr std::size_t kMaxCallDepth = 64;

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,

  // Stack.
  kPush,    // push sign-extended 32-bit immediate
  kPushC,   // push 64-bit constant pool entry [imm]
  kPop,
  kDup,
  kSwap,
  kOver,    // push copy of second-from-top

  // Locals.
  kLoad,    // push locals[imm]
  kStore,   // locals[imm] = pop

  // Arithmetic (b = pop, a = pop, push a OP b). Division by zero yields 0 —
  // mobile code must never trap the host.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,     // push -pop

  // Bitwise / logic.
  kAnd,
  kOr,
  kXor,
  kNot,     // bitwise complement
  kShl,
  kShr,

  // Comparisons push 1 or 0.
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,

  // Control flow. Immediates are absolute instruction indices.
  kJmp,
  kJz,      // jump if pop == 0
  kJnz,     // jump if pop != 0

  // Subroutines. kCall pushes the return address onto a separate return
  // stack and jumps to [imm]; kRet pops it. Calling convention: arguments
  // and results pass through locals (the frame is shared); a subroutine
  // must be operand-stack-neutral — the verifier proves it cannot pop below
  // its entry depth and returns at exactly that depth.
  kCall,
  kRet,

  // Host interface: invoke syscall [imm]; argument/result arity per syscall.
  kSys,

  kOpcodeCount,  // sentinel
};

/// Host services callable from shuttle code. Arity lives in SyscallSpec.
enum class Syscall : std::uint8_t {
  kNodeId = 0,       // () -> id of hosting ship
  kTime,             // () -> sim time, microseconds
  kGetFact,          // (key) -> value, 0 when absent
  kPutFact,          // (key, value, weight) -> 1 on success
  kEraseFact,        // (key) -> 1 if erased
  kSendValue,        // (dst, tag, value) -> 1 if a data shuttle was emitted
  kRole,             // () -> current first-level role of the ship
  kRequestRole,      // (role) -> 1 if the role switch was accepted
  kNeighborCount,    // () -> number of up neighbors
  kNeighbor,         // (i) -> node id of i-th neighbor (or -1)
  kReplicate,        // (dst) -> 1 if a replica of this shuttle was emitted
  kPayloadSize,      // () -> number of payload words in this shuttle
  kPayload,          // (i) -> i-th payload word (or 0)
  kEmit,             // (value) -> 1; append to the shuttle's output record
  kRandom,           // () -> deterministic pseudo-random 63-bit value
  kLog,              // (value) -> 1; trace entry on the host
  kMorph,            // (ship_class) -> 1 if morphing adapter available
  kQueueDepth,       // () -> bytes queued on the ship's busiest egress
  kSyscallCount,     // sentinel
};

struct SyscallSpec {
  Syscall id;
  std::string_view name;
  std::uint8_t arg_count;
  bool has_result;
};

/// Spec table lookup; nullptr for out-of-range ids.
const SyscallSpec* FindSyscall(Syscall id);
const SyscallSpec* FindSyscallByName(std::string_view name);

/// One fixed-width instruction.
struct Instruction {
  Opcode opcode = Opcode::kNop;
  std::int32_t operand = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Mnemonic of an opcode ("push", "jz", ...), for the assembler/disassembler.
std::string_view OpcodeName(Opcode op);

/// Reverse lookup; returns kOpcodeCount when unknown.
Opcode OpcodeFromName(std::string_view name);

/// Whether the opcode consumes its immediate operand.
bool OpcodeHasOperand(Opcode op);

}  // namespace viator::vm
