#include "vm/verifier.h"

#include <algorithm>
#include <deque>
#include <set>
#include <vector>

namespace viator::vm {
namespace {

// Net stack effect (pushes - pops) and required depth (pops) per opcode.
struct StackEffect {
  int pops = 0;
  int pushes = 0;
};

Result<StackEffect> EffectOf(const Instruction& ins) {
  switch (ins.opcode) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kJmp:
      return StackEffect{0, 0};
    case Opcode::kPush:
    case Opcode::kPushC:
    case Opcode::kLoad:
      return StackEffect{0, 1};
    case Opcode::kPop:
    case Opcode::kStore:
    case Opcode::kJz:
    case Opcode::kJnz:
      return StackEffect{1, 0};
    case Opcode::kDup:
      return StackEffect{1, 2};
    case Opcode::kSwap:
      return StackEffect{2, 2};
    case Opcode::kOver:
      return StackEffect{2, 3};
    case Opcode::kNeg:
    case Opcode::kNot:
      return StackEffect{1, 1};
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kEq:
    case Opcode::kNe:
    case Opcode::kLt:
    case Opcode::kLe:
    case Opcode::kGt:
    case Opcode::kGe:
      return StackEffect{2, 1};
    case Opcode::kCall:
    case Opcode::kRet:
      // A subroutine is verified to be operand-stack-neutral, so a call
      // site sees no net effect; kRet itself moves no operands.
      return StackEffect{0, 0};
    case Opcode::kSys: {
      const SyscallSpec* spec = FindSyscall(static_cast<Syscall>(ins.operand));
      if (spec == nullptr) {
        return Status(
            InvalidArgument("invalid syscall id " + std::to_string(ins.operand)));
      }
      return StackEffect{spec->arg_count, spec->has_result ? 1 : 0};
    }
    case Opcode::kOpcodeCount:
      break;
  }
  return Status(InvalidArgument("invalid opcode"));
}

}  // namespace

Result<VerifyInfo> Verify(const Program& program) {
  const auto& code = program.code();
  if (code.empty()) return Status(InvalidArgument("empty program"));
  if (code.size() > kMaxProgramLength) {
    return Status(InvalidArgument("program exceeds length limit"));
  }
  if (program.constants().size() > kMaxConstants) {
    return Status(InvalidArgument("constant pool exceeds limit"));
  }

  const auto size = static_cast<std::int32_t>(code.size());
  VerifyInfo info;

  // Structural checks first.
  for (std::int32_t pc = 0; pc < size; ++pc) {
    const Instruction& ins = code[pc];
    if (static_cast<std::size_t>(ins.opcode) >=
        static_cast<std::size_t>(Opcode::kOpcodeCount)) {
      return Status(InvalidArgument("invalid opcode at " + std::to_string(pc)));
    }
    switch (ins.opcode) {
      case Opcode::kJmp:
      case Opcode::kJz:
      case Opcode::kJnz:
      case Opcode::kCall:
        if (ins.operand < 0 || ins.operand >= size) {
          return Status(InvalidArgument("jump target out of range at " +
                                        std::to_string(pc)));
        }
        break;
      case Opcode::kLoad:
      case Opcode::kStore:
        if (ins.operand < 0 ||
            static_cast<std::size_t>(ins.operand) >= kMaxLocals) {
          return Status(InvalidArgument("local slot out of range at " +
                                        std::to_string(pc)));
        }
        break;
      case Opcode::kPushC:
        if (ins.operand < 0 || static_cast<std::size_t>(ins.operand) >=
                                   program.constants().size()) {
          return Status(InvalidArgument("constant index out of range at " +
                                        std::to_string(pc)));
        }
        break;
      case Opcode::kSys:
        ++info.syscall_sites;
        break;
      default:
        break;
    }
  }

  // Abstract interpretation: propagate the entry stack depth to every
  // reachable instruction. A program is safe iff each instruction sees a
  // single consistent depth that never underflows and stays under the cap.
  //
  // Subroutines (targets of kCall) are verified as separate flows starting
  // at relative depth 0: they may not pop below their entry depth and must
  // sit at exactly the entry depth at every kRet — which is what makes a
  // call site depth-neutral for the caller.
  std::set<std::int32_t> subroutine_entries;
  for (const Instruction& ins : code) {
    if (ins.opcode == Opcode::kCall) subroutine_entries.insert(ins.operand);
  }

  auto verify_flow = [&](std::int32_t entry,
                         bool is_subroutine) -> Status {
    std::vector<int> depth_at(code.size(), -1);
    std::deque<std::int32_t> worklist;
    depth_at[entry] = 0;
    worklist.push_back(entry);

    while (!worklist.empty()) {
      const std::int32_t pc = worklist.front();
      worklist.pop_front();
      const Instruction& ins = code[pc];
      const int depth = depth_at[pc];

      auto effect = EffectOf(ins);
      if (!effect.ok()) return effect.status();
      if (depth < effect->pops) {
        return InvalidArgument("stack underflow possible at " +
                               std::to_string(pc));
      }
      const int next_depth = depth - effect->pops + effect->pushes;
      if (static_cast<std::size_t>(next_depth) > kMaxStackDepth) {
        return InvalidArgument("stack overflow possible at " +
                               std::to_string(pc));
      }
      info.max_stack_depth = std::max(info.max_stack_depth,
                                      static_cast<std::size_t>(next_depth));

      auto propagate = [&](std::int32_t target, int d) -> Status {
        if (target >= size) {
          // Falling off the end is equivalent to halt; allowed.
          return OkStatus();
        }
        if (depth_at[target] == -1) {
          depth_at[target] = d;
          worklist.push_back(target);
        } else if (depth_at[target] != d) {
          return InvalidArgument("inconsistent stack depth at " +
                                 std::to_string(target));
        }
        return OkStatus();
      };

      switch (ins.opcode) {
        case Opcode::kHalt:
          break;
        case Opcode::kRet:
          if (!is_subroutine) {
            return InvalidArgument("ret reachable outside a subroutine at " +
                                   std::to_string(pc));
          }
          if (depth != 0) {
            return InvalidArgument(
                "subroutine not stack-neutral at ret, pc " +
                std::to_string(pc));
          }
          break;  // terminal within this flow
        case Opcode::kJmp:
          if (Status s = propagate(ins.operand, next_depth); !s.ok()) return s;
          break;
        case Opcode::kJz:
        case Opcode::kJnz:
          if (Status s = propagate(ins.operand, next_depth); !s.ok()) return s;
          if (Status s = propagate(pc + 1, next_depth); !s.ok()) return s;
          break;
        case Opcode::kCall:
          // The callee is verified separately; the call site continues at
          // the same depth.
          if (Status s = propagate(pc + 1, next_depth); !s.ok()) return s;
          break;
        default:
          if (Status s = propagate(pc + 1, next_depth); !s.ok()) return s;
          break;
      }
    }
    return OkStatus();
  };

  if (Status s = verify_flow(0, false); !s.ok()) return s;
  for (std::int32_t entry : subroutine_entries) {
    if (Status s = verify_flow(entry, true); !s.ok()) return s;
  }

  return info;
}

}  // namespace viator::vm
