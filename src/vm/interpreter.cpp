#include "vm/interpreter.h"

#include <array>

namespace viator::vm {

Result<std::int64_t> Environment::Invoke(Syscall id,
                                          std::span<const std::int64_t>) {
  (void)id;
  return std::int64_t{0};
}

ExecutionResult Interpreter::Run(const Program& program, Environment& env,
                                 std::uint64_t fuel,
                                 std::span<const std::int64_t> arguments) {
  ExecutionResult result;
  const auto& code = program.code();
  const auto& constants = program.constants();

  std::array<std::int64_t, kMaxLocals> locals{};
  for (std::size_t i = 0; i < arguments.size() && i < kMaxLocals; ++i) {
    locals[i] = arguments[i];
  }

  std::vector<std::int64_t> stack;
  stack.reserve(64);
  std::vector<std::size_t> return_stack;

  auto fault = [&result](std::string message) {
    result.reason = ExitReason::kFault;
    result.fault_message = std::move(message);
  };

  std::size_t pc = 0;
  while (pc < code.size()) {
    if (result.fuel_used >= fuel) {
      result.reason = ExitReason::kOutOfFuel;
      return result;
    }
    ++result.fuel_used;
    const Instruction& ins = code[pc];
    std::size_t next_pc = pc + 1;

    auto pop = [&stack]() {
      const std::int64_t v = stack.back();
      stack.pop_back();
      return v;
    };

    // Verified programs cannot underflow; the checks below are defense in
    // depth for hand-built Instruction vectors in tests.
    auto need = [&stack, &fault](std::size_t n) {
      if (stack.size() < n) {
        fault("stack underflow");
        return false;
      }
      return true;
    };

    switch (ins.opcode) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        if (!stack.empty()) result.top_of_stack = stack.back();
        result.reason = ExitReason::kHalted;
        return result;
      case Opcode::kPush:
        stack.push_back(ins.operand);
        break;
      case Opcode::kPushC: {
        const auto idx = static_cast<std::size_t>(ins.operand);
        if (idx >= constants.size()) {
          fault("constant index out of range");
          return result;
        }
        stack.push_back(constants[idx]);
        break;
      }
      case Opcode::kPop:
        if (!need(1)) return result;
        stack.pop_back();
        break;
      case Opcode::kDup:
        if (!need(1)) return result;
        stack.push_back(stack.back());
        break;
      case Opcode::kSwap: {
        if (!need(2)) return result;
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      }
      case Opcode::kOver:
        if (!need(2)) return result;
        stack.push_back(stack[stack.size() - 2]);
        break;
      case Opcode::kLoad: {
        const auto slot = static_cast<std::size_t>(ins.operand);
        if (slot >= kMaxLocals) {
          fault("local slot out of range");
          return result;
        }
        stack.push_back(locals[slot]);
        break;
      }
      case Opcode::kStore: {
        if (!need(1)) return result;
        const auto slot = static_cast<std::size_t>(ins.operand);
        if (slot >= kMaxLocals) {
          fault("local slot out of range");
          return result;
        }
        locals[slot] = pop();
        break;
      }
      case Opcode::kNeg:
        if (!need(1)) return result;
        stack.back() = -stack.back();
        break;
      case Opcode::kNot:
        if (!need(1)) return result;
        stack.back() = ~stack.back();
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kEq:
      case Opcode::kNe:
      case Opcode::kLt:
      case Opcode::kLe:
      case Opcode::kGt:
      case Opcode::kGe: {
        if (!need(2)) return result;
        const std::int64_t b = pop();
        const std::int64_t a = pop();
        std::int64_t out = 0;
        switch (ins.opcode) {
          case Opcode::kAdd:
            out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                            static_cast<std::uint64_t>(b));
            break;
          case Opcode::kSub:
            out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                            static_cast<std::uint64_t>(b));
            break;
          case Opcode::kMul:
            out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                            static_cast<std::uint64_t>(b));
            break;
          case Opcode::kDiv:
            // Mobile code must never trap the host: x/0 == 0 by definition,
            // and INT64_MIN / -1 is saturated instead of overflowing.
            if (b == 0) {
              out = 0;
            } else if (a == INT64_MIN && b == -1) {
              out = INT64_MAX;
            } else {
              out = a / b;
            }
            break;
          case Opcode::kMod:
            if (b == 0) {
              out = 0;
            } else if (a == INT64_MIN && b == -1) {
              out = 0;
            } else {
              out = a % b;
            }
            break;
          case Opcode::kAnd: out = a & b; break;
          case Opcode::kOr: out = a | b; break;
          case Opcode::kXor: out = a ^ b; break;
          case Opcode::kShl:
            out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                            << (b & 63));
            break;
          case Opcode::kShr:
            out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                            (b & 63));
            break;
          case Opcode::kEq: out = a == b; break;
          case Opcode::kNe: out = a != b; break;
          case Opcode::kLt: out = a < b; break;
          case Opcode::kLe: out = a <= b; break;
          case Opcode::kGt: out = a > b; break;
          case Opcode::kGe: out = a >= b; break;
          default: break;
        }
        stack.push_back(out);
        break;
      }
      case Opcode::kJmp:
        next_pc = static_cast<std::size_t>(ins.operand);
        break;
      case Opcode::kJz: {
        if (!need(1)) return result;
        if (pop() == 0) next_pc = static_cast<std::size_t>(ins.operand);
        break;
      }
      case Opcode::kJnz: {
        if (!need(1)) return result;
        if (pop() != 0) next_pc = static_cast<std::size_t>(ins.operand);
        break;
      }
      case Opcode::kCall: {
        if (return_stack.size() >= kMaxCallDepth) {
          fault("call depth exceeded");
          return result;
        }
        return_stack.push_back(pc + 1);
        next_pc = static_cast<std::size_t>(ins.operand);
        break;
      }
      case Opcode::kRet: {
        if (return_stack.empty()) {
          fault("ret with empty call stack");
          return result;
        }
        next_pc = return_stack.back();
        return_stack.pop_back();
        break;
      }
      case Opcode::kSys: {
        const SyscallSpec* spec =
            FindSyscall(static_cast<Syscall>(ins.operand));
        if (spec == nullptr) {
          fault("invalid syscall");
          return result;
        }
        if (!need(spec->arg_count)) return result;
        std::array<std::int64_t, 8> args{};
        for (int i = spec->arg_count - 1; i >= 0; --i) args[i] = pop();
        auto sys_result = env.Invoke(
            spec->id, std::span(args.data(), spec->arg_count));
        if (!sys_result.ok()) {
          fault("syscall " + std::string(spec->name) + " failed: " +
                sys_result.status().ToString());
          return result;
        }
        if (spec->has_result) stack.push_back(*sys_result);
        break;
      }
      case Opcode::kOpcodeCount:
        fault("invalid opcode");
        return result;
    }
    if (stack.size() > kMaxStackDepth) {
      fault("stack overflow");
      return result;
    }
    pc = next_pc;
  }

  if (!stack.empty()) result.top_of_stack = stack.back();
  result.reason = ExitReason::kHalted;
  return result;
}

}  // namespace viator::vm
