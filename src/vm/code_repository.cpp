#include "vm/code_repository.h"

#include <algorithm>

namespace viator::vm {

Result<Digest> CodeRepository::Install(Program program) {
  auto verified = Verify(program);
  if (!verified.ok()) return verified.status();
  const Digest digest = program.digest();
  programs_.emplace(digest, std::move(program));
  return digest;
}

const Program* CodeRepository::Find(Digest digest) const {
  const auto it = programs_.find(digest);
  return it == programs_.end() ? nullptr : &it->second;
}

Status CodeCache::Put(const Program& program) {
  const Digest digest = program.digest();
  const std::size_t bytes = program.WireSize();
  if (bytes > capacity_) {
    return ResourceExhausted("program larger than code cache");
  }
  if (auto it = entries_.find(digest); it != entries_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(digest);
    it->second.lru_it = lru_.begin();
    return OkStatus();
  }
  while (bytes_used_ + bytes > capacity_ && !lru_.empty()) {
    const Digest victim = lru_.back();
    lru_.pop_back();
    const auto vit = entries_.find(victim);
    bytes_used_ -= vit->second.bytes;
    entries_.erase(vit);
  }
  lru_.push_front(digest);
  entries_.emplace(digest, Entry{program, bytes, lru_.begin()});
  bytes_used_ += bytes;
  return OkStatus();
}

const Program* CodeCache::Get(Digest digest) {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_it);
  lru_.push_front(digest);
  it->second.lru_it = lru_.begin();
  return &it->second.program;
}

bool CodeCache::Contains(Digest digest) const {
  return entries_.count(digest) != 0;
}

std::vector<Digest> CodeRepository::Digests() const {
  std::vector<Digest> out;
  out.reserve(programs_.size());
  for (const auto& [digest, program] : programs_) out.push_back(digest);
  std::sort(out.begin(), out.end());
  return out;
}

const Program* CodeCache::Peek(Digest digest) const {
  const auto it = entries_.find(digest);
  return it == entries_.end() ? nullptr : &it->second.program;
}

std::vector<Digest> CodeCache::LruDigests() const {
  return {lru_.begin(), lru_.end()};
}

void CodeRepository::MixDigest(Hasher& hasher) const {
  hasher.Mix(static_cast<std::uint64_t>(programs_.size()));
  for (Digest digest : Digests()) hasher.Mix(digest);
}

void CodeCache::MixDigest(Hasher& hasher) const {
  hasher.Mix(static_cast<std::uint64_t>(bytes_used_));
  hasher.Mix(hits_);
  hasher.Mix(misses_);
  hasher.Mix(static_cast<std::uint64_t>(lru_.size()));
  for (Digest digest : lru_) hasher.Mix(digest);
}

}  // namespace viator::vm
