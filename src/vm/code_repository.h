// Content-addressed program storage and the per-ship code cache.
//
// The network-wide CodeRepository is the authoritative store (an origin a
// code-shuttle can always be fetched from); each ship keeps a bounded
// CodeCache in front of it. Demand loading follows the ANTS scheme: a
// shuttle references its processing routine by digest; on a cache miss the
// ship requests the program from the previous hop / origin and queues the
// shuttle until code arrives. The transfer itself is performed by the core
// layer (code-request / code-reply shuttles); these classes provide the
// storage semantics and hit/miss accounting that experiment E11 reports.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "vm/program.h"
#include "vm/verifier.h"

namespace viator::vm {

/// Authoritative digest → program store. Install verifies the program first:
/// the repository never serves unverifiable code.
class CodeRepository {
 public:
  /// Verifies and stores `program`. Idempotent for identical content.
  Result<Digest> Install(Program program);

  /// Looks a program up by digest.
  const Program* Find(Digest digest) const;

  /// All stored digests in ascending order (deterministic enumeration for
  /// snapshot serialization).
  std::vector<Digest> Digests() const;

  /// Mixes the stored program set into a rolling state digest
  /// (flight-recorder hook).
  void MixDigest(Hasher& hasher) const;

  std::size_t size() const { return programs_.size(); }

 private:
  std::unordered_map<Digest, Program> programs_;
};

/// Bounded LRU cache of programs resident on one ship. Capacity is counted
/// in serialized bytes, mirroring the NodeOS memory quota for code.
class CodeCache {
 public:
  explicit CodeCache(std::size_t capacity_bytes = 64 * 1024)
      : capacity_(capacity_bytes) {}

  /// Inserts (or refreshes) a program, evicting LRU entries to fit. Programs
  /// larger than the whole cache are rejected with kResourceExhausted.
  Status Put(const Program& program);

  /// Cache lookup; bumps recency and the hit/miss counters.
  const Program* Get(Digest digest);

  /// Lookup without recency/stat side effects.
  bool Contains(Digest digest) const;

  /// Program lookup without recency/stat side effects (nullptr on miss).
  const Program* Peek(Digest digest) const;

  /// Resident digests from most- to least-recently used (snapshot order).
  std::vector<Digest> LruDigests() const;

  /// Mixes residency (LRU order), byte usage and hit/miss accounting into a
  /// rolling state digest (flight-recorder hook).
  void MixDigest(Hasher& hasher) const;

  /// Restores hit/miss accounting from a snapshot.
  void RestoreCounters(std::uint64_t hits, std::uint64_t misses) {
    hits_ = hits;
    misses_ = misses;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t entry_count() const { return entries_.size(); }

 private:
  struct Entry {
    Program program;
    std::size_t bytes;
    std::list<Digest>::iterator lru_it;
  };

  std::size_t capacity_;
  std::size_t bytes_used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<Digest> lru_;  // front = most recent
  std::unordered_map<Digest, Entry> entries_;
};

}  // namespace viator::vm
