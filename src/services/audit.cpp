#include "services/audit.h"

#include "core/genetic_transcoder.h"

namespace viator::services {

AuditService::AuditService(wli::WanderingNetwork& network,
                           const Config& config, Rng rng)
    : network_(network), config_(config), rng_(rng) {}

bool AuditService::AuditShip(wli::Ship& ship) {
  ++audits_;
  const wli::SelfDescription advertised = ship.DescribeSelf();
  // The audit recomputes the genome commitment from the ship's actual
  // structure; an honest ship's advertisement matches by construction.
  const Digest actual =
      HashBytes(wli::EncodeBlueprint(ship.ToBlueprint()));
  const bool fair = advertised.descriptor_digest == actual;
  network_.reputation().ReportInteraction(ship.id(), fair);
  if (!fair) {
    ++violations_;
    network_.trace().Log(network_.simulator().now(), sim::TraceLevel::kWarn,
                         "audit",
                         "ship " + std::to_string(ship.id()) +
                             " advertised a false descriptor");
  }
  return fair;
}

std::size_t AuditService::RunRound() {
  std::size_t caught = 0;
  const std::size_t population = network_.topology().node_count();
  if (population == 0) return 0;
  for (std::size_t i = 0; i < config_.samples_per_round; ++i) {
    const auto node = static_cast<net::NodeId>(rng_.Index(population));
    wli::Ship* ship = network_.ship(node);
    if (ship == nullptr) continue;
    if (!AuditShip(*ship)) ++caught;
  }
  return caught;
}

void AuditService::Start(sim::TimePoint until) {
  network_.simulator().ScheduleAfter(config_.interval, [this, until] {
    (void)RunRound();
    if (network_.simulator().now() + config_.interval <= until) {
      Start(until);
    }
  });
}

}  // namespace viator::services
