// Fission: "the active node is delivering more data than it receives" (§D)
// — in-network multicast. One shuttle arrives for a group; the fission node
// duplicates it to every subscriber, so upstream links carry the content
// once instead of once per receiver (the baseline comparison of E6).
//
// Each duplication publishes a per-multicast-branch feedback signal (MFP),
// which the E15 ablation taps for branch-level congestion adaptation.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/wandering_network.h"

namespace viator::services {

class FissionService {
 public:
  FissionService(wli::WanderingNetwork& network, net::NodeId node);

  /// Adds a subscriber for `group` (shuttle flow_id identifies the group).
  void Subscribe(std::uint64_t group, net::NodeId subscriber);
  void Unsubscribe(std::uint64_t group, net::NodeId subscriber);

  std::size_t SubscriberCount(std::uint64_t group) const;
  std::uint64_t duplicated() const { return duplicated_; }

 private:
  void OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle);

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  std::map<std::uint64_t, std::vector<net::NodeId>> groups_;
  std::uint64_t duplicated_ = 0;
};

}  // namespace viator::services
