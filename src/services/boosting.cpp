#include "services/boosting.h"

#include <cmath>

#include "telemetry/telemetry.h"

namespace viator::services {

FecBooster::FecBooster(wli::WanderingNetwork& network, const Config& config)
    : network_(network), config_(config) {
  wli::Ship* egress = network_.ship(config_.egress);
  if (egress == nullptr) return;
  (void)egress->SwitchRole(node::FirstLevelRole::kDelegation,
                           node::SwitchMechanism::kResidentSoftware);
  egress->SetRoleHandler(
      node::FirstLevelRole::kDelegation,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnEgress(s, shuttle);
      });
}

Status FecBooster::SendData(std::uint64_t flow, std::int64_t word) {
  wli::Ship* ingress = network_.ship(config_.ingress);
  if (ingress == nullptr) return NotFound("no ingress ship");
  IngressBlock& block = ingress_blocks_[flow];
  block.words.push_back(word);
  if (block.words.size() < config_.block_size) return OkStatus();

  // Emit the block: k data shuttles + 1 parity shuttle.
  std::int64_t parity = 0;
  for (std::size_t i = 0; i < block.words.size(); ++i) {
    parity ^= block.words[i];
    (void)ingress->SendShuttle(wli::Shuttle::Data(
        config_.ingress, config_.egress,
        {kFecMarker, static_cast<std::int64_t>(block.block_id),
         static_cast<std::int64_t>(i), block.words[i]},
        flow));
  }
  (void)ingress->SendShuttle(wli::Shuttle::Data(
      config_.ingress, config_.egress,
      {kFecMarker, static_cast<std::int64_t>(block.block_id),
       static_cast<std::int64_t>(config_.block_size), parity},
      flow));
  ++parity_sent_;
  ++block.block_id;
  block.words.clear();
  return OkStatus();
}

void FecBooster::OnEgress(wli::Ship& ship, const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() != 4 || shuttle.payload[0] != kFecMarker) return;
  const std::uint64_t flow = shuttle.header.flow_id;
  const auto block_id = static_cast<std::uint64_t>(shuttle.payload[1]);
  const auto index = static_cast<std::uint32_t>(shuttle.payload[2]);
  const std::int64_t word = shuttle.payload[3];

  telemetry::SpanScope span(network_.telemetry(), shuttle.trace,
                            config_.egress, "svc.boosting", "fec_egress");
  EgressBlock& block = egress_blocks_[{flow, block_id}];
  if (index == config_.block_size) {
    block.has_parity = true;
    block.parity = word;
  } else if (block.received.emplace(index, word).second) {
    // Data is transparent: forward immediately; parity exists only to
    // regenerate a missing shuttle.
    ++forwarded_;
    wli::Shuttle onward = wli::Shuttle::Data(
        config_.egress, config_.final_destination, {word}, flow);
    onward.trace = span.context();
    (void)ship.SendShuttle(std::move(onward));
  }

  // Exactly one data shuttle missing and the parity present: rebuild it.
  if (!block.flushed && block.has_parity &&
      block.received.size() == config_.block_size - 1) {
    std::int64_t missing = block.parity;
    std::uint32_t missing_index = 0;
    for (std::uint32_t i = 0; i < config_.block_size; ++i) {
      const auto it = block.received.find(i);
      if (it == block.received.end()) {
        missing_index = i;
      } else {
        missing ^= it->second;
      }
    }
    block.received[missing_index] = missing;
    block.flushed = true;
    ++recovered_;
    ++forwarded_;
    (void)ship.SendShuttle(wli::Shuttle::Data(config_.egress,
                                              config_.final_destination,
                                              {missing}, flow));
  }
}

ArqBooster::ArqBooster(wli::WanderingNetwork& network, const Config& config)
    : network_(network), config_(config) {
  wli::Ship* egress = network_.ship(config_.egress);
  if (egress != nullptr) {
    (void)egress->SwitchRole(node::FirstLevelRole::kDelegation,
                             node::SwitchMechanism::kResidentSoftware);
    egress->SetRoleHandler(
        node::FirstLevelRole::kDelegation,
        [this](wli::Ship& s, const wli::Shuttle& shuttle) {
          OnEgress(s, shuttle);
        });
  }
  wli::Ship* ingress = network_.ship(config_.ingress);
  if (ingress != nullptr) {
    (void)ingress->SwitchRole(node::FirstLevelRole::kNextStep,
                              node::SwitchMechanism::kResidentSoftware);
    ingress->SetRoleHandler(
        node::FirstLevelRole::kNextStep,
        [this](wli::Ship&, const wli::Shuttle& shuttle) {
          OnIngressAck(shuttle);
        });
  }
}

void ArqBooster::Transmit(std::uint64_t flow, std::uint64_t seq) {
  wli::Ship* ingress = network_.ship(config_.ingress);
  const auto it = pending_.find({flow, seq});
  if (ingress == nullptr || it == pending_.end() || it->second.acked) return;
  ++it->second.attempts;
  wli::Shuttle data = wli::Shuttle::Data(
      config_.ingress, config_.egress,
      {kArqData, static_cast<std::int64_t>(seq), it->second.word}, flow);
  data_bytes_sent_ += data.WireSize();
  (void)ingress->SendShuttle(std::move(data));
  ArmTimer(flow, seq);
}

void ArqBooster::ArmTimer(std::uint64_t flow, std::uint64_t seq) {
  network_.simulator().ScheduleAfter(
      config_.retransmit_timeout,
      [this, flow, seq] {
        const auto it = pending_.find({flow, seq});
        if (it == pending_.end() || it->second.acked) return;
        if (it->second.attempts > config_.max_retries) {
          ++given_up_;
          pending_.erase(it);
          return;
        }
        ++retransmissions_;
        Transmit(flow, seq);
      },
      "svc.boosting");
}

Status ArqBooster::SendData(std::uint64_t flow, std::int64_t word) {
  if (network_.ship(config_.ingress) == nullptr) {
    return NotFound("no ingress ship");
  }
  const std::uint64_t seq = next_seq_[flow]++;
  pending_[{flow, seq}] = Pending{word, 0, false};
  Transmit(flow, seq);
  return OkStatus();
}

void ArqBooster::OnEgress(wli::Ship& ship, const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() != 3 || shuttle.payload[0] != kArqData) return;
  const std::uint64_t flow = shuttle.header.flow_id;
  const auto seq = static_cast<std::uint64_t>(shuttle.payload[1]);
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace,
                            config_.egress, "svc.boosting", "arq_egress");
  // ACK every copy (the ACK itself may be lost); forward only once.
  wli::Shuttle ack = wli::Shuttle::Data(
      config_.egress, config_.ingress,
      {kArqAck, static_cast<std::int64_t>(seq)}, flow);
  ack.trace = span.context();
  (void)ship.SendShuttle(std::move(ack));
  if (egress_seen_.insert({flow, seq}).second) {
    wli::Shuttle onward = wli::Shuttle::Data(
        config_.egress, config_.final_destination, {shuttle.payload[2]},
        flow);
    onward.trace = span.context();
    (void)ship.SendShuttle(std::move(onward));
  }
}

void ArqBooster::OnIngressAck(const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() != 2 || shuttle.payload[0] != kArqAck) return;
  const auto it = pending_.find(
      {shuttle.header.flow_id, static_cast<std::uint64_t>(shuttle.payload[1])});
  if (it == pending_.end()) return;  // duplicate ACK for a settled seq
  pending_.erase(it);
  ++acked_;
}

CompressionBooster::CompressionBooster(wli::WanderingNetwork& network,
                                       const Config& config)
    : network_(network), config_(config) {
  wli::Ship* egress = network_.ship(config_.egress);
  if (egress == nullptr) return;
  (void)egress->SwitchRole(node::FirstLevelRole::kDelegation,
                           node::SwitchMechanism::kResidentSoftware);
  egress->SetRoleHandler(
      node::FirstLevelRole::kDelegation,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnEgress(s, shuttle);
      });
}

Status CompressionBooster::SendData(std::uint64_t flow,
                                    std::vector<std::int64_t> payload) {
  wli::Ship* ingress = network_.ship(config_.ingress);
  if (ingress == nullptr) return NotFound("no ingress ship");
  const std::size_t n = payload.size();
  const auto keep = static_cast<std::size_t>(
      std::ceil(config_.ratio * static_cast<double>(n)));
  // Model: the compressed image carries ceil(ratio·n) words; the egress
  // re-expands to the original length (a real booster would decompress the
  // byte stream — the experiments only measure bytes over the segment).
  std::vector<std::int64_t> compressed = {kZipMarker,
                                          static_cast<std::int64_t>(n)};
  compressed.insert(compressed.end(), payload.begin(),
                    payload.begin() + keep);
  bytes_saved_ += (n - keep) * 8;
  return ingress->SendShuttle(wli::Shuttle::Data(
      config_.ingress, config_.egress, std::move(compressed), flow));
}

void CompressionBooster::OnEgress(wli::Ship& ship,
                                  const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() < 2 || shuttle.payload[0] != kZipMarker) return;
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace,
                            config_.egress, "svc.boosting", "unzip");
  const auto n = static_cast<std::size_t>(shuttle.payload[1]);
  std::vector<std::int64_t> expanded(shuttle.payload.begin() + 2,
                                     shuttle.payload.end());
  expanded.resize(n, 0);
  wli::Shuttle onward = wli::Shuttle::Data(
      config_.egress, config_.final_destination, std::move(expanded),
      shuttle.header.flow_id);
  onward.trace = span.context();
  (void)ship.SendShuttle(std::move(onward));
}

}  // namespace viator::services
