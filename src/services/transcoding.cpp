#include "services/transcoding.h"

#include <cmath>

namespace viator::services {

TranscodingService::TranscodingService(wli::WanderingNetwork& network,
                                       net::NodeId node, const Config& config)
    : network_(network),
      node_(node),
      config_(config),
      quality_(config.initial_quality, config.min_quality, 1.0,
               /*increase_step=*/0.05, /*decrease_factor=*/0.7) {
  wli::Ship* ship = network_.ship(node);
  if (ship == nullptr) return;
  (void)ship->SwitchRole(node::FirstLevelRole::kFusion,
                         node::SwitchMechanism::kResidentSoftware);
  // The transcoder fills the fusion slot (it delivers less than it
  // receives) but is classified second-level as kTranscoding.
  ship->SetRoleHandler(
      node::FirstLevelRole::kFusion,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnShuttle(s, shuttle);
      });
  // Close the loop: congestion signals on this node's sessions reduce
  // quality; the absence of congestion lets it creep back up per shuttle.
  subscription_ = network_.feedback().Subscribe(
      wli::FeedbackDimension::kPerSession,
      [this](const wli::FeedbackSignal& signal) {
        if (signal.origin == node_ && signal.value > 0.5) {
          quality_.OnCongestion();
          ++congestion_events_;
        }
      });
}

TranscodingService::~TranscodingService() {
  network_.feedback().Unsubscribe(subscription_);
}

void TranscodingService::OnShuttle(wli::Ship& ship,
                                   const wli::Shuttle& shuttle) {
  if (shuttle.payload.empty()) return;
  words_in_ += shuttle.payload.size();
  network_.demand().Record(node_, node::FirstLevelRole::kFusion, 1.0);

  // Publish the egress backlog on the per-session dimension; our own
  // subscription (and any other QoS manager) reacts to it.
  const std::uint64_t backlog = network_.fabric().QueuedBytesAt(node_);
  network_.feedback().Publish(wli::FeedbackSignal{
      wli::FeedbackDimension::kPerSession, node_, shuttle.header.flow_id,
      backlog > config_.congestion_backlog_bytes ? 1.0 : 0.0,
      network_.simulator().now()});
  if (backlog <= config_.congestion_backlog_bytes) quality_.OnSuccess();

  const double q = quality_.rate();
  const std::size_t keep = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(shuttle.payload.size())));
  std::vector<std::int64_t> transcoded(shuttle.payload.begin(),
                                       shuttle.payload.begin() + keep);
  words_out_ += transcoded.size();
  (void)ship.SendShuttle(wli::Shuttle::Data(node_, config_.sink,
                                            std::move(transcoded),
                                            shuttle.header.flow_id));
}

}  // namespace viator::services
