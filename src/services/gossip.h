// Epidemic knowledge dissemination (PMP, Def. 3(2)): knowledge quanta "can
// be ... transmitted between the ships ... and distributed throughout the
// Wandering Network in an arbitrary manner."
//
// GossipService runs anti-entropy rounds: on each tick every ship sends its
// strongest facts, packed as a knowledge quantum, to `fanout` random up
// neighbors. Receivers absorb the facts (Ship::HandleKnowledge), which also
// refreshes their lifetimes — gossip is simultaneously dissemination and
// the fact-survival mechanism of E7(c). Coverage(key) measures convergence.
#pragma once

#include <cstdint>

#include "base/rng.h"
#include "core/wandering_network.h"

namespace viator::services {

class GossipService {
 public:
  struct Config {
    sim::Duration interval = 500 * sim::kMillisecond;
    std::size_t fanout = 2;           // neighbors contacted per ship/round
    std::size_t facts_per_round = 4;  // strongest facts shared
  };

  GossipService(wli::WanderingNetwork& network, const Config& config,
                Rng rng);

  /// Starts the periodic gossip loop until `until`.
  void Start(sim::TimePoint until);

  /// One synchronous round across all ships (also called by the loop).
  void RunRound();

  /// Fraction of ships currently holding `key`.
  double Coverage(wli::FactKey key) const;

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t shuttles_sent() const { return shuttles_sent_; }

 private:
  wli::WanderingNetwork& network_;
  Config config_;
  Rng rng_;
  std::uint64_t rounds_ = 0;
  std::uint64_t shuttles_sent_ = 0;
};

}  // namespace viator::services
