#include "services/replication.h"

#include "telemetry/telemetry.h"

namespace viator::services {

ForwardAndCopy::ForwardAndCopy(wli::WanderingNetwork& network,
                               net::NodeId node, const Config& config)
    : network_(network), node_(node), config_(config) {
  wli::Ship* ship = network_.ship(node);
  if (ship == nullptr) return;
  (void)ship->SwitchRole(node::FirstLevelRole::kReplication,
                         node::SwitchMechanism::kResidentSoftware);
  ship->SetRoleHandler(
      node::FirstLevelRole::kReplication,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnShuttle(s, shuttle);
      });
}

void ForwardAndCopy::OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle) {
  if (shuttle.payload.empty()) return;
  network_.demand().Record(node_, node::FirstLevelRole::kReplication, 1.0);
  // Forward the original onward. The FaC node addresses shuttles via a
  // 2-word prefix {final_destination, body...}; this keeps the tee
  // transparent without source routing.
  if (shuttle.payload.size() < 2) return;
  const auto final_dst = static_cast<net::NodeId>(shuttle.payload[0]);
  if (final_dst >= network_.topology().node_count()) return;
  std::vector<std::int64_t> body(shuttle.payload.begin() + 1,
                                 shuttle.payload.end());
  const bool matches = config_.flow_filter == 0 ||
                       shuttle.header.flow_id == config_.flow_filter;
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, node_,
                            "svc.replication", "tee");
  ++forwarded_;
  wli::Shuttle onward =
      wli::Shuttle::Data(node_, final_dst, body, shuttle.header.flow_id);
  onward.trace = span.context();
  (void)ship.SendShuttle(std::move(onward));
  if (matches && config_.monitor != net::kInvalidNode) {
    ++copied_;
    wli::Shuttle copy = wli::Shuttle::Data(node_, config_.monitor, body,
                                           shuttle.header.flow_id);
    copy.trace = span.context();
    (void)ship.SendShuttle(std::move(copy));
  }
}

NextStepOracle::NextStepOracle(wli::WanderingNetwork& network,
                               net::NodeId node)
    : network_(network), node_(node) {}

node::FirstLevelRole NextStepOracle::UpdateRegister() {
  wli::Ship* ship = network_.ship(node_);
  node::FirstLevelRole best = ship->os().current_role();
  double best_demand = -1.0;
  for (int r = 0; r < static_cast<int>(node::FirstLevelRole::kRoleCount);
       ++r) {
    const auto role = static_cast<node::FirstLevelRole>(r);
    const double demand = network_.demand().DemandAt(node_, role);
    if (demand > best_demand) {
      best_demand = demand;
      best = role;
    }
  }
  ship->os().set_next_step(best);
  return best;
}

bool NextStepOracle::ApplyNextStep() {
  wli::Ship* ship = network_.ship(node_);
  const node::FirstLevelRole next = ship->os().next_step();
  if (next == ship->os().current_role()) return false;
  if (ship->SwitchRole(next, node::SwitchMechanism::kResidentSoftware).ok()) {
    ++steps_applied_;
    return true;
  }
  return false;
}

}  // namespace viator::services
