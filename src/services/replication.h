// Replication role services (§D, First-Level Profiling additions).
//
// "We assigned two additional roles to the First Level Profiling:
// Replication and Next-Step ... The first two roles ... correspond
// partially to the functions 'Forward and Copy' (FaC) and 'Oracle'
// suggested by Raz and Shavitt to enhance the AN architecture framework."
//
// ForwardAndCopy: a transit tee — shuttles matching a flow predicate are
// forwarded unchanged to their destination *and* copied to a monitoring
// sink ("deploying knowledge-based services such as selective activation of
// the network topology").
//
// NextStepOracle: drives the ship's Next-Step register (Figure 2's
// "internal programmable switch which stores the next node role to come"):
// it watches the ship's own demand mix and programs the register with the
// role the ship should assume next; ApplyNextStep() performs the switch.
#pragma once

#include <cstdint>

#include "core/wandering_network.h"

namespace viator::services {

class ForwardAndCopy {
 public:
  struct Config {
    net::NodeId monitor = net::kInvalidNode;  // copy destination
    std::uint64_t flow_filter = 0;            // 0 = copy every data shuttle
  };

  /// Installs the replication role handler on the ship at `node`; matching
  /// data shuttles addressed to it are re-emitted to their original
  /// destination and a copy goes to the monitor.
  ForwardAndCopy(wli::WanderingNetwork& network, net::NodeId node,
                 const Config& config);

  std::uint64_t copied() const { return copied_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  void OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle);

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  Config config_;
  std::uint64_t copied_ = 0;
  std::uint64_t forwarded_ = 0;
};

class NextStepOracle {
 public:
  /// Watches demand at `node` and keeps the Next-Step register pointing at
  /// the locally hottest first-level role.
  NextStepOracle(wli::WanderingNetwork& network, net::NodeId node);

  /// Re-evaluates demand and programs the register. Returns the chosen role.
  node::FirstLevelRole UpdateRegister();

  /// Executes the stored step: switches the ship to next_step via resident
  /// software. Returns false when already in that role.
  bool ApplyNextStep();

  std::uint64_t steps_applied() const { return steps_applied_; }

 private:
  wli::WanderingNetwork& network_;
  net::NodeId node_;
  std::uint64_t steps_applied_ = 0;
};

}  // namespace viator::services
