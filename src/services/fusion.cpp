#include "services/fusion.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace viator::services {

FusionService::FusionService(wli::WanderingNetwork& network, net::NodeId node,
                             const Config& config)
    : network_(network), node_(node), config_(config) {
  wli::Ship* ship = network_.ship(node);
  if (ship == nullptr) return;
  (void)ship->SwitchRole(node::FirstLevelRole::kFusion,
                         node::SwitchMechanism::kResidentSoftware);
  ship->SetRoleHandler(
      node::FirstLevelRole::kFusion,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnShuttle(s, shuttle);
      });
}

void FusionService::OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle) {
  if (shuttle.payload.empty()) return;
  ++shuttles_in_;
  bytes_in_ += shuttle.WireSize();
  FlowState& flow = flows_[shuttle.header.flow_id];
  for (std::int64_t word : shuttle.payload) {
    if (flow.count == 0) {
      flow.min = word;
      flow.max = word;
    } else {
      flow.min = std::min(flow.min, word);
      flow.max = std::max(flow.max, word);
    }
    ++flow.count;
    flow.sum += word;
  }
  ++flow.seen;
  network_.demand().Record(node_, node::FirstLevelRole::kFusion, 1.0);
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, node_,
                            "svc.fusion", "absorb");
  if (flow.seen < config_.window) return;

  // Emit one aggregate for the whole window (causally attributed to the
  // shuttle that completed it).
  wli::Shuttle aggregate = wli::Shuttle::Data(
      node_, config_.sink, {flow.count, flow.sum, flow.min, flow.max},
      shuttle.header.flow_id);
  aggregate.trace = span.context();
  bytes_out_ += aggregate.WireSize();
  ++shuttles_out_;
  flow = FlowState{};
  (void)ship.SendShuttle(std::move(aggregate));
}

double FusionService::ReductionFactor() const {
  return bytes_out_ == 0 ? 1.0
                         : static_cast<double>(bytes_in_) /
                               static_cast<double>(bytes_out_);
}

}  // namespace viator::services
