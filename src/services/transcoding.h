// Transcoding: "transforming user data / content into another form" (§D),
// used by the paper for "congestion control and local, feedback-enabled
// content-, user- and resource-dependent QoS management".
//
// The transcoder relays media shuttles toward a sink at a quality level
// q ∈ [min_quality, 1]: the forwarded payload keeps ceil(q · n) of the n
// media words. q is governed by an AIMD regulator fed from the per-session
// feedback dimension — the transcoder publishes its own egress backlog and
// reacts to congestion signals, closing the MFP loop.
#pragma once

#include <cstdint>

#include "core/mfp.h"
#include "core/wandering_network.h"

namespace viator::services {

class TranscodingService {
 public:
  struct Config {
    net::NodeId sink = net::kInvalidNode;
    double min_quality = 0.25;
    double initial_quality = 1.0;
    /// Egress backlog (bytes) above which the service reports congestion.
    std::uint64_t congestion_backlog_bytes = 32 * 1024;
  };

  TranscodingService(wli::WanderingNetwork& network, net::NodeId node,
                     const Config& config);
  ~TranscodingService();

  double quality() const { return quality_.rate(); }
  std::uint64_t media_in_words() const { return words_in_; }
  std::uint64_t media_out_words() const { return words_out_; }
  std::uint64_t congestion_events() const { return congestion_events_; }

 private:
  void OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle);

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  Config config_;
  wli::AimdRate quality_;
  wli::FeedbackBus::SubscriptionId subscription_ = 0;
  std::uint64_t words_in_ = 0;
  std::uint64_t words_out_ = 0;
  std::uint64_t congestion_events_ = 0;
};

}  // namespace viator::services
