// Routing control (§D): "overlaying and managing several virtual topologies
// on top of the same physical network infrastructure", treated by Viator as
// the special intra-node class all other roles depend on; and §E's flagship
// application: "a generic adaptive routing protocol for active ad-hoc
// wireless networks" specified with the WLI model.
//
// AdaptiveAdHocRouter is an on-demand distance-vector protocol in the AODV
// family, realized with WLI mechanisms: route discovery floods *control
// shuttles* (active packets), route entries are *facts* with lifetimes
// (routes that are not refreshed expire — PMP fact semantics), and data is
// buffered at the discoverer while discovery runs. StaticRouter is the
// baseline: next hops frozen at construction time, oblivious to mobility.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "base/flat_map.h"
#include "core/wandering_network.h"

namespace viator::services {

/// Baseline: routes computed once over the topology at construction and
/// never updated. Under mobility these go stale, which is the point.
class StaticRouter {
 public:
  explicit StaticRouter(wli::WanderingNetwork& network);

  /// Installs the frozen tables as the network's next-hop chooser.
  void Install();

  net::NodeId NextHop(net::NodeId at, net::NodeId dst) const;

 private:
  wli::WanderingNetwork& network_;
  // tables_[at][dst] = next hop (kInvalidNode when unreachable at snapshot).
  std::vector<std::vector<net::NodeId>> tables_;
};

/// Proactive distance-vector routing over control shuttles: every ship
/// periodically advertises its vector to its neighbors (split horizon);
/// entries age out when unrefreshed, so mobility churn heals within a few
/// advertisement periods. The classic proactive/reactive trade against
/// AdaptiveAdHocRouter: constant background control cost, no discovery
/// latency. One routing service per network.
class DistanceVectorRouter {
 public:
  struct Config {
    sim::Duration advertise_interval = 500 * sim::kMillisecond;
    sim::Duration route_lifetime = 2 * sim::kSecond;  // ~4 missed ads
    std::uint32_t infinity_metric = 64;
  };

  DistanceVectorRouter(wli::WanderingNetwork& network, const Config& config);

  /// Starts the periodic advertisement loop until `until`.
  void Start(sim::TimePoint until);

  /// One synchronous advertisement round across all ships.
  void AdvertiseRound();

  /// Sends an application payload using the current tables (drops when no
  /// route is known — proactive protocols do not buffer).
  Status Send(net::NodeId src, net::NodeId dst,
              std::vector<std::int64_t> payload, std::uint64_t flow);

  bool HasRoute(net::NodeId at, net::NodeId dst) const;
  std::uint32_t MetricTo(net::NodeId at, net::NodeId dst) const;

  std::uint64_t ads_sent() const { return ads_sent_; }
  std::uint64_t control_bytes() const { return control_bytes_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }

  struct Route {
    net::NodeId next_hop = net::kInvalidNode;
    std::uint32_t metric = 0;
    sim::TimePoint expires = 0;
  };

  /// Per-node routing table: probed on every data hop, mutated only on
  /// advertisement/expiry, so a sorted flat vector beats a node-based map.
  /// Iteration stays in ascending destination order — MixDigest folds and
  /// genesis snapshot bytes are identical to the old std::map layout.
  using RouteTable = base::FlatMap<net::NodeId, Route>;

  // ---- Snapshot/restore support (genesis) ----
  const std::vector<RouteTable>& tables() const { return tables_; }
  void RestoreState(std::vector<RouteTable> tables, std::uint64_t ads_sent,
                    std::uint64_t control_bytes,
                    std::uint64_t dropped_no_route) {
    tables_ = std::move(tables);
    ads_sent_ = ads_sent;
    control_bytes_ = control_bytes;
    dropped_no_route_ = dropped_no_route;
  }

  /// Mixes routing tables and control accounting into a rolling state digest
  /// (flight-recorder hook). Route expiries are virtual-time values and thus
  /// replay deterministically, so they are included.
  void MixDigest(Hasher& hasher) const {
    hasher.Mix(ads_sent_);
    hasher.Mix(control_bytes_);
    hasher.Mix(dropped_no_route_);
    hasher.Mix(static_cast<std::uint64_t>(tables_.size()));
    for (const auto& table : tables_) {
      hasher.Mix(static_cast<std::uint64_t>(table.size()));
      for (const auto& [dst, route] : table) {
        hasher.Mix(dst);
        hasher.Mix(route.next_hop);
        hasher.Mix(route.metric);
        hasher.Mix(static_cast<std::uint64_t>(route.expires));
      }
    }
  }

 private:
  // Control payload layout: {kDvAdvert, origin, count, (dst, metric)...}.
  static constexpr std::int64_t kDvAdvert = 3;

  void OnControl(wli::Ship& ship, const wli::Shuttle& shuttle);
  void ExpireStale(net::NodeId at);

  wli::WanderingNetwork& network_;
  Config config_;
  std::vector<RouteTable> tables_;  // per node
  std::uint64_t ads_sent_ = 0;
  std::uint64_t control_bytes_ = 0;
  std::uint64_t dropped_no_route_ = 0;
};

class AdaptiveAdHocRouter {
 public:
  struct Config {
    sim::Duration route_lifetime = 5 * sim::kSecond;
    std::uint8_t max_flood_ttl = 16;
    std::size_t max_buffered_per_node = 64;
    /// Minimum spacing between discovery floods for the same (node, dst)
    /// pair — AODV's RREQ rate limit; prevents flood storms when a
    /// destination is (temporarily) unreachable.
    sim::Duration discovery_backoff = 500 * sim::kMillisecond;
  };

  /// Installs control handlers on every ship and takes over next-hop
  /// selection for data shuttles. Exactly one router per network.
  AdaptiveAdHocRouter(wli::WanderingNetwork& network, const Config& config);

  /// Sends an application payload via adaptive routing (buffers and starts
  /// route discovery when no fresh route exists).
  Status Send(net::NodeId src, net::NodeId dst,
              std::vector<std::int64_t> payload, std::uint64_t flow);

  std::uint64_t rreq_sent() const { return rreq_sent_; }
  std::uint64_t rrep_sent() const { return rrep_sent_; }
  std::uint64_t discoveries() const { return discoveries_; }
  std::uint64_t data_dropped_no_route() const { return dropped_no_route_; }

  /// Control traffic bytes emitted so far (protocol overhead metric).
  std::uint64_t control_bytes() const { return control_bytes_; }

  /// True when `at` currently has a fresh route toward `dst`.
  bool HasRoute(net::NodeId at, net::NodeId dst) const;

 private:
  // Control payload layout: {type, origin, target, request_id, hops}.
  static constexpr std::int64_t kRreq = 1;
  static constexpr std::int64_t kRrep = 2;

  struct Route {
    net::NodeId next_hop = net::kInvalidNode;
    std::uint32_t hops = 0;
    sim::TimePoint expires = 0;
  };

  void OnControl(wli::Ship& ship, const wli::Shuttle& shuttle);
  void StartDiscovery(net::NodeId origin, net::NodeId target);
  void BroadcastControl(net::NodeId from, std::vector<std::int64_t> payload,
                        std::uint8_t ttl);
  net::NodeId ChooseNextHop(net::NodeId at, const wli::Shuttle& shuttle);
  void InstallRoute(net::NodeId at, net::NodeId dst, net::NodeId next_hop,
                    std::uint32_t hops);
  void FlushBuffered(net::NodeId at, net::NodeId dst);

  wli::WanderingNetwork& network_;
  Config config_;
  // Flat sorted tables for the same reason as DistanceVectorRouter: lookup
  // on every hop, mutation only on control events.
  std::vector<base::FlatMap<net::NodeId, Route>> tables_;  // per node
  std::vector<std::set<std::uint64_t>> seen_requests_;     // per node dedupe
  std::vector<base::FlatMap<net::NodeId, std::vector<wli::Shuttle>>> buffered_;
  // Per-node, per-destination earliest next discovery (RREQ rate limit).
  std::vector<base::FlatMap<net::NodeId, sim::TimePoint>> next_discovery_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t rreq_sent_ = 0;
  std::uint64_t rrep_sent_ = 0;
  std::uint64_t discoveries_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t control_bytes_ = 0;
};

}  // namespace viator::services
