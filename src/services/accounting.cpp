#include "services/accounting.h"

namespace viator::services {

AccountingService::AccountingService(wli::WanderingNetwork& network,
                                     const Tariff& tariff,
                                     sim::Duration interval)
    : network_(network), tariff_(tariff), interval_(interval) {}

void AccountingService::MeterOnce() {
  ++passes_;
  network_.ForEachShip([this](wli::Ship& ship) {
    Baseline& baseline = baselines_[ship.id()];
    Charges& charges = charges_[ship.id()];

    const std::uint64_t fuel = ship.os().resources().total_fuel_used();
    const std::uint64_t shuttles = ship.shuttles_consumed();
    const std::uint64_t switches = ship.os().role_switches();

    charges.fuel_credits +=
        (fuel - baseline.fuel) * tariff_.per_megafuel / 1'000'000;
    charges.shuttle_credits +=
        (shuttles - baseline.shuttles) * tariff_.per_shuttle_consumed;
    charges.reconfig_credits +=
        (switches - baseline.switches) * tariff_.per_role_switch;
    // Cache residency is a level, not a delta: charged per pass.
    charges.cache_credits +=
        ship.os().code_cache().bytes_used() / 1024 *
        tariff_.per_kib_code_cached;

    baseline.fuel = fuel;
    baseline.shuttles = shuttles;
    baseline.switches = switches;
  });
}

void AccountingService::Start(sim::TimePoint until) {
  network_.simulator().ScheduleAfter(interval_, [this, until] {
    MeterOnce();
    if (network_.simulator().now() + interval_ <= until) {
      Start(until);
    }
  });
}

AccountingService::Charges AccountingService::ChargesFor(
    net::NodeId ship) const {
  const auto it = charges_.find(ship);
  return it == charges_.end() ? Charges{} : it->second;
}

std::uint64_t AccountingService::TotalBilled() const {
  std::uint64_t total = 0;
  for (const auto& [ship, charges] : charges_) total += charges.total();
  return total;
}

}  // namespace viator::services
