// Delegation: "the active node is performing tasks on behalf of another
// active node ... e.g. becoming a unified messaging node which migrates
// closer to a nomadic user while she moves" (§D).
//
// NomadicDelegation deploys a unified-messaging function and keeps it near a
// roaming user: whenever the user's attachment point drifts more than
// `max_distance_hops` from the function's host, the function migrates (as a
// real code shuttle through WanderingNetwork::MigrateFunction). User
// requests are answered by the current host; the E6 bench compares request
// RTT against a pinned (non-nomadic) deployment.
#pragma once

#include <cstdint>

#include "core/wandering_network.h"

namespace viator::services {

/// Payload opcodes of the delegation request/reply protocol.
inline constexpr std::int64_t kDelegationRequest = 1;
inline constexpr std::int64_t kDelegationReply = 2;

class NomadicDelegation {
 public:
  struct Config {
    std::uint32_t max_distance_hops = 1;  // migrate when farther than this
  };

  /// Deploys the messaging function at `initial_host` and installs request
  /// handlers on every ship (any ship can end up hosting it).
  NomadicDelegation(wli::WanderingNetwork& network, net::NodeId initial_host,
                    const Config& config);

  /// Reports that the user now attaches at `attach`; migrates if too far.
  void UserMovedTo(net::NodeId attach);

  /// Sends a user request from the attachment point to the current host.
  /// The host's handler answers with a reply shuttle to the requester.
  Status SendRequest(net::NodeId attach, std::uint64_t request_id);

  net::NodeId host() const;
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t requests_answered() const { return requests_answered_; }

  wli::FunctionId function_id() const { return function_id_; }

 private:
  void OnRequest(wli::Ship& ship, const wli::Shuttle& shuttle);

  wli::WanderingNetwork& network_;
  Config config_;
  wli::FunctionId function_id_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t requests_answered_ = 0;
};

}  // namespace viator::services
