#include "services/supplementary.h"

namespace viator::services {

ContentBuffer::ContentBuffer(wli::WanderingNetwork& network, net::NodeId node,
                             const Config& config)
    : network_(network), node_(node), config_(config) {
  wli::Ship* ship = network_.ship(node);
  if (ship == nullptr) return;
  (void)ship->SwitchRole(node::FirstLevelRole::kReplication,
                         node::SwitchMechanism::kResidentSoftware);
  ship->SetRoleHandler(
      node::FirstLevelRole::kReplication,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnShuttle(s, shuttle);
      });
}

void ContentBuffer::OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle) {
  network_.demand().Record(node_, node::FirstLevelRole::kReplication, 1.0);
  if (shuttle.payload.empty() || shuttle.payload[0] != config_.match_tag) {
    // Non-matching content passes straight through to the sink.
    wli::Shuttle copy = shuttle;
    copy.header.source = node_;
    copy.header.destination = config_.sink;
    ++passed_through_;
    (void)ship.SendShuttle(std::move(copy));
    return;
  }
  wli::Shuttle held = shuttle;
  held.header.source = node_;
  held.header.destination = config_.sink;
  held_.push_back(std::move(held));
  ++buffered_total_;
  if (held_.size() == 1) {
    timeout_event_ = network_.simulator().ScheduleAfter(
        config_.timeout, [this] { Release(); });
  }
  if (held_.size() >= config_.batch_size) {
    timeout_event_.Cancel();
    Release();
  }
}

void ContentBuffer::Release() {
  if (held_.empty()) return;
  wli::Ship* ship = network_.ship(node_);
  if (ship == nullptr) return;
  std::vector<wli::Shuttle> batch = std::move(held_);
  held_.clear();
  ++batches_released_;
  for (wli::Shuttle& shuttle : batch) {
    (void)ship->SendShuttle(std::move(shuttle));
  }
}

}  // namespace viator::services
