#include "services/fission.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace viator::services {

FissionService::FissionService(wli::WanderingNetwork& network,
                               net::NodeId node)
    : network_(network), node_(node) {
  wli::Ship* ship = network_.ship(node);
  if (ship == nullptr) return;
  (void)ship->SwitchRole(node::FirstLevelRole::kFission,
                         node::SwitchMechanism::kResidentSoftware);
  ship->SetRoleHandler(
      node::FirstLevelRole::kFission,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnShuttle(s, shuttle);
      });
}

void FissionService::Subscribe(std::uint64_t group, net::NodeId subscriber) {
  auto& members = groups_[group];
  if (std::find(members.begin(), members.end(), subscriber) ==
      members.end()) {
    members.push_back(subscriber);
  }
}

void FissionService::Unsubscribe(std::uint64_t group, net::NodeId subscriber) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.erase(
      std::remove(it->second.begin(), it->second.end(), subscriber),
      it->second.end());
}

std::size_t FissionService::SubscriberCount(std::uint64_t group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

void FissionService::OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle) {
  const auto it = groups_.find(shuttle.header.flow_id);
  if (it == groups_.end()) return;
  network_.demand().Record(node_, node::FirstLevelRole::kFission,
                           static_cast<double>(it->second.size()));
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, node_,
                            "svc.fission", "multicast");
  std::uint64_t branch = 0;
  for (net::NodeId subscriber : it->second) {
    wli::Shuttle copy = shuttle;
    copy.header.source = node_;
    copy.header.destination = subscriber;
    copy.header.ttl = 64;
    copy.trace = span.context();
    ++duplicated_;
    network_.feedback().Publish(wli::FeedbackSignal{
        wli::FeedbackDimension::kPerMulticastBranch, node_, branch++, 1.0,
        network_.simulator().now()});
    (void)ship.SendShuttle(std::move(copy));
  }
}

}  // namespace viator::services
