#include "services/routing.h"

#include "telemetry/telemetry.h"

namespace viator::services {

StaticRouter::StaticRouter(wli::WanderingNetwork& network)
    : network_(network) {
  const std::size_t n = network_.topology().node_count();
  tables_.assign(n, std::vector<net::NodeId>(n, net::kInvalidNode));
  for (net::NodeId src = 0; src < n; ++src) {
    for (net::NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      tables_[src][dst] = network_.topology().NextHop(src, dst);
    }
  }
}

net::NodeId StaticRouter::NextHop(net::NodeId at, net::NodeId dst) const {
  if (at >= tables_.size() || dst >= tables_[at].size()) {
    return net::kInvalidNode;
  }
  return tables_[at][dst];
}

void StaticRouter::Install() {
  network_.SetNextHopChooser(
      [this](net::NodeId at, const wli::Shuttle& shuttle) -> net::NodeId {
        if (shuttle.header.kind != wli::ShuttleKind::kData) {
          return net::kInvalidNode;  // control traffic: live shortest path
        }
        const net::NodeId next = NextHop(at, shuttle.header.destination);
        // A frozen table can name a next hop whose link has since vanished;
        // the send will fail at the fabric, which is the staleness cost the
        // baseline is supposed to exhibit. An unreachable-at-snapshot entry
        // is absorbed (dropped) rather than falling back to fresh paths.
        return next == net::kInvalidNode ? at : next;
      });
}

DistanceVectorRouter::DistanceVectorRouter(wli::WanderingNetwork& network,
                                           const Config& config)
    : network_(network), config_(config) {
  tables_.resize(network_.topology().node_count());
  network_.ForEachShip([this](wli::Ship& ship) {
    // Self-route anchors the vector.
    tables_[ship.id()][ship.id()] =
        Route{ship.id(), 0, sim::TimePoint(~0ULL)};
    ship.SetControlHandler(
        [this](wli::Ship& s, const wli::Shuttle& shuttle) {
          OnControl(s, shuttle);
        });
  });
  network_.SetNextHopChooser(
      [this](net::NodeId at, const wli::Shuttle& shuttle) -> net::NodeId {
        if (shuttle.header.kind != wli::ShuttleKind::kData) {
          return net::kInvalidNode;  // control ads are single-hop
        }
        ExpireStale(at);
        const auto it = tables_[at].find(shuttle.header.destination);
        if (it == tables_[at].end() ||
            !network_.topology().FindLink(at, it->second.next_hop)
                 .has_value()) {
          ++dropped_no_route_;
          return at;  // absorbed (dropped): proactive, no buffering
        }
        return it->second.next_hop;
      });
}

void DistanceVectorRouter::ExpireStale(net::NodeId at) {
  const sim::TimePoint now = network_.simulator().now();
  for (auto it = tables_[at].begin(); it != tables_[at].end();) {
    if (it->first != at && it->second.expires < now) {
      it = tables_[at].erase(it);
    } else {
      ++it;
    }
  }
}

void DistanceVectorRouter::AdvertiseRound() {
  network_.ForEachShip([this](wli::Ship& ship) {
    const net::NodeId at = ship.id();
    ExpireStale(at);
    for (net::NodeId neighbor : network_.topology().Neighbors(at)) {
      // Split horizon: do not advertise routes learned via this neighbor.
      std::vector<std::int64_t> payload = {kDvAdvert,
                                           static_cast<std::int64_t>(at), 0};
      for (const auto& [dst, route] : tables_[at]) {
        if (route.next_hop == neighbor && dst != at) continue;
        if (route.metric >= config_.infinity_metric) continue;
        payload.push_back(static_cast<std::int64_t>(dst));
        payload.push_back(static_cast<std::int64_t>(route.metric));
      }
      payload[2] = static_cast<std::int64_t>((payload.size() - 3) / 2);
      wli::Shuttle ad;
      ad.header.source = at;
      ad.header.destination = neighbor;
      ad.header.kind = wli::ShuttleKind::kControl;
      ad.payload = std::move(payload);
      control_bytes_ += ad.WireSize();
      ++ads_sent_;
      (void)network_.Dispatch(at, std::move(ad));
    }
  });
}

void DistanceVectorRouter::OnControl(wli::Ship& ship,
                                     const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() < 3 || shuttle.payload[0] != kDvAdvert) return;
  const net::NodeId at = ship.id();
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, at,
                            "svc.routing", "dv_advert");
  const net::NodeId from = static_cast<net::NodeId>(shuttle.payload[1]);
  const auto count = static_cast<std::size_t>(shuttle.payload[2]);
  if (shuttle.payload.size() < 3 + 2 * count) return;
  const sim::TimePoint now = network_.simulator().now();
  for (std::size_t i = 0; i < count; ++i) {
    const auto dst = static_cast<net::NodeId>(shuttle.payload[3 + 2 * i]);
    const auto metric =
        static_cast<std::uint32_t>(shuttle.payload[4 + 2 * i]) + 1;
    if (dst == at || metric >= config_.infinity_metric) continue;
    Route& route = tables_[at][dst];
    const bool stale = route.expires < now;
    if (route.next_hop == net::kInvalidNode || stale ||
        metric < route.metric || route.next_hop == from) {
      route.next_hop = from;
      route.metric = metric;
      route.expires = now + config_.route_lifetime;
    }
  }
}

void DistanceVectorRouter::Start(sim::TimePoint until) {
  network_.simulator().ScheduleAfter(
      config_.advertise_interval,
      [this, until] {
        AdvertiseRound();
        if (network_.simulator().now() + config_.advertise_interval <=
            until) {
          Start(until);
        }
      },
      "svc.routing");
}

Status DistanceVectorRouter::Send(net::NodeId src, net::NodeId dst,
                                  std::vector<std::int64_t> payload,
                                  std::uint64_t flow) {
  return network_.Inject(
      wli::Shuttle::Data(src, dst, std::move(payload), flow));
}

bool DistanceVectorRouter::HasRoute(net::NodeId at, net::NodeId dst) const {
  if (at >= tables_.size()) return false;
  const auto it = tables_[at].find(dst);
  return it != tables_[at].end() &&
         it->second.expires >= network_.simulator().now();
}

std::uint32_t DistanceVectorRouter::MetricTo(net::NodeId at,
                                             net::NodeId dst) const {
  if (at >= tables_.size()) return ~0u;
  const auto it = tables_[at].find(dst);
  return it == tables_[at].end() ? ~0u : it->second.metric;
}

AdaptiveAdHocRouter::AdaptiveAdHocRouter(wli::WanderingNetwork& network,
                                         const Config& config)
    : network_(network), config_(config) {
  const std::size_t n = network_.topology().node_count();
  tables_.resize(n);
  seen_requests_.resize(n);
  buffered_.resize(n);
  next_discovery_.resize(n);

  network_.ForEachShip([this](wli::Ship& ship) {
    ship.SetControlHandler(
        [this](wli::Ship& s, const wli::Shuttle& shuttle) {
          OnControl(s, shuttle);
        });
  });

  network_.SetNextHopChooser(
      [this](net::NodeId at, const wli::Shuttle& shuttle) -> net::NodeId {
        if (shuttle.header.kind != wli::ShuttleKind::kData) {
          return net::kInvalidNode;  // control shuttles are single-hop
        }
        return ChooseNextHop(at, shuttle);
      });
}

bool AdaptiveAdHocRouter::HasRoute(net::NodeId at, net::NodeId dst) const {
  if (at >= tables_.size()) return false;
  const auto it = tables_[at].find(dst);
  return it != tables_[at].end() &&
         it->second.expires >= network_.simulator().now();
}

void AdaptiveAdHocRouter::InstallRoute(net::NodeId at, net::NodeId dst,
                                       net::NodeId next_hop,
                                       std::uint32_t hops) {
  // Keep the better (fresher or shorter) route.
  Route& route = tables_[at][dst];
  const sim::TimePoint now = network_.simulator().now();
  if (route.expires >= now && route.hops < hops &&
      route.next_hop != net::kInvalidNode) {
    return;
  }
  route.next_hop = next_hop;
  route.hops = hops;
  route.expires = now + config_.route_lifetime;
}

net::NodeId AdaptiveAdHocRouter::ChooseNextHop(net::NodeId at,
                                               const wli::Shuttle& shuttle) {
  const net::NodeId dst = shuttle.header.destination;
  const sim::TimePoint now = network_.simulator().now();
  auto it = tables_[at].find(dst);
  if (it != tables_[at].end() && it->second.expires >= now) {
    // Validate the next hop is still a neighbor (mobility breaks links).
    if (network_.topology().FindLink(at, it->second.next_hop).has_value()) {
      it->second.expires = now + config_.route_lifetime;  // route is active
      return it->second.next_hop;
    }
    tables_[at].erase(it);
    // A broken route is fresh information: lift the RREQ rate limit so the
    // repair flood can start immediately.
    next_discovery_[at].erase(dst);
  }
  // No usable route: buffer the shuttle and discover.
  auto& queue = buffered_[at][dst];
  if (queue.size() >= config_.max_buffered_per_node) {
    ++dropped_no_route_;
    return at;  // absorbed (dropped under buffer pressure)
  }
  queue.push_back(shuttle);
  StartDiscovery(at, dst);
  return at;  // absorbed (buffered)
}

void AdaptiveAdHocRouter::StartDiscovery(net::NodeId origin,
                                         net::NodeId target) {
  // RREQ rate limit: a pending discovery for this destination is already in
  // flight (or recently failed); buffered traffic rides its outcome.
  const sim::TimePoint now = network_.simulator().now();
  auto& gate = next_discovery_[origin][target];
  if (now < gate) return;
  gate = now + config_.discovery_backoff;
  ++discoveries_;
  const std::uint64_t request_id = next_request_id_++;
  seen_requests_[origin].insert(request_id);
  BroadcastControl(origin,
                   {kRreq, static_cast<std::int64_t>(origin),
                    static_cast<std::int64_t>(target),
                    static_cast<std::int64_t>(request_id), 0},
                   config_.max_flood_ttl);
  ++rreq_sent_;
}

void AdaptiveAdHocRouter::BroadcastControl(net::NodeId from,
                                           std::vector<std::int64_t> payload,
                                           std::uint8_t ttl) {
  for (net::NodeId neighbor : network_.topology().Neighbors(from)) {
    wli::Shuttle control;
    control.header.source = from;
    control.header.destination = neighbor;
    control.header.kind = wli::ShuttleKind::kControl;
    control.header.ttl = ttl;
    control.payload = payload;
    control_bytes_ += control.WireSize();
    (void)network_.Dispatch(from, std::move(control));
  }
}

void AdaptiveAdHocRouter::OnControl(wli::Ship& ship,
                                    const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() != 5) return;
  const std::int64_t type = shuttle.payload[0];
  const auto origin = static_cast<net::NodeId>(shuttle.payload[1]);
  const auto target = static_cast<net::NodeId>(shuttle.payload[2]);
  const auto request_id = static_cast<std::uint64_t>(shuttle.payload[3]);
  const auto hops = static_cast<std::uint32_t>(shuttle.payload[4]);
  const net::NodeId at = ship.id();
  const net::NodeId prev_hop = shuttle.header.source;
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, at,
                            "svc.routing", type == kRreq ? "rreq" : "rrep");

  if (type == kRreq) {
    // Reverse route toward the discovery origin.
    InstallRoute(at, origin, prev_hop, hops + 1);
    if (!seen_requests_[at].insert(request_id).second) return;  // duplicate
    if (at == target) {
      // Answer: RREP travels back along reverse routes.
      const auto reverse = tables_[at].find(origin);
      if (reverse == tables_[at].end()) return;
      wli::Shuttle reply;
      reply.header.source = at;
      reply.header.destination = reverse->second.next_hop;
      reply.header.kind = wli::ShuttleKind::kControl;
      reply.payload = {kRrep, static_cast<std::int64_t>(origin),
                       static_cast<std::int64_t>(target),
                       static_cast<std::int64_t>(request_id), 0};
      control_bytes_ += reply.WireSize();
      ++rrep_sent_;
      (void)network_.Dispatch(at, std::move(reply));
      return;
    }
    if (hops + 1 >= config_.max_flood_ttl) return;
    BroadcastControl(at,
                     {kRreq, shuttle.payload[1], shuttle.payload[2],
                      shuttle.payload[3],
                      static_cast<std::int64_t>(hops + 1)},
                     static_cast<std::uint8_t>(config_.max_flood_ttl));
    return;
  }

  if (type == kRrep) {
    // Forward route toward the discovery target.
    InstallRoute(at, target, prev_hop, hops + 1);
    if (at == origin) {
      FlushBuffered(at, target);
      return;
    }
    const auto reverse = tables_[at].find(origin);
    if (reverse == tables_[at].end()) return;
    wli::Shuttle forward;
    forward.header.source = at;
    forward.header.destination = reverse->second.next_hop;
    forward.header.kind = wli::ShuttleKind::kControl;
    forward.payload = {kRrep, shuttle.payload[1], shuttle.payload[2],
                       shuttle.payload[3],
                       static_cast<std::int64_t>(hops + 1)};
    control_bytes_ += forward.WireSize();
    ++rrep_sent_;
    (void)network_.Dispatch(at, std::move(forward));
  }
}

void AdaptiveAdHocRouter::FlushBuffered(net::NodeId at, net::NodeId dst) {
  const auto it = buffered_[at].find(dst);
  if (it == buffered_[at].end()) return;
  std::vector<wli::Shuttle> queue = std::move(it->second);
  buffered_[at].erase(it);
  for (wli::Shuttle& shuttle : queue) {
    (void)network_.Dispatch(at, std::move(shuttle));
  }
}

Status AdaptiveAdHocRouter::Send(net::NodeId src, net::NodeId dst,
                                 std::vector<std::int64_t> payload,
                                 std::uint64_t flow) {
  return network_.Inject(
      wli::Shuttle::Data(src, dst, std::move(payload), flow));
}

}  // namespace viator::services
