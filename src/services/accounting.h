// Accounting (network-management class: "event reporting, accounting,
// configuration management and workload monitoring"; §C names billing as a
// use of the network's long-term memory).
//
// AccountingService samples every ship's resource consumption (VM fuel,
// code-cache bytes, shuttles served) on a fixed cadence and accumulates
// per-ship charge records against a configurable tariff. The result is the
// billing view of the Wandering Network: who consumed what, and what the
// wandering functions cost where they ran.
#pragma once

#include <cstdint>
#include <map>

#include "core/wandering_network.h"

namespace viator::services {

/// Price table. Units are nano-credits to keep everything integral.
struct Tariff {
  std::uint64_t per_megafuel = 50;        // per 1e6 VM fuel units
  std::uint64_t per_kib_code_cached = 2;  // per KiB resident code
  std::uint64_t per_shuttle_consumed = 1;
  std::uint64_t per_role_switch = 10;
};

class AccountingService {
 public:
  struct Charges {
    std::uint64_t fuel_credits = 0;
    std::uint64_t cache_credits = 0;
    std::uint64_t shuttle_credits = 0;
    std::uint64_t reconfig_credits = 0;
    std::uint64_t total() const {
      return fuel_credits + cache_credits + shuttle_credits +
             reconfig_credits;
    }
  };

  AccountingService(wli::WanderingNetwork& network, const Tariff& tariff,
                    sim::Duration interval);

  /// Starts the periodic metering loop until `until`.
  void Start(sim::TimePoint until);

  /// One metering pass (also called by the loop): charges each ship for
  /// consumption since its previous pass.
  void MeterOnce();

  /// Accumulated charges for one ship.
  Charges ChargesFor(net::NodeId ship) const;

  /// Total credits billed across the network.
  std::uint64_t TotalBilled() const;

  std::uint64_t metering_passes() const { return passes_; }

 private:
  struct Baseline {
    std::uint64_t fuel = 0;
    std::uint64_t shuttles = 0;
    std::uint64_t switches = 0;
  };

  wli::WanderingNetwork& network_;
  Tariff tariff_;
  sim::Duration interval_;
  std::map<net::NodeId, Charges> charges_;
  std::map<net::NodeId, Baseline> baselines_;
  std::uint64_t passes_ = 0;
};

}  // namespace viator::services
