#include "services/gossip.h"

#include "core/knowledge.h"

namespace viator::services {

GossipService::GossipService(wli::WanderingNetwork& network,
                             const Config& config, Rng rng)
    : network_(network), config_(config), rng_(rng) {}

void GossipService::RunRound() {
  ++rounds_;
  network_.ForEachShip([this](wli::Ship& ship) {
    const auto strongest = ship.facts().TopByWeight(config_.facts_per_round);
    if (strongest.empty()) return;
    wli::KnowledgeQuantum kq;
    kq.function.id = 0;  // pure fact carriage, no function installation
    kq.function.name = "gossip";
    for (const auto& fact : strongest) {
      kq.facts.push_back({fact.key, fact.value, fact.weight});
    }
    const auto genome = wli::EncodeKnowledgeQuantum(kq);

    auto neighbors = network_.topology().Neighbors(ship.id());
    for (std::size_t pick = 0;
         pick < config_.fanout && !neighbors.empty(); ++pick) {
      const std::size_t index = rng_.Index(neighbors.size());
      const net::NodeId peer = neighbors[index];
      neighbors.erase(neighbors.begin() + index);  // without replacement
      wli::Shuttle s;
      s.header.source = ship.id();
      s.header.destination = peer;
      s.header.kind = wli::ShuttleKind::kKnowledge;
      s.genome = genome;
      ++shuttles_sent_;
      (void)ship.SendShuttle(std::move(s));
    }
  });
}

void GossipService::Start(sim::TimePoint until) {
  network_.simulator().ScheduleAfter(config_.interval, [this, until] {
    RunRound();
    if (network_.simulator().now() + config_.interval <= until) {
      Start(until);
    }
  });
}

double GossipService::Coverage(wli::FactKey key) const {
  std::size_t holders = 0;
  std::size_t population = 0;
  const_cast<wli::WanderingNetwork&>(network_).ForEachShip(
      [&](wli::Ship& ship) {
        ++population;
        holders += ship.facts().Find(key) != nullptr;
      });
  return population == 0
             ? 0.0
             : static_cast<double>(holders) / static_cast<double>(population);
}

}  // namespace viator::services
