// Supplementary services (§D): "adding new features to the packets without
// altering, but depending on, their contents, e.g. content-based buffering."
//
// ContentBuffer holds data shuttles whose leading payload word matches a
// predicate value until either `batch_size` matching shuttles accumulated or
// `timeout` passed, then releases them to their destination in one burst —
// trading latency for downstream burst efficiency (and giving the E2/E3
// workload one more distinct second-level class to exercise).
#pragma once

#include <cstdint>
#include <vector>

#include "core/wandering_network.h"

namespace viator::services {

class ContentBuffer {
 public:
  struct Config {
    net::NodeId sink = net::kInvalidNode;
    std::int64_t match_tag = 0;       // buffer shuttles whose payload[0] == tag
    std::size_t batch_size = 8;
    sim::Duration timeout = 100 * sim::kMillisecond;
  };

  ContentBuffer(wli::WanderingNetwork& network, net::NodeId node,
                const Config& config);

  std::uint64_t buffered_total() const { return buffered_total_; }
  std::uint64_t batches_released() const { return batches_released_; }
  std::uint64_t passed_through() const { return passed_through_; }

 private:
  void OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle);
  void Release();

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  Config config_;
  std::vector<wli::Shuttle> held_;
  sim::EventHandle timeout_event_;
  std::uint64_t buffered_total_ = 0;
  std::uint64_t batches_released_ = 0;
  std::uint64_t passed_through_ = 0;
};

}  // namespace viator::services
