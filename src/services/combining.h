// Combining (Kulkarni & Minden's second protocol class): "joining packets
// from the same stream or from different streams."
//
// Where fusion *aggregates values* within one flow, the combiner
// *multiplexes shuttles* across flows: shuttles headed for the same sink
// that arrive within a window are packed into one carrier shuttle, saving
// the per-shuttle header cost on every downstream hop; a peer demuxer at
// the sink side restores the original shuttles. The gain is
// (n·header)/(header + n·body) — biggest for small payloads, which is
// exactly the telemetry/sensor case the paper's fusion-server motivation
// describes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wandering_network.h"

namespace viator::services {

/// Leading payload word identifying a mux carrier shuttle.
inline constexpr std::int64_t kMuxMarker = 0x30c;

class CombiningService {
 public:
  struct Config {
    net::NodeId sink = net::kInvalidNode;  // where the demuxer lives
    std::size_t batch_size = 8;            // shuttles per carrier
    sim::Duration window = 50 * sim::kMillisecond;
  };

  /// Installs the combiner (fission role slot) at `node` and the demuxer
  /// (delegation role slot) at `config.sink`. Demuxed shuttles surface at
  /// the sink's delivery sink with their original flow ids.
  CombiningService(wli::WanderingNetwork& network, net::NodeId node,
                   const Config& config);

  std::uint64_t shuttles_in() const { return shuttles_in_; }
  std::uint64_t carriers_out() const { return carriers_out_; }
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }
  std::uint64_t demuxed() const { return demuxed_; }

  /// Header-byte savings so far (bytes_in - bytes_out).
  std::int64_t BytesSaved() const {
    return static_cast<std::int64_t>(bytes_in_) -
           static_cast<std::int64_t>(bytes_out_);
  }

 private:
  void OnCombine(wli::Ship& ship, const wli::Shuttle& shuttle);
  void OnDemux(wli::Ship& ship, const wli::Shuttle& shuttle);
  void Flush();

  struct Held {
    std::uint64_t flow = 0;
    std::vector<std::int64_t> payload;
  };

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  Config config_;
  std::vector<Held> held_;
  sim::EventHandle window_timer_;
  std::uint64_t shuttles_in_ = 0;
  std::uint64_t carriers_out_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::uint64_t demuxed_ = 0;
};

}  // namespace viator::services
