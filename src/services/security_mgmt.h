// Security + network management — the merged class of §D ("we combined the
// security and network management classes into one single class").
//
// * CapsuleAuthority signs code shuttles with the community key (the ships
//   verify tags on admission — see Ship::HandleCodeShuttle).
// * WorkloadMonitor periodically publishes per-node feedback (egress
//   backlog, consumption) — the "workload monitoring" management function.
// * SelfHealingCoordinator implements footnote 18's self-healing network:
//   it checkpoints ship genomes ("the (centralized) long term memory of the
//   network"), watches for node failures, and reconstructs the dead node's
//   functions on a live neighbor via genetic transcoding, measuring the
//   recovery time the E9 bench reports.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/genetic_transcoder.h"
#include "core/wandering_network.h"
#include "net/failure.h"

namespace viator::services {

/// Helper that signs shuttles carrying code with the network's capsule key.
class CapsuleAuthority {
 public:
  explicit CapsuleAuthority(std::uint64_t key) : key_(key) {}

  /// Computes and installs the authorization tag for a code shuttle.
  void Sign(wli::Shuttle& shuttle) const;

  /// True iff the shuttle's tag matches its code image under this key.
  bool Check(const wli::Shuttle& shuttle) const;

 private:
  std::uint64_t key_;
};

/// Periodic management telemetry on the per-node feedback dimension.
class WorkloadMonitor {
 public:
  WorkloadMonitor(wli::WanderingNetwork& network, sim::Duration interval);

  /// Starts the periodic sampling loop until `until`.
  void Start(sim::TimePoint until);

  std::uint64_t samples_published() const { return samples_; }

 private:
  void SampleOnce();

  wli::WanderingNetwork& network_;
  sim::Duration interval_;
  std::uint64_t samples_ = 0;
};

/// Detects node failures and regrows their functions elsewhere.
class SelfHealingCoordinator {
 public:
  struct Config {
    /// Time from physical failure to detection (monitoring latency).
    sim::Duration detection_delay = 50 * sim::kMillisecond;
  };

  SelfHealingCoordinator(wli::WanderingNetwork& network, const Config& config);

  /// Snapshots every ship's genome into the network's long-term memory.
  void CheckpointAll();

  /// Hook this into a FailureInjector's observer. On "node down", schedules
  /// detection + healing.
  void OnFailureEvent(const char* kind, std::uint32_t id, bool up);

  /// Immediately reconstructs the functions of `dead` on a live neighbor
  /// from the last checkpoint (genetic transcoding). Returns the number of
  /// functions regrown.
  std::size_t Heal(net::NodeId dead);

  std::uint64_t heals() const { return heals_; }
  std::uint64_t functions_regrown() const { return functions_regrown_; }
  /// Simulated time of the most recent completed heal (for recovery-time
  /// measurements).
  sim::TimePoint last_heal_time() const { return last_heal_time_; }

 private:
  wli::WanderingNetwork& network_;
  Config config_;
  std::map<net::NodeId, std::vector<std::byte>> checkpoints_;
  std::uint64_t heals_ = 0;
  std::uint64_t functions_regrown_ = 0;
  sim::TimePoint last_heal_time_ = 0;
};

}  // namespace viator::services
