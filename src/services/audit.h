// SRP community auditing.
//
// Definition 2(1): ships must display honest self-descriptions "otherwise
// they are excluded from the community". AuditService closes that loop
// automatically: on a fixed cadence it samples ships, compares each ship's
// *advertised* descriptor digest against the digest recomputed from its
// actual genome, and reports the outcome to the network's ReputationSystem.
// Dishonest ships drift below the exclusion threshold and lose transport
// service (WanderingNetwork::Dispatch refuses excluded sources).
#pragma once

#include <cstdint>

#include "base/rng.h"
#include "core/wandering_network.h"

namespace viator::services {

class AuditService {
 public:
  struct Config {
    sim::Duration interval = 250 * sim::kMillisecond;
    std::size_t samples_per_round = 4;  // ships audited per round
  };

  AuditService(wli::WanderingNetwork& network, const Config& config, Rng rng);

  /// Starts the periodic audit loop until `until`.
  void Start(sim::TimePoint until);

  /// One audit round (also called by the loop). Returns the number of
  /// dishonest ships caught this round.
  std::size_t RunRound();

  std::uint64_t audits() const { return audits_; }
  std::uint64_t violations() const { return violations_; }

 private:
  bool AuditShip(wli::Ship& ship);

  wli::WanderingNetwork& network_;
  Config config_;
  Rng rng_;
  std::uint64_t audits_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace viator::services
