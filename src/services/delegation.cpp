#include "services/delegation.h"

#include "telemetry/telemetry.h"

namespace viator::services {

NomadicDelegation::NomadicDelegation(wli::WanderingNetwork& network,
                                     net::NodeId initial_host,
                                     const Config& config)
    : network_(network), config_(config) {
  wli::NetFunction fn;
  fn.name = "unified-messaging";
  fn.role = node::FirstLevelRole::kDelegation;
  fn.cls = node::SecondLevelClass::kBoosting;
  function_id_ = network_.DeployFunction(initial_host, fn);

  // Any ship may become the host after a migration, so every ship gets the
  // delegation handler; only the ship actually hosting the function (and
  // holding the delegation role) will receive user requests.
  network_.ForEachShip([this](wli::Ship& ship) {
    ship.SetRoleHandler(
        node::FirstLevelRole::kDelegation,
        [this](wli::Ship& s, const wli::Shuttle& shuttle) {
          OnRequest(s, shuttle);
        });
  });
}

net::NodeId NomadicDelegation::host() const {
  const auto it = network_.placements().find(function_id_);
  return it == network_.placements().end() ? net::kInvalidNode : it->second;
}

void NomadicDelegation::UserMovedTo(net::NodeId attach) {
  const net::NodeId current = host();
  if (current == net::kInvalidNode) return;
  const auto path = network_.topology().ShortestPath(current, attach);
  if (path.empty()) return;
  const std::uint32_t distance = static_cast<std::uint32_t>(path.size() - 1);
  if (distance <= config_.max_distance_hops) return;
  if (network_.MigrateFunction(function_id_, attach).ok()) {
    ++migrations_;
  }
}

Status NomadicDelegation::SendRequest(net::NodeId attach,
                                      std::uint64_t request_id) {
  const net::NodeId current = host();
  if (current == net::kInvalidNode) {
    return NotFound("messaging function has no host");
  }
  wli::Shuttle request = wli::Shuttle::Data(
      attach, current,
      {kDelegationRequest, static_cast<std::int64_t>(request_id)},
      request_id);
  return network_.Inject(std::move(request));
}

void NomadicDelegation::OnRequest(wli::Ship& ship,
                                  const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() < 2 ||
      shuttle.payload[0] != kDelegationRequest) {
    return;  // replies and foreign traffic are not re-answered
  }
  ++requests_answered_;
  network_.demand().Record(ship.id(), node::FirstLevelRole::kDelegation, 1.0);
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, ship.id(),
                            "svc.delegation", "answer");
  // Answer back to the requester with the request id echoed.
  wli::Shuttle reply = wli::Shuttle::Data(
      ship.id(), shuttle.header.source,
      {kDelegationReply, shuttle.payload[1]}, shuttle.header.flow_id);
  reply.trace = span.context();
  (void)ship.SendShuttle(std::move(reply));
}

}  // namespace viator::services
