// Fusion: "the active node is delivering less data than it receives" (§D),
// e.g. filtering an MPEG-4 stream or merging sensor readings in-network.
//
// The service accumulates data shuttles per flow and, every `window`
// shuttles, forwards a single aggregate shuttle (count/sum/min/max) to the
// sink — reducing bytes on every link downstream of the fusion point, which
// is exactly the bandwidth argument the paper's MFP section makes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/wandering_network.h"

namespace viator::services {

class FusionService {
 public:
  struct Config {
    net::NodeId sink = net::kInvalidNode;
    std::uint32_t window = 4;  // input shuttles per aggregate
  };

  /// Installs the fusion role handler on the ship at `node`. The service
  /// object must outlive the network's use of the handler.
  FusionService(wli::WanderingNetwork& network, net::NodeId node,
                const Config& config);

  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }
  std::uint64_t shuttles_in() const { return shuttles_in_; }
  std::uint64_t shuttles_out() const { return shuttles_out_; }

  /// Achieved data reduction factor (bytes_in / bytes_out; 1.0 until the
  /// first aggregate leaves).
  double ReductionFactor() const;

 private:
  struct FlowState {
    std::uint32_t seen = 0;
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
  };

  void OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle);

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  Config config_;
  std::map<std::uint64_t, FlowState> flows_;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::uint64_t shuttles_in_ = 0;
  std::uint64_t shuttles_out_ = 0;
};

}  // namespace viator::services
