// Protocol boosters (§D adds Boosting to Kulkarni & Minden's classes; the
// author's MediaPEP project [15] is an "Internet Protocol Booster").
//
// FecBooster: a transparent forward-error-correction segment between an
// ingress and an egress ship bracketing a lossy path. The ingress groups a
// flow's shuttles into blocks of k and appends one XOR parity shuttle; the
// egress reconstructs a single missing shuttle per block and forwards
// everything to the final destination. Recovers delivery ratio at a
// bandwidth overhead of 1/k.
//
// CompressionBooster: shrinks payloads across a bottleneck segment by a
// modelled compression ratio and re-expands at egress.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/wandering_network.h"

namespace viator::services {

class FecBooster {
 public:
  struct Config {
    net::NodeId ingress = net::kInvalidNode;
    net::NodeId egress = net::kInvalidNode;
    net::NodeId final_destination = net::kInvalidNode;
    std::uint32_t block_size = 4;  // data shuttles per parity
  };

  FecBooster(wli::WanderingNetwork& network, const Config& config);

  /// Sends one flow word through the boosted segment (ingress side API).
  Status SendData(std::uint64_t flow, std::int64_t word);

  std::uint64_t recovered() const { return recovered_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t parity_sent() const { return parity_sent_; }

 private:
  // Payload layout: {marker, block_id, index_in_block (block_size = parity),
  // data word}.
  static constexpr std::int64_t kFecMarker = 0x0fec;

  void OnEgress(wli::Ship& ship, const wli::Shuttle& shuttle);

  struct EgressBlock {
    std::map<std::uint32_t, std::int64_t> received;  // index -> word
    bool has_parity = false;
    std::int64_t parity = 0;
    bool flushed = false;  // a recovery has been performed
  };
  struct IngressBlock {
    std::vector<std::int64_t> words;
    std::uint64_t block_id = 0;
  };

  wli::WanderingNetwork& network_;
  Config config_;
  std::map<std::uint64_t, IngressBlock> ingress_blocks_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, EgressBlock>
      egress_blocks_;
  std::uint64_t recovered_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t parity_sent_ = 0;
};

/// ARQ reliability booster: the retransmission counterpart of FecBooster.
/// The ingress numbers each flow word, keeps unacknowledged copies and
/// retransmits after a timeout (bounded retries); the egress forwards data
/// to the final destination and returns cumulative-free per-seq ACKs.
/// Against FEC: ARQ spends round trips (latency) instead of parity
/// bandwidth, and recovers bursts FEC cannot.
class ArqBooster {
 public:
  struct Config {
    net::NodeId ingress = net::kInvalidNode;
    net::NodeId egress = net::kInvalidNode;
    net::NodeId final_destination = net::kInvalidNode;
    sim::Duration retransmit_timeout = 50 * sim::kMillisecond;
    std::uint32_t max_retries = 4;
  };

  ArqBooster(wli::WanderingNetwork& network, const Config& config);

  /// Sends one flow word through the boosted segment.
  Status SendData(std::uint64_t flow, std::int64_t word);

  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t acked() const { return acked_; }
  std::uint64_t given_up() const { return given_up_; }
  std::uint64_t data_bytes_sent() const { return data_bytes_sent_; }

 private:
  // Payload layouts: data {kArqData, seq, word}; ack {kArqAck, seq}.
  static constexpr std::int64_t kArqData = 0x0a1;
  static constexpr std::int64_t kArqAck = 0x0a2;

  void OnEgress(wli::Ship& ship, const wli::Shuttle& shuttle);
  void OnIngressAck(const wli::Shuttle& shuttle);
  void Transmit(std::uint64_t flow, std::uint64_t seq);
  void ArmTimer(std::uint64_t flow, std::uint64_t seq);

  struct Pending {
    std::int64_t word = 0;
    std::uint32_t attempts = 0;
    bool acked = false;
  };

  wli::WanderingNetwork& network_;
  Config config_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Pending> pending_;
  std::map<std::uint64_t, std::uint64_t> next_seq_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> egress_seen_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t given_up_ = 0;
  std::uint64_t data_bytes_sent_ = 0;
};

class CompressionBooster {
 public:
  struct Config {
    net::NodeId ingress = net::kInvalidNode;
    net::NodeId egress = net::kInvalidNode;
    net::NodeId final_destination = net::kInvalidNode;
    double ratio = 0.5;  // compressed size / original size
  };

  CompressionBooster(wli::WanderingNetwork& network, const Config& config);

  /// Ingress-side API: sends a payload through the compressed segment.
  Status SendData(std::uint64_t flow, std::vector<std::int64_t> payload);

  std::uint64_t bytes_saved() const { return bytes_saved_; }

 private:
  static constexpr std::int64_t kZipMarker = 0x021b;

  void OnEgress(wli::Ship& ship, const wli::Shuttle& shuttle);

  wli::WanderingNetwork& network_;
  Config config_;
  std::uint64_t bytes_saved_ = 0;
};

}  // namespace viator::services
