#include "services/security_mgmt.h"

namespace viator::services {

void CapsuleAuthority::Sign(wli::Shuttle& shuttle) const {
  shuttle.auth_tag = KeyedTag(key_, shuttle.code_image);
}

bool CapsuleAuthority::Check(const wli::Shuttle& shuttle) const {
  return shuttle.auth_tag == KeyedTag(key_, shuttle.code_image);
}

WorkloadMonitor::WorkloadMonitor(wli::WanderingNetwork& network,
                                 sim::Duration interval)
    : network_(network), interval_(interval) {}

void WorkloadMonitor::SampleOnce() {
  const sim::TimePoint now = network_.simulator().now();
  network_.ForEachShip([&](wli::Ship& ship) {
    const std::uint64_t backlog = network_.fabric().QueuedBytesAt(ship.id());
    network_.feedback().Publish(wli::FeedbackSignal{
        wli::FeedbackDimension::kPerNode, ship.id(),
        /*key=*/0, static_cast<double>(backlog), now});
    ++samples_;
  });
}

void WorkloadMonitor::Start(sim::TimePoint until) {
  network_.simulator().ScheduleAfter(interval_, [this, until] {
    SampleOnce();
    if (network_.simulator().now() + interval_ <= until) Start(until);
  });
}

SelfHealingCoordinator::SelfHealingCoordinator(wli::WanderingNetwork& network,
                                               const Config& config)
    : network_(network), config_(config) {}

void SelfHealingCoordinator::CheckpointAll() {
  network_.ForEachShip([this](wli::Ship& ship) {
    checkpoints_[ship.id()] = wli::EncodeBlueprint(ship.ToBlueprint());
  });
}

void SelfHealingCoordinator::OnFailureEvent(const char* kind,
                                            std::uint32_t id, bool up) {
  if (up || std::string_view(kind) != "node") return;
  const auto dead = static_cast<net::NodeId>(id);
  network_.simulator().ScheduleAfter(config_.detection_delay,
                                     [this, dead] { (void)Heal(dead); });
}

std::size_t SelfHealingCoordinator::Heal(net::NodeId dead) {
  const auto checkpoint = checkpoints_.find(dead);
  if (checkpoint == checkpoints_.end()) return 0;
  auto blueprint = wli::DecodeBlueprint(checkpoint->second);
  if (!blueprint.ok()) return 0;

  // Choose a live successor: prefer a neighbor of the dead node on the
  // (pre-failure) topology, else any live ship.
  net::NodeId successor = net::kInvalidNode;
  for (net::LinkId link : network_.topology().IncidentLinks(dead)) {
    const auto& l = network_.topology().link(link);
    const net::NodeId other = l.a == dead ? l.b : l.a;
    if (network_.topology().IsNodeUp(other) &&
        network_.ship(other) != nullptr) {
      successor = other;
      break;
    }
  }
  if (successor == net::kInvalidNode) {
    network_.ForEachShip([&](wli::Ship& ship) {
      if (successor == net::kInvalidNode && ship.id() != dead &&
          network_.topology().IsNodeUp(ship.id())) {
        successor = ship.id();
      }
    });
  }
  if (successor == net::kInvalidNode) return 0;

  wli::Ship* host = network_.ship(successor);
  (void)host->ApplyBlueprint(*blueprint);
  std::size_t regrown = 0;
  for (const wli::NetFunction& fn : blueprint->functions) {
    network_.NotifyFunctionInstalled(successor, fn);
    ++regrown;
  }
  ++heals_;
  functions_regrown_ += regrown;
  last_heal_time_ = network_.simulator().now();
  network_.stats().GetCounter("heal.functions_regrown").Add(regrown);
  network_.trace().Log(network_.simulator().now(), sim::TraceLevel::kInfo,
                       "self-healing",
                       "regrew " + std::to_string(regrown) +
                           " functions of node " + std::to_string(dead) +
                           " on node " + std::to_string(successor));
  return regrown;
}

}  // namespace viator::services
