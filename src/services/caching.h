// Caching: "the active node stores incoming data for later use upon
// request, e.g. storage of web pages for local processing and reducing the
// data flow" (§D).
//
// Protocol (payload word 0 is the opcode):
//   GET  {1, content_id}                requester -> cache or origin
//   PUT  {2, content_id, requester, data...}   origin -> cache (reply path)
//   DATA {3, content_id, data...}       cache/origin -> requester
//
// The cache proxy serves hits locally and forwards misses to the origin,
// learning the object on the reply path (LRU, bounded object count).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "core/wandering_network.h"

namespace viator::services {

inline constexpr std::int64_t kCacheOpGet = 1;
inline constexpr std::int64_t kCacheOpPut = 2;
inline constexpr std::int64_t kCacheOpData = 3;

/// Origin server: owns all content; answers GETs with the object bytes.
class ContentOrigin {
 public:
  /// Objects are synthesized deterministically: `object_words` payload words
  /// derived from the content id.
  ContentOrigin(wli::WanderingNetwork& network, net::NodeId node,
                std::size_t object_words = 64);

  std::uint64_t requests_served() const { return requests_served_; }
  net::NodeId node() const { return node_; }

  /// The deterministic object body for a content id (shared with tests).
  static std::vector<std::int64_t> ObjectBody(std::uint64_t content_id,
                                              std::size_t words);

 private:
  void OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle);

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  std::size_t object_words_;
  std::uint64_t requests_served_ = 0;
};

/// In-network cache proxy in front of an origin.
class CachingService {
 public:
  CachingService(wli::WanderingNetwork& network, net::NodeId node,
                 net::NodeId origin, std::size_t capacity_objects = 64);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double HitRatio() const;

  // ---- Snapshot/restore support (genesis) ----

  /// Cached content ids from most- to least-recently used, with bodies.
  std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>>
  CachedObjects() const;

  /// Replays cached objects (given MRU-first, as CachedObjects returns) and
  /// restores hit/miss accounting. Pending-miss queues are runtime state
  /// and must be empty at capture.
  void RestoreState(
      const std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>>&
          objects,
      std::uint64_t hits, std::uint64_t misses);

  /// Mixes cache residency (LRU order, object bodies) and hit/miss
  /// accounting into a rolling state digest (flight-recorder hook).
  void MixDigest(Hasher& hasher) const {
    hasher.Mix(hits_);
    hasher.Mix(misses_);
    hasher.Mix(static_cast<std::uint64_t>(lru_.size()));
    for (std::uint64_t content_id : lru_) {
      hasher.Mix(content_id);
      const auto& body = objects_.at(content_id).first;
      hasher.Mix(static_cast<std::uint64_t>(body.size()));
      for (std::int64_t word : body) {
        hasher.Mix(static_cast<std::uint64_t>(word));
      }
    }
  }

 private:
  void OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle);
  void StoreObject(std::uint64_t content_id, std::vector<std::int64_t> body);

  wli::WanderingNetwork& network_;
  net::NodeId node_;
  net::NodeId origin_;
  std::size_t capacity_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::map<std::uint64_t, std::pair<std::vector<std::int64_t>,
                                    std::list<std::uint64_t>::iterator>>
      objects_;
  // Requesters waiting per in-flight miss.
  std::map<std::uint64_t, std::vector<net::NodeId>> pending_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace viator::services
