#include "services/caching.h"

#include "telemetry/telemetry.h"

namespace viator::services {

ContentOrigin::ContentOrigin(wli::WanderingNetwork& network, net::NodeId node,
                             std::size_t object_words)
    : network_(network), node_(node), object_words_(object_words) {
  wli::Ship* ship = network_.ship(node);
  if (ship == nullptr) return;
  ship->SetRoleHandler(
      node::FirstLevelRole::kCaching,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnShuttle(s, shuttle);
      });
}

std::vector<std::int64_t> ContentOrigin::ObjectBody(std::uint64_t content_id,
                                                    std::size_t words) {
  std::vector<std::int64_t> body;
  body.reserve(words);
  std::uint64_t x = content_id * 0x9e3779b97f4a7c15ULL + 1;
  for (std::size_t i = 0; i < words; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    body.push_back(static_cast<std::int64_t>(x * 0x2545f4914f6cdd1dULL >> 1));
  }
  return body;
}

void ContentOrigin::OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() < 2 || shuttle.payload[0] != kCacheOpGet) return;
  const auto content_id = static_cast<std::uint64_t>(shuttle.payload[1]);
  ++requests_served_;
  network_.demand().Record(node_, node::FirstLevelRole::kCaching, 1.0);
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, node_,
                            "svc.origin", "serve");

  // If the GET came via a cache, the requester travels in the flow id so the
  // cache can both store and forward (PUT). Direct GETs get DATA back.
  const net::NodeId reply_to = shuttle.header.source;
  const bool via_cache = shuttle.payload.size() >= 3;
  std::vector<std::int64_t> payload;
  if (via_cache) {
    payload = {kCacheOpPut, shuttle.payload[1], shuttle.payload[2]};
  } else {
    payload = {kCacheOpData, shuttle.payload[1]};
  }
  const auto body = ObjectBody(content_id, object_words_);
  payload.insert(payload.end(), body.begin(), body.end());
  wli::Shuttle reply = wli::Shuttle::Data(node_, reply_to, std::move(payload),
                                          shuttle.header.flow_id);
  reply.trace = span.context();
  (void)ship.SendShuttle(std::move(reply));
}

CachingService::CachingService(wli::WanderingNetwork& network,
                               net::NodeId node, net::NodeId origin,
                               std::size_t capacity_objects)
    : network_(network),
      node_(node),
      origin_(origin),
      capacity_(capacity_objects) {
  wli::Ship* ship = network_.ship(node);
  if (ship == nullptr) return;
  (void)ship->SwitchRole(node::FirstLevelRole::kCaching,
                         node::SwitchMechanism::kResidentSoftware);
  ship->SetRoleHandler(
      node::FirstLevelRole::kCaching,
      [this](wli::Ship& s, const wli::Shuttle& shuttle) {
        OnShuttle(s, shuttle);
      });
}

double CachingService::HitRatio() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void CachingService::StoreObject(std::uint64_t content_id,
                                 std::vector<std::int64_t> body) {
  auto it = objects_.find(content_id);
  if (it != objects_.end()) {
    lru_.erase(it->second.second);
    lru_.push_front(content_id);
    it->second = {std::move(body), lru_.begin()};
    return;
  }
  while (objects_.size() >= capacity_ && !lru_.empty()) {
    objects_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(content_id);
  objects_.emplace(content_id,
                   std::make_pair(std::move(body), lru_.begin()));
}

std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>>
CachingService::CachedObjects() const {
  std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>> out;
  out.reserve(lru_.size());
  for (const std::uint64_t id : lru_) {
    out.emplace_back(id, objects_.at(id).first);
  }
  return out;
}

void CachingService::RestoreState(
    const std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>>&
        objects,
    std::uint64_t hits, std::uint64_t misses) {
  lru_.clear();
  objects_.clear();
  // Insert LRU-first so the final recency order matches the capture.
  for (auto it = objects.rbegin(); it != objects.rend(); ++it) {
    StoreObject(it->first, it->second);
  }
  hits_ = hits;
  misses_ = misses;
}

void CachingService::OnShuttle(wli::Ship& ship, const wli::Shuttle& shuttle) {
  if (shuttle.payload.empty()) return;
  const std::int64_t op = shuttle.payload[0];
  network_.demand().Record(node_, node::FirstLevelRole::kCaching, 1.0);

  if (op == kCacheOpGet && shuttle.payload.size() >= 2) {
    telemetry::SpanScope span(network_.telemetry(), shuttle.trace, node_,
                              "svc.caching", "get");
    const auto content_id = static_cast<std::uint64_t>(shuttle.payload[1]);
    const net::NodeId requester = shuttle.header.source;
    auto it = objects_.find(content_id);
    if (it != objects_.end()) {
      ++hits_;
      lru_.erase(it->second.second);
      lru_.push_front(content_id);
      it->second.second = lru_.begin();
      std::vector<std::int64_t> payload = {kCacheOpData,
                                           shuttle.payload[1]};
      payload.insert(payload.end(), it->second.first.begin(),
                     it->second.first.end());
      wli::Shuttle reply = wli::Shuttle::Data(
          node_, requester, std::move(payload), shuttle.header.flow_id);
      reply.trace = span.context();
      (void)ship.SendShuttle(std::move(reply));
      return;
    }
    ++misses_;
    auto& waiters = pending_[content_id];
    waiters.push_back(requester);
    if (waiters.size() == 1) {  // first miss triggers the origin fetch
      wli::Shuttle fetch = wli::Shuttle::Data(
          node_, origin_,
          {kCacheOpGet, shuttle.payload[1],
           static_cast<std::int64_t>(requester)},
          shuttle.header.flow_id);
      fetch.trace = span.context();
      (void)ship.SendShuttle(std::move(fetch));
    }
    return;
  }

  if (op == kCacheOpPut && shuttle.payload.size() >= 3) {
    telemetry::SpanScope span(network_.telemetry(), shuttle.trace, node_,
                              "svc.caching", "put");
    const auto content_id = static_cast<std::uint64_t>(shuttle.payload[1]);
    std::vector<std::int64_t> body(shuttle.payload.begin() + 3,
                                   shuttle.payload.end());
    StoreObject(content_id, body);
    const auto waiters = pending_.find(content_id);
    if (waiters != pending_.end()) {
      for (net::NodeId requester : waiters->second) {
        std::vector<std::int64_t> payload = {kCacheOpData,
                                             shuttle.payload[1]};
        payload.insert(payload.end(), body.begin(), body.end());
        wli::Shuttle reply = wli::Shuttle::Data(
            node_, requester, std::move(payload), shuttle.header.flow_id);
        reply.trace = span.context();
        (void)ship.SendShuttle(std::move(reply));
      }
      pending_.erase(waiters);
    }
  }
}

}  // namespace viator::services
