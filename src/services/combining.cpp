#include "services/combining.h"

namespace viator::services {

// Carrier payload layout:
//   {kMuxMarker, count, (flow, length, words...) x count}

CombiningService::CombiningService(wli::WanderingNetwork& network,
                                   net::NodeId node, const Config& config)
    : network_(network), node_(node), config_(config) {
  wli::Ship* combiner = network_.ship(node);
  if (combiner != nullptr) {
    (void)combiner->SwitchRole(node::FirstLevelRole::kFission,
                               node::SwitchMechanism::kResidentSoftware);
    combiner->SetRoleHandler(
        node::FirstLevelRole::kFission,
        [this](wli::Ship& s, const wli::Shuttle& shuttle) {
          OnCombine(s, shuttle);
        });
  }
  wli::Ship* demuxer = network_.ship(config_.sink);
  if (demuxer != nullptr) {
    (void)demuxer->SwitchRole(node::FirstLevelRole::kDelegation,
                              node::SwitchMechanism::kResidentSoftware);
    demuxer->SetRoleHandler(
        node::FirstLevelRole::kDelegation,
        [this](wli::Ship& s, const wli::Shuttle& shuttle) {
          OnDemux(s, shuttle);
        });
  }
}

void CombiningService::OnCombine(wli::Ship& ship,
                                 const wli::Shuttle& shuttle) {
  if (shuttle.payload.empty()) return;
  ++shuttles_in_;
  bytes_in_ += shuttle.WireSize();
  network_.demand().Record(node_, node::FirstLevelRole::kFission, 1.0);
  held_.push_back(Held{shuttle.header.flow_id, shuttle.payload});
  if (held_.size() == 1) {
    window_timer_ = network_.simulator().ScheduleAfter(
        config_.window, [this] { Flush(); });
  }
  if (held_.size() >= config_.batch_size) {
    window_timer_.Cancel();
    Flush();
  }
  (void)ship;
}

void CombiningService::Flush() {
  if (held_.empty()) return;
  wli::Ship* ship = network_.ship(node_);
  if (ship == nullptr) return;
  std::vector<std::int64_t> carrier_payload = {
      kMuxMarker, static_cast<std::int64_t>(held_.size())};
  for (const Held& held : held_) {
    carrier_payload.push_back(static_cast<std::int64_t>(held.flow));
    carrier_payload.push_back(static_cast<std::int64_t>(held.payload.size()));
    carrier_payload.insert(carrier_payload.end(), held.payload.begin(),
                           held.payload.end());
  }
  held_.clear();
  wli::Shuttle carrier = wli::Shuttle::Data(node_, config_.sink,
                                            std::move(carrier_payload),
                                            /*flow=*/kMuxMarker);
  bytes_out_ += carrier.WireSize();
  ++carriers_out_;
  (void)ship->SendShuttle(std::move(carrier));
}

void CombiningService::OnDemux(wli::Ship& ship, const wli::Shuttle& shuttle) {
  if (shuttle.payload.size() < 2 || shuttle.payload[0] != kMuxMarker) return;
  const auto count = static_cast<std::size_t>(shuttle.payload[1]);
  std::size_t at = 2;
  for (std::size_t i = 0; i < count; ++i) {
    if (at + 2 > shuttle.payload.size()) return;  // malformed: stop
    const auto flow = static_cast<std::uint64_t>(shuttle.payload[at]);
    const auto length = static_cast<std::size_t>(shuttle.payload[at + 1]);
    at += 2;
    if (at + length > shuttle.payload.size()) return;
    std::vector<std::int64_t> body(shuttle.payload.begin() + at,
                                   shuttle.payload.begin() + at + length);
    at += length;
    ++demuxed_;
    // Restore the original shuttle locally at the sink: it surfaces through
    // the sink's delivery path (self-addressed data shuttle).
    (void)ship.SendShuttle(
        wli::Shuttle::Data(config_.sink, config_.sink, std::move(body), flow));
  }
}

}  // namespace viator::services
