#include "node/node_os.h"

#include "vm/verifier.h"

namespace viator::node {

Capabilities Capabilities::ForGeneration(int generation) {
  Capabilities caps;
  caps.ee_programmable = generation >= 1;
  caps.nodeos_programmable = generation >= 2;
  caps.hardware_reconfigurable = generation >= 3;
  caps.self_replicating = generation >= 4;
  return caps;
}

NodeOs::NodeOs(const ResourceQuota& quota, const Capabilities& caps,
               std::uint32_t hw_gates, std::uint32_t hw_slots)
    : caps_(caps),
      accountant_(quota),
      code_cache_(quota.code_cache_bytes),
      hardware_(hw_gates, hw_slots) {}

sim::Duration NodeOs::SwitchLatency(SwitchMechanism mechanism) const {
  const ReconfigTiming& t = hardware_.timing();
  switch (mechanism) {
    case SwitchMechanism::kResidentSoftware:
      // Flip the dispatch table to an already-resident function.
      return 50 * sim::kMicrosecond;
    case SwitchMechanism::kTransportedCode:
      // Code already arrived (transfer time is the network's); admission,
      // verification and EE binding dominate.
      return 300 * sim::kMicrosecond;
    case SwitchMechanism::kHardwareReconfig:
      // Partial reconfiguration of a nominal 20-kilogate region.
      return t.base_latency + t.per_kilogate * 20;
    case SwitchMechanism::kNetbotDock:
      return t.base_latency + t.per_kilogate * 20 + t.netbot_dock_overhead;
  }
  return sim::kMillisecond;
}

Result<sim::Duration> NodeOs::RequestRoleSwitch(FirstLevelRole role,
                                                SwitchMechanism mechanism) {
  switch (mechanism) {
    case SwitchMechanism::kResidentSoftware:
      break;  // every generation supports activating resident functions
    case SwitchMechanism::kTransportedCode:
      if (!caps_.ee_programmable) {
        return Status(Unimplemented("EE programmability not available"));
      }
      break;
    case SwitchMechanism::kHardwareReconfig:
    case SwitchMechanism::kNetbotDock:
      if (!caps_.hardware_reconfigurable) {
        return Status(
            Unimplemented("hardware reconfiguration needs a 3G+ node"));
      }
      break;
  }
  current_role_ = role;
  ++role_switches_;
  return SwitchLatency(mechanism);
}

ExecutionEnvironment& NodeOs::GetOrCreateEe(SecondLevelClass cls,
                                            RoleBinding binding) {
  auto it = ees_.find(cls);
  if (it == ees_.end()) {
    it = ees_.emplace(cls, std::make_unique<ExecutionEnvironment>(
                               next_ee_id_++, cls, binding))
             .first;
  } else if (binding == RoleBinding::kModal) {
    // Promoting an auxiliary EE to modal is allowed (role became resident).
    it->second->set_binding(RoleBinding::kModal);
  }
  return *it->second;
}

ExecutionEnvironment* NodeOs::FindEe(SecondLevelClass cls) {
  const auto it = ees_.find(cls);
  return it == ees_.end() ? nullptr : it->second.get();
}

Result<Digest> NodeOs::AdmitProgram(const vm::Program& program) {
  if (!caps_.ee_programmable) {
    return Status(Unimplemented("node does not accept mobile code"));
  }
  auto verified = vm::Verify(program);
  if (!verified.ok()) return verified.status();
  if (authorizer_) {
    if (Status s = authorizer_(program); !s.ok()) return s;
  }
  if (Status s = code_cache_.Put(program); !s.ok()) return s;
  return program.digest();
}

Result<sim::Duration> NodeOs::DockNetbot(const Netbot& netbot) {
  if (!caps_.hardware_reconfigurable) {
    return Status(Unimplemented("netbot docking needs a 3G+ node"));
  }
  auto driver = vm::Program::Deserialize(netbot.driver_image);
  if (!driver.ok()) return driver.status();
  auto admitted = AdmitProgram(*driver);
  if (!admitted.ok()) return admitted.status();
  auto dock = hardware_.DockNetbot(netbot);
  if (!dock.ok()) return dock.status();
  if (Status s = hardware_.ActivateDriver(netbot.module.module_id, *admitted);
      !s.ok()) {
    return s;
  }
  return *dock;
}

}  // namespace viator::node
