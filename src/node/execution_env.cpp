#include "node/execution_env.h"

#include <algorithm>

namespace viator::node {

Status ExecutionEnvironment::AddResident(Digest digest,
                                         std::uint32_t max_resident) {
  if (IsResident(digest)) return OkStatus();
  if (residents_.size() >= max_resident) {
    return ResourceExhausted("resident program limit reached");
  }
  residents_.push_back(digest);
  return OkStatus();
}

bool ExecutionEnvironment::IsResident(Digest digest) const {
  return std::find(residents_.begin(), residents_.end(), digest) !=
         residents_.end();
}

Result<vm::ExecutionResult> ExecutionEnvironment::Execute(
    const vm::Program& program, vm::Environment& host,
    ResourceAccountant& accountant, std::span<const std::int64_t> args) {
  const std::uint64_t budget = accountant.quota().fuel_per_capsule;
  // Admission requires headroom for a full capsule budget; the actual charge
  // afterwards is what the run consumed.
  if (accountant.epoch_fuel_used() + budget >
      accountant.quota().fuel_per_epoch) {
    return Status(ResourceExhausted("epoch fuel budget exhausted"));
  }
  vm::ExecutionResult result = interpreter_.Run(program, host, budget, args);
  (void)accountant.ChargeFuel(result.fuel_used);
  ++invocations_;
  fuel_consumed_ += result.fuel_used;
  if (result.reason == vm::ExitReason::kFault) ++faults_;
  return result;
}

}  // namespace viator::node
