// The simulated reconfigurable hardware plane of a ship (3G WN capability).
//
// The paper's 3G Wandering Network requires "runtime exchange of switching
// circuitry (plug-and-play modules) synchronized by driver updates in the
// node operating system". We model an FPGA-like fabric with a gate budget
// and module slots. Installing a module costs a partial-reconfiguration
// latency proportional to its gate count; a module only becomes *active*
// once its driver program (referenced by digest) is resident — installing
// circuitry without the driver leaves it dark, which is exactly the
// synchronization hazard the paper calls out.
//
// Netbots are autonomous mobile hardware components that arrive carrying
// their own driver ("delivering their own driver routines at docking time"):
// docking is module installation + driver hand-off as one transaction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "node/profile.h"
#include "sim/time.h"

namespace viator::node {

/// A pluggable hardware module: accelerates one second-level class.
struct HardwareModule {
  std::uint32_t module_id = 0;
  std::string name;
  SecondLevelClass accelerates = SecondLevelClass::kSupplementary;
  std::uint32_t gate_count = 10000;
  double speedup = 4.0;          // service-time divisor vs software
  Digest driver_digest = 0;      // required driver program
};

/// An autonomous mobile hardware component plus the driver it carries.
struct Netbot {
  HardwareModule module;
  std::vector<std::byte> driver_image;  // serialized driver program
};

/// Reconfiguration timing model.
struct ReconfigTiming {
  sim::Duration base_latency = 2 * sim::kMillisecond;
  sim::Duration per_kilogate = 100 * sim::kMicrosecond;  // per 1000 gates
  sim::Duration netbot_dock_overhead = 5 * sim::kMillisecond;
};

class HardwarePlane {
 public:
  HardwarePlane(std::uint32_t total_gates, std::uint32_t slots,
                const ReconfigTiming& timing = {})
      : total_gates_(total_gates), slots_(slots), timing_(timing) {}

  /// Installs a module (circuitry only). Fails on gate/slot exhaustion or
  /// duplicate id. Returns the reconfiguration latency the caller must wait
  /// before the slot is usable.
  Result<sim::Duration> Install(const HardwareModule& module);

  /// Removes a module, freeing its gates. Latency is half an install.
  Result<sim::Duration> Remove(std::uint32_t module_id);

  /// Marks the driver for `module_id` resident (NodeOS confirmed the driver
  /// program is in the code cache). Only then does the module accelerate.
  Status ActivateDriver(std::uint32_t module_id, Digest resident_driver);

  /// Effective speedup for a class: the best *active* module, else 1.0.
  double SpeedupFor(SecondLevelClass cls) const;

  /// True when a module exists (installed) for the class, active or dark.
  bool HasModuleFor(SecondLevelClass cls) const;

  /// Module by id (nullptr if absent); exposes activation state.
  struct Slot {
    HardwareModule module;
    bool driver_active = false;
  };
  const Slot* FindModule(std::uint32_t module_id) const;
  const std::vector<Slot>& slots() const { return occupied_; }

  std::uint32_t gates_used() const { return gates_used_; }
  std::uint32_t total_gates() const { return total_gates_; }
  const ReconfigTiming& timing() const { return timing_; }

  /// Full dock latency for a netbot (install + dock overhead). The caller
  /// installs the driver into the code cache and then ActivateDriver()s.
  Result<sim::Duration> DockNetbot(const Netbot& netbot);

  std::uint64_t reconfigurations() const { return reconfigurations_; }

  /// Restores the reconfiguration counter after replaying Install/Activate
  /// calls from a snapshot (genesis).
  void RestoreReconfigurations(std::uint64_t count) {
    reconfigurations_ = count;
  }

  /// Mixes gate usage, slot occupancy and activation flags into a rolling
  /// state digest (flight-recorder hook).
  void MixDigest(Hasher& hasher) const {
    hasher.Mix(gates_used_);
    hasher.Mix(reconfigurations_);
    hasher.Mix(static_cast<std::uint64_t>(occupied_.size()));
    for (const Slot& slot : occupied_) {
      hasher.Mix(slot.module.module_id);
      hasher.Mix(slot.module.driver_digest);
      hasher.Mix(slot.driver_active ? 1u : 0u);
    }
  }

 private:
  sim::Duration InstallLatency(std::uint32_t gates) const;

  std::uint32_t total_gates_;
  std::uint32_t slots_;
  ReconfigTiming timing_;
  std::uint32_t gates_used_ = 0;
  std::vector<Slot> occupied_;
  std::uint64_t reconfigurations_ = 0;
};

}  // namespace viator::node
