#include "node/resources.h"

namespace viator::node {

Status ResourceAccountant::ChargeFuel(std::uint64_t fuel) {
  if (epoch_fuel_used_ + fuel > quota_.fuel_per_epoch) {
    return ResourceExhausted("epoch fuel budget exhausted");
  }
  epoch_fuel_used_ += fuel;
  total_fuel_used_ += fuel;
  return OkStatus();
}

Status ResourceAccountant::ChargeMemory(std::uint64_t bytes) {
  if (memory_used_ + bytes > quota_.memory_bytes) {
    return ResourceExhausted("memory quota exhausted");
  }
  memory_used_ += bytes;
  return OkStatus();
}

void ResourceAccountant::ReleaseMemory(std::uint64_t bytes) {
  memory_used_ = bytes > memory_used_ ? 0 : memory_used_ - bytes;
}

Status ResourceAccountant::AcquirePendingSlot() {
  if (pending_shuttles_ >= quota_.max_pending_shuttles) {
    return ResourceExhausted("pending shuttle queue full");
  }
  ++pending_shuttles_;
  return OkStatus();
}

void ResourceAccountant::ReleasePendingSlot() {
  if (pending_shuttles_ > 0) --pending_shuttles_;
}

}  // namespace viator::node
