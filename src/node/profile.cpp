#include "node/profile.h"

namespace viator::node {

std::string_view FirstLevelRoleName(FirstLevelRole role) {
  switch (role) {
    case FirstLevelRole::kFusion: return "fusion";
    case FirstLevelRole::kFission: return "fission";
    case FirstLevelRole::kCaching: return "caching";
    case FirstLevelRole::kDelegation: return "delegation";
    case FirstLevelRole::kReplication: return "replication";
    case FirstLevelRole::kNextStep: return "next-step";
    case FirstLevelRole::kRoleCount: break;
  }
  return "?";
}

std::string_view SecondLevelClassName(SecondLevelClass cls) {
  switch (cls) {
    case SecondLevelClass::kFiltering: return "filtering";
    case SecondLevelClass::kCombining: return "combining";
    case SecondLevelClass::kTranscoding: return "transcoding";
    case SecondLevelClass::kSecurityManagement: return "security+mgmt";
    case SecondLevelClass::kBoosting: return "boosting";
    case SecondLevelClass::kRoutingPropagation: return "routing/propagation";
    case SecondLevelClass::kSupplementary: return "supplementary";
    case SecondLevelClass::kClassCount: break;
  }
  return "?";
}

std::string_view ShipClassName(ShipClass cls) {
  switch (cls) {
    case ShipClass::kServer: return "server";
    case ShipClass::kClient: return "client";
    case ShipClass::kAgent: return "agent";
  }
  return "?";
}

std::string_view SwitchMechanismName(SwitchMechanism mechanism) {
  switch (mechanism) {
    case SwitchMechanism::kResidentSoftware: return "resident-sw";
    case SwitchMechanism::kTransportedCode: return "transported-code";
    case SwitchMechanism::kHardwareReconfig: return "hw-reconfig";
    case SwitchMechanism::kNetbotDock: return "netbot-dock";
  }
  return "?";
}

SecondLevelClass DefaultClassFor(FirstLevelRole role) {
  switch (role) {
    case FirstLevelRole::kFusion: return SecondLevelClass::kFiltering;
    case FirstLevelRole::kFission: return SecondLevelClass::kCombining;
    case FirstLevelRole::kCaching: return SecondLevelClass::kSupplementary;
    case FirstLevelRole::kDelegation: return SecondLevelClass::kBoosting;
    case FirstLevelRole::kReplication:
      return SecondLevelClass::kRoutingPropagation;
    case FirstLevelRole::kNextStep:
      return SecondLevelClass::kSecurityManagement;
    case FirstLevelRole::kRoleCount: break;
  }
  return SecondLevelClass::kSupplementary;
}

}  // namespace viator::node
