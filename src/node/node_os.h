// The NodeOS: per-ship operating system layer.
//
// Owns the resource accountant, the code cache, the EE registry, the
// hardware plane and the role state (current modal role + the Next-Step
// register of Figure 2). Capability gating implements the four Wandering
// Network generations of §B: what a node may reconfigure depends on its
// generation, which is the knob the E12 ablation sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "base/hash.h"
#include "base/status.h"
#include "node/execution_env.h"
#include "node/hardware_plane.h"
#include "node/profile.h"
#include "node/resources.h"
#include "sim/time.h"
#include "vm/code_repository.h"
#include "vm/program.h"

namespace viator::node {

/// What a node of a given WN generation is allowed to do (paper §B).
struct Capabilities {
  bool ee_programmable = true;        // 1G+: programmable at the EE layer
  bool nodeos_programmable = false;   // 2G+: NodeOS-level programmability
  bool hardware_reconfigurable = false;  // 3G+: gate-level reconfiguration
  bool self_replicating = false;      // 4G: adaptive self-distribution

  /// Capability set for generation 1..4.
  static Capabilities ForGeneration(int generation);
};

class NodeOs {
 public:
  NodeOs(const ResourceQuota& quota, const Capabilities& caps,
         std::uint32_t hw_gates = 100000, std::uint32_t hw_slots = 8);

  const Capabilities& capabilities() const { return caps_; }

  // ---- Role state (Figure 2) ----

  FirstLevelRole current_role() const { return current_role_; }

  /// The Next-Step register: "an internal programmable switch which stores
  /// the next node role to come. It is a standard module for each ship."
  FirstLevelRole next_step() const { return next_step_; }
  void set_next_step(FirstLevelRole role) { next_step_ = role; }

  /// Switches the modal role via the given mechanism. Enforces generation
  /// gating (e.g. hardware reconfig needs a 3G+ node) and the single-modal-
  /// function postulate. Returns the switch latency; the caller (ship) is
  /// responsible for scheduling the completion on the simulator.
  Result<sim::Duration> RequestRoleSwitch(FirstLevelRole role,
                                          SwitchMechanism mechanism);

  std::uint64_t role_switches() const { return role_switches_; }

  // ---- Execution environments ----

  /// The registry EE for a class, created on first use. Figure 2: one EE per
  /// function, modal functions prioritized.
  ExecutionEnvironment& GetOrCreateEe(SecondLevelClass cls,
                                      RoleBinding binding = RoleBinding::kAuxiliary);

  /// EE lookup without creation (nullptr when absent).
  ExecutionEnvironment* FindEe(SecondLevelClass cls);
  std::size_t ee_count() const { return ees_.size(); }

  /// Full EE registry, keyed by class (snapshot enumeration; genesis).
  const std::map<SecondLevelClass, std::unique_ptr<ExecutionEnvironment>>&
  ees() const {
    return ees_;
  }

  /// Restores role state and the switch counter from a snapshot, without the
  /// generation gating or latency of a real switch.
  void RestoreRoleState(FirstLevelRole current, FirstLevelRole next,
                        std::uint64_t switches) {
    current_role_ = current;
    next_step_ = next;
    role_switches_ = switches;
  }

  // ---- Code admission ----

  /// Optional security policy consulted before any code is admitted
  /// (capsule authorization lives in services/security and hooks in here).
  using Authorizer = std::function<Status(const vm::Program&)>;
  void set_authorizer(Authorizer authorizer) {
    authorizer_ = std::move(authorizer);
  }

  /// Verifies, authorizes and caches a program arriving by shuttle.
  /// 1G nodes only admit code when `ee_programmable`.
  Result<Digest> AdmitProgram(const vm::Program& program);

  vm::CodeCache& code_cache() { return code_cache_; }
  const vm::CodeCache& code_cache() const { return code_cache_; }
  HardwarePlane& hardware() { return hardware_; }
  const HardwarePlane& hardware() const { return hardware_; }
  ResourceAccountant& resources() { return accountant_; }
  const ResourceAccountant& resources() const { return accountant_; }

  /// Docks a netbot: installs its module, admits the carried driver, then
  /// activates the module (one transaction, per the paper's "docking time").
  Result<sim::Duration> DockNetbot(const Netbot& netbot);

  /// Mixes role state, EE registry shape, code-cache residency and hardware
  /// plane occupancy into a rolling state digest (flight-recorder hook).
  void MixDigest(Hasher& hasher) const {
    hasher.Mix(static_cast<std::uint64_t>(current_role_));
    hasher.Mix(static_cast<std::uint64_t>(next_step_));
    hasher.Mix(role_switches_);
    hasher.Mix(static_cast<std::uint64_t>(ees_.size()));
    for (const auto& [cls, ee] : ees_) {
      hasher.Mix(static_cast<std::uint64_t>(cls));
    }
    code_cache_.MixDigest(hasher);
    hardware_.MixDigest(hasher);
  }

 private:
  sim::Duration SwitchLatency(SwitchMechanism mechanism) const;

  Capabilities caps_;
  ResourceAccountant accountant_;
  vm::CodeCache code_cache_;
  HardwarePlane hardware_;
  Authorizer authorizer_;
  std::map<SecondLevelClass, std::unique_ptr<ExecutionEnvironment>> ees_;
  std::uint32_t next_ee_id_ = 1;
  FirstLevelRole current_role_ = FirstLevelRole::kCaching;
  FirstLevelRole next_step_ = FirstLevelRole::kCaching;
  std::uint64_t role_switches_ = 0;
};

}  // namespace viator::node
