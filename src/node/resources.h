// NodeOS resource accounting.
//
// "Since each active node controls its own resources" (§C, MFP) — each ship
// enforces quotas on CPU fuel, memory, and shuttle-queue occupancy. The
// accountant is pure bookkeeping: callers charge/release and get a Status.
#pragma once

#include <cstdint>

#include "base/status.h"

namespace viator::node {

struct ResourceQuota {
  std::uint64_t fuel_per_capsule = 100000;    // VM fuel per shuttle execution
  std::uint64_t fuel_per_epoch = 10'000'000;  // aggregate CPU budget per epoch
  std::uint64_t memory_bytes = 1 << 20;       // fact store + resident data
  std::uint64_t code_cache_bytes = 64 << 10;  // resident program bytes
  std::uint32_t max_resident_programs = 64;
  std::uint32_t max_pending_shuttles = 256;   // waiting for code / EE slot
};

class ResourceAccountant {
 public:
  explicit ResourceAccountant(const ResourceQuota& quota) : quota_(quota) {}

  const ResourceQuota& quota() const { return quota_; }

  /// Charges `fuel` against the epoch budget.
  Status ChargeFuel(std::uint64_t fuel);

  /// Resets the epoch fuel counter (called by the NodeOS epoch timer).
  void BeginEpoch() { epoch_fuel_used_ = 0; }

  /// Charges/releases resident memory.
  Status ChargeMemory(std::uint64_t bytes);
  void ReleaseMemory(std::uint64_t bytes);

  /// Pending-shuttle slots (code-wait queue).
  Status AcquirePendingSlot();
  void ReleasePendingSlot();

  std::uint64_t epoch_fuel_used() const { return epoch_fuel_used_; }
  std::uint64_t total_fuel_used() const { return total_fuel_used_; }
  std::uint64_t memory_used() const { return memory_used_; }
  std::uint32_t pending_shuttles() const { return pending_shuttles_; }

  /// Restores usage accounting from a snapshot (genesis).
  void RestoreUsage(std::uint64_t epoch_fuel, std::uint64_t total_fuel,
                    std::uint64_t memory, std::uint32_t pending) {
    epoch_fuel_used_ = epoch_fuel;
    total_fuel_used_ = total_fuel;
    memory_used_ = memory;
    pending_shuttles_ = pending;
  }

 private:
  ResourceQuota quota_;
  std::uint64_t epoch_fuel_used_ = 0;
  std::uint64_t total_fuel_used_ = 0;
  std::uint64_t memory_used_ = 0;
  std::uint32_t pending_shuttles_ = 0;
};

}  // namespace viator::node
