#include "node/hardware_plane.h"

#include <algorithm>

namespace viator::node {

sim::Duration HardwarePlane::InstallLatency(std::uint32_t gates) const {
  return timing_.base_latency +
         timing_.per_kilogate * ((gates + 999) / 1000);
}

Result<sim::Duration> HardwarePlane::Install(const HardwareModule& module) {
  if (FindModule(module.module_id) != nullptr) {
    return Status(AlreadyExists("module id already installed"));
  }
  if (occupied_.size() >= slots_) {
    return Status(ResourceExhausted("no free hardware slot"));
  }
  if (gates_used_ + module.gate_count > total_gates_) {
    return Status(ResourceExhausted("gate budget exhausted"));
  }
  occupied_.push_back(Slot{module, false});
  gates_used_ += module.gate_count;
  ++reconfigurations_;
  return InstallLatency(module.gate_count);
}

Result<sim::Duration> HardwarePlane::Remove(std::uint32_t module_id) {
  const auto it = std::find_if(
      occupied_.begin(), occupied_.end(),
      [module_id](const Slot& s) { return s.module.module_id == module_id; });
  if (it == occupied_.end()) {
    return Status(NotFound("module not installed"));
  }
  const sim::Duration latency = InstallLatency(it->module.gate_count) / 2;
  gates_used_ -= it->module.gate_count;
  occupied_.erase(it);
  ++reconfigurations_;
  return latency;
}

Status HardwarePlane::ActivateDriver(std::uint32_t module_id,
                                     Digest resident_driver) {
  for (Slot& slot : occupied_) {
    if (slot.module.module_id != module_id) continue;
    if (slot.module.driver_digest != resident_driver) {
      return PermissionDenied("driver digest mismatch");
    }
    slot.driver_active = true;
    return OkStatus();
  }
  return NotFound("module not installed");
}

double HardwarePlane::SpeedupFor(SecondLevelClass cls) const {
  double best = 1.0;
  for (const Slot& slot : occupied_) {
    if (slot.module.accelerates == cls && slot.driver_active) {
      best = std::max(best, slot.module.speedup);
    }
  }
  return best;
}

bool HardwarePlane::HasModuleFor(SecondLevelClass cls) const {
  return std::any_of(occupied_.begin(), occupied_.end(), [cls](const Slot& s) {
    return s.module.accelerates == cls;
  });
}

const HardwarePlane::Slot* HardwarePlane::FindModule(
    std::uint32_t module_id) const {
  for (const Slot& slot : occupied_) {
    if (slot.module.module_id == module_id) return &slot;
  }
  return nullptr;
}

Result<sim::Duration> HardwarePlane::DockNetbot(const Netbot& netbot) {
  auto install = Install(netbot.module);
  if (!install.ok()) return install.status();
  return *install + timing_.netbot_dock_overhead;
}

}  // namespace viator::node
