// Execution environments (EEs).
//
// Figure 2 assigns each function "a single registry execution environment".
// An EE owns the resident programs for one second-level class, runs verified
// code through the shared interpreter under the ship's fuel quota, and keeps
// per-EE usage statistics. Modal EEs preempt auxiliary ones when the NodeOS
// dispatches (modal functions "prioritized for access").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "node/profile.h"
#include "node/resources.h"
#include "vm/code_repository.h"
#include "vm/interpreter.h"

namespace viator::node {

class ExecutionEnvironment {
 public:
  ExecutionEnvironment(std::uint32_t id, SecondLevelClass cls,
                       RoleBinding binding)
      : id_(id), cls_(cls), binding_(binding) {}

  std::uint32_t id() const { return id_; }
  SecondLevelClass function_class() const { return cls_; }
  RoleBinding binding() const { return binding_; }
  void set_binding(RoleBinding binding) { binding_ = binding; }

  /// Registers a resident program (by digest; storage is the ship's cache).
  Status AddResident(Digest digest, std::uint32_t max_resident);
  bool IsResident(Digest digest) const;
  const std::vector<Digest>& residents() const { return residents_; }

  /// Runs `program` under this EE: charges fuel to `accountant` (whatever
  /// the run actually consumed, capped by the per-capsule quota) and counts
  /// the invocation. Returns the VM result; a fuel-quota rejection surfaces
  /// as kResourceExhausted before execution.
  Result<vm::ExecutionResult> Execute(const vm::Program& program,
                                      vm::Environment& host,
                                      ResourceAccountant& accountant,
                                      std::span<const std::int64_t> args = {});

  std::uint64_t invocations() const { return invocations_; }
  std::uint64_t faults() const { return faults_; }
  std::uint64_t fuel_consumed() const { return fuel_consumed_; }

  /// Restores usage accounting from a snapshot (genesis).
  void RestoreUsage(std::uint64_t invocations, std::uint64_t faults,
                    std::uint64_t fuel_consumed) {
    invocations_ = invocations;
    faults_ = faults;
    fuel_consumed_ = fuel_consumed;
  }

 private:
  std::uint32_t id_;
  SecondLevelClass cls_;
  RoleBinding binding_;
  std::vector<Digest> residents_;
  vm::Interpreter interpreter_;
  std::uint64_t invocations_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t fuel_consumed_ = 0;
};

}  // namespace viator::node
