// The role taxonomy of Figure 2: a ship's internal organization.
//
// First-Level Profiling = the capsule mechanism classes of Wetherall &
// Tennenhouse (Fusion, Fission, Caching, Delegation) plus Viator's two
// additions (Replication, Next-Step). Second-Level Profiling = the protocol
// classes of Kulkarni & Minden, with Security and Network Management merged
// into one class and Boosting added, exactly as §D describes. Each function
// is bound to one registry execution environment; modal (resident) functions
// have dispatch priority over auxiliary (transported) ones.
#pragma once

#include <cstdint>
#include <string_view>

namespace viator::node {

/// First-Level Profiling roles. The paper postulates one active modal role
/// per ship at a time ("each active node can be assigned exactly one single
/// function at a time").
enum class FirstLevelRole : std::uint8_t {
  kFusion = 0,    // deliver less data than received (filtering/merging)
  kFission,       // deliver more data than received (multicast)
  kCaching,       // store incoming data for later requests
  kDelegation,    // perform tasks on behalf of another node
  kReplication,   // packet/function replication (Viator addition)
  kNextStep,      // ship state register: which role comes next (Viator)
  kRoleCount,
};

/// Second-Level Profiling protocol classes.
enum class SecondLevelClass : std::uint8_t {
  kFiltering = 0,          // cf. fusion
  kCombining,              // cf. fission
  kTranscoding,            // content transformation
  kSecurityManagement,     // merged security + network management class
  kBoosting,               // protocol boosters (Viator addition)
  kRoutingPropagation,     // routing control + function propagation
  kSupplementary,          // content-dependent auxiliary features
  kClassCount,
};

/// Generic ship roles (paper footnote 21): every function specializes one.
enum class ShipClass : std::uint8_t { kServer = 0, kClient, kAgent };

/// How a function is bound on a ship.
enum class RoleBinding : std::uint8_t {
  kModal,      // resident, default service, priority access to its EE
  kAuxiliary,  // optional, transported/installed via shuttles
};

/// How a role switch is realized — determines its latency (experiment E3).
enum class SwitchMechanism : std::uint8_t {
  kResidentSoftware,  // activate already-resident code
  kTransportedCode,   // install code that arrived by shuttle
  kHardwareReconfig,  // reconfigure the hardware plane
  kNetbotDock,        // plug-and-play hardware module + driver hand-off
};

std::string_view FirstLevelRoleName(FirstLevelRole role);
std::string_view SecondLevelClassName(SecondLevelClass cls);
std::string_view ShipClassName(ShipClass cls);
std::string_view SwitchMechanismName(SwitchMechanism mechanism);

/// The natural second-level class implementing a first-level role (used when
/// wandering instantiates a role without an explicit class choice).
SecondLevelClass DefaultClassFor(FirstLevelRole role);

}  // namespace viator::node
