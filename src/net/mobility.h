// Node mobility for the ad-hoc experiments (paper §E: adaptive routing for
// active ad-hoc wireless networks; ships are explicitly mobile).
//
// RandomWaypointMobility moves each node toward a uniformly drawn waypoint
// at a uniformly drawn speed, pausing between legs. AdhocManager couples a
// mobility model to a Topology: on a fixed cadence it advances positions and
// reconciles the geometric radio graph (links toggle up/down as nodes move
// in and out of range), so routing sees genuine churn.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace viator::net {

class RandomWaypointMobility {
 public:
  struct Config {
    double width_m = 1000.0;
    double height_m = 1000.0;
    double min_speed_mps = 1.0;
    double max_speed_mps = 10.0;
    double pause_s = 2.0;
  };

  RandomWaypointMobility(std::size_t nodes, const Config& config, Rng rng);

  /// Advances every node by dt seconds of movement.
  void Step(double dt_seconds);

  const std::vector<Position>& positions() const { return positions_; }

  /// Pins a node (e.g. a base station) so Step never moves it.
  void Pin(std::size_t node) { pinned_[node] = true; }

  struct NodeState {
    Position target;
    double speed = 0.0;
    double pause_left = 0.0;
  };

  // ---- Snapshot/restore support (genesis) ----
  Rng& rng() { return rng_; }
  const std::vector<NodeState>& states() const { return states_; }
  const std::vector<bool>& pinned() const { return pinned_; }
  /// Restores the full kinematic state; vectors must match the node count.
  void RestoreState(std::vector<Position> positions,
                    std::vector<NodeState> states, std::vector<bool> pinned) {
    positions_ = std::move(positions);
    states_ = std::move(states);
    pinned_ = std::move(pinned);
  }

 private:
  void PickWaypoint(std::size_t i);

  Config config_;
  Rng rng_;
  std::vector<Position> positions_;
  std::vector<NodeState> states_;
  std::vector<bool> pinned_;
};

/// Keeps a Topology's link set equal to the geometric radio graph of a
/// moving node population. Link objects are created lazily per pair and then
/// toggled up/down, so LinkIds stay stable for the fabric.
class AdhocManager {
 public:
  AdhocManager(sim::Simulator& simulator, Topology& topology,
               RandomWaypointMobility mobility, double radio_range_m,
               sim::Duration update_interval, const LinkConfig& link_config);

  /// Schedules the periodic update loop until `until`.
  void Start(sim::TimePoint until);

  /// One mobility + reconciliation step (also called by the loop).
  void Update();

  const RandomWaypointMobility& mobility() const { return mobility_; }

  /// Number of link up/down transitions performed so far (churn measure).
  std::uint64_t link_transitions() const { return link_transitions_; }

  /// Invoked after each reconciliation with the set of changed pairs' count.
  void set_on_update(std::function<void()> fn) { on_update_ = std::move(fn); }

 private:
  /// Index of unordered pair (i, j), i < j, in the packed upper triangle of
  /// an n×n matrix (row-major). The node population is fixed at
  /// construction, so pair→link lookup is one multiply instead of a
  /// std::map walk — Update() probes every pair on every mobility tick.
  std::size_t PairIndex(std::size_t i, std::size_t j) const {
    const std::size_t n = mobility_.positions().size();
    return i * (2 * n - i - 1) / 2 + (j - i - 1);
  }

  sim::Simulator& simulator_;
  Topology& topology_;
  RandomWaypointMobility mobility_;
  double range_;
  sim::Duration interval_;
  LinkConfig link_config_;
  /// pair_links_[PairIndex(i, j)] = lazily created link, kInvalidLink until
  /// the pair first comes into radio range.
  std::vector<LinkId> pair_links_;
  std::uint64_t link_transitions_ = 0;
  sim::TimePoint until_ = 0;
  std::function<void()> on_update_;
};

}  // namespace viator::net
