#include "net/failure.h"

namespace viator::net {

FailureInjector::FailureInjector(sim::Simulator& simulator, Topology& topology,
                                 Rng rng)
    : simulator_(simulator), topology_(topology), rng_(rng) {}

void FailureInjector::Notify(const char* kind, std::uint32_t id, bool up) {
  if (observer_) observer_(kind, id, up);
}

void FailureInjector::FailLink(LinkId link, sim::TimePoint at,
                               sim::Duration outage) {
  simulator_.ScheduleAt(at, [this, link, outage] {
    topology_.SetLinkUp(link, false);
    ++failures_injected_;
    Notify("link", link, false);
    if (outage > 0) {
      simulator_.ScheduleAfter(outage, [this, link] {
        topology_.SetLinkUp(link, true);
        Notify("link", link, true);
      });
    }
  });
}

void FailureInjector::FailNode(NodeId node, sim::TimePoint at,
                               sim::Duration outage) {
  simulator_.ScheduleAt(at, [this, node, outage] {
    topology_.SetNodeUp(node, false);
    ++failures_injected_;
    Notify("node", node, false);
    if (outage > 0) {
      simulator_.ScheduleAfter(outage, [this, node] {
        topology_.SetNodeUp(node, true);
        Notify("node", node, true);
      });
    }
  });
}

void FailureInjector::ScheduleLinkCycle(LinkId link, sim::TimePoint until,
                                        sim::Duration mtbf,
                                        sim::Duration mttr) {
  const sim::Duration wait = sim::FromSeconds(
      rng_.Exponential(sim::ToSeconds(mtbf)));
  const sim::TimePoint fail_at = simulator_.now() + wait;
  if (fail_at > until) return;
  simulator_.ScheduleAt(fail_at, [this, link, until, mtbf, mttr] {
    topology_.SetLinkUp(link, false);
    ++failures_injected_;
    Notify("link", link, false);
    const sim::Duration repair =
        sim::FromSeconds(rng_.Exponential(sim::ToSeconds(mttr)));
    simulator_.ScheduleAfter(repair, [this, link, until, mtbf, mttr] {
      topology_.SetLinkUp(link, true);
      Notify("link", link, true);
      ScheduleLinkCycle(link, until, mtbf, mttr);
    });
  });
}

void FailureInjector::StartRandomLinkFailures(sim::Duration mtbf,
                                              sim::Duration mttr,
                                              sim::TimePoint until) {
  for (LinkId link = 0; link < topology_.link_count(); ++link) {
    ScheduleLinkCycle(link, until, mtbf, mttr);
  }
}

}  // namespace viator::net
