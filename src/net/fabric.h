// The transmission engine: moves Frames across Topology links under the
// Simulator clock, modelling per-direction serialization, queueing (drop-tail
// on byte capacity), propagation latency and i.i.d. loss.
//
// Upper layers register one receive handler per node; everything above the
// fabric (shuttle dispatch, routing, services) is driven from those handler
// invocations.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/hash.h"
#include "base/rng.h"
#include "base/status.h"
#include "net/topology.h"
#include "net/types.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "telemetry/latency_plane.h"

namespace viator::net {

class Fabric {
 public:
  /// Delivery callback. The frame is the handler's to consume: it may move
  /// the payload out (the shuttle data path does, saving a deep copy per
  /// hop); the fabric never looks at a frame again after handing it over.
  using ReceiveHandler = std::function<void(Frame&)>;

  /// The fabric borrows the simulator, topology and stats registry; all must
  /// outlive it. `rng` seeds the loss process.
  Fabric(sim::Simulator& simulator, Topology& topology, Rng rng,
         sim::StatsRegistry& stats);

  /// Installs the receive callback for a node (replacing any previous one).
  void SetReceiveHandler(NodeId node, ReceiveHandler handler);

  /// Queues `frame` for transmission on the direct up link from frame.from
  /// to frame.to. Fails fast (kNotFound) when no up link exists and
  /// kResourceExhausted when the transmit queue would overflow; both count
  /// as drops in the stats.
  Status Send(Frame frame);

  /// Sends a copy of `frame` to every current neighbor of `node` (frame.from
  /// and frame.to are overwritten). Returns the number of copies queued.
  std::size_t Broadcast(NodeId node, Frame frame);

  /// Bytes that have finished serialization per link (both directions),
  /// indexed by LinkId. Used by the fission/multicast experiments to report
  /// per-link load.
  const std::vector<std::uint64_t>& link_bytes() const { return link_bytes_; }

  /// Bytes currently queued for transmission *from* `node` across all of
  /// its incident links (the ship-visible egress backlog).
  std::uint64_t QueuedBytesAt(NodeId node) const;

  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t next_frame_id() const { return next_frame_id_; }

  /// The loss-process RNG, exposed for snapshot/restore (genesis): the loss
  /// stream must resume exactly for deterministic replay.
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

  /// Binds the latency lane this fabric attributes per-hop queue/transit
  /// stages to and closes lost flights against (nullptr = unbound, every
  /// probe a no-op — raw fabrics in transport tests stay lane-free). The
  /// lane must outlive the fabric. Observability-only: no transmission
  /// decision ever reads it.
  void BindLatencyLane(telemetry::lat::Lane* lane) { lat_lane_ = lane; }

  /// Mixes the loss-RNG state and transmission accounting into a rolling
  /// state digest (flight-recorder hook). Deliberately excludes per-direction
  /// queue state, which is transient in-flight detail.
  void MixDigest(Hasher& hasher) const {
    for (std::uint64_t word : rng_.SaveState()) hasher.Mix(word);
    hasher.Mix(static_cast<std::uint64_t>(link_bytes_.size()));
    for (std::uint64_t bytes : link_bytes_) hasher.Mix(bytes);
    hasher.Mix(frames_delivered_);
    hasher.Mix(frames_dropped_);
    hasher.Mix(bytes_sent_);
    hasher.Mix(next_frame_id_);
  }

  /// Restores transmission accounting from a snapshot. Only meaningful on a
  /// quiescent fabric (no frames in flight); per-direction queue state is
  /// rebuilt lazily and starts empty.
  void RestoreState(std::vector<std::uint64_t> link_bytes,
                    std::uint64_t frames_delivered, std::uint64_t frames_dropped,
                    std::uint64_t bytes_sent, std::uint64_t next_frame) {
    link_bytes_ = std::move(link_bytes);
    frames_delivered_ = frames_delivered;
    frames_dropped_ = frames_dropped;
    bytes_sent_ = bytes_sent;
    next_frame_id_ = next_frame;
  }

 private:
  struct Direction {
    sim::TimePoint busy_until = 0;
    std::uint64_t queued_bytes = 0;
  };

  void EnsureLinkState(LinkId id);

  sim::Simulator& simulator_;
  Topology& topology_;
  Rng rng_;
  sim::StatsRegistry& stats_;
  // Hot-path metrics resolved once at construction: Send() runs per frame,
  // and registry name lookups would otherwise dominate its fixed cost.
  sim::Counter& drop_no_link_;
  sim::Counter& drop_queue_;
  sim::Counter& frames_sent_;
  sim::Counter& frames_lost_;
  sim::Histogram& queue_delay_ns_;
  sim::Histogram& hop_latency_ns_;
  telemetry::lat::Lane* lat_lane_ = nullptr;
  std::vector<ReceiveHandler> handlers_;
  std::vector<std::array<Direction, 2>> directions_;  // per link: a->b, b->a
  std::vector<std::uint64_t> link_bytes_;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace viator::net
