// Failure injection for the self-healing experiments (FTPDS context).
//
// Deterministic one-shot failures (link X down at t, up at t+d) and a
// stochastic MTBF/MTTR process over all links. Node failures take every
// incident link down atomically.
#pragma once

#include <cstdint>
#include <functional>

#include "base/rng.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace viator::net {

class FailureInjector {
 public:
  FailureInjector(sim::Simulator& simulator, Topology& topology, Rng rng);

  /// Takes `link` down at `at`, restoring it after `outage` (0 = forever).
  void FailLink(LinkId link, sim::TimePoint at, sim::Duration outage);

  /// Takes `node` (all incident links) down at `at` for `outage`.
  void FailNode(NodeId node, sim::TimePoint at, sim::Duration outage);

  /// Starts a stochastic process: each link independently fails with
  /// exponential inter-failure time `mtbf` and repairs after exponential
  /// `mttr`, until `until`.
  void StartRandomLinkFailures(sim::Duration mtbf, sim::Duration mttr,
                               sim::TimePoint until);

  /// Observer invoked on each state change (kind: "link"/"node", id, up?).
  using Observer =
      std::function<void(const char* kind, std::uint32_t id, bool up)>;
  void set_observer(Observer fn) { observer_ = std::move(fn); }

  std::uint64_t failures_injected() const { return failures_injected_; }

  /// Failure-process RNG and counter restore, for snapshot/restore (genesis).
  Rng& rng() { return rng_; }
  void RestoreState(std::uint64_t failures_injected) {
    failures_injected_ = failures_injected;
  }

 private:
  void ScheduleLinkCycle(LinkId link, sim::TimePoint until,
                         sim::Duration mtbf, sim::Duration mttr);
  void Notify(const char* kind, std::uint32_t id, bool up);

  sim::Simulator& simulator_;
  Topology& topology_;
  Rng rng_;
  Observer observer_;
  std::uint64_t failures_injected_ = 0;
};

}  // namespace viator::net
