#include "net/mobility.h"

#include <algorithm>
#include <cmath>

namespace viator::net {

RandomWaypointMobility::RandomWaypointMobility(std::size_t nodes,
                                               const Config& config, Rng rng)
    : config_(config), rng_(rng) {
  positions_.resize(nodes);
  states_.resize(nodes);
  pinned_.resize(nodes, false);
  for (std::size_t i = 0; i < nodes; ++i) {
    positions_[i] = {rng_.Uniform(0.0, config_.width_m),
                     rng_.Uniform(0.0, config_.height_m)};
    PickWaypoint(i);
  }
}

void RandomWaypointMobility::PickWaypoint(std::size_t i) {
  states_[i].target = {rng_.Uniform(0.0, config_.width_m),
                       rng_.Uniform(0.0, config_.height_m)};
  states_[i].speed =
      rng_.Uniform(config_.min_speed_mps, config_.max_speed_mps);
  states_[i].pause_left = 0.0;
}

void RandomWaypointMobility::Step(double dt_seconds) {
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (pinned_[i]) continue;
    NodeState& st = states_[i];
    double dt = dt_seconds;
    if (st.pause_left > 0.0) {
      const double pause = std::min(st.pause_left, dt);
      st.pause_left -= pause;
      dt -= pause;
      if (dt <= 0.0) continue;
    }
    Position& pos = positions_[i];
    while (dt > 0.0) {
      const double dist = Distance(pos, st.target);
      const double reach = st.speed * dt;
      if (reach >= dist) {
        pos = st.target;
        dt -= st.speed > 0.0 ? dist / st.speed : dt;
        st.pause_left = config_.pause_s;
        PickWaypoint(i);
        // Spend the remaining time pausing rather than chaining legs; a
        // sub-interval leg change is below the reconciliation cadence.
        break;
      }
      const double frac = reach / dist;
      pos.x += (st.target.x - pos.x) * frac;
      pos.y += (st.target.y - pos.y) * frac;
      dt = 0.0;
    }
  }
}

AdhocManager::AdhocManager(sim::Simulator& simulator, Topology& topology,
                           RandomWaypointMobility mobility,
                           double radio_range_m, sim::Duration update_interval,
                           const LinkConfig& link_config)
    : simulator_(simulator),
      topology_(topology),
      mobility_(std::move(mobility)),
      range_(radio_range_m),
      interval_(update_interval),
      link_config_(link_config) {
  // Establish the initial radio graph.
  const auto& pos = mobility_.positions();
  pair_links_.assign(pos.size() * (pos.size() - 1) / 2, kInvalidLink);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (Distance(pos[i], pos[j]) <= range_) {
        pair_links_[PairIndex(i, j)] = topology_.AddLink(
            static_cast<NodeId>(i), static_cast<NodeId>(j), link_config_);
      }
    }
  }
}

void AdhocManager::Update() {
  mobility_.Step(sim::ToSeconds(interval_));
  const auto& pos = mobility_.positions();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      const bool in_range = Distance(pos[i], pos[j]) <= range_;
      LinkId& link = pair_links_[PairIndex(i, j)];
      if (in_range) {
        if (link == kInvalidLink) {
          link = topology_.AddLink(static_cast<NodeId>(i),
                                   static_cast<NodeId>(j), link_config_);
          ++link_transitions_;
        } else if (!topology_.IsLinkUp(link)) {
          topology_.SetLinkUp(link, true);
          ++link_transitions_;
        }
      } else if (link != kInvalidLink && topology_.IsLinkUp(link)) {
        topology_.SetLinkUp(link, false);
        ++link_transitions_;
      }
    }
  }
  if (on_update_) on_update_();
}

void AdhocManager::Start(sim::TimePoint until) {
  until_ = until;
  simulator_.ScheduleAfter(interval_, [this] {
    Update();
    if (simulator_.now() + interval_ <= until_) Start(until_);
  });
}

}  // namespace viator::net
