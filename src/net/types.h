// Identifiers and the link-layer transport unit shared by the network layer.
#pragma once

#include <any>
#include <cstdint>
#include <limits>

namespace viator::net {

/// Dense node index within one topology (0..N-1).
using NodeId = std::uint32_t;

/// Dense link index within one topology.
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

/// Link-layer transport unit. The fabric moves Frames hop by hop; upper
/// layers (shuttles, code-distribution messages) ride in `payload`.
struct Frame {
  NodeId from = kInvalidNode;     // transmitting node of this hop
  NodeId to = kInvalidNode;       // receiving node of this hop
  std::uint32_t size_bytes = 64;  // wire size incl. headers
  std::uint64_t frame_id = 0;     // unique per fabric, for traces
  std::any payload;               // upper-layer content (value semantics)
  /// Measurement-plane frame (health probes). Telemetry frames ride the
  /// fabric without drawing from its loss stream, so a run with probes
  /// enabled keeps the exact per-frame loss draws of the same run without
  /// them (determinism neutrality of the observability plane).
  bool telemetry = false;
  /// Latency-plane attribution (telemetry/latency_plane.h): the shuttle
  /// kind riding in `payload` and its transient flight id. Zero lat_id
  /// means "not a tracked shuttle" (plane off, or a non-shuttle payload);
  /// the fabric then records no latency stages and closes no flight. Both
  /// are observability-only: never read by transmission decisions.
  std::uint8_t lat_class = 0;
  std::uint64_t lat_id = 0;
};

}  // namespace viator::net
