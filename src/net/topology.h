// Physical topology: a mutable multigraph of nodes and full-duplex links
// with bandwidth, propagation latency, loss and queue capacity, plus the
// standard generator family (line, ring, star, grid, random, geometric,
// Barabási–Albert) and shortest-path queries.
//
// Links can be brought up/down and added at runtime — mobility and failure
// injection mutate the same structure the fabric routes over, which is what
// lets the Wandering Network's "topology-on-demand" react to real change.
//
// NextHop() — the per-hop routing query on the data path — is backed by a
// generation-stamped route cache: one flat first-hop row per source node
// (LRU-bounded), filled by a single full BFS and invalidated wholesale by
// bumping `generation_` on every structural mutation (link/node up/down,
// added links/nodes, mobility rewires). A cached row is proven
// decision-identical to the per-pair BFS it replaces: BFS parent assignment
// is first-touch in deterministic neighbor order, so propagating first-hop
// labels in one sweep yields exactly ShortestPath(from, to)[1] for every
// destination. The cache never feeds MixDigest (it is derived state).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "base/hash.h"
#include "base/rng.h"
#include "net/types.h"
#include "sim/time.h"
#include "telemetry/mem_counters.h"

namespace viator::sim {
class StatsRegistry;
}  // namespace viator::sim

namespace viator::net {

/// Full-duplex point-to-point link parameters.
struct LinkConfig {
  double bandwidth_bps = 100e6;            // per direction
  sim::Duration latency = sim::kMillisecond;  // propagation, per direction
  double loss_probability = 0.0;           // i.i.d. frame loss
  std::uint32_t queue_capacity_bytes = 1 << 20;  // per-direction tx queue
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  LinkConfig config;
  bool up = true;
};

class Topology {
 public:
  /// Creates `count` fresh nodes; returns the id of the first.
  NodeId AddNodes(std::size_t count);

  /// Connects a and b (must exist, distinct). Returns the link id.
  LinkId AddLink(NodeId a, NodeId b, const LinkConfig& config = {});

  std::size_t node_count() const { return node_count_; }
  std::size_t link_count() const { return links_.size(); }

  const Link& link(LinkId id) const { return links_[id]; }

  void SetLinkUp(LinkId id, bool up) {
    if (links_[id].up != up) {
      links_[id].up = up;
      ++generation_;
    }
  }
  bool IsLinkUp(LinkId id) const { return links_[id].up; }

  /// Marks every link touching `node` down (node failure) or up again.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const { return node_up_[node]; }

  /// The up link between a and b if one exists.
  std::optional<LinkId> FindLink(NodeId a, NodeId b) const;

  /// Up neighbors of `node` (only via up links, both endpoints up).
  std::vector<NodeId> Neighbors(NodeId node) const;

  /// All link ids incident to `node`.
  std::vector<LinkId> IncidentLinks(NodeId node) const;

  /// Hop-count shortest path a→b over up links; empty if disconnected.
  /// The returned path includes both endpoints.
  std::vector<NodeId> ShortestPath(NodeId a, NodeId b) const;

  /// Latency-weighted shortest path (Dijkstra over link latency).
  std::vector<NodeId> FastestPath(NodeId a, NodeId b) const;

  /// Next hop on the hop-count shortest path, or kInvalidNode. O(1) against
  /// the route cache in steady state; one row-filling BFS per (source,
  /// topology generation) otherwise.
  NodeId NextHop(NodeId from, NodeId to) const;

  /// Next hop computed the pre-cache way: a fresh per-pair BFS. Exists so
  /// tests (and the bench's cache-off leg) can prove the cache
  /// decision-identical; not a data-path API.
  NodeId NextHopUncached(NodeId from, NodeId to) const {
    const auto path = ShortestPath(from, to);
    return path.size() >= 2 ? path[1] : kInvalidNode;
  }

  // ---- Route cache ---------------------------------------------------------

  struct RouteCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;         // row fills (cold or post-invalidation)
    std::uint64_t invalidations = 0;  // stale rows discarded lazily
    std::uint64_t evictions = 0;      // live rows displaced by LRU pressure
  };

  /// Runtime switch (default on). Disabling routes every NextHop through a
  /// fresh BFS — the reference the bench gate measures the cache against.
  void SetRouteCacheEnabled(bool enabled) { cache_enabled_ = enabled; }
  bool route_cache_enabled() const { return cache_enabled_; }

  /// Caps the number of cached source rows (LRU eviction beyond it).
  /// Minimum 1; default 256 rows.
  void SetRouteCacheCapacity(std::size_t rows);
  std::size_t route_cache_capacity() const { return cache_capacity_; }

  const RouteCacheStats& route_cache_stats() const { return cache_stats_; }

  /// Heap bytes behind the cache (row index, row spine, first-hop stores),
  /// tracked incrementally and mirrored into the memory observatory's
  /// kRouteCache domain. Deterministic for a given query sequence.
  std::size_t route_cache_bytes() const { return cache_bytes_.value(); }

  /// Monotone structural-change counter: bumps on every mutation that could
  /// change a shortest path. Cached rows stamped with an older generation
  /// are dead.
  std::uint64_t generation() const { return generation_; }

  /// True when every node can reach every other over up links.
  bool IsConnected() const;

  /// Shard-local view (src/shard): the subgraph induced by `members` —
  /// global node ids that become local ids 0..members.size()-1 in member
  /// order. Links with both endpoints in `members` are copied with the same
  /// config and up flag; links crossing the cut are *not* copied (the shard
  /// plan carries them separately as cross-shard link metadata). Per-node
  /// up/down states are preserved. Duplicate members are invalid.
  Topology InducedSubgraph(const std::vector<NodeId>& members) const;

  /// Mixes the structural state (node/link counts, endpoints, up flags) into
  /// a rolling state digest (flight-recorder hook).
  void MixDigest(Hasher& hasher) const;

 private:
  // One cached first-hop row: first_hop[dst] on the shortest path from
  // `from`, kInvalidNode when unreachable. Valid iff gen == generation_.
  struct CacheRow {
    NodeId from = kInvalidNode;
    std::uint64_t gen = 0;
    std::uint64_t last_used = 0;
    std::vector<NodeId> first_hop;
  };

  CacheRow& RouteRowFor(NodeId from) const;
  void FillRow(CacheRow& row, NodeId from) const;

  std::size_t node_count_ = 0;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_;  // node -> link ids
  std::vector<bool> node_up_;

  std::uint64_t generation_ = 0;
  bool cache_enabled_ = true;
  std::size_t cache_capacity_ = 256;
  // Cache storage is derived, query-time state: mutable so the const query
  // path can maintain it. Copying a Topology copies the cache, which stays
  // valid (generation and structure travel together).
  mutable std::vector<CacheRow> rows_;
  mutable std::vector<std::uint32_t> row_of_;  // from -> index into rows_
  mutable std::uint64_t lru_tick_ = 0;
  mutable RouteCacheStats cache_stats_;
  // Running cache footprint; ChargedBytes keeps the global kRouteCache
  // domain consistent across topology copy/move/destroy.
  mutable telemetry::mem::ChargedBytes<telemetry::mem::Domain::kRouteCache>
      cache_bytes_;
};

/// Mirrors `topology`'s route-cache counters into `stats` as gauges:
/// `<prefix>.hits`, `.misses`, `.invalidations`, `.evictions` and
/// `.hit_ratio` (hits / lookups, 0 when the cache is cold). Gauges are Set,
/// not accumulated, so the call is idempotent — invoke it from any telemetry
/// flush point (network pulse, shard window barrier).
void PublishRouteCacheStats(sim::StatsRegistry& stats,
                            const Topology& topology,
                            std::string_view prefix = "net.route_cache");

// ---- Generators -----------------------------------------------------------

/// N nodes in a chain: 0-1-2-...-(n-1).
Topology MakeLine(std::size_t n, const LinkConfig& config = {});

/// N nodes in a cycle.
Topology MakeRing(std::size_t n, const LinkConfig& config = {});

/// Hub-and-spoke: node 0 is the hub.
Topology MakeStar(std::size_t n, const LinkConfig& config = {});

/// rows × cols mesh with 4-neighborhood.
Topology MakeGrid(std::size_t rows, std::size_t cols,
                  const LinkConfig& config = {});

/// Erdős–Rényi-style random graph with edge probability p, re-drawn (up to a
/// bounded number of attempts) until connected.
Topology MakeRandom(std::size_t n, double p, Rng& rng,
                    const LinkConfig& config = {});

/// Barabási–Albert preferential attachment with m edges per new node.
Topology MakeScaleFree(std::size_t n, std::size_t m, Rng& rng,
                       const LinkConfig& config = {});

/// Geometric radio graph over given positions: link iff distance <= range.
struct Position {
  double x = 0.0;
  double y = 0.0;
};
Topology MakeGeometric(const std::vector<Position>& positions, double range,
                       const LinkConfig& config = {});

/// Euclidean distance helper shared with the mobility model.
double Distance(const Position& a, const Position& b);

}  // namespace viator::net
