// Physical topology: a mutable multigraph of nodes and full-duplex links
// with bandwidth, propagation latency, loss and queue capacity, plus the
// standard generator family (line, ring, star, grid, random, geometric,
// Barabási–Albert) and shortest-path queries.
//
// Links can be brought up/down and added at runtime — mobility and failure
// injection mutate the same structure the fabric routes over, which is what
// lets the Wandering Network's "topology-on-demand" react to real change.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/hash.h"
#include "base/rng.h"
#include "net/types.h"
#include "sim/time.h"

namespace viator::net {

/// Full-duplex point-to-point link parameters.
struct LinkConfig {
  double bandwidth_bps = 100e6;            // per direction
  sim::Duration latency = sim::kMillisecond;  // propagation, per direction
  double loss_probability = 0.0;           // i.i.d. frame loss
  std::uint32_t queue_capacity_bytes = 1 << 20;  // per-direction tx queue
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  LinkConfig config;
  bool up = true;
};

class Topology {
 public:
  /// Creates `count` fresh nodes; returns the id of the first.
  NodeId AddNodes(std::size_t count);

  /// Connects a and b (must exist, distinct). Returns the link id.
  LinkId AddLink(NodeId a, NodeId b, const LinkConfig& config = {});

  std::size_t node_count() const { return node_count_; }
  std::size_t link_count() const { return links_.size(); }

  const Link& link(LinkId id) const { return links_[id]; }

  void SetLinkUp(LinkId id, bool up) { links_[id].up = up; }
  bool IsLinkUp(LinkId id) const { return links_[id].up; }

  /// Marks every link touching `node` down (node failure) or up again.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const { return node_up_[node]; }

  /// The up link between a and b if one exists.
  std::optional<LinkId> FindLink(NodeId a, NodeId b) const;

  /// Up neighbors of `node` (only via up links, both endpoints up).
  std::vector<NodeId> Neighbors(NodeId node) const;

  /// All link ids incident to `node`.
  std::vector<LinkId> IncidentLinks(NodeId node) const;

  /// Hop-count shortest path a→b over up links; empty if disconnected.
  /// The returned path includes both endpoints.
  std::vector<NodeId> ShortestPath(NodeId a, NodeId b) const;

  /// Latency-weighted shortest path (Dijkstra over link latency).
  std::vector<NodeId> FastestPath(NodeId a, NodeId b) const;

  /// Next hop on the hop-count shortest path, or kInvalidNode.
  NodeId NextHop(NodeId from, NodeId to) const;

  /// True when every node can reach every other over up links.
  bool IsConnected() const;

  /// Shard-local view (src/shard): the subgraph induced by `members` —
  /// global node ids that become local ids 0..members.size()-1 in member
  /// order. Links with both endpoints in `members` are copied with the same
  /// config and up flag; links crossing the cut are *not* copied (the shard
  /// plan carries them separately as cross-shard link metadata). Per-node
  /// up/down states are preserved. Duplicate members are invalid.
  Topology InducedSubgraph(const std::vector<NodeId>& members) const;

  /// Mixes the structural state (node/link counts, endpoints, up flags) into
  /// a rolling state digest (flight-recorder hook).
  void MixDigest(Hasher& hasher) const;

 private:
  std::size_t node_count_ = 0;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_;  // node -> link ids
  std::vector<bool> node_up_;
};

// ---- Generators -----------------------------------------------------------

/// N nodes in a chain: 0-1-2-...-(n-1).
Topology MakeLine(std::size_t n, const LinkConfig& config = {});

/// N nodes in a cycle.
Topology MakeRing(std::size_t n, const LinkConfig& config = {});

/// Hub-and-spoke: node 0 is the hub.
Topology MakeStar(std::size_t n, const LinkConfig& config = {});

/// rows × cols mesh with 4-neighborhood.
Topology MakeGrid(std::size_t rows, std::size_t cols,
                  const LinkConfig& config = {});

/// Erdős–Rényi-style random graph with edge probability p, re-drawn (up to a
/// bounded number of attempts) until connected.
Topology MakeRandom(std::size_t n, double p, Rng& rng,
                    const LinkConfig& config = {});

/// Barabási–Albert preferential attachment with m edges per new node.
Topology MakeScaleFree(std::size_t n, std::size_t m, Rng& rng,
                       const LinkConfig& config = {});

/// Geometric radio graph over given positions: link iff distance <= range.
struct Position {
  double x = 0.0;
  double y = 0.0;
};
Topology MakeGeometric(const std::vector<Position>& positions, double range,
                       const LinkConfig& config = {});

/// Euclidean distance helper shared with the mobility model.
double Distance(const Position& a, const Position& b);

}  // namespace viator::net
