#include "net/fabric.h"

#include <algorithm>
#include <utility>

namespace viator::net {

Fabric::Fabric(sim::Simulator& simulator, Topology& topology, Rng rng,
               sim::StatsRegistry& stats)
    : simulator_(simulator),
      topology_(topology),
      rng_(rng),
      stats_(stats),
      drop_no_link_(stats.GetCounter("fabric.drop_no_link")),
      drop_queue_(stats.GetCounter("fabric.drop_queue")),
      frames_sent_(stats.GetCounter("fabric.frames_sent")),
      frames_lost_(stats.GetCounter("fabric.frames_lost")),
      queue_delay_ns_(stats.GetHistogram("fabric.queue_delay_ns")),
      hop_latency_ns_(stats.GetHistogram("fabric.hop_latency_ns")) {}

void Fabric::SetReceiveHandler(NodeId node, ReceiveHandler handler) {
  if (handlers_.size() <= node) handlers_.resize(node + 1);
  handlers_[node] = std::move(handler);
}

void Fabric::EnsureLinkState(LinkId id) {
  // Grow the two arrays independently: a state restore may have populated
  // link_bytes_ beyond directions_, and a joint resize would truncate it.
  if (directions_.size() <= id) directions_.resize(id + 1);
  if (link_bytes_.size() <= id) link_bytes_.resize(id + 1, 0);
}

Status Fabric::Send(Frame frame) {
  const auto link_id = topology_.FindLink(frame.from, frame.to);
  if (!link_id.has_value() || !topology_.IsNodeUp(frame.from) ||
      !topology_.IsNodeUp(frame.to)) {
    ++frames_dropped_;
    drop_no_link_.Add();
    VIATOR_LAT_LOST(lat_lane_, frame.lat_id, simulator_.now());
    return NotFound("no up link for hop");
  }
  EnsureLinkState(*link_id);
  const Link& link = topology_.link(*link_id);
  const int dir_index = link.a == frame.from ? 0 : 1;
  Direction& dir = directions_[*link_id][dir_index];

  if (dir.queued_bytes + frame.size_bytes > link.config.queue_capacity_bytes) {
    ++frames_dropped_;
    drop_queue_.Add();
    VIATOR_LAT_LOST(lat_lane_, frame.lat_id, simulator_.now());
    return ResourceExhausted("tx queue overflow");
  }

  frame.frame_id = next_frame_id_++;
  const double ser_seconds =
      static_cast<double>(frame.size_bytes) * 8.0 / link.config.bandwidth_bps;
  const sim::Duration ser = sim::FromSeconds(ser_seconds);
  const sim::TimePoint start = std::max(simulator_.now(), dir.busy_until);
  const sim::TimePoint depart = start + ser;
  dir.busy_until = depart;
  dir.queued_bytes += frame.size_bytes;

  queue_delay_ns_.Record(static_cast<double>(start - simulator_.now()));
  if (frame.lat_id != 0) {
    VIATOR_LAT_QUEUE(lat_lane_, frame.lat_class,
                     static_cast<std::uint64_t>(start - simulator_.now()));
  }
  bytes_sent_ += frame.size_bytes;
  frames_sent_.Add();

  const LinkId lid = *link_id;
  const sim::Duration latency = link.config.latency;
  const double loss = link.config.loss_probability;
  const std::uint32_t size = frame.size_bytes;
  const sim::TimePoint send_time = simulator_.now();

  simulator_.ScheduleAt(depart, [this, lid, dir_index, size] {
    directions_[lid][dir_index].queued_bytes -= size;
    link_bytes_[lid] += size;
  });

  // Telemetry frames (health probes) never consume a loss draw: the loss
  // stream must advance identically whether or not the measurement plane is
  // active. They still pay propagation latency and the delivery-time link
  // re-check below, so probes observe outages like real traffic does.
  const bool lost = frame.telemetry ? false : rng_.Bernoulli(loss);
  if (lost) {
    ++frames_dropped_;
    frames_lost_.Add();
    VIATOR_LAT_LOST(lat_lane_, frame.lat_id, simulator_.now());
    return OkStatus();  // loss is a channel property, not a caller error
  }

  simulator_.ScheduleAt(
      depart + latency,
      [this, frame = std::move(frame), lid, send_time]() mutable {
        // Re-check link/node state at delivery time: a link that went down
        // mid-flight loses the frame (models carrier loss).
        if (!topology_.IsLinkUp(lid) || !topology_.IsNodeUp(frame.to)) {
          ++frames_dropped_;
          frames_lost_.Add();
          VIATOR_LAT_LOST(lat_lane_, frame.lat_id, simulator_.now());
          return;
        }
        ++frames_delivered_;
        hop_latency_ns_.Record(static_cast<double>(simulator_.now() - send_time));
        if (frame.lat_id != 0) {
          VIATOR_LAT_HOP(lat_lane_, frame.lat_class,
                         static_cast<std::uint64_t>(simulator_.now() -
                                                    send_time));
        }
        if (frame.to < handlers_.size() && handlers_[frame.to]) {
          handlers_[frame.to](frame);
        }
      });
  return OkStatus();
}

std::uint64_t Fabric::QueuedBytesAt(NodeId node) const {
  std::uint64_t total = 0;
  for (LinkId id : topology_.IncidentLinks(node)) {
    if (id >= directions_.size()) continue;
    const Link& link = topology_.link(id);
    const int dir_index = link.a == node ? 0 : 1;
    total += directions_[id][dir_index].queued_bytes;
  }
  return total;
}

std::size_t Fabric::Broadcast(NodeId node, Frame frame) {
  std::size_t sent = 0;
  for (NodeId neighbor : topology_.Neighbors(node)) {
    Frame copy = frame;
    copy.from = node;
    copy.to = neighbor;
    if (Send(std::move(copy)).ok()) ++sent;
  }
  return sent;
}

}  // namespace viator::net
