#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <queue>

#include "sim/stats.h"
#include "telemetry/perf_counters.h"

namespace viator::net {

NodeId Topology::AddNodes(std::size_t count) {
  const NodeId first = static_cast<NodeId>(node_count_);
  node_count_ += count;
  incident_.resize(node_count_);
  node_up_.resize(node_count_, true);
  if (count != 0) ++generation_;
  return first;
}

LinkId Topology::AddLink(NodeId a, NodeId b, const LinkConfig& config) {
  assert(a < node_count_ && b < node_count_ && a != b);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, config, true});
  incident_[a].push_back(id);
  incident_[b].push_back(id);
  ++generation_;
  return id;
}

void Topology::SetNodeUp(NodeId node, bool up) {
  if (node_up_[node] != up) {
    node_up_[node] = up;
    ++generation_;
  }
}

std::optional<LinkId> Topology::FindLink(NodeId a, NodeId b) const {
  if (!node_up_[a] || !node_up_[b]) return std::nullopt;
  for (LinkId id : incident_[a]) {
    const Link& l = links_[id];
    if (!l.up) continue;
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return id;
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::Neighbors(NodeId node) const {
  std::vector<NodeId> out;
  if (!node_up_[node]) return out;
  for (LinkId id : incident_[node]) {
    const Link& l = links_[id];
    if (!l.up) continue;
    const NodeId other = l.a == node ? l.b : l.a;
    if (node_up_[other]) out.push_back(other);
  }
  return out;
}

std::vector<LinkId> Topology::IncidentLinks(NodeId node) const {
  return incident_[node];
}

std::vector<NodeId> Topology::ShortestPath(NodeId a, NodeId b) const {
  if (a >= node_count_ || b >= node_count_) return {};
  if (!node_up_[a] || !node_up_[b]) return {};
  if (a == b) return {a};
  std::vector<NodeId> parent(node_count_, kInvalidNode);
  std::deque<NodeId> frontier{a};
  parent[a] = a;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : Neighbors(u)) {
      if (parent[v] != kInvalidNode) continue;
      parent[v] = u;
      if (v == b) {
        std::vector<NodeId> path{b};
        for (NodeId at = b; at != a;) {
          at = parent[at];
          path.push_back(at);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  return {};
}

std::vector<NodeId> Topology::FastestPath(NodeId a, NodeId b) const {
  if (a >= node_count_ || b >= node_count_) return {};
  if (!node_up_[a] || !node_up_[b]) return {};
  if (a == b) return {a};
  constexpr double kInf = 1e300;
  std::vector<double> dist(node_count_, kInf);
  std::vector<NodeId> parent(node_count_, kInvalidNode);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[a] = 0.0;
  pq.push({0.0, a});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == b) break;
    for (LinkId id : incident_[u]) {
      const Link& l = links_[id];
      if (!l.up) continue;
      const NodeId v = l.a == u ? l.b : l.a;
      if (!node_up_[v]) continue;
      const double nd = d + static_cast<double>(l.config.latency);
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        pq.push({nd, v});
      }
    }
  }
  if (parent[b] == kInvalidNode) return {};
  std::vector<NodeId> path{b};
  for (NodeId at = b; at != a;) {
    at = parent[at];
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

NodeId Topology::NextHop(NodeId from, NodeId to) const {
  if (!cache_enabled_) return NextHopUncached(from, to);
  // Guards mirror ShortestPath exactly so cached and uncached answers agree
  // on every degenerate input.
  if (from >= node_count_ || to >= node_count_) return kInvalidNode;
  if (!node_up_[from] || !node_up_[to]) return kInvalidNode;
  if (from == to) return kInvalidNode;
  CacheRow& row = RouteRowFor(from);
  row.last_used = ++lru_tick_;
  return row.first_hop[to];
}

void Topology::SetRouteCacheCapacity(std::size_t rows) {
  cache_capacity_ = rows == 0 ? 1 : rows;
  // Shed excess rows now; which ones go is irrelevant to correctness, so
  // drop from the back (deterministic).
  while (rows_.size() > cache_capacity_) {
    const CacheRow& victim = rows_.back();
    if (victim.from < row_of_.size()) {
      row_of_[victim.from] = kInvalidNode;
    }
    ++cache_stats_.evictions;
    cache_bytes_.Sub(victim.first_hop.capacity() * sizeof(NodeId));
    rows_.pop_back();
  }
}

Topology::CacheRow& Topology::RouteRowFor(NodeId from) const {
  if (row_of_.size() < node_count_) {
    const std::size_t before = row_of_.capacity();
    row_of_.resize(node_count_, kInvalidNode);
    if (row_of_.capacity() != before) {
      cache_bytes_.Add((row_of_.capacity() - before) * sizeof(std::uint32_t));
    }
  }
  const std::uint32_t idx = row_of_[from];
  if (idx != kInvalidNode && rows_[idx].from == from) {
    CacheRow& row = rows_[idx];
    if (row.gen == generation_) {
      ++cache_stats_.hits;
      VIATOR_PERF_COUNT(kRouteCacheHit);
      return row;
    }
    // Stale: refill in place.
    ++cache_stats_.invalidations;
    ++cache_stats_.misses;
    VIATOR_PERF_COUNT(kRouteCacheMiss);
    FillRow(row, from);
    return row;
  }
  ++cache_stats_.misses;
  VIATOR_PERF_COUNT(kRouteCacheMiss);
  if (rows_.size() < cache_capacity_) {
    const std::size_t before = rows_.capacity();
    rows_.emplace_back();
    if (rows_.capacity() != before) {
      cache_bytes_.Add((rows_.capacity() - before) * sizeof(CacheRow));
    }
    row_of_[from] = static_cast<std::uint32_t>(rows_.size() - 1);
    CacheRow& row = rows_.back();
    FillRow(row, from);
    return row;
  }
  // LRU eviction: reuse the least recently used row's storage.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].last_used < rows_[victim].last_used) victim = i;
  }
  CacheRow& row = rows_[victim];
  if (row.from < row_of_.size() && row_of_[row.from] == victim) {
    row_of_[row.from] = kInvalidNode;
  }
  ++cache_stats_.evictions;
  row_of_[from] = static_cast<std::uint32_t>(victim);
  FillRow(row, from);
  return row;
}

void Topology::FillRow(Topology::CacheRow& row, NodeId from) const {
  VIATOR_PERF_SCOPE(kRouteCacheFill);
  row.from = from;
  row.gen = generation_;
  const std::size_t before = row.first_hop.capacity();
  row.first_hop.assign(node_count_, kInvalidNode);
  if (row.first_hop.capacity() != before) {
    cache_bytes_.Add((row.first_hop.capacity() - before) * sizeof(NodeId));
  }
  // One full BFS with first-hop label propagation. Expansion order and
  // first-touch parent assignment are identical to ShortestPath(), so for
  // every destination `d` the label equals ShortestPath(from, d)[1]; the
  // early exit the per-pair query takes merely stops after the target's
  // label is already fixed.
  std::vector<NodeId> parent(node_count_, kInvalidNode);
  std::deque<NodeId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : Neighbors(u)) {
      if (parent[v] != kInvalidNode) continue;
      parent[v] = u;
      row.first_hop[v] = u == from ? v : row.first_hop[u];
      frontier.push_back(v);
    }
  }
}

bool Topology::IsConnected() const {
  if (node_count_ == 0) return true;
  NodeId start = kInvalidNode;
  std::size_t up_nodes = 0;
  for (NodeId n = 0; n < node_count_; ++n) {
    if (node_up_[n]) {
      ++up_nodes;
      if (start == kInvalidNode) start = n;
    }
  }
  if (up_nodes <= 1) return true;
  std::vector<bool> seen(node_count_, false);
  std::deque<NodeId> frontier{start};
  seen[start] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : Neighbors(u)) {
      if (seen[v]) continue;
      seen[v] = true;
      ++reached;
      frontier.push_back(v);
    }
  }
  return reached == up_nodes;
}

Topology Topology::InducedSubgraph(const std::vector<NodeId>& members) const {
  Topology sub;
  if (members.empty()) return sub;
  sub.AddNodes(members.size());
  std::vector<NodeId> local_of(node_count_, kInvalidNode);
  for (std::size_t i = 0; i < members.size(); ++i) {
    local_of[members[i]] = static_cast<NodeId>(i);
    if (!node_up_[members[i]]) sub.SetNodeUp(static_cast<NodeId>(i), false);
  }
  for (const Link& l : links_) {
    const NodeId la = local_of[l.a];
    const NodeId lb = local_of[l.b];
    if (la == kInvalidNode || lb == kInvalidNode) continue;
    const LinkId id = sub.AddLink(la, lb, l.config);
    if (!l.up) sub.SetLinkUp(id, false);
  }
  return sub;
}

void Topology::MixDigest(Hasher& hasher) const {
  hasher.Mix(static_cast<std::uint64_t>(node_count_));
  hasher.Mix(static_cast<std::uint64_t>(links_.size()));
  for (const Link& link : links_) {
    hasher.Mix(link.a);
    hasher.Mix(link.b);
    hasher.Mix(link.up ? 1u : 0u);
  }
  for (std::size_t n = 0; n < node_count_; ++n) {
    hasher.Mix(node_up_[n] ? 1u : 0u);
  }
}

// ---- Generators -----------------------------------------------------------

void PublishRouteCacheStats(sim::StatsRegistry& stats,
                            const Topology& topology,
                            std::string_view prefix) {
  const Topology::RouteCacheStats& cache = topology.route_cache_stats();
  std::string name(prefix);
  const std::size_t stem = name.size();
  const auto set = [&](std::string_view leaf, double value) {
    name.resize(stem);
    name += '.';
    name += leaf;
    stats.GetGauge(name).Set(value);
  };
  set("hits", static_cast<double>(cache.hits));
  set("misses", static_cast<double>(cache.misses));
  set("invalidations", static_cast<double>(cache.invalidations));
  set("evictions", static_cast<double>(cache.evictions));
  const std::uint64_t lookups = cache.hits + cache.misses;
  set("hit_ratio", lookups == 0 ? 0.0
                                : static_cast<double>(cache.hits) /
                                      static_cast<double>(lookups));
}

Topology MakeLine(std::size_t n, const LinkConfig& config) {
  Topology t;
  t.AddNodes(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.AddLink(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), config);
  }
  return t;
}

Topology MakeRing(std::size_t n, const LinkConfig& config) {
  Topology t = MakeLine(n, config);
  if (n >= 3) t.AddLink(static_cast<NodeId>(n - 1), 0, config);
  return t;
}

Topology MakeStar(std::size_t n, const LinkConfig& config) {
  Topology t;
  t.AddNodes(n);
  for (std::size_t i = 1; i < n; ++i) {
    t.AddLink(0, static_cast<NodeId>(i), config);
  }
  return t;
}

Topology MakeGrid(std::size_t rows, std::size_t cols,
                  const LinkConfig& config) {
  Topology t;
  t.AddNodes(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.AddLink(id(r, c), id(r, c + 1), config);
      if (r + 1 < rows) t.AddLink(id(r, c), id(r + 1, c), config);
    }
  }
  return t;
}

Topology MakeRandom(std::size_t n, double p, Rng& rng,
                    const LinkConfig& config) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    Topology t;
    t.AddNodes(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(p)) {
          t.AddLink(static_cast<NodeId>(i), static_cast<NodeId>(j), config);
        }
      }
    }
    if (t.IsConnected()) return t;
  }
  // Fall back to a connected backbone plus random chords.
  Topology t = MakeLine(n, config);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      if (rng.Bernoulli(p)) {
        t.AddLink(static_cast<NodeId>(i), static_cast<NodeId>(j), config);
      }
    }
  }
  return t;
}

Topology MakeScaleFree(std::size_t n, std::size_t m, Rng& rng,
                       const LinkConfig& config) {
  assert(n >= 2 && m >= 1);
  Topology t;
  t.AddNodes(n);
  // Endpoint list doubles as the preferential-attachment distribution.
  std::vector<NodeId> endpoints;
  t.AddLink(0, 1, config);
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (std::size_t v = 2; v < n; ++v) {
    const std::size_t degree_edges = std::min(m, v);
    std::vector<NodeId> chosen;
    while (chosen.size() < degree_edges) {
      const NodeId u = endpoints[rng.Index(endpoints.size())];
      if (u == v) continue;
      if (std::find(chosen.begin(), chosen.end(), u) != chosen.end()) continue;
      chosen.push_back(u);
    }
    for (NodeId u : chosen) {
      t.AddLink(static_cast<NodeId>(v), u, config);
      endpoints.push_back(static_cast<NodeId>(v));
      endpoints.push_back(u);
    }
  }
  return t;
}

double Distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Topology MakeGeometric(const std::vector<Position>& positions, double range,
                       const LinkConfig& config) {
  Topology t;
  t.AddNodes(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (Distance(positions[i], positions[j]) <= range) {
        t.AddLink(static_cast<NodeId>(i), static_cast<NodeId>(j), config);
      }
    }
  }
  return t;
}

}  // namespace viator::net
