// Multi-core window execution for partitioned simulations.
//
// A ShardedExecutor drives N independent Simulators — one per topology shard
// — through conservative time windows on a persistent worker pool. One
// RunWindow(deadline) call runs every simulator until the deadline (the
// window end) concurrently; the caller then performs the barrier work
// (cross-shard message exchange, hash capture) single-threaded and calls
// RunWindow again. Because each simulator is touched by exactly one worker
// per window and shards share no mutable state below the barrier, results
// are bit-identical for ANY thread count, including 1 — the single-threaded
// path is the determinism reference the parallel path is proven against.
//
// The executor is deliberately ignorant of what a "shard" is: it schedules
// Simulators and runs an optional post-window task per shard on the worker
// that finished it (used to compute per-shard state hashes off the barrier's
// critical path). Cross-shard coupling, mailboxes and window sizing live in
// src/shard.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace viator::sim {

class ShardedExecutor {
 public:
  /// Per-shard outcome of one window.
  struct WindowResult {
    /// Events dispatched by this shard during the window.
    std::uint64_t dispatched = 0;
    /// Wall-clock nanoseconds the shard's window run (plus post task) took.
    /// Diagnostic only — never feeds simulation state or hashes.
    std::uint64_t wall_ns = 0;
    /// Wall-clock offset of the shard's start from the window epoch (the
    /// instant RunWindow released the pool): when a worker actually picked
    /// the shard up. Diagnostic; timeline rendering only.
    std::uint64_t start_ns = 0;
  };

  /// Runs on the worker that finished shard `i`'s window, immediately after
  /// its RunUntil returns. Must touch only shard-i-local state.
  using PostWindowFn = std::function<void(std::size_t shard)>;

  /// Borrows the simulators (must outlive the executor). `threads` caps the
  /// worker pool: 0 = hardware concurrency, 1 = run inline on the calling
  /// thread (no pool, the sequential reference path). The pool never holds
  /// more workers than simulators.
  explicit ShardedExecutor(std::vector<Simulator*> simulators,
                           std::size_t threads = 0);
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Runs every simulator until `deadline` (inclusive, as Simulator::
  /// RunUntil): shard clocks all read `deadline` afterwards. Blocks until
  /// every shard (and its post task) finished; results are indexed by shard.
  /// Deterministic for any thread count.
  const std::vector<WindowResult>& RunWindow(TimePoint deadline,
                                             const PostWindowFn& post = {});

  std::size_t shard_count() const { return simulators_.size(); }
  std::size_t threads() const { return threads_; }

  /// Total events dispatched across all shards since construction.
  std::uint64_t total_dispatched() const { return total_dispatched_; }

 private:
  void WorkerLoop();
  void RunShard(std::size_t shard);

  std::vector<Simulator*> simulators_;
  std::size_t threads_ = 1;
  std::vector<WindowResult> results_;
  std::uint64_t total_dispatched_ = 0;

  // Window state handed to the pool. `generation_` bumps once per window;
  // workers claim shard indices from `next_shard_` and the last finisher
  // signals `done_cv_`.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  TimePoint deadline_ = 0;
  /// Wall instant the current window was released (start_ns reference).
  std::chrono::steady_clock::time_point window_epoch_{};
  const PostWindowFn* post_ = nullptr;
  std::size_t next_shard_ = 0;
  std::size_t pending_shards_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> pool_;
};

}  // namespace viator::sim
