#include "sim/executor.h"

#include <algorithm>
#include <chrono>

#include "telemetry/perf_counters.h"

namespace viator::sim {

namespace {

std::uint64_t WallNsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

ShardedExecutor::ShardedExecutor(std::vector<Simulator*> simulators,
                                 std::size_t threads)
    : simulators_(std::move(simulators)) {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  threads_ = threads == 0 ? hw : threads;
  threads_ = std::max<std::size_t>(1, std::min(threads_, simulators_.size()));
  results_.resize(simulators_.size());
  if (threads_ > 1) {
    pool_.reserve(threads_);
    for (std::size_t i = 0; i < threads_; ++i) {
      pool_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ShardedExecutor::~ShardedExecutor() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : pool_) t.join();
  }
}

void ShardedExecutor::RunShard(std::size_t shard) {
  const auto start = std::chrono::steady_clock::now();
  Simulator& simulator = *simulators_[shard];
  std::uint64_t dispatched = 0;
  {
    VIATOR_PERF_SCOPE(kExecutorWindow);
    dispatched = simulator.RunUntil(deadline_);
  }
  if (post_ != nullptr && *post_) {
    VIATOR_PERF_SCOPE(kExecutorPost);
    (*post_)(shard);
  }
  results_[shard].dispatched = dispatched;
  results_[shard].wall_ns = WallNsSince(start);
  results_[shard].start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                           window_epoch_)
          .count());
}

const std::vector<ShardedExecutor::WindowResult>& ShardedExecutor::RunWindow(
    TimePoint deadline, const PostWindowFn& post) {
  if (pool_.empty()) {
    // Sequential reference path: shards run in shard order on this thread.
    std::fill(results_.begin(), results_.end(), WindowResult{});
    deadline_ = deadline;
    post_ = &post;
    window_epoch_ = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < simulators_.size(); ++i) RunShard(i);
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::fill(results_.begin(), results_.end(), WindowResult{});
      deadline_ = deadline;
      post_ = &post;
      next_shard_ = 0;
      pending_shards_ = simulators_.size();
      window_epoch_ = std::chrono::steady_clock::now();
      ++generation_;
    }
    work_cv_.notify_all();
    VIATOR_PERF_SCOPE(kBarrierWait);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_shards_ == 0; });
  }
  post_ = nullptr;
  for (const WindowResult& r : results_) total_dispatched_ += r.dispatched;
  return results_;
}

void ShardedExecutor::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    while (next_shard_ < simulators_.size()) {
      const std::size_t shard = next_shard_++;
      lock.unlock();
      RunShard(shard);
      lock.lock();
      if (--pending_shards_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace viator::sim
