// Simulated time. One tick = one nanosecond of virtual time; 64 bits cover
// ~584 years of simulation, far beyond any experiment here.
#pragma once

#include <cstdint>

namespace viator::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using TimePoint = std::uint64_t;

/// Relative simulated duration in nanoseconds.
using Duration = std::uint64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Converts seconds (double) to a Duration, saturating at 0 for negatives.
constexpr Duration FromSeconds(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<Duration>(seconds * 1e9 + 0.5);
}

/// Converts a Duration to fractional seconds.
constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / 1e9;
}

}  // namespace viator::sim
