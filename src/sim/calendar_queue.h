// Calendar-queue event scheduler (Brown '88, with ladder-style adaptation).
//
// Replaces the binary heap under the Simulator: O(1) amortised push/pop for
// the high-rate near-future event distribution a discrete-event network
// produces, while preserving the EXACT (when, seq) total order the heap
// gave — seq is the stable schedule ordinal, so dispatch order (and with it
// every DecisionJournal digest) is bit-identical to the heap scheduler.
//
// Structure: a power-of-two ring of unsorted buckets, each `1 << shift_`
// virtual nanoseconds wide; an event at time `when` lives in bucket
// `(when >> shift_) & (buckets - 1)`. The minimum is materialised lazily
// into a "head batch": ALL entries sharing the globally minimal timestamp,
// sorted by seq and consumed in order. Because seq is assigned monotonically,
// same-time pushes that arrive while the batch is live append in order;
// pushes earlier than the batch flush it back into the ring first (rare —
// only possible after peeking a future event without advancing the clock).
//
// Determinism: no wall clock, no pointer-order anywhere. Bucket count and
// width adapt only to the push/pop sequence itself, so two runs performing
// the same schedule calls see identical behaviour on any host.
//
// The queue stores 24-byte handles, not callbacks: {when, seq, slot, gen}.
// slot/gen address the Simulator's event-slot pool; a stale gen marks a
// cancelled (tombstoned) entry, which the Simulator skips at pop, exactly
// as the heap's lazy tombstone removal did.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "telemetry/mem_counters.h"

namespace viator::sim {

/// One queued event reference. `slot`/`gen` address the owner's event pool;
/// the queue orders purely by (when, seq).
struct QueuedEvent {
  TimePoint when;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
};

class CalendarQueue {
 public:
  CalendarQueue() { Rebuild(kMinBuckets, 0); }

  /// Total entries queued, tombstones included (queue occupancy). O(1).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts an entry. `seq` values must be pushed in increasing order for
  /// equal `when` (the Simulator's monotone schedule ordinal guarantees it).
  void Push(const QueuedEvent& e) {
    ++size_;
    if (HeadActive()) {
      if (e.when == head_when_) {
        // Monotone seq: belongs after every unconsumed batch entry.
        PushHead(e);
        return;
      }
      if (e.when < head_when_) FlushHead();
    }
    if (e.when < floor_) floor_ = e.when;
    PushBucket(e);
    ++bucketed_;
    if (bucketed_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
      Rebuild(buckets_.size() * 2, SampleShift(buckets_.size() * 2));
    }
  }

  /// Minimum entry by (when, seq), tombstones included; nullptr when empty.
  /// Non-const: materialises the head batch on demand.
  const QueuedEvent* PeekMin() {
    if (!HeadActive()) {
      if (size_ == 0) return nullptr;
      Refill();
    }
    return &head_[head_pos_];
  }

  /// Removes and returns the minimum entry. Precondition: !empty().
  QueuedEvent PopMin() {
    if (!HeadActive()) Refill();
    QueuedEvent e = head_[head_pos_++];
    --size_;
    floor_ = e.when;  // nothing earlier can remain
    if (head_pos_ == head_.size()) {
      head_.clear();
      head_pos_ = 0;
      if (size_ != 0 && bucketed_ < buckets_.size() / 8 &&
          buckets_.size() > kMinBuckets) {
        Rebuild(buckets_.size() / 2, SampleShift(buckets_.size() / 2));
      }
    }
    return e;
  }

  // Introspection for tests / diagnostics.
  std::size_t bucket_count() const { return buckets_.size(); }
  unsigned shift() const { return shift_; }

  /// Heap bytes currently held by the ring and head batch (vector
  /// capacities, tracked incrementally at every capacity change), and the
  /// high-water mark of that figure. Deterministic functions of the
  /// schedule-call sequence: benches pin them, genesis carries the peak.
  std::size_t heap_bytes() const { return heap_bytes_; }
  std::size_t peak_heap_bytes() const { return peak_heap_bytes_; }

  /// Genesis restore hook (see ShuttlePool::RestorePeakRetainedBytes): a
  /// restored queue rebuilds its storage from scratch, so the recorded
  /// run's high-water mark is re-seeded explicitly. Keeps the current
  /// figure if the snapshot's peak is older than what restore re-created.
  void RestorePeakHeapBytes(std::size_t peak) {
    if (peak > peak_heap_bytes_) peak_heap_bytes_ = peak;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  bool HeadActive() const { return head_pos_ < head_.size(); }

  std::size_t BucketIndex(TimePoint when) const {
    return static_cast<std::size_t>(when >> shift_) & (buckets_.size() - 1);
  }

  void PushBucket(const QueuedEvent& e) {
    auto& bucket = buckets_[BucketIndex(e.when)];
    const std::size_t before = bucket.capacity();
    bucket.push_back(e);
    if (bucket.capacity() != before) {
      Charge((bucket.capacity() - before) * sizeof(QueuedEvent));
    }
  }

  void PushHead(const QueuedEvent& e) {
    const std::size_t before = head_.capacity();
    head_.push_back(e);
    if (head_.capacity() != before) {
      Charge((head_.capacity() - before) * sizeof(QueuedEvent));
    }
  }

  /// Capacity accounting: `heap_bytes_` mirrors the exact heap footprint of
  /// buckets_ + head_, maintained as a running sum so the hot path never
  /// walks the ring. Mirrored into the process-wide kCalendarQueue domain.
  void Charge(std::size_t bytes) {
    if (bytes == 0) return;
    heap_bytes_ += bytes;
    if (heap_bytes_ > peak_heap_bytes_) peak_heap_bytes_ = heap_bytes_;
    VIATOR_MEM_ALLOC(kCalendarQueue, bytes);
  }
  void Release(std::size_t bytes) {
    if (bytes == 0) return;
    heap_bytes_ -= bytes;
    VIATOR_MEM_FREE(kCalendarQueue, bytes);
  }

  /// Current heap footprint of the bucket ring (outer spine + per-bucket
  /// stores). Walks every bucket — Rebuild-only, never on the push path.
  std::size_t BucketBytes() const {
    std::size_t bytes = buckets_.capacity() * sizeof(std::vector<QueuedEvent>);
    for (const auto& bucket : buckets_) {
      bytes += bucket.capacity() * sizeof(QueuedEvent);
    }
    return bytes;
  }

  /// Returns the unconsumed head batch to the ring (a push arrived earlier
  /// than the current batch timestamp).
  void FlushHead() {
    for (std::size_t i = head_pos_; i < head_.size(); ++i) {
      if (head_[i].when < floor_) floor_ = head_[i].when;
      PushBucket(head_[i]);
      ++bucketed_;
    }
    head_.clear();
    head_pos_ = 0;
  }

  /// Extracts every entry carrying the minimal timestamp into head_,
  /// sorted by seq. Precondition: size_ > 0 and head inactive.
  void Refill() {
    // Scan one "year" (buckets_.size() days) of day-windows starting at the
    // day containing floor_; the first day owning any entry owns the global
    // minimum, because floor_ is a lower bound for everything queued.
    const std::uint64_t start_day = static_cast<std::uint64_t>(floor_) >> shift_;
    bool found = false;
    TimePoint min_when = 0;
    for (std::uint64_t k = 0; k < buckets_.size() && !found; ++k) {
      const std::uint64_t day = start_day + k;
      auto& bucket = buckets_[static_cast<std::size_t>(day) & (buckets_.size() - 1)];
      for (const QueuedEvent& e : bucket) {
        if ((static_cast<std::uint64_t>(e.when) >> shift_) != day) continue;
        if (!found || e.when < min_when) {
          found = true;
          min_when = e.when;
        }
      }
      if (found) ExtractAll(bucket, min_when);
    }
    if (!found) {
      // Every entry is more than a year beyond floor_: the width is stale.
      // Direct-search the whole ring for the minimum, then re-adapt.
      for (const auto& bucket : buckets_) {
        for (const QueuedEvent& e : bucket) {
          if (!found || e.when < min_when) {
            found = true;
            min_when = e.when;
          }
        }
      }
      auto& bucket = buckets_[BucketIndex(min_when)];
      ExtractAll(bucket, min_when);
      Rebuild(buckets_.size(), SampleShift(buckets_.size()));
    }
    std::sort(head_.begin(), head_.end(),
              [](const QueuedEvent& a, const QueuedEvent& b) { return a.seq < b.seq; });
    head_when_ = min_when;
    head_pos_ = 0;
    floor_ = min_when;
  }

  /// Swap-removes every `when == target` entry of `bucket` into head_.
  void ExtractAll(std::vector<QueuedEvent>& bucket, TimePoint target) {
    for (std::size_t i = 0; i < bucket.size();) {
      if (bucket[i].when == target) {
        PushHead(bucket[i]);
        bucket[i] = bucket.back();
        bucket.pop_back();
        --bucketed_;
      } else {
        ++i;
      }
    }
  }

  /// Picks a bucket width for `nbuckets` from the spread of queued times:
  /// width ~ spread / nbuckets, rounded up to a power of two, so steady-state
  /// occupancy stays O(1) per bucket-day.
  unsigned SampleShift(std::size_t nbuckets) const {
    TimePoint lo = 0, hi = 0;
    bool any = false;
    auto visit = [&](const QueuedEvent& e) {
      if (!any) {
        lo = hi = e.when;
        any = true;
      } else {
        if (e.when < lo) lo = e.when;
        if (e.when > hi) hi = e.when;
      }
    };
    for (const auto& bucket : buckets_)
      for (const QueuedEvent& e : bucket) visit(e);
    for (std::size_t i = head_pos_; i < head_.size(); ++i) visit(head_[i]);
    if (!any || hi == lo) return 0;
    const std::uint64_t span = (hi - lo) / static_cast<std::uint64_t>(nbuckets);
    unsigned s = 0;
    while (s < 40 && (std::uint64_t{1} << s) < span) ++s;
    return s;
  }

  /// Re-ring all bucketed entries into `nbuckets` buckets of width
  /// `1 << shift`. The head batch is left untouched.
  void Rebuild(std::size_t nbuckets, unsigned shift) {
    std::vector<QueuedEvent> all;
    all.reserve(bucketed_);
    for (auto& bucket : buckets_)
      for (const QueuedEvent& e : bucket) all.push_back(e);
    // Re-ringing replaces every bucket store: release the old ring's
    // footprint wholesale, charge the fresh spine, and let PushBucket
    // account each bucket's regrowth. (`all` is transient scratch.)
    Release(BucketBytes());
    shift_ = shift;
    buckets_.assign(nbuckets, {});
    Charge(BucketBytes());
    for (const QueuedEvent& e : all) PushBucket(e);
  }

  std::vector<std::vector<QueuedEvent>> buckets_;
  unsigned shift_ = 0;
  std::size_t size_ = 0;      // total entries (head remainder + bucketed)
  std::size_t bucketed_ = 0;  // entries currently in the ring
  TimePoint floor_ = 0;       // lower bound for every queued entry
  // Head batch: all entries at the minimal timestamp, seq-sorted.
  std::vector<QueuedEvent> head_;
  std::size_t head_pos_ = 0;
  TimePoint head_when_ = 0;
  std::size_t heap_bytes_ = 0;       // exact footprint of buckets_ + head_
  std::size_t peak_heap_bytes_ = 0;  // high-water mark of heap_bytes_
};

}  // namespace viator::sim
