#include "sim/trace.h"

#include <cstdio>

#include "base/strings.h"

namespace viator::sim {

std::string_view TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
  }
  return "?";
}

void TraceSink::Log(TimePoint time, TraceLevel level, std::string component,
                    std::string message) {
  if (level < min_level_) return;
  if (echo_) {
    std::printf("[%s] %-5s %-18s %s\n", FormatNanos(time).c_str(),
                std::string(TraceLevelName(level)).c_str(), component.c_str(),
                message.c_str());
  }
  entries_.push_back(Entry{time, level, std::move(component),
                           std::move(message)});
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::size_t TraceSink::CountContaining(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

std::vector<TraceSink::Entry> TraceSink::ForComponent(
    std::string_view component) const {
  std::vector<Entry> out;
  for (const auto& e : entries_) {
    if (e.component == component) out.push_back(e);
  }
  return out;
}

}  // namespace viator::sim
