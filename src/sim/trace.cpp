#include "sim/trace.h"

#include <cstdio>
#include <ostream>

#include "base/strings.h"

namespace viator::sim {

std::string_view TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
  }
  return "?";
}

void TraceSink::Log(TimePoint time, TraceLevel level, std::string component,
                    std::string message) {
  if (level < min_level_) return;
  if (echo_) {
    std::printf("[%s] %-5s %-18s %s\n", FormatNanos(time).c_str(),
                std::string(TraceLevelName(level)).c_str(), component.c_str(),
                message.c_str());
  }
  entries_.push_back(Entry{time, level, std::move(component),
                           std::move(message)});
  while (entries_.size() > capacity_) entries_.pop_front();
}

namespace {

// Minimal JSON string escaping: quotes, backslashes and control characters.
void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void TraceSink::WriteJsonl(std::ostream& out) const {
  std::string line;
  for (const auto& e : entries_) {
    line.clear();
    line += "{\"t\":";
    line += std::to_string(e.time);
    line += ",\"level\":\"";
    line += TraceLevelName(e.level);
    line += "\",\"component\":\"";
    AppendJsonEscaped(line, e.component);
    line += "\",\"message\":\"";
    AppendJsonEscaped(line, e.message);
    line += "\"}\n";
    out << line;
  }
}

void TraceSink::RestoreEntry(Entry entry) {
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::size_t TraceSink::CountContaining(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

std::vector<TraceSink::Entry> TraceSink::ForComponent(
    std::string_view component) const {
  std::vector<Entry> out;
  for (const auto& e : entries_) {
    if (e.component == component) out.push_back(e);
  }
  return out;
}

}  // namespace viator::sim
