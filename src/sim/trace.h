// Structured trace log. Subsystems emit (time, level, component, message)
// entries into a bounded ring buffer; tests assert against the buffer,
// examples optionally echo it to stdout.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace viator::sim {

enum class TraceLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

std::string_view TraceLevelName(TraceLevel level);

/// Bounded in-memory trace sink. Not thread-safe by design: each simulation
/// replica owns one sink (shared mutable state stays replica-local).
class TraceSink {
 public:
  struct Entry {
    TimePoint time;
    TraceLevel level;
    std::string component;
    std::string message;
  };

  explicit TraceSink(std::size_t capacity = 4096, bool echo_stdout = false)
      : capacity_(capacity), echo_(echo_stdout) {}

  /// Records an entry, evicting the oldest when over capacity.
  void Log(TimePoint time, TraceLevel level, std::string component,
           std::string message);

  /// Drops entries below this level (default: keep everything).
  void set_min_level(TraceLevel level) { min_level_ = level; }
  void set_echo(bool echo) { echo_ = echo; }

  const std::deque<Entry>& entries() const { return entries_; }

  /// Number of retained entries whose message contains `needle`.
  std::size_t CountContaining(std::string_view needle) const;

  /// All retained entries for one component, oldest first.
  std::vector<Entry> ForComponent(std::string_view component) const;

  /// Dumps every retained entry as one JSON object per line
  /// ({"t":...,"level":...,"component":...,"message":...}), oldest first.
  /// Stable field order, so two sinks with equal entries produce byte-equal
  /// output — the offline diff format for deterministic-resume checks.
  void WriteJsonl(std::ostream& out) const;

  /// Re-appends an entry verbatim (snapshot restore): bypasses the level
  /// filter and stdout echo, but still enforces the capacity bound.
  void RestoreEntry(Entry entry);

  void Clear() { entries_.clear(); }

 private:
  std::size_t capacity_;
  bool echo_;
  TraceLevel min_level_ = TraceLevel::kDebug;
  std::deque<Entry> entries_;
};

}  // namespace viator::sim
