// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of (time, sequence, callback) events and
// a virtual clock. Events at equal times fire in scheduling order (sequence
// tiebreak), which makes every run bit-for-bit deterministic. Scheduled
// events can be cancelled through the returned handle; cancellation is O(1)
// (tombstoning) with lazy removal at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "sim/time.h"

namespace viator::sim {

/// Handle to a scheduled event; Cancel() prevents a not-yet-fired callback
/// from running. Handles are cheap shared references and may outlive the
/// event itself (cancelling a fired event is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Suppresses the callback if it has not fired yet.
  void Cancel() {
    if (alive_) *alive_ = false;
  }

  /// True if the event is still pending (scheduled, not fired/cancelled).
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// The event-driven virtual machine of the whole system: all network, node
/// and WLI activity is expressed as events against one Simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Observes every dispatched event: component label (a static string, or
  /// "sim.event" for untagged events), its scheduled time, the virtual-time
  /// gap since the previous dispatch, and the wall-clock nanoseconds the
  /// callback ran for. Installed by the telemetry profiler; when unset the
  /// dispatch loop pays only a null check (zero-cost-when-off).
  using DispatchObserver = std::function<void(
      const char* component, TimePoint when, Duration virtual_gap,
      std::uint64_t wall_ns)>;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  /// `component` must point at storage outliving the event (string literal).
  EventHandle ScheduleAt(TimePoint when, Callback fn,
                         const char* component = nullptr);

  /// Schedules `fn` after `delay` from now.
  EventHandle ScheduleAfter(Duration delay, Callback fn,
                            const char* component = nullptr);

  /// Installs (or, with nullptr, removes) the dispatch observer. Component
  /// labels are only retained for events scheduled while an observer is
  /// installed; removing the observer drops pending labels.
  void SetDispatchObserver(DispatchObserver observer) {
    observer_ = std::move(observer);
    if (!observer_) component_by_seq_.clear();
  }

  /// Runs events until the queue empties or the clock passes `deadline`.
  /// Returns the number of events dispatched.
  std::uint64_t RunUntil(TimePoint deadline);

  /// Runs until the queue is fully drained.
  std::uint64_t RunAll();

  /// Dispatches exactly one event if any is pending. Returns false when idle.
  bool Step();

  /// Number of live (non-cancelled) events still queued. O(queue) — intended
  /// for tests and end-of-run assertions, not hot paths.
  std::size_t PendingEvents() const;

  /// Current event-queue size, O(1). Counts tombstoned (cancelled) events
  /// still awaiting lazy removal, so this is queue *occupancy*, the number
  /// PendingEvents() refines. Exported as a profiler gauge.
  std::size_t queue_depth() const { return queue_.size(); }

  /// High-water mark of queue_depth() since construction.
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// Total events dispatched since construction.
  std::uint64_t dispatched() const { return dispatched_; }

  /// Restores the virtual clock to `now` with a given dispatch count
  /// (snapshot restore). Only legal on an idle simulator: fails with
  /// kFailedPrecondition when events are still queued, and with
  /// kInvalidArgument when `now` would move the clock backwards.
  Status RestoreClock(TimePoint now, std::uint64_t dispatched_count);

 private:
  // Kept at 64 bytes: the priority queue sifts whole Events, so every extra
  // member is paid on each push/pop. Attribution labels live in
  // component_by_seq_ (populated only while an observer is installed).
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  DispatchObserver observer_;
  std::unordered_map<std::uint64_t, const char*> component_by_seq_;
};

}  // namespace viator::sim
