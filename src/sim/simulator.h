// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of (time, sequence, callback) events and
// a virtual clock. Events at equal times fire in scheduling order (sequence
// tiebreak), which makes every run bit-for-bit deterministic. Scheduled
// events can be cancelled through the returned handle; cancellation is O(1)
// (tombstoning) with lazy removal at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "base/status.h"
#include "sim/time.h"

namespace viator::sim {

/// Handle to a scheduled event; Cancel() prevents a not-yet-fired callback
/// from running. Handles are cheap shared references and may outlive the
/// event itself (cancelling a fired event is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Suppresses the callback if it has not fired yet.
  void Cancel() {
    if (alive_) *alive_ = false;
  }

  /// True if the event is still pending (scheduled, not fired/cancelled).
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// The event-driven virtual machine of the whole system: all network, node
/// and WLI activity is expressed as events against one Simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  EventHandle ScheduleAt(TimePoint when, Callback fn);

  /// Schedules `fn` after `delay` from now.
  EventHandle ScheduleAfter(Duration delay, Callback fn);

  /// Runs events until the queue empties or the clock passes `deadline`.
  /// Returns the number of events dispatched.
  std::uint64_t RunUntil(TimePoint deadline);

  /// Runs until the queue is fully drained.
  std::uint64_t RunAll();

  /// Dispatches exactly one event if any is pending. Returns false when idle.
  bool Step();

  /// Number of live (non-cancelled) events still queued. O(queue) — intended
  /// for tests and end-of-run assertions, not hot paths.
  std::size_t PendingEvents() const;

  /// Total events dispatched since construction.
  std::uint64_t dispatched() const { return dispatched_; }

  /// Restores the virtual clock to `now` with a given dispatch count
  /// (snapshot restore). Only legal on an idle simulator: fails with
  /// kFailedPrecondition when events are still queued, and with
  /// kInvalidArgument when `now` would move the clock backwards.
  Status RestoreClock(TimePoint now, std::uint64_t dispatched_count);

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace viator::sim
