// Discrete-event simulation kernel.
//
// A Simulator owns a calendar queue of (time, ordinal) event references and
// a virtual clock. Events at equal times fire in scheduling order: the
// tie-break key is a *stable schedule ordinal* — a monotone counter assigned
// at ScheduleAt time that genesis snapshots save and RestoreClock restores —
// never an insertion pointer or other accident of memory layout. That makes
// every run bit-for-bit deterministic, keeps same-time dispatch order
// identical across a checkpoint/restore boundary, and gives merged
// shard-boundary injections (src/shard) a well-defined total order against
// events the restored or destination simulator scheduled itself.
//
// Callbacks live in an intrusive free-list slot pool; the queue holds only
// 24-byte {when, seq, slot, gen} references (sim/calendar_queue.h), so the
// hot dispatch path allocates nothing. Cancellation is O(1): freeing the
// slot bumps its generation, which tombstones every queued reference to it
// (stale gen), removed lazily at pop time — the same semantics the previous
// shared_ptr<bool> token provided, without the per-event allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "sim/calendar_queue.h"
#include "sim/time.h"

namespace viator::sim {

class Counter;  // sim/stats.h

/// Handle to a scheduled event; Cancel() prevents a not-yet-fired callback
/// from running. Handles are cheap value copies (pool slot + generation) and
/// may outlive the event itself (cancelling a fired event is a no-op) — but
/// not the Simulator that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  /// Suppresses the callback if it has not fired yet.
  void Cancel();

  /// True if the event is still pending (scheduled, not fired/cancelled).
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(class Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event-driven virtual machine of the whole system: all network, node
/// and WLI activity is expressed as events against one Simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Observes every dispatched event: component label (a static string, or
  /// "sim.event" for untagged events), its scheduled time, the virtual-time
  /// gap since the previous dispatch, and the wall-clock nanoseconds the
  /// callback ran for. Installed by the telemetry profiler; when unset the
  /// dispatch loop pays only a null check (zero-cost-when-off).
  using DispatchObserver = std::function<void(
      const char* component, TimePoint when, Duration virtual_gap,
      std::uint64_t wall_ns)>;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  /// `component` must point at storage outliving the event (string literal).
  EventHandle ScheduleAt(TimePoint when, Callback fn,
                         const char* component = nullptr);

  /// Schedules `fn` after `delay` from now.
  EventHandle ScheduleAfter(Duration delay, Callback fn,
                            const char* component = nullptr);

  /// Installs (or, with nullptr, removes) the dispatch observer. Component
  /// labels are only retained for events scheduled while an observer is
  /// installed; removing the observer drops pending labels.
  void SetDispatchObserver(DispatchObserver observer) {
    observer_ = std::move(observer);
    if (!observer_) component_by_seq_.clear();
  }

  /// Flight-recorder hook, independent of the profiler's observer: called for
  /// every dispatched event with its scheduled time and 1-based dispatch
  /// ordinal (`dispatched()` after the increment — restored by RestoreClock,
  /// so journals stay comparable across a genesis restore, unlike the
  /// scheduling sequence number), before the callback runs. A plain function
  /// pointer keeps the unhooked dispatch path to one predicted branch.
  using DispatchHook = void (*)(void* ctx, TimePoint when,
                                std::uint64_t ordinal);
  void SetDispatchHook(DispatchHook hook, void* ctx) {
    dispatch_hook_ = hook;
    dispatch_hook_ctx_ = ctx;
  }

  /// Runs events until the queue empties or the clock passes `deadline`.
  /// Returns the number of events dispatched.
  std::uint64_t RunUntil(TimePoint deadline);

  /// Runs until the queue is fully drained.
  std::uint64_t RunAll();

  /// Dispatches exactly one event if any is pending. Returns false when idle.
  bool Step();

  /// Scheduled time of the next live (non-cancelled) event, or nullopt when
  /// the queue holds none. Tombstoned entries encountered on the way are
  /// removed (the same lazy cleanup Step() performs), which is why this is
  /// not const. Lets replay seek stop exactly before a virtual-time bound.
  std::optional<TimePoint> NextEventTime();

  /// Number of live (non-cancelled) events still queued. O(1): the slot pool
  /// tracks live occupancy directly.
  std::size_t PendingEvents() const { return live_events_; }

  /// Current event-queue size, O(1). Counts tombstoned (cancelled) events
  /// still awaiting lazy removal, so this is queue *occupancy*, the number
  /// PendingEvents() refines. Exported as a profiler gauge.
  std::size_t queue_depth() const { return queue_.size(); }

  /// High-water mark of queue_depth() since construction.
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// Total events dispatched since construction.
  std::uint64_t dispatched() const { return dispatched_; }

  /// Events whose requested time lay in the past and were silently clamped to
  /// now() by ScheduleAt. A growing value usually means a scheduler bug in a
  /// service (negative delays, stale deadlines), so it is worth watching.
  std::uint64_t clamped_events() const { return clamped_events_; }

  /// Mirrors the clamp count into an externally owned counter (typically
  /// `stats.GetCounter("sim.clamped_events")` of the owning network) so it
  /// shows up in metric exports. Pass nullptr to unbind. Clamps recorded
  /// before binding are folded into the counter at bind time.
  void BindClampCounter(Counter* counter);

  /// Sentinel for RestoreClock: leave the schedule ordinal unchanged
  /// (pre-ordinal snapshots restore with this default).
  static constexpr std::uint64_t kKeepScheduleOrdinal =
      ~static_cast<std::uint64_t>(0);

  /// Next schedule ordinal to be assigned — the stable same-time tie-break
  /// key. Saved by genesis snapshots so that events scheduled after a
  /// restore tie-break exactly as they would have in the uninterrupted run.
  std::uint64_t schedule_ordinal() const { return next_seq_; }

  /// Restores the virtual clock to `now` with a given dispatch count and
  /// (optionally) schedule ordinal (snapshot restore). Only legal on an idle
  /// simulator: fails with kFailedPrecondition when events are still queued,
  /// and with kInvalidArgument when `now` would move the clock backwards or
  /// `schedule_ordinal` would move the tie-break counter backwards.
  Status RestoreClock(TimePoint now, std::uint64_t dispatched_count,
                      std::uint64_t schedule_ordinal = kKeepScheduleOrdinal);

  /// Memory-observatory accessors (docs/MEMORY.md): current and peak heap
  /// bytes behind the calendar queue, plus the slot pool's footprint
  /// (capacity, O(1)). Deterministic — benches pin them, genesis carries
  /// the queue peak across restore (see RestoreQueuePeakHeapBytes).
  std::size_t queue_heap_bytes() const { return queue_.heap_bytes(); }
  std::size_t queue_peak_heap_bytes() const {
    return queue_.peak_heap_bytes();
  }
  std::size_t slot_pool_bytes() const {
    return slots_.capacity() * sizeof(EventSlot);
  }

  /// Genesis restore hook: re-seeds the recorded run's calendar-queue
  /// high-water mark (restore rebuilds the queue storage from scratch, so
  /// the peak would otherwise reset to whatever restore re-created).
  void RestoreQueuePeakHeapBytes(std::size_t peak) {
    queue_.RestorePeakHeapBytes(peak);
  }

 private:
  friend class EventHandle;

  // Pooled event storage. A slot's generation bumps every time it is freed
  // (fire or cancel), so queued references and handles carrying an old
  // generation read as dead — ABA-safe without per-event allocation.
  struct EventSlot {
    Callback fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = 0;
  };

  std::uint32_t AllocSlot(Callback fn);
  // Destroys the slot's callback, bumps its generation and returns it to the
  // free list. `fn` (if non-null) receives the callback instead, moved out
  // before the slot is reusable — the dispatch path's move-out.
  void FreeSlot(std::uint32_t slot, Callback* fn = nullptr);
  bool SlotLive(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].gen == gen;
  }

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t clamped_events_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::size_t live_events_ = 0;
  CalendarQueue queue_;
  std::vector<EventSlot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  static constexpr std::uint32_t kNoFreeSlot = ~static_cast<std::uint32_t>(0);
  DispatchObserver observer_;
  DispatchHook dispatch_hook_ = nullptr;
  void* dispatch_hook_ctx_ = nullptr;
  Counter* clamp_counter_ = nullptr;
  std::unordered_map<std::uint64_t, const char*> component_by_seq_;
};

inline void EventHandle::Cancel() {
  if (sim_ != nullptr && sim_->SlotLive(slot_, gen_)) sim_->FreeSlot(slot_);
}

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->SlotLive(slot_, gen_);
}

}  // namespace viator::sim
