// Parallel replica runner.
//
// Experiments run R statistically independent replicas of a simulation and
// aggregate the metrics. Each replica is a pure task: it receives a seed,
// builds its own Simulator/StatsRegistry, and returns results *by value*
// (Core Guidelines CP.31/CP.4 — tasks over threads, no shared mutable
// state). Replicas are distributed over a bounded thread pool.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace viator::sim {

/// One replica's scalar outputs: metric name → value.
using ReplicaMetrics = std::map<std::string, double>;

/// Function executed per replica. `replica_index` selects workload variation,
/// `seed` the RNG stream. Must be thread-compatible (no shared state).
using ReplicaFn =
    std::function<ReplicaMetrics(std::size_t replica_index, std::uint64_t seed)>;

/// Aggregated metric across replicas.
struct AggregatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t samples = 0;
};

/// Runs `replicas` copies of `fn` (seeds derived deterministically from
/// `base_seed`) on up to `max_threads` worker threads (0 = hardware
/// concurrency) and aggregates every metric name that appears in any replica.
std::map<std::string, AggregatedMetric> RunReplicas(
    const ReplicaFn& fn, std::size_t replicas, std::uint64_t base_seed,
    std::size_t max_threads = 0);

}  // namespace viator::sim
