// Measurement primitives for experiments: counters, gauges, log-bucketed
// histograms and time series, gathered in a per-simulation StatsRegistry.
//
// All experiment tables in bench/ are produced from these objects, so their
// semantics are deliberately simple and exactly reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace viator::sim {

/// Monotonically increasing event count (packets sent, cache hits, ...).
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level that can move both ways (queue depth, live facts).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Streaming summary of a sample set: count/min/max/mean/stddev plus
/// approximate quantiles from base-2 log buckets (values must be >= 0).
class Histogram {
 public:
  void Record(double value);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return max_; }
  double mean() const;
  double stddev() const;
  /// Approximate p-quantile (0 <= p <= 1) via log-bucket interpolation.
  double Quantile(double p) const;
  double sum() const { return sum_; }

  void Reset();

  /// Exact internal state, for snapshot/restore (genesis). Restoring a saved
  /// state reproduces every accessor bit-for-bit.
  struct RawState {
    std::uint64_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t zeros = 0;
    std::vector<std::uint64_t> buckets;
  };
  RawState SaveState() const;
  void RestoreState(const RawState& state);

 private:
  static constexpr int kBuckets = 128;  // covers [1, 2^64) with 0.5 steps
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t zeros_ = 0;
};

/// (time, value) samples for series plots (Figure-1/3/4-style evolution).
class TimeSeries {
 public:
  void Record(TimePoint t, double value) { samples_.push_back({t, value}); }
  struct Sample {
    TimePoint time;
    double value;
  };
  const std::vector<Sample>& samples() const { return samples_; }

  /// Mean of the recorded values (0 when empty).
  double Mean() const;

  /// Drops all samples (snapshot restore replaces the series wholesale).
  void Clear() { samples_.clear(); }

 private:
  std::vector<Sample> samples_;
};

/// Name → metric store. One registry per simulation replica; benches merge
/// registries across replicas by name.
class StatsRegistry {
 public:
  Counter& GetCounter(const std::string& name) { return counters_[name]; }
  Gauge& GetGauge(const std::string& name) { return gauges_[name]; }
  Histogram& GetHistogram(const std::string& name) { return histograms_[name]; }
  TimeSeries& GetTimeSeries(const std::string& name) { return series_[name]; }

  /// Counter value or 0 when absent (read-only accessor for reports).
  std::uint64_t CounterValue(const std::string& name) const;
  /// Histogram lookup (nullptr when absent).
  const Histogram* FindHistogram(const std::string& name) const;
  const TimeSeries* FindTimeSeries(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, TimeSeries>& series() const { return series_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

/// Mean and sample standard deviation of a vector (used when aggregating a
/// metric across replicas).
struct MeanStddev {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStddev Summarize(const std::vector<double>& values);

}  // namespace viator::sim
