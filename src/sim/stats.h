// Measurement primitives for experiments: counters, gauges, log-bucketed
// histograms and time series, gathered in a per-simulation StatsRegistry.
//
// All experiment tables in bench/ are produced from these objects, so their
// semantics are deliberately simple and exactly reproducible.
//
// Metric naming convention (see docs/OBSERVABILITY.md): dotted lowercase
// `component.metric_name`, e.g. "wn.shuttles_injected", "ship.consume".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/flat_map.h"
#include "sim/time.h"

namespace viator::sim {

/// Monotonically increasing event count (packets sent, cache hits, ...).
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level that can move both ways (queue depth, live facts).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Streaming summary of a sample set: count/min/max/mean/stddev plus
/// approximate quantiles from base-2 log buckets (values must be >= 0).
///
/// Buckets cover [2^-32, 2^64) with two buckets per power of two, so
/// fractional metrics (ratios, utilizations in [0,1)) quantile correctly;
/// values below 2^-32 (and exact zero) are tracked in a dedicated underflow
/// counter and quantile as 0.0.
class Histogram {
 public:
  void Record(double value);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return max_; }
  double mean() const;
  double stddev() const;
  /// Approximate p-quantile (0 <= p <= 1) via log-bucket interpolation.
  double Quantile(double p) const;
  double sum() const { return sum_; }

  void Reset();

  /// Exact internal state, for snapshot/restore (genesis). Restoring a saved
  /// state reproduces every accessor bit-for-bit.
  ///
  /// `bucket_origin` is the half-exponent of bucket 0 (bucket i spans
  /// [2^((i+origin)/2), 2^((i+origin+1)/2))). States saved before fractional
  /// buckets existed carry the legacy origin 0; RestoreState shifts their
  /// buckets into place, so old genesis snapshots stay loadable (their
  /// sub-1.0 samples remain in `zeros`, exactly as they were recorded).
  struct RawState {
    std::uint64_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t zeros = 0;
    std::int32_t bucket_origin = 0;  // legacy default; SaveState overwrites
    std::vector<std::uint64_t> buckets;
  };
  RawState SaveState() const;
  void RestoreState(const RawState& state);

  /// Half-exponent of bucket 0: buckets start at 2^(kBucketOrigin/2) = 2^-32.
  static constexpr std::int32_t kBucketOrigin = -64;

 private:
  // 192 half-power-of-two buckets: half-exponents -64..127 cover
  // [2^-32, 2^64).
  static constexpr int kBuckets = 192;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t zeros_ = 0;
};

/// (time, value) samples for series plots (Figure-1/3/4-style evolution).
///
/// Optionally memory-bounded: with a max-sample cap set, the series keeps
/// every stride-th record and doubles the stride (decimating the retained
/// samples) whenever the cap is reached. Down-sampling is purely a function
/// of the record sequence, so capped series stay bit-for-bit deterministic.
class TimeSeries {
 public:
  void Record(TimePoint t, double value);
  struct Sample {
    TimePoint time;
    double value;
  };
  const std::vector<Sample>& samples() const { return samples_; }

  /// Caps retained samples (0 = unbounded). The cap is configuration, not
  /// snapshotted state; set it before recording.
  void set_max_samples(std::size_t cap) { max_samples_ = cap; }
  std::size_t max_samples() const { return max_samples_; }

  /// Down-sampling position, for snapshot/restore: the series keeps records
  /// whose tick is a multiple of stride.
  std::uint64_t stride() const { return stride_; }
  std::uint64_t ticks() const { return ticks_; }

  /// Mean of the recorded values (0 when empty).
  double Mean() const;

  /// Drops all samples (snapshot restore replaces the series wholesale).
  void Clear() {
    samples_.clear();
    stride_ = 1;
    ticks_ = 0;
  }

  /// Replaces samples and down-sampling position verbatim (genesis restore).
  /// Bypasses Record() so restoring never re-triggers decimation.
  void RestoreState(std::vector<Sample> samples, std::uint64_t stride,
                    std::uint64_t ticks);

 private:
  std::vector<Sample> samples_;
  std::size_t max_samples_ = 0;
  std::uint64_t stride_ = 1;  // keep records with ticks_ % stride_ == 0
  std::uint64_t ticks_ = 0;   // records offered since construction/Clear
};

/// Name → metric store. One registry per simulation replica; benches merge
/// registries across replicas by name. Metrics live in sorted flat vectors
/// (base::FlatNameMap): string_view binary-search lookups never allocate,
/// iteration stays lexicographic (export order is unchanged from the old
/// std::map implementation), and metric addresses are stable, so hot paths
/// resolve a Counter&/Histogram& once and keep it across registry growth.
/// Table footprints are attributed to the memory observatory's
/// kStatsRegistry domain (docs/MEMORY.md).
class StatsRegistry {
 public:
  template <typename T>
  using MetricMap =
      base::FlatNameMap<T, telemetry::mem::Domain::kStatsRegistry>;
  Counter& GetCounter(std::string_view name) {
    return counters_.GetOrCreate(name);
  }
  Gauge& GetGauge(std::string_view name) { return gauges_.GetOrCreate(name); }
  Histogram& GetHistogram(std::string_view name) {
    return histograms_.GetOrCreate(name);
  }
  TimeSeries& GetTimeSeries(std::string_view name) {
    return series_.GetOrCreate(name);
  }

  /// Counter value or 0 when absent (read-only accessor for reports).
  std::uint64_t CounterValue(std::string_view name) const {
    const Counter* c = counters_.Find(name);
    return c == nullptr ? 0 : c->value();
  }
  /// Histogram lookup (nullptr when absent).
  const Histogram* FindHistogram(std::string_view name) const {
    return histograms_.Find(name);
  }
  const TimeSeries* FindTimeSeries(std::string_view name) const {
    return series_.Find(name);
  }

  const MetricMap<Counter>& counters() const { return counters_; }
  const MetricMap<Gauge>& gauges() const { return gauges_; }
  const MetricMap<Histogram>& histograms() const { return histograms_; }
  const MetricMap<TimeSeries>& series() const { return series_; }

 private:
  MetricMap<Counter> counters_;
  MetricMap<Gauge> gauges_;
  MetricMap<Histogram> histograms_;
  MetricMap<TimeSeries> series_;
};

/// Mean and sample standard deviation of a vector (used when aggregating a
/// metric across replicas).
struct MeanStddev {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStddev Summarize(const std::vector<double>& values);

}  // namespace viator::sim
