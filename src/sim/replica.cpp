#include "sim/replica.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace viator::sim {

std::map<std::string, AggregatedMetric> RunReplicas(const ReplicaFn& fn,
                                                    std::size_t replicas,
                                                    std::uint64_t base_seed,
                                                    std::size_t max_threads) {
  std::vector<ReplicaMetrics> results(replicas);
  if (replicas > 0) {
    std::size_t workers = max_threads == 0
                              ? std::max(1u, std::thread::hardware_concurrency())
                              : max_threads;
    workers = std::min(workers, replicas);

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= replicas) return;
        // Seed derivation is index-based, so results are independent of the
        // thread that happens to pick the replica up.
        const std::uint64_t seed =
            base_seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL * (i + 1);
        results[i] = fn(i, seed);
      }
    };

    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  }  // jthreads join here

  std::map<std::string, std::vector<double>> by_name;
  for (const auto& metrics : results) {
    for (const auto& [name, value] : metrics) by_name[name].push_back(value);
  }

  std::map<std::string, AggregatedMetric> out;
  for (auto& [name, values] : by_name) {
    AggregatedMetric agg;
    const MeanStddev ms = Summarize(values);
    agg.mean = ms.mean;
    agg.stddev = ms.stddev;
    agg.min = *std::min_element(values.begin(), values.end());
    agg.max = *std::max_element(values.begin(), values.end());
    agg.samples = values.size();
    out[name] = agg;
  }
  return out;
}

}  // namespace viator::sim
