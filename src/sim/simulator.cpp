#include "sim/simulator.h"

#include <chrono>
#include <utility>

#include "sim/stats.h"
#include "telemetry/mem_counters.h"
#include "telemetry/perf_counters.h"

namespace viator::sim {

std::uint32_t Simulator::AllocSlot(Callback fn) {
  std::uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].fn = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    // Structural accounting: the slot array's capacity growth (callback
    // captures beyond std::function's inline buffer are the caller's).
    const std::size_t before = slots_.capacity();
    slots_.push_back(EventSlot{std::move(fn), 0, 0});
    if (slots_.capacity() != before) {
      VIATOR_MEM_ALLOC(kCalendarQueue,
                       (slots_.capacity() - before) * sizeof(EventSlot));
    }
  }
  ++live_events_;
  return slot;
}

void Simulator::FreeSlot(std::uint32_t slot, Callback* fn) {
  EventSlot& s = slots_[slot];
  if (fn != nullptr) {
    *fn = std::move(s.fn);
  }
  s.fn = nullptr;  // release captured state now, not at reuse
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_events_;
}

EventHandle Simulator::ScheduleAt(TimePoint when, Callback fn,
                                  const char* component) {
  if (when < now_) {
    ++clamped_events_;
    if (clamp_counter_ != nullptr) clamp_counter_->Add();
  }
  QueuedEvent qe;
  qe.when = when < now_ ? now_ : when;
  qe.seq = next_seq_++;
  qe.slot = AllocSlot(std::move(fn));
  qe.gen = slots_[qe.slot].gen;
  if (observer_ && component != nullptr) component_by_seq_[qe.seq] = component;
  queue_.Push(qe);
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  return EventHandle(this, qe.slot, qe.gen);
}

EventHandle Simulator::ScheduleAfter(Duration delay, Callback fn,
                                     const char* component) {
  return ScheduleAt(now_ + delay, std::move(fn), component);
}

bool Simulator::Step() {
  VIATOR_PERF_SCOPE(kSimDispatch);
  while (!queue_.empty()) {
    QueuedEvent ev = queue_.PopMin();
    if (!SlotLive(ev.slot, ev.gen)) {  // tombstoned by Cancel()
      if (observer_) component_by_seq_.erase(ev.seq);
      continue;
    }
    const TimePoint prev_now = now_;
    now_ = ev.when;
    // Free the slot before running: a handle queried (or cancelled) from
    // inside its own callback must read "already fired", exactly as the old
    // *alive = false did. The callback is moved out first.
    Callback fn;
    FreeSlot(ev.slot, &fn);
    ++dispatched_;
    if (dispatch_hook_ != nullptr) {
      dispatch_hook_(dispatch_hook_ctx_, ev.when, dispatched_);
    }
    if (observer_) {
      const char* component = "sim.event";
      if (auto it = component_by_seq_.find(ev.seq);
          it != component_by_seq_.end()) {
        component = it->second;
        component_by_seq_.erase(it);
      }
      const auto wall_start = std::chrono::steady_clock::now();
      fn();
      const auto wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wall_start)
              .count());
      observer_(component, ev.when, ev.when - prev_now, wall_ns);
    } else {
      fn();
    }
    return true;
  }
  return false;
}

std::uint64_t Simulator::RunUntil(TimePoint deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Deliberately checks the raw queue minimum, tombstones included — the
    // binary-heap scheduler did the same, and replay baselines depend on the
    // exact event set a window dispatches.
    if (queue_.PeekMin()->when > deadline) break;
    if (Step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Simulator::RunAll() {
  std::uint64_t n = 0;
  while (Step()) ++n;
  return n;
}

std::optional<TimePoint> Simulator::NextEventTime() {
  while (!queue_.empty()) {
    const QueuedEvent* top = queue_.PeekMin();
    if (SlotLive(top->slot, top->gen)) return top->when;
    // Tombstoned: drop it now, exactly as Step() would.
    QueuedEvent dead = queue_.PopMin();
    if (observer_) component_by_seq_.erase(dead.seq);
  }
  return std::nullopt;
}

void Simulator::BindClampCounter(Counter* counter) {
  clamp_counter_ = counter;
  if (clamp_counter_ != nullptr && clamped_events_ > clamp_counter_->value()) {
    clamp_counter_->Add(clamped_events_ - clamp_counter_->value());
  }
}

Status Simulator::RestoreClock(TimePoint now, std::uint64_t dispatched_count,
                               std::uint64_t schedule_ordinal) {
  if (PendingEvents() != 0) {
    return FailedPrecondition("cannot restore clock with events pending");
  }
  if (now < now_) {
    return InvalidArgument("cannot restore clock backwards");
  }
  if (schedule_ordinal != kKeepScheduleOrdinal) {
    if (schedule_ordinal < next_seq_) {
      return InvalidArgument("cannot restore schedule ordinal backwards");
    }
    next_seq_ = schedule_ordinal;
  }
  now_ = now;
  dispatched_ = dispatched_count;
  return OkStatus();
}

}  // namespace viator::sim
