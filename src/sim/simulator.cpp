#include "sim/simulator.h"

#include <chrono>
#include <utility>

#include "sim/stats.h"
#include "telemetry/perf_counters.h"

namespace viator::sim {

EventHandle Simulator::ScheduleAt(TimePoint when, Callback fn,
                                  const char* component) {
  Event ev;
  if (when < now_) {
    ++clamped_events_;
    if (clamp_counter_ != nullptr) clamp_counter_->Add();
  }
  ev.when = when < now_ ? now_ : when;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  ev.alive = std::make_shared<bool>(true);
  if (observer_ && component != nullptr) component_by_seq_[ev.seq] = component;
  EventHandle handle(ev.alive);
  queue_.push(std::move(ev));
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  return handle;
}

EventHandle Simulator::ScheduleAfter(Duration delay, Callback fn,
                                     const char* component) {
  return ScheduleAt(now_ + delay, std::move(fn), component);
}

bool Simulator::Step() {
  VIATOR_PERF_SCOPE(kSimDispatch);
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast after copy of
    // the ordering fields — the element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (!*ev.alive) {  // tombstoned by Cancel()
      if (observer_) component_by_seq_.erase(ev.seq);
      continue;
    }
    const TimePoint prev_now = now_;
    now_ = ev.when;
    *ev.alive = false;  // mark fired so late Cancel() is a no-op
    ++dispatched_;
    if (dispatch_hook_ != nullptr) {
      dispatch_hook_(dispatch_hook_ctx_, ev.when, dispatched_);
    }
    if (observer_) {
      const char* component = "sim.event";
      if (auto it = component_by_seq_.find(ev.seq);
          it != component_by_seq_.end()) {
        component = it->second;
        component_by_seq_.erase(it);
      }
      const auto wall_start = std::chrono::steady_clock::now();
      ev.fn();
      const auto wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wall_start)
              .count());
      observer_(component, ev.when, ev.when - prev_now, wall_ns);
    } else {
      ev.fn();
    }
    return true;
  }
  return false;
}

std::uint64_t Simulator::RunUntil(TimePoint deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) break;
    if (Step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Simulator::RunAll() {
  std::uint64_t n = 0;
  while (Step()) ++n;
  return n;
}

std::optional<TimePoint> Simulator::NextEventTime() {
  while (!queue_.empty()) {
    if (*queue_.top().alive) return queue_.top().when;
    // Tombstoned: drop it now, exactly as Step() would.
    Event dead = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (observer_) component_by_seq_.erase(dead.seq);
  }
  return std::nullopt;
}

void Simulator::BindClampCounter(Counter* counter) {
  clamp_counter_ = counter;
  if (clamp_counter_ != nullptr && clamped_events_ > clamp_counter_->value()) {
    clamp_counter_->Add(clamped_events_ - clamp_counter_->value());
  }
}

Status Simulator::RestoreClock(TimePoint now, std::uint64_t dispatched_count,
                               std::uint64_t schedule_ordinal) {
  if (PendingEvents() != 0) {
    return FailedPrecondition("cannot restore clock with events pending");
  }
  if (now < now_) {
    return InvalidArgument("cannot restore clock backwards");
  }
  if (schedule_ordinal != kKeepScheduleOrdinal) {
    if (schedule_ordinal < next_seq_) {
      return InvalidArgument("cannot restore schedule ordinal backwards");
    }
    next_seq_ = schedule_ordinal;
  }
  now_ = now;
  dispatched_ = dispatched_count;
  return OkStatus();
}

std::size_t Simulator::PendingEvents() const {
  // Count live entries by scanning a copy of the container. The underlying
  // vector is not directly reachable, so rebuild: acceptable for tests.
  auto copy = queue_;
  std::size_t live = 0;
  while (!copy.empty()) {
    if (*copy.top().alive) ++live;
    copy.pop();
  }
  return live;
}

}  // namespace viator::sim
