#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace viator::sim {
namespace {

// Smallest tracked magnitude: the low edge of bucket 0 (half-exponent
// kBucketOrigin). Anything below it is lumped into the underflow counter.
constexpr double kMinTracked = 0x1p-32;

// Bucket index for a value >= kMinTracked: 2 buckets per power of two,
// offset so bucket 0 starts at 2^-32.
int BucketFor(double v) {
  const double l = std::log2(v);
  int idx = static_cast<int>(std::floor(l * 2.0)) - Histogram::kBucketOrigin;
  if (idx < 0) idx = 0;
  if (idx >= 192) idx = 191;
  return idx;
}

double BucketLow(int idx) {
  return std::exp2(static_cast<double>(idx + Histogram::kBucketOrigin) / 2.0);
}

}  // namespace

void Histogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (value < kMinTracked) {
    ++zeros_;
  } else {
    ++buckets_[BucketFor(value)];
  }
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::Quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  double seen = static_cast<double>(zeros_);
  if (target <= seen) return 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (seen + in_bucket >= target && in_bucket > 0.0) {
      const double lo = BucketLow(i);
      const double hi = BucketLow(i + 1);
      const double frac = (target - seen) / in_bucket;
      return std::min(lo + (hi - lo) * frac, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

void Histogram::Reset() { *this = Histogram(); }

Histogram::RawState Histogram::SaveState() const {
  RawState state;
  state.count = count_;
  state.sum = sum_;
  state.sum_sq = sum_sq_;
  state.min = min_;
  state.max = max_;
  state.zeros = zeros_;
  state.bucket_origin = kBucketOrigin;
  state.buckets.assign(buckets_, buckets_ + kBuckets);
  return state;
}

void Histogram::RestoreState(const RawState& state) {
  count_ = state.count;
  sum_ = state.sum;
  sum_sq_ = state.sum_sq;
  min_ = state.min;
  max_ = state.max;
  zeros_ = state.zeros;
  // A state saved with a different (e.g. legacy 0) origin shifts into the
  // current layout; the legacy range [2^0, 2^64) sits entirely inside ours.
  const int shift = static_cast<int>(state.bucket_origin) - kBucketOrigin;
  std::fill(buckets_, buckets_ + kBuckets, 0);
  for (int i = 0; i < static_cast<int>(state.buckets.size()); ++i) {
    const int j = std::clamp(i + shift, 0, kBuckets - 1);
    buckets_[j] += state.buckets[i];
  }
}

void TimeSeries::Record(TimePoint t, double value) {
  const std::uint64_t tick = ticks_++;
  if (stride_ > 1 && tick % stride_ != 0) return;
  samples_.push_back({t, value});
  if (max_samples_ > 0 && samples_.size() >= max_samples_ &&
      samples_.size() >= 2) {
    // Decimate: keep even positions (those are the records whose tick is a
    // multiple of the doubled stride) and double the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2) {
      samples_[w++] = samples_[r];
    }
    samples_.resize(w);
    stride_ *= 2;
  }
}

void TimeSeries::RestoreState(std::vector<Sample> samples, std::uint64_t stride,
                              std::uint64_t ticks) {
  samples_ = std::move(samples);
  stride_ = stride == 0 ? 1 : stride;
  ticks_ = ticks;
}

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& sample : samples_) s += sample.value;
  return s / static_cast<double>(samples_.size());
}

MeanStddev Summarize(const std::vector<double>& values) {
  MeanStddev out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() >= 2) {
    double ss = 0.0;
    for (double v : values) ss += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace viator::sim
