#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace viator::sim {
namespace {

// Bucket index for a positive value: 2 buckets per power of two.
int BucketFor(double v) {
  const double l = std::log2(v);
  int idx = static_cast<int>(std::floor(l * 2.0));
  if (idx < 0) idx = 0;
  if (idx >= 128) idx = 127;
  return idx;
}

double BucketLow(int idx) { return std::exp2(static_cast<double>(idx) / 2.0); }

}  // namespace

void Histogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (value < 1.0) {
    ++zeros_;
  } else {
    ++buckets_[BucketFor(value)];
  }
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::Quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  double seen = static_cast<double>(zeros_);
  if (target <= seen) return 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (seen + in_bucket >= target && in_bucket > 0.0) {
      const double lo = BucketLow(i);
      const double hi = BucketLow(i + 1);
      const double frac = (target - seen) / in_bucket;
      return std::min(lo + (hi - lo) * frac, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

void Histogram::Reset() { *this = Histogram(); }

Histogram::RawState Histogram::SaveState() const {
  RawState state;
  state.count = count_;
  state.sum = sum_;
  state.sum_sq = sum_sq_;
  state.min = min_;
  state.max = max_;
  state.zeros = zeros_;
  state.buckets.assign(buckets_, buckets_ + kBuckets);
  return state;
}

void Histogram::RestoreState(const RawState& state) {
  count_ = state.count;
  sum_ = state.sum;
  sum_sq_ = state.sum_sq;
  min_ = state.min;
  max_ = state.max;
  zeros_ = state.zeros;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] =
        i < static_cast<int>(state.buckets.size()) ? state.buckets[i] : 0;
  }
}

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& sample : samples_) s += sample.value;
  return s / static_cast<double>(samples_.size());
}

std::uint64_t StatsRegistry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Histogram* StatsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const TimeSeries* StatsRegistry::FindTimeSeries(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

MeanStddev Summarize(const std::vector<double>& values) {
  MeanStddev out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() >= 2) {
    double ss = 0.0;
    for (double v : values) ss += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace viator::sim
