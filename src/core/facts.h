// Facts and the fact store (Pulsating Metamorphosis Principle, Def. 3(3)).
//
// "Facts have a certain lifetime in the Wandering Network which depends on
// their clustering inside the ships, as well as [on] their transmission
// intensity, or bandwidth (weight). As soon as a fact does not reach its
// frequency threshold, it is deleted to leave space for new facts."
//
// A fact is a keyed 64-bit observation with a weight. Each Touch (local
// refresh or arrival by shuttle) counts toward the fact's frequency within a
// sliding window; Sweep() deletes facts whose windowed frequency — scaled by
// weight, so high-bandwidth facts live longer — falls below the store's
// threshold. Net functions reference facts; when a function's facts die, the
// function (and its knowledge quanta) dies with them, which is what drives
// functional churn in the wandering experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "telemetry/mem_counters.h"

namespace viator::wli {

using FactKey = std::uint64_t;

struct Fact {
  FactKey key = 0;
  std::int64_t value = 0;
  double weight = 1.0;  // transmission intensity / "bandwidth"
  std::uint32_t touches_in_window = 0;
  sim::TimePoint last_touch = 0;
  sim::TimePoint created = 0;
};

struct FactStoreConfig {
  double frequency_threshold_hz = 0.2;  // required touches/sec (weight 1.0)
  sim::Duration window = 10 * sim::kSecond;
  std::size_t capacity = 4096;  // hard cap; weakest facts evicted first
};

class FactStore {
 public:
  explicit FactStore(const FactStoreConfig& config = {}) : config_(config) {}

  /// Inserts or refreshes a fact at time `now`. Every call counts one touch.
  /// When at capacity, the weakest fact (lowest windowed rate) is evicted.
  void Touch(FactKey key, std::int64_t value, double weight,
             sim::TimePoint now);

  /// Reads a fact's value without touching it.
  std::optional<std::int64_t> Get(FactKey key) const;
  const Fact* Find(FactKey key) const;

  bool Erase(FactKey key);

  /// Deletes every fact below its frequency threshold at `now` and starts a
  /// new window. Returns the number of facts deleted.
  std::size_t Sweep(sim::TimePoint now);

  /// Windowed touch rate of a fact, scaled by its weight (Sweep's criterion).
  double EffectiveRate(const Fact& fact, sim::TimePoint now) const;

  std::size_t size() const { return facts_.size(); }
  const FactStoreConfig& config() const { return config_; }

  /// Top-k facts by weight (for genetic transcoding snapshots).
  std::vector<Fact> TopByWeight(std::size_t k) const;

  /// All keys currently alive (deterministically ordered).
  std::vector<FactKey> Keys() const;

  std::uint64_t total_evictions() const { return evictions_; }
  std::uint64_t total_expirations() const { return expirations_; }

  // ---- Snapshot/restore support (genesis) ----

  sim::TimePoint window_start() const { return window_start_; }

  /// Every live fact, sorted by key (deterministic serialization order).
  std::vector<Fact> AllFacts() const;

  /// Replaces the store's contents and counters with a snapshot. The
  /// configured capacity still applies; excess facts are dropped.
  void RestoreState(const std::vector<Fact>& facts,
                    sim::TimePoint window_start, std::uint64_t evictions,
                    std::uint64_t expirations);

 private:
  // Estimated heap per stored fact: the hash node (value + next pointer)
  // plus one bucket-array slot's share of pointer overhead. An estimate —
  // but a deterministic one, which is what the pinned baselines need.
  static constexpr std::size_t kFactNodeBytes =
      sizeof(std::pair<const FactKey, Fact>) + 2 * sizeof(void*);

  // Re-mirrors the table footprint (nodes + bucket array) into the
  // kFactsGenome domain after a mutation. O(1).
  void AccountMem() {
    mem_bytes_.Set(facts_.size() * kFactNodeBytes +
                   facts_.bucket_count() * sizeof(void*));
  }

  FactStoreConfig config_;
  std::unordered_map<FactKey, Fact> facts_;
  sim::TimePoint window_start_ = 0;
  std::uint64_t evictions_ = 0;    // capacity pressure
  std::uint64_t expirations_ = 0;  // frequency-threshold deaths
  telemetry::mem::ChargedBytes<telemetry::mem::Domain::kFactsGenome>
      mem_bytes_;
};

}  // namespace viator::wli
