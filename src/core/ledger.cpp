#include "core/ledger.h"

namespace viator::wli {

void FunctionUsageLedger::RecordPlacement(FunctionId function,
                                          net::NodeId host,
                                          sim::TimePoint now) {
  auto& episodes = history_[function];
  if (!episodes.empty() && episodes.back().to == 0) {
    if (episodes.back().host == host) return;  // already open there
    episodes.back().to = now;
  }
  Episode episode;
  episode.host = host;
  episode.from = now;
  episodes.push_back(episode);
}

void FunctionUsageLedger::RecordRemoval(FunctionId function,
                                        sim::TimePoint now) {
  const auto it = history_.find(function);
  if (it == history_.end() || it->second.empty()) return;
  if (it->second.back().to == 0) it->second.back().to = now;
}

void FunctionUsageLedger::RecordUse(FunctionId function) {
  const auto it = history_.find(function);
  if (it == history_.end() || it->second.empty()) return;
  ++it->second.back().uses;
}

const std::vector<FunctionUsageLedger::Episode>*
FunctionUsageLedger::EpisodesOf(FunctionId function) const {
  const auto it = history_.find(function);
  return it == history_.end() ? nullptr : &it->second;
}

std::size_t FunctionUsageLedger::VisitCount(FunctionId function) const {
  const auto it = history_.find(function);
  return it == history_.end() ? 0 : it->second.size();
}

std::uint64_t FunctionUsageLedger::TotalUses(FunctionId function) const {
  const auto it = history_.find(function);
  if (it == history_.end()) return 0;
  std::uint64_t total = 0;
  for (const Episode& episode : it->second) total += episode.uses;
  return total;
}

sim::Duration FunctionUsageLedger::MeanDwell(FunctionId function,
                                             sim::TimePoint now) const {
  const auto it = history_.find(function);
  if (it == history_.end() || it->second.empty()) return 0;
  sim::Duration total = 0;
  for (const Episode& episode : it->second) {
    const sim::TimePoint end = episode.to == 0 ? now : episode.to;
    total += end > episode.from ? end - episode.from : 0;
  }
  return total / it->second.size();
}

net::NodeId FunctionUsageLedger::MostUsedHost(FunctionId function) const {
  const auto it = history_.find(function);
  if (it == history_.end()) return net::kInvalidNode;
  std::map<net::NodeId, std::uint64_t> by_host;
  for (const Episode& episode : it->second) {
    by_host[episode.host] += episode.uses;
  }
  net::NodeId best = net::kInvalidNode;
  std::uint64_t best_uses = 0;
  for (const auto& [host, uses] : by_host) {
    if (best == net::kInvalidNode || uses > best_uses) {
      best = host;
      best_uses = uses;
    }
  }
  return best;
}

std::map<net::NodeId, std::uint64_t> FunctionUsageLedger::UsageByHost()
    const {
  std::map<net::NodeId, std::uint64_t> out;
  for (const auto& [function, episodes] : history_) {
    for (const Episode& episode : episodes) {
      out[episode.host] += episode.uses;
    }
  }
  return out;
}

}  // namespace viator::wli
