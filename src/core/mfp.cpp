#include "core/mfp.h"

#include <algorithm>

namespace viator::wli {

std::string_view FeedbackDimensionName(FeedbackDimension dimension) {
  switch (dimension) {
    case FeedbackDimension::kPerNode: return "per-node";
    case FeedbackDimension::kPerConfiguration: return "per-configuration";
    case FeedbackDimension::kPerPacket: return "per-packet";
    case FeedbackDimension::kPerMethod: return "per-method";
    case FeedbackDimension::kPerMulticastBranch: return "per-multicast-branch";
    case FeedbackDimension::kPerMessage: return "per-message";
    case FeedbackDimension::kPerInteropTask: return "per-interop-task";
    case FeedbackDimension::kPerApplication: return "per-application";
    case FeedbackDimension::kPerSession: return "per-session";
    case FeedbackDimension::kPerDataLink: return "per-data-link";
    case FeedbackDimension::kDimensionCount: break;
  }
  return "?";
}

FeedbackBus::SubscriptionId FeedbackBus::Subscribe(
    FeedbackDimension dimension, Handler handler) {
  const SubscriptionId id = next_id_++;
  subscriptions_.push_back(Subscription{id, dimension, std::move(handler)});
  return id;
}

void FeedbackBus::Unsubscribe(SubscriptionId id) {
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [id](const Subscription& s) { return s.id == id; }),
      subscriptions_.end());
}

void FeedbackBus::Publish(const FeedbackSignal& signal) {
  ++published_;
  if (!IsEnabled(signal.dimension)) {
    ++suppressed_;
    return;
  }
  // Copy-safe iteration: handlers may subscribe/unsubscribe re-entrantly.
  const auto snapshot = subscriptions_;
  for (const Subscription& sub : snapshot) {
    if (sub.dimension == signal.dimension) {
      sub.handler(signal);
      ++delivered_;
    }
  }
}

void FeedbackBus::EnableDimension(FeedbackDimension dimension, bool enabled) {
  enabled_[static_cast<std::size_t>(dimension)] = enabled;
}

bool FeedbackBus::IsEnabled(FeedbackDimension dimension) const {
  return enabled_[static_cast<std::size_t>(dimension)];
}

void AimdRate::OnSuccess() { rate_ = std::min(max_, rate_ + step_); }

void AimdRate::OnCongestion() { rate_ = std::max(min_, rate_ * beta_); }

}  // namespace viator::wli
