#include "core/facts.h"

#include <algorithm>

namespace viator::wli {

void FactStore::Touch(FactKey key, std::int64_t value, double weight,
                      sim::TimePoint now) {
  auto it = facts_.find(key);
  if (it != facts_.end()) {
    Fact& f = it->second;
    f.value = value;
    f.weight = std::max(f.weight, weight);
    ++f.touches_in_window;
    f.last_touch = now;
    return;
  }
  if (facts_.size() >= config_.capacity) {
    // Evict the weakest fact to "leave space for new facts".
    auto weakest = facts_.end();
    double weakest_rate = 0.0;
    for (auto fit = facts_.begin(); fit != facts_.end(); ++fit) {
      const double rate = EffectiveRate(fit->second, now);
      if (weakest == facts_.end() || rate < weakest_rate) {
        weakest = fit;
        weakest_rate = rate;
      }
    }
    if (weakest != facts_.end()) {
      facts_.erase(weakest);
      ++evictions_;
    }
  }
  Fact f;
  f.key = key;
  f.value = value;
  f.weight = weight;
  f.touches_in_window = 1;
  f.last_touch = now;
  f.created = now;
  facts_.emplace(key, f);
  AccountMem();
}

std::optional<std::int64_t> FactStore::Get(FactKey key) const {
  const auto it = facts_.find(key);
  if (it == facts_.end()) return std::nullopt;
  return it->second.value;
}

const Fact* FactStore::Find(FactKey key) const {
  const auto it = facts_.find(key);
  return it == facts_.end() ? nullptr : &it->second;
}

bool FactStore::Erase(FactKey key) {
  const bool erased = facts_.erase(key) > 0;
  if (erased) AccountMem();
  return erased;
}

double FactStore::EffectiveRate(const Fact& fact, sim::TimePoint now) const {
  // Rate over the elapsed window (or since the fact's birth when younger),
  // scaled by weight: heavy (high-bandwidth) facts decay more slowly.
  const sim::TimePoint since = std::max(window_start_, fact.created);
  const sim::Duration elapsed = now > since ? now - since : 1;
  const double seconds = std::max(sim::ToSeconds(elapsed), 1e-9);
  return fact.weight * static_cast<double>(fact.touches_in_window) / seconds;
}

std::size_t FactStore::Sweep(sim::TimePoint now) {
  std::size_t deleted = 0;
  // Facts younger than a window get one grace period: their rate estimate
  // is too noisy to kill them yet.
  for (auto it = facts_.begin(); it != facts_.end();) {
    Fact& f = it->second;
    const bool mature = now >= f.created + config_.window;
    if (mature && EffectiveRate(f, now) < config_.frequency_threshold_hz) {
      it = facts_.erase(it);
      ++deleted;
      ++expirations_;
    } else {
      f.touches_in_window = 0;
      ++it;
    }
  }
  window_start_ = now;
  if (deleted != 0) AccountMem();
  return deleted;
}

std::vector<Fact> FactStore::TopByWeight(std::size_t k) const {
  std::vector<Fact> out;
  out.reserve(facts_.size());
  for (const auto& [key, fact] : facts_) out.push_back(fact);
  std::sort(out.begin(), out.end(), [](const Fact& a, const Fact& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.key < b.key;  // deterministic tiebreak
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<FactKey> FactStore::Keys() const {
  std::vector<FactKey> keys;
  keys.reserve(facts_.size());
  for (const auto& [key, fact] : facts_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<Fact> FactStore::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(facts_.size());
  for (const auto& [key, fact] : facts_) out.push_back(fact);
  std::sort(out.begin(), out.end(),
            [](const Fact& a, const Fact& b) { return a.key < b.key; });
  return out;
}

void FactStore::RestoreState(const std::vector<Fact>& facts,
                             sim::TimePoint window_start,
                             std::uint64_t evictions,
                             std::uint64_t expirations) {
  facts_.clear();
  for (const Fact& fact : facts) {
    if (facts_.size() >= config_.capacity) break;
    facts_[fact.key] = fact;
  }
  window_start_ = window_start;
  evictions_ = evictions;
  expirations_ = expirations;
  AccountMem();
}

}  // namespace viator::wli
