// Multidimensional Feedback Principle (MFP).
//
// §C enumerates feedback dimensions active networking opens up: per-node,
// per-configuration, per-packet, per-method, per-multicast-branch,
// per-message, per-interoperability-task, per-application, per-session,
// per-data-link — "the number of such interoperating feedback dimensions is
// virtually unlimited."
//
// FeedbackBus is the typed publish/subscribe fabric those regulation loops
// run over. Dimensions can be disabled individually (the E15 ablation knob);
// signals on disabled dimensions are counted but not delivered. AimdRate is
// the canonical consumer: an additive-increase/multiplicative-decrease
// regulator services use for congestion-adaptive behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace viator::wli {

enum class FeedbackDimension : std::uint8_t {
  kPerNode = 0,
  kPerConfiguration,
  kPerPacket,
  kPerMethod,
  kPerMulticastBranch,
  kPerMessage,
  kPerInteropTask,
  kPerApplication,
  kPerSession,
  kPerDataLink,
  kDimensionCount,
};

std::string_view FeedbackDimensionName(FeedbackDimension dimension);

struct FeedbackSignal {
  FeedbackDimension dimension = FeedbackDimension::kPerNode;
  net::NodeId origin = net::kInvalidNode;
  std::uint64_t key = 0;    // flow id, branch id, session id, ...
  double value = 0.0;       // measurement (queue depth, loss, rate, ...)
  sim::TimePoint time = 0;
};

class FeedbackBus {
 public:
  using SubscriptionId = std::uint64_t;
  using Handler = std::function<void(const FeedbackSignal&)>;

  FeedbackBus() { enabled_.fill(true); }

  SubscriptionId Subscribe(FeedbackDimension dimension, Handler handler);
  void Unsubscribe(SubscriptionId id);

  /// Delivers to all subscribers of the signal's dimension (if enabled).
  void Publish(const FeedbackSignal& signal);

  /// Ablation control: a disabled dimension swallows its signals.
  void EnableDimension(FeedbackDimension dimension, bool enabled);
  bool IsEnabled(FeedbackDimension dimension) const;

  std::uint64_t published() const { return published_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t suppressed() const { return suppressed_; }

  /// Restores signal accounting from a snapshot (genesis); subscriptions are
  /// runtime callbacks and must be re-registered by their owners.
  void RestoreCounters(std::uint64_t published, std::uint64_t delivered,
                       std::uint64_t suppressed) {
    published_ = published;
    delivered_ = delivered;
    suppressed_ = suppressed;
  }

 private:
  struct Subscription {
    SubscriptionId id;
    FeedbackDimension dimension;
    Handler handler;
  };
  std::array<bool, static_cast<std::size_t>(
                       FeedbackDimension::kDimensionCount)>
      enabled_{};
  std::vector<Subscription> subscriptions_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t suppressed_ = 0;
};

/// AIMD rate regulator: the standard feedback consumer for congestion
/// control on any dimension (per-flow, per-branch, per-session...).
class AimdRate {
 public:
  AimdRate(double initial, double min_rate, double max_rate,
           double increase_step = 0.1, double decrease_factor = 0.5)
      : rate_(initial),
        min_(min_rate),
        max_(max_rate),
        step_(increase_step),
        beta_(decrease_factor) {}

  /// Positive feedback (delivery confirmed): additive increase.
  void OnSuccess();
  /// Negative feedback (loss/congestion): multiplicative decrease.
  void OnCongestion();

  double rate() const { return rate_; }

 private:
  double rate_;
  double min_;
  double max_;
  double step_;
  double beta_;
};

}  // namespace viator::wli
