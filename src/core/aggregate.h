// Ship aggregation (SRP, Definition 2(3)): a ship can "become a (temporary)
// aggregation of other nodes with a joint architecture and functionality".
//
// A ShipAggregate is a temporary union of member ships: it exposes a joint
// blueprint (merged role census, pooled facts and the union of member
// functions), pools resource capacity, and dispatches work to members
// round-robin. Aggregates are explicitly temporary: they hold a lease and
// expire unless renewed, after which members are plain individual ships
// again.
#pragma once

#include <cstdint>
#include <vector>

#include "core/genetic_transcoder.h"
#include "core/ship.h"
#include "sim/time.h"

namespace viator::wli {

class WanderingNetwork;

class ShipAggregate {
 public:
  /// Forms an aggregate over `members` (≥ 2 distinct ships) with an initial
  /// lease. The first member acts as the speaker (the aggregate's address).
  static Result<ShipAggregate> Form(WanderingNetwork& network,
                                    std::vector<net::NodeId> members,
                                    sim::Duration lease);

  /// The ship that speaks for the aggregate.
  net::NodeId speaker() const { return members_.front(); }
  const std::vector<net::NodeId>& members() const { return members_; }

  /// True while the lease has not expired.
  bool Alive(sim::TimePoint now) const { return now < lease_until_; }

  /// Extends the lease ("temporary" means renewable, not permanent).
  void Renew(sim::TimePoint now, sim::Duration lease);

  /// Joint architecture: merged blueprint over all members — union of
  /// functions and resident programs, pooled strongest facts, the speaker's
  /// role state.
  ShipBlueprint JointBlueprint(std::size_t max_facts_per_member = 4) const;

  /// Pooled per-epoch fuel capacity across members.
  std::uint64_t PooledFuelBudget() const;

  /// Dispatches a data shuttle into the aggregate: members take requests in
  /// round-robin order (joint functionality). Returns the member chosen.
  Result<net::NodeId> DispatchWork(Shuttle shuttle);

  std::uint64_t work_dispatched() const { return work_dispatched_; }

 private:
  ShipAggregate(WanderingNetwork& network, std::vector<net::NodeId> members,
                sim::TimePoint lease_until)
      : network_(&network),
        members_(std::move(members)),
        lease_until_(lease_until) {}

  WanderingNetwork* network_;
  std::vector<net::NodeId> members_;
  sim::TimePoint lease_until_;
  std::size_t next_member_ = 0;
  std::uint64_t work_dispatched_ = 0;
};

}  // namespace viator::wli
