#include "core/knowledge.h"

#include <algorithm>

#include "base/tlv.h"

namespace viator::wli {
namespace {

// TLV tags for the knowledge-quantum container.
constexpr TlvTag kTagFunctionId = 0x10;
constexpr TlvTag kTagName = 0x11;
constexpr TlvTag kTagRole = 0x12;
constexpr TlvTag kTagClass = 0x13;
constexpr TlvTag kTagProgram = 0x14;
constexpr TlvTag kTagFactKey = 0x15;
constexpr TlvTag kTagVersion = 0x16;
constexpr TlvTag kTagFactSnapshotKey = 0x20;
constexpr TlvTag kTagFactSnapshotValue = 0x21;
constexpr TlvTag kTagFactSnapshotWeight = 0x22;

}  // namespace

std::vector<std::byte> EncodeKnowledgeQuantum(const KnowledgeQuantum& kq) {
  TlvWriter writer;
  writer.PutU64(kTagFunctionId, kq.function.id);
  writer.PutString(kTagName, kq.function.name);
  writer.PutU32(kTagRole, static_cast<std::uint32_t>(kq.function.role));
  writer.PutU32(kTagClass, static_cast<std::uint32_t>(kq.function.cls));
  writer.PutU64(kTagProgram, kq.function.program_digest);
  writer.PutU32(kTagVersion, kq.version);
  for (FactKey key : kq.function.fact_keys) {
    writer.PutU64(kTagFactKey, key);
  }
  for (const FactSnapshot& snap : kq.facts) {
    writer.PutU64(kTagFactSnapshotKey, snap.key);
    writer.PutU64(kTagFactSnapshotValue,
                  static_cast<std::uint64_t>(snap.value));
    writer.PutDouble(kTagFactSnapshotWeight, snap.weight);
  }
  return writer.Finish();
}

Result<KnowledgeQuantum> DecodeKnowledgeQuantum(
    std::span<const std::byte> bytes) {
  TlvReader reader(bytes);
  if (Status s = reader.Verify(); !s.ok()) return s;
  KnowledgeQuantum kq;
  FactSnapshot pending;
  int pending_fields = 0;
  while (reader.HasNext()) {
    auto rec = reader.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagFunctionId: kq.function.id = rec->AsU64(); break;
      case kTagName: kq.function.name = rec->AsString(); break;
      case kTagRole:
        kq.function.role = static_cast<node::FirstLevelRole>(rec->AsU32());
        break;
      case kTagClass:
        kq.function.cls = static_cast<node::SecondLevelClass>(rec->AsU32());
        break;
      case kTagProgram: kq.function.program_digest = rec->AsU64(); break;
      case kTagVersion: kq.version = rec->AsU32(); break;
      case kTagFactKey: kq.function.fact_keys.push_back(rec->AsU64()); break;
      case kTagFactSnapshotKey:
        pending = FactSnapshot{};
        pending.key = rec->AsU64();
        pending_fields = 1;
        break;
      case kTagFactSnapshotValue:
        pending.value = static_cast<std::int64_t>(rec->AsU64());
        ++pending_fields;
        break;
      case kTagFactSnapshotWeight:
        pending.weight = rec->AsDouble();
        ++pending_fields;
        if (pending_fields == 3) kq.facts.push_back(pending);
        break;
      default:
        break;  // forward-compatible skip
    }
  }
  if (static_cast<std::size_t>(kq.function.role) >=
          static_cast<std::size_t>(node::FirstLevelRole::kRoleCount) ||
      static_cast<std::size_t>(kq.function.cls) >=
          static_cast<std::size_t>(node::SecondLevelClass::kClassCount)) {
    return Status(InvalidArgument("knowledge quantum has invalid role/class"));
  }
  return kq;
}

bool FunctionAlive(const NetFunction& function, const FactStore& store) {
  return std::all_of(
      function.fact_keys.begin(), function.fact_keys.end(),
      [&store](FactKey key) { return store.Find(key) != nullptr; });
}

void FunctionTable::Install(NetFunction function) {
  for (NetFunction& existing : functions_) {
    if (existing.id == function.id) {
      existing = std::move(function);
      return;
    }
  }
  functions_.push_back(std::move(function));
}

bool FunctionTable::Remove(FunctionId id) {
  const auto it = std::find_if(
      functions_.begin(), functions_.end(),
      [id](const NetFunction& f) { return f.id == id; });
  if (it == functions_.end()) return false;
  functions_.erase(it);
  return true;
}

const NetFunction* FunctionTable::Find(FunctionId id) const {
  for (const NetFunction& f : functions_) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

std::size_t FunctionTable::Expire(const FactStore& store) {
  const std::size_t before = functions_.size();
  functions_.erase(
      std::remove_if(functions_.begin(), functions_.end(),
                     [&store](const NetFunction& f) {
                       return !f.fact_keys.empty() &&
                              !FunctionAlive(f, store);
                     }),
      functions_.end());
  return before - functions_.size();
}

std::vector<const NetFunction*> FunctionTable::ForRole(
    node::FirstLevelRole role) const {
  std::vector<const NetFunction*> out;
  for (const NetFunction& f : functions_) {
    if (f.role == role) out.push_back(&f);
  }
  return out;
}

}  // namespace viator::wli
