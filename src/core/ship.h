// Ships: the active mobile nodes of the Wandering Network.
//
// A Ship binds one NodeOS (EEs, code cache, hardware plane, quotas) to one
// position in the physical topology. It is also the vm::Environment that
// shuttle code runs against — every syscall a capsule makes lands here,
// where NodeOS policy is enforced. Shuttle processing implements the full
// ployon duality of the DCP: ships process shuttles (role handlers, code
// execution), shuttles process ships (role switches, code installation,
// genome application), and both can process themselves (morphing packets,
// self-reconfiguration).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "core/dcp.h"
#include "core/facts.h"
#include "core/genetic_transcoder.h"
#include "core/knowledge.h"
#include "core/shuttle.h"
#include "core/srp.h"
#include "net/types.h"
#include "node/node_os.h"
#include "vm/interpreter.h"

namespace viator::wli {

class WanderingNetwork;

class Ship : public vm::Environment {
 public:
  Ship(WanderingNetwork& network, net::NodeId id, node::ShipClass ship_class,
       const node::ResourceQuota& quota, const node::Capabilities& caps,
       Rng rng);

  net::NodeId id() const { return id_; }
  node::ShipClass ship_class() const { return class_; }

  node::NodeOs& os() { return os_; }
  const node::NodeOs& os() const { return os_; }
  FactStore& facts() { return facts_; }
  const FactStore& facts() const { return facts_; }
  FunctionTable& functions() { return functions_; }
  const FunctionTable& functions() const { return functions_; }
  CongruenceTracker& congruence() { return congruence_; }

  // ---- Native service handlers ----

  /// Services (src/services) install a native handler per first-level role;
  /// the handler runs when a data shuttle reaches a ship holding that role.
  using NativeHandler = std::function<void(Ship&, const Shuttle&)>;
  void SetRoleHandler(node::FirstLevelRole role, NativeHandler handler);
  bool HasRoleHandler(node::FirstLevelRole role) const;

  /// Handler invoked for every consumed shuttle regardless of role (tap for
  /// measurement sinks). Runs after normal processing.
  void SetDeliverySink(NativeHandler sink) { delivery_sink_ = std::move(sink); }

  /// Handler for kControl shuttles (routing protocols, clustering beacons).
  void SetControlHandler(NativeHandler handler) {
    control_handler_ = std::move(handler);
  }

  // ---- Shuttle lifecycle ----

  /// Entry point from the network layer: a shuttle arrived on this ship,
  /// either to be consumed (destination) or forwarded.
  void Receive(Shuttle shuttle, net::NodeId arrived_from);

  /// Emits a shuttle into the network from this ship.
  Status SendShuttle(Shuttle shuttle);

  // ---- Self-reconfiguration ----

  /// Role switch through the NodeOS; completion is scheduled on the
  /// simulator (the ship is "reconfiguring" and queues work meanwhile —
  /// modelled as added latency on the next processing).
  Status SwitchRole(node::FirstLevelRole role, node::SwitchMechanism mechanism);

  /// Node Genesis: snapshot this ship's structure as a genome blueprint.
  ShipBlueprint ToBlueprint(std::size_t max_facts = 8) const;

  /// Applies a blueprint (arrived via shuttle genome): adopts role state,
  /// facts and functions. Hardware genes require a 3G+ node and available
  /// gates; incompatible genes are skipped, not fatal.
  Status ApplyBlueprint(const ShipBlueprint& blueprint);

  /// Self-description for the SRP community protocols. A dishonest ship
  /// (set_honest(false)) advertises a stale digest — peers auditing it will
  /// report unfairness.
  SelfDescription DescribeSelf() const;
  void set_honest(bool honest) { honest_ = honest; }
  bool honest() const { return honest_; }

  // ---- vm::Environment ----
  Result<std::int64_t> Invoke(vm::Syscall id,
                              std::span<const std::int64_t> args) override;

  // ---- Statistics ----
  std::uint64_t shuttles_consumed() const { return shuttles_consumed_; }
  std::uint64_t shuttles_forwarded() const { return shuttles_forwarded_; }
  std::uint64_t code_executions() const { return code_executions_; }
  std::uint64_t code_misses() const { return code_misses_; }
  const std::vector<std::int64_t>& last_emissions() const {
    return last_emissions_;
  }

  /// Per-class invocation activity since the last pulse (vertical wanderer
  /// input); reading resets the window.
  std::unordered_map<int, double> DrainClassActivity();

  // ---- Snapshot/restore support (genesis) ----

  /// The ship-local RNG stream (kRandom syscall draws), exposed so a restore
  /// can resume it exactly.
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

  /// Mixes the ship-visible state (identity, RNG stream, workload counters,
  /// NodeOS role/cache/hardware state) into a rolling state digest
  /// (flight-recorder hook).
  void MixDigest(Hasher& hasher) const;

  /// Current per-class activity window without draining it.
  const std::unordered_map<int, double>& class_activity() const {
    return class_activity_;
  }
  void RestoreClassActivity(std::unordered_map<int, double> activity) {
    class_activity_ = std::move(activity);
  }

  /// Shuttles parked awaiting demand-loaded code. A quiescent network (the
  /// precondition for an exact snapshot) has none.
  std::size_t waiting_for_code_count() const {
    return waiting_for_code_.size();
  }

  void RestoreCounters(std::uint64_t consumed, std::uint64_t forwarded,
                       std::uint64_t executions, std::uint64_t misses) {
    shuttles_consumed_ = consumed;
    shuttles_forwarded_ = forwarded;
    code_executions_ = executions;
    code_misses_ = misses;
  }

 private:
  void Consume(const Shuttle& shuttle, net::NodeId arrived_from);
  void ExecuteShuttleCode(const Shuttle& shuttle, const vm::Program& program);
  void HandleCodeShuttle(const Shuttle& shuttle);
  void HandleCodeRequest(const Shuttle& shuttle);
  void HandleCodeReply(const Shuttle& shuttle);
  void HandleKnowledge(const Shuttle& shuttle);
  void HandleJet(Shuttle shuttle);
  void ReleaseWaiters(Digest digest);

  WanderingNetwork& network_;
  net::NodeId id_;
  node::ShipClass class_;
  node::NodeOs os_;
  FactStore facts_;
  FunctionTable functions_;
  CongruenceTracker congruence_;
  Rng rng_;
  bool honest_ = true;

  std::array<NativeHandler,
             static_cast<std::size_t>(node::FirstLevelRole::kRoleCount)>
      role_handlers_{};
  NativeHandler delivery_sink_;
  NativeHandler control_handler_;

  // Execution context while a shuttle's code runs (syscalls read these).
  const Shuttle* current_shuttle_ = nullptr;
  std::vector<std::int64_t> last_emissions_;

  // Shuttles parked until their code arrives (demand loading).
  std::unordered_map<Digest, std::vector<Shuttle>> waiting_for_code_;

  std::unordered_map<int, double> class_activity_;

  std::uint64_t shuttles_consumed_ = 0;
  std::uint64_t shuttles_forwarded_ = 0;
  std::uint64_t code_executions_ = 0;
  std::uint64_t code_misses_ = 0;
};

}  // namespace viator::wli
