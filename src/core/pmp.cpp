#include "core/pmp.h"

#include <algorithm>
#include <functional>

namespace viator::wli {

void DemandTracker::Record(net::NodeId node, node::FirstLevelRole role,
                           double amount) {
  demand_[{node, role}] += amount;
}

void DemandTracker::Decay() {
  for (auto it = demand_.begin(); it != demand_.end();) {
    it->second *= decay_;
    if (it->second < 1e-6) {
      it = demand_.erase(it);
    } else {
      ++it;
    }
  }
}

double DemandTracker::DemandAt(net::NodeId node,
                               node::FirstLevelRole role) const {
  const auto it = demand_.find({node, role});
  return it == demand_.end() ? 0.0 : it->second;
}

net::NodeId DemandTracker::HottestNode(node::FirstLevelRole role) const {
  net::NodeId best = net::kInvalidNode;
  double best_demand = 0.0;
  for (const auto& [key, value] : demand_) {
    if (key.second != role) continue;
    if (best == net::kInvalidNode || value > best_demand) {
      best = key.first;
      best_demand = value;
    }
  }
  return best;
}

double DemandTracker::TotalDemand(node::FirstLevelRole role) const {
  double total = 0.0;
  for (const auto& [key, value] : demand_) {
    if (key.second == role) total += value;
  }
  return total;
}

std::vector<HorizontalWanderer::Migration> HorizontalWanderer::Decide(
    const std::map<FunctionId, net::NodeId>& placement,
    const std::map<FunctionId, node::FirstLevelRole>& roles,
    const DemandTracker& demand) const {
  std::vector<Migration> out;
  for (const auto& [fn, host] : placement) {
    const auto role_it = roles.find(fn);
    if (role_it == roles.end()) continue;
    const node::FirstLevelRole role = role_it->second;
    const net::NodeId hotspot = demand.HottestNode(role);
    if (hotspot == net::kInvalidNode || hotspot == host) continue;
    const double at_hotspot = demand.DemandAt(hotspot, role);
    const double at_host = demand.DemandAt(host, role);
    if (at_hotspot < config_.min_demand) continue;
    if (at_hotspot > std::max(at_host, 1e-9) * config_.hysteresis) {
      out.push_back(Migration{fn, host, hotspot});
    }
  }
  return out;
}

std::vector<VerticalWanderer::SpawnDecision> VerticalWanderer::Decide(
    const std::map<net::NodeId, std::map<node::SecondLevelClass, double>>&
        activity) const {
  // Aggregate per class; members are the nodes whose per-class activity is
  // a meaningful share of the total.
  std::map<node::SecondLevelClass, double> totals;
  for (const auto& [node, classes] : activity) {
    for (const auto& [cls, amount] : classes) totals[cls] += amount;
  }
  std::vector<SpawnDecision> out;
  for (const auto& [cls, total] : totals) {
    if (total < config_.spawn_threshold) continue;
    SpawnDecision decision;
    decision.cls = cls;
    for (const auto& [node, classes] : activity) {
      const auto it = classes.find(cls);
      if (it != classes.end() && it->second > 0.0) {
        decision.members.push_back(node);
      }
    }
    if (decision.members.size() >= config_.min_members) {
      std::sort(decision.members.begin(), decision.members.end());
      out.push_back(std::move(decision));
    }
  }
  return out;
}

void ResonanceDetector::Observe(net::NodeId ship, FactKey key) {
  holders_[key].insert(ship);
}

std::vector<std::vector<FactKey>> ResonanceDetector::DetectAndReset() {
  // Pairwise resonance, then greedy merge of overlapping pairs into groups.
  std::vector<std::pair<FactKey, FactKey>> resonant_pairs;
  for (auto a = holders_.begin(); a != holders_.end(); ++a) {
    for (auto b = std::next(a); b != holders_.end(); ++b) {
      std::size_t both = 0;
      for (net::NodeId ship : a->second) {
        both += b->second.count(ship);
      }
      const std::size_t either = a->second.size() + b->second.size() - both;
      if (both >= config_.min_support && either > 0 &&
          static_cast<double>(both) / static_cast<double>(either) >=
              config_.min_jaccard) {
        resonant_pairs.emplace_back(a->first, b->first);
      }
    }
  }
  // Merge pairs sharing a key (union-find over fact keys).
  std::map<FactKey, FactKey> parent;
  std::function<FactKey(FactKey)> find = [&](FactKey x) -> FactKey {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    const FactKey root = find(it->second);
    parent[x] = root;
    return root;
  };
  for (const auto& [a, b] : resonant_pairs) {
    parent.try_emplace(a, a);
    parent.try_emplace(b, b);
    const FactKey ra = find(a);
    const FactKey rb = find(b);
    if (ra != rb) parent[ra] = rb;
  }
  std::map<FactKey, std::vector<FactKey>> groups;
  for (const auto& [key, p] : parent) groups[find(key)].push_back(key);
  std::vector<std::vector<FactKey>> out;
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  holders_.clear();
  return out;
}

}  // namespace viator::wli
