// Free-list pool of Shuttle shells.
//
// Shuttles are value types that travel by move (through Frame payloads and
// ship handlers), so there is no stable node to thread a pointer chain
// through; what an allocator-style pool would recycle — and what actually
// costs on the hot path — is the heap capacity behind the three variable
// sections (code_image, payload, genome). The pool therefore keeps a stack
// of cleared shells whose vectors retain their capacity: a hot loop that
// acquires, fills, injects and (on consumption) releases reaches a steady
// state with zero allocations per shuttle.
//
// Pooling is invisible to simulation semantics: Release() resets every
// field to its default, so an acquired shell is indistinguishable from a
// freshly constructed Shuttle. Each pool instance is single-threaded (one
// per WanderingNetwork; shard workers own their networks), so there is no
// cross-thread sharing to synchronize.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/shuttle.h"
#include "telemetry/mem_counters.h"

namespace viator::wli {

class ShuttlePool {
 public:
  /// `max_pooled` caps retained shells; releases beyond it simply destroy
  /// the shuttle (bounds memory under bursty traffic).
  explicit ShuttlePool(std::size_t max_pooled = 1024)
      : max_pooled_(max_pooled) {}

  /// A default-constructed shuttle, reusing a released shell's buffer
  /// capacity when one is available.
  Shuttle Acquire() {
    ++acquired_;
    if (free_.empty()) return Shuttle{};
    ++reused_;
    Shuttle s = std::move(free_.back());
    free_.pop_back();
    const std::size_t bytes = ShellBytes(s);
    retained_bytes_ -= bytes;
    VIATOR_MEM_FREE(kShuttlePool, bytes);
    return s;
  }

  /// Pool-backed equivalent of Shuttle::Data: the payload words are copied
  /// into the shell's retained vector, so steady-state sends do not touch
  /// the allocator at all (Shuttle::Data's by-value vector always does).
  Shuttle AcquireData(net::NodeId src, net::NodeId dst,
                      std::span<const std::int64_t> payload,
                      std::uint64_t flow = 0) {
    Shuttle s = Acquire();
    s.header.source = src;
    s.header.destination = dst;
    s.header.flow_id = flow;
    s.header.kind = ShuttleKind::kData;
    s.payload.assign(payload.begin(), payload.end());
    return s;
  }

  /// Returns a dead shuttle's shell. Every field is reset to its default;
  /// only the vectors' capacity survives.
  void Release(Shuttle&& s) {
    ++released_;
    if (free_.size() >= max_pooled_) return;  // s destructs, memory returned
    s.header = ShuttleHeader{};
    s.code_digest = 0;
    s.code_image.clear();
    s.payload.clear();
    s.genome.clear();
    s.replication_budget = 0;
    s.auth_tag = 0;
    s.transit_destination = net::kInvalidNode;
    s.trace = telemetry::TraceContext{};
    s.lat_id = 0;
    const std::size_t bytes = ShellBytes(s);
    retained_bytes_ += bytes;
    if (retained_bytes_ > peak_retained_bytes_) {
      peak_retained_bytes_ = retained_bytes_;
    }
    VIATOR_MEM_ALLOC(kShuttlePool, bytes);
    free_.push_back(std::move(s));
  }

  std::size_t pooled() const { return free_.size(); }
  std::size_t max_pooled() const { return max_pooled_; }
  std::uint64_t acquired() const { return acquired_; }
  std::uint64_t reused() const { return reused_; }
  std::uint64_t released() const { return released_; }

  /// Heap bytes currently parked behind pooled shells (the three variable
  /// sections' capacities), and the high-water mark of that figure. Both
  /// are deterministic functions of the traffic, so benches pin them and
  /// genesis snapshots carry the peak across restore.
  std::size_t retained_bytes() const { return retained_bytes_; }
  std::size_t peak_retained_bytes() const { return peak_retained_bytes_; }

  /// Genesis restore hook: a freshly restored pool is empty (live bytes 0)
  /// but must remember the recorded run's high-water mark so capacity
  /// reports stay bit-identical across snapshot→restore.
  void RestorePeakRetainedBytes(std::size_t peak) {
    peak_retained_bytes_ = peak;
  }

 private:
  /// Heap capacity behind one shell's variable sections — exactly what a
  /// pooled shell keeps alive while parked on the free list.
  static std::size_t ShellBytes(const Shuttle& s) {
    return s.code_image.capacity() * sizeof(std::byte) +
           s.payload.capacity() * sizeof(std::int64_t) +
           s.genome.capacity() * sizeof(std::byte);
  }

  std::vector<Shuttle> free_;
  std::size_t max_pooled_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t released_ = 0;
  std::size_t retained_bytes_ = 0;
  std::size_t peak_retained_bytes_ = 0;
};

}  // namespace viator::wli
