#include "core/overlay.h"

#include <algorithm>
#include <deque>
#include <set>

namespace viator::wli {

Result<VirtualLink> OverlayManager::BuildLink(
    net::NodeId a, net::NodeId b, sim::Duration latency_bound) const {
  VirtualLink link;
  link.a = a;
  link.b = b;
  link.physical_path = topology_.FastestPath(a, b);
  if (link.physical_path.empty()) {
    return Status(NotFound("no physical path for virtual link"));
  }
  sim::Duration total = 0;
  for (std::size_t i = 0; i + 1 < link.physical_path.size(); ++i) {
    const auto lid =
        topology_.FindLink(link.physical_path[i], link.physical_path[i + 1]);
    if (!lid.has_value()) return Status(NotFound("path edge vanished"));
    total += topology_.link(*lid).config.latency;
  }
  link.path_latency = total;
  if (latency_bound > 0 && total > latency_bound) {
    return Status(ResourceExhausted("virtual link exceeds QoS bound"));
  }
  return link;
}

bool OverlayManager::MembersConnected(const Overlay& overlay) {
  if (overlay.members.size() <= 1) return true;
  std::map<net::NodeId, std::vector<net::NodeId>> adj;
  for (const VirtualLink& l : overlay.links) {
    adj[l.a].push_back(l.b);
    adj[l.b].push_back(l.a);
  }
  std::set<net::NodeId> seen{overlay.members.front()};
  std::deque<net::NodeId> frontier{overlay.members.front()};
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop_front();
    for (net::NodeId v : adj[u]) {
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  return std::all_of(overlay.members.begin(), overlay.members.end(),
                     [&seen](net::NodeId m) { return seen.count(m) != 0; });
}

Result<OverlayId> OverlayManager::Spawn(std::string name,
                                        std::vector<net::NodeId> members,
                                        sim::Duration latency_bound) {
  if (members.size() < 2) {
    return Status(InvalidArgument("overlay needs at least two members"));
  }
  Overlay overlay;
  overlay.name = std::move(name);
  overlay.members = std::move(members);
  overlay.qos_latency_bound = latency_bound;
  for (std::size_t i = 0; i < overlay.members.size(); ++i) {
    for (std::size_t j = i + 1; j < overlay.members.size(); ++j) {
      auto link =
          BuildLink(overlay.members[i], overlay.members[j], latency_bound);
      if (link.ok()) overlay.links.push_back(std::move(*link));
    }
  }
  if (!MembersConnected(overlay)) {
    return Status(
        ResourceExhausted("QoS bound leaves overlay disconnected"));
  }
  overlay.id = next_id_++;
  ++spawned_total_;
  const OverlayId id = overlay.id;
  overlays_.emplace(id, std::move(overlay));
  return id;
}

Status OverlayManager::Remove(OverlayId id) {
  return overlays_.erase(id) > 0 ? OkStatus()
                                 : NotFound("overlay does not exist");
}

const Overlay* OverlayManager::Find(OverlayId id) const {
  const auto it = overlays_.find(id);
  return it == overlays_.end() ? nullptr : &it->second;
}

std::size_t OverlayManager::RefreshPaths() {
  std::size_t changed = 0;
  for (auto& [id, overlay] : overlays_) {
    for (VirtualLink& link : overlay.links) {
      // Check the pinned path is still fully up.
      bool intact = !link.physical_path.empty();
      for (std::size_t i = 0; intact && i + 1 < link.physical_path.size();
           ++i) {
        intact = topology_
                     .FindLink(link.physical_path[i],
                               link.physical_path[i + 1])
                     .has_value();
      }
      if (intact) continue;
      auto rebuilt = BuildLink(link.a, link.b, overlay.qos_latency_bound);
      if (rebuilt.ok()) {
        link = std::move(*rebuilt);
      } else {
        link.physical_path.clear();
        link.path_latency = 0;
      }
      ++changed;
    }
  }
  return changed;
}

double OverlayManager::AverageStretch(OverlayId id) const {
  const Overlay* overlay = Find(id);
  if (overlay == nullptr || overlay->links.empty()) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (const VirtualLink& link : overlay->links) {
    if (link.physical_path.size() < 2) continue;
    const auto shortest = topology_.ShortestPath(link.a, link.b);
    if (shortest.size() < 2) continue;
    sum += static_cast<double>(link.physical_path.size() - 1) /
           static_cast<double>(shortest.size() - 1);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace viator::wli
