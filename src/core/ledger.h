// Function usage statistics (§E): "functions can change their hosts,
// wander and settle down in other hosts, thus creating a valuable
// statistics about the frequency of usage of wandering functions in the
// network. The results obtained after a careful evaluation of this data can
// be used for the design of new network architectures and topologies."
//
// FunctionUsageLedger is that statistics store: a per-function history of
// host episodes (who hosted it, from when to when, how often it was used
// there). The WanderingNetwork records placements automatically; services
// report uses. Benches and the pulse read dwell times, visit counts and
// per-host usage distributions out of it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/knowledge.h"
#include "net/types.h"
#include "sim/time.h"

namespace viator::wli {

class FunctionUsageLedger {
 public:
  struct Episode {
    net::NodeId host = net::kInvalidNode;
    sim::TimePoint from = 0;
    sim::TimePoint to = 0;  // 0 while open (function still hosted there)
    std::uint64_t uses = 0;
  };

  /// Records that `function` is now hosted at `host` (closes any open
  /// episode). Idempotent for repeated placement at the same host.
  void RecordPlacement(FunctionId function, net::NodeId host,
                       sim::TimePoint now);

  /// Records the function's removal/expiry (closes the open episode).
  void RecordRemoval(FunctionId function, sim::TimePoint now);

  /// Counts one use of the function at its current host.
  void RecordUse(FunctionId function);

  // ---- Evaluation queries ----

  const std::vector<Episode>* EpisodesOf(FunctionId function) const;

  /// Number of host changes (episodes - 1; 0 when unknown).
  std::size_t VisitCount(FunctionId function) const;

  /// Total uses across all episodes.
  std::uint64_t TotalUses(FunctionId function) const;

  /// Mean episode length; the open episode is measured up to `now`.
  sim::Duration MeanDwell(FunctionId function, sim::TimePoint now) const;

  /// The host that served the most uses (kInvalidNode when unknown).
  net::NodeId MostUsedHost(FunctionId function) const;

  /// Per-host total usage across all tracked functions (the "evaluation"
  /// input for designing new topologies: where does work actually happen).
  std::map<net::NodeId, std::uint64_t> UsageByHost() const;

  std::size_t tracked_functions() const { return history_.size(); }

  // ---- Snapshot/restore support (genesis) ----
  const std::map<FunctionId, std::vector<Episode>>& history() const {
    return history_;
  }
  void RestoreState(std::map<FunctionId, std::vector<Episode>> history) {
    history_ = std::move(history);
  }

 private:
  std::map<FunctionId, std::vector<Episode>> history_;
};

}  // namespace viator::wli
