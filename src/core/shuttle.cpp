#include "core/shuttle.h"

namespace viator::wli {

std::string_view ShuttleKindName(ShuttleKind kind) {
  switch (kind) {
    case ShuttleKind::kData: return "data";
    case ShuttleKind::kCode: return "code";
    case ShuttleKind::kCodeRequest: return "code-request";
    case ShuttleKind::kCodeReply: return "code-reply";
    case ShuttleKind::kKnowledge: return "knowledge";
    case ShuttleKind::kJet: return "jet";
    case ShuttleKind::kControl: return "control";
    case ShuttleKind::kProbe: return "probe";
    case ShuttleKind::kKindCount: break;
  }
  return "?";
}

std::uint32_t Shuttle::WireSize() const {
  // Probes are measurement, not traffic: like trace contexts they are
  // excluded from transmission accounting, so enabling the health plane
  // never changes serialization timing or queue occupancy for real load.
  if (header.kind == ShuttleKind::kProbe) return 0;
  return kShuttleHeaderBytes + (in_transit() ? 8 : 0) +
         static_cast<std::uint32_t>(code_image.size()) +
         static_cast<std::uint32_t>(payload.size() * 8) +
         static_cast<std::uint32_t>(genome.size());
}

Shuttle Shuttle::Data(net::NodeId src, net::NodeId dst,
                      std::vector<std::int64_t> payload, std::uint64_t flow) {
  Shuttle s;
  s.header.source = src;
  s.header.destination = dst;
  s.header.flow_id = flow;
  s.header.kind = ShuttleKind::kData;
  s.payload = std::move(payload);
  return s;
}

Shuttle Shuttle::CodeRequest(net::NodeId src, net::NodeId dst, Digest digest) {
  Shuttle s;
  s.header.source = src;
  s.header.destination = dst;
  s.header.kind = ShuttleKind::kCodeRequest;
  s.code_digest = digest;
  return s;
}

}  // namespace viator::wli
