#include "core/aggregate.h"

#include <algorithm>
#include <set>

#include "core/wandering_network.h"

namespace viator::wli {

Result<ShipAggregate> ShipAggregate::Form(WanderingNetwork& network,
                                          std::vector<net::NodeId> members,
                                          sim::Duration lease) {
  if (members.size() < 2) {
    return Status(InvalidArgument("aggregate needs at least two ships"));
  }
  std::set<net::NodeId> unique(members.begin(), members.end());
  if (unique.size() != members.size()) {
    return Status(InvalidArgument("duplicate aggregate member"));
  }
  for (net::NodeId member : members) {
    if (network.ship(member) == nullptr) {
      return Status(NotFound("aggregate member has no ship"));
    }
  }
  // Forming an aggregate is itself a clustering interaction (SRP feedback).
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    network.clusters().ObserveInteraction(members[i], members[i + 1], 2.0);
  }
  network.stats().GetCounter("wn.aggregates_formed").Add();
  return ShipAggregate(network, std::move(members),
                       network.simulator().now() + lease);
}

void ShipAggregate::Renew(sim::TimePoint now, sim::Duration lease) {
  lease_until_ = std::max(lease_until_, now + lease);
}

ShipBlueprint ShipAggregate::JointBlueprint(
    std::size_t max_facts_per_member) const {
  ShipBlueprint joint;
  const Ship* speaker_ship = network_->ship(speaker());
  joint.ship_class = speaker_ship->ship_class();
  joint.role = speaker_ship->os().current_role();
  joint.next_step = speaker_ship->os().next_step();

  std::set<Digest> residents;
  std::set<FunctionId> functions_seen;
  for (net::NodeId member : members_) {
    const Ship* ship = network_->ship(member);
    for (const auto& fact : ship->facts().TopByWeight(max_facts_per_member)) {
      joint.facts.push_back({fact.key, fact.value, fact.weight});
    }
    for (const NetFunction& fn : ship->functions().functions()) {
      if (functions_seen.insert(fn.id).second) {
        joint.functions.push_back(fn);
      }
    }
    for (const auto& slot : ship->os().hardware().slots()) {
      joint.modules.push_back(ModuleGene{
          slot.module.module_id, slot.module.accelerates,
          slot.module.gate_count, slot.module.speedup,
          slot.module.driver_digest});
    }
  }
  // Dedup facts by key, keeping the heaviest observation.
  std::sort(joint.facts.begin(), joint.facts.end(),
            [](const FactSnapshot& a, const FactSnapshot& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.weight > b.weight;
            });
  joint.facts.erase(
      std::unique(joint.facts.begin(), joint.facts.end(),
                  [](const FactSnapshot& a, const FactSnapshot& b) {
                    return a.key == b.key;
                  }),
      joint.facts.end());
  return joint;
}

std::uint64_t ShipAggregate::PooledFuelBudget() const {
  std::uint64_t total = 0;
  for (net::NodeId member : members_) {
    total += network_->ship(member)->os().resources().quota().fuel_per_epoch;
  }
  return total;
}

Result<net::NodeId> ShipAggregate::DispatchWork(Shuttle shuttle) {
  if (!Alive(network_->simulator().now())) {
    return Status(FailedPrecondition("aggregate lease expired"));
  }
  const net::NodeId member = members_[next_member_ % members_.size()];
  ++next_member_;
  ++work_dispatched_;
  shuttle.header.destination = member;
  if (Status s = network_->Inject(std::move(shuttle)); !s.ok()) return s;
  return member;
}

}  // namespace viator::wli
