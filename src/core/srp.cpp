#include "core/srp.h"

#include <algorithm>
#include <functional>

namespace viator::wli {

void ReputationSystem::ReportInteraction(net::NodeId subject, bool fair) {
  auto [it, inserted] =
      entries_.try_emplace(subject, Entry{config_.initial_score, false});
  Entry& entry = it->second;
  entry.score =
      (1.0 - config_.alpha) * entry.score + config_.alpha * (fair ? 1.0 : 0.0);
  if (entry.excluded) {
    if (entry.score >= config_.readmission_threshold) entry.excluded = false;
  } else if (entry.score < config_.exclusion_threshold) {
    entry.excluded = true;
  }
  ++reports_;
}

double ReputationSystem::ScoreOf(net::NodeId subject) const {
  const auto it = entries_.find(subject);
  return it == entries_.end() ? config_.initial_score : it->second.score;
}

bool ReputationSystem::IsExcluded(net::NodeId subject) const {
  const auto it = entries_.find(subject);
  return it != entries_.end() && it->second.excluded;
}

std::size_t ReputationSystem::excluded_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const auto& kv) { return kv.second.excluded; }));
}

void ClusterManager::ObserveInteraction(net::NodeId a, net::NodeId b,
                                        double strength) {
  if (a == b) return;
  affinity_[Canonical(a, b)] += strength;
}

void ClusterManager::Decay() {
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    it->second *= decay_;
    if (it->second < 1e-3) {
      it = affinity_.erase(it);
    } else {
      ++it;
    }
  }
}

double ClusterManager::AffinityBetween(net::NodeId a, net::NodeId b) const {
  const auto it = affinity_.find(Canonical(a, b));
  return it == affinity_.end() ? 0.0 : it->second;
}

std::vector<std::vector<net::NodeId>> ClusterManager::Clusters(
    double threshold) const {
  // Union-find over nodes that appear in any qualifying edge.
  std::map<net::NodeId, net::NodeId> parent;
  std::function<net::NodeId(net::NodeId)> find =
      [&](net::NodeId x) -> net::NodeId {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    const net::NodeId root = find(it->second);
    parent[x] = root;
    return root;
  };
  for (const auto& [pair, weight] : affinity_) {
    if (weight < threshold) continue;
    parent.try_emplace(pair.first, pair.first);
    parent.try_emplace(pair.second, pair.second);
    const net::NodeId ra = find(pair.first);
    const net::NodeId rb = find(pair.second);
    if (ra != rb) parent[ra] = rb;
  }
  std::map<net::NodeId, std::vector<net::NodeId>> groups;
  for (const auto& [node, p] : parent) {
    groups[find(node)].push_back(node);
  }
  std::vector<std::vector<net::NodeId>> out;
  for (auto& [root, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace viator::wli
