#include "core/genetic_transcoder.h"

#include "base/tlv.h"

namespace viator::wli {
namespace {

constexpr TlvTag kTagShipClass = 0x30;
constexpr TlvTag kTagRole = 0x31;
constexpr TlvTag kTagNextStep = 0x32;
constexpr TlvTag kTagResident = 0x33;
constexpr TlvTag kTagVersion = 0x34;
constexpr TlvTag kTagFact = 0x35;        // nested: key,value,weight
constexpr TlvTag kTagModule = 0x36;      // nested module gene
constexpr TlvTag kTagFunction = 0x37;    // nested knowledge-quantum encoding

constexpr TlvTag kTagInnerKey = 0x01;
constexpr TlvTag kTagInnerValue = 0x02;
constexpr TlvTag kTagInnerWeight = 0x03;
constexpr TlvTag kTagInnerModuleId = 0x04;
constexpr TlvTag kTagInnerClass = 0x05;
constexpr TlvTag kTagInnerGates = 0x06;
constexpr TlvTag kTagInnerSpeedup = 0x07;
constexpr TlvTag kTagInnerDriver = 0x08;

std::vector<std::byte> EncodeFact(const FactSnapshot& fact) {
  TlvWriter w;
  w.PutU64(kTagInnerKey, fact.key);
  w.PutU64(kTagInnerValue, static_cast<std::uint64_t>(fact.value));
  w.PutDouble(kTagInnerWeight, fact.weight);
  return w.Finish();
}

std::vector<std::byte> EncodeModule(const ModuleGene& gene) {
  TlvWriter w;
  w.PutU32(kTagInnerModuleId, gene.module_id);
  w.PutU32(kTagInnerClass, static_cast<std::uint32_t>(gene.accelerates));
  w.PutU32(kTagInnerGates, gene.gate_count);
  w.PutDouble(kTagInnerSpeedup, gene.speedup);
  w.PutU64(kTagInnerDriver, gene.driver_digest);
  return w.Finish();
}

Result<FactSnapshot> DecodeFact(std::span<const std::byte> bytes) {
  TlvReader r(bytes);
  if (Status s = r.Verify(); !s.ok()) return s;
  FactSnapshot fact;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagInnerKey: fact.key = rec->AsU64(); break;
      case kTagInnerValue:
        fact.value = static_cast<std::int64_t>(rec->AsU64());
        break;
      case kTagInnerWeight: fact.weight = rec->AsDouble(); break;
      default: break;
    }
  }
  return fact;
}

Result<ModuleGene> DecodeModule(std::span<const std::byte> bytes) {
  TlvReader r(bytes);
  if (Status s = r.Verify(); !s.ok()) return s;
  ModuleGene gene;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagInnerModuleId: gene.module_id = rec->AsU32(); break;
      case kTagInnerClass:
        gene.accelerates = static_cast<node::SecondLevelClass>(rec->AsU32());
        break;
      case kTagInnerGates: gene.gate_count = rec->AsU32(); break;
      case kTagInnerSpeedup: gene.speedup = rec->AsDouble(); break;
      case kTagInnerDriver: gene.driver_digest = rec->AsU64(); break;
      default: break;
    }
  }
  if (static_cast<std::size_t>(gene.accelerates) >=
      static_cast<std::size_t>(node::SecondLevelClass::kClassCount)) {
    return Status(InvalidArgument("module gene has invalid class"));
  }
  return gene;
}

}  // namespace

std::vector<std::byte> EncodeBlueprint(const ShipBlueprint& blueprint) {
  TlvWriter w;
  w.PutU32(kTagShipClass, static_cast<std::uint32_t>(blueprint.ship_class));
  w.PutU32(kTagRole, static_cast<std::uint32_t>(blueprint.role));
  w.PutU32(kTagNextStep, static_cast<std::uint32_t>(blueprint.next_step));
  w.PutU32(kTagVersion, blueprint.genome_version);
  for (Digest d : blueprint.resident_programs) w.PutU64(kTagResident, d);
  for (const FactSnapshot& fact : blueprint.facts) {
    w.PutNested(kTagFact, EncodeFact(fact));
  }
  for (const ModuleGene& gene : blueprint.modules) {
    w.PutNested(kTagModule, EncodeModule(gene));
  }
  for (const NetFunction& fn : blueprint.functions) {
    KnowledgeQuantum kq;
    kq.function = fn;
    w.PutNested(kTagFunction, EncodeKnowledgeQuantum(kq));
  }
  return w.Finish();
}

Result<ShipBlueprint> DecodeBlueprint(std::span<const std::byte> genome) {
  TlvReader r(genome);
  if (Status s = r.Verify(); !s.ok()) return s;
  ShipBlueprint bp;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagShipClass:
        bp.ship_class = static_cast<node::ShipClass>(rec->AsU32());
        break;
      case kTagRole:
        bp.role = static_cast<node::FirstLevelRole>(rec->AsU32());
        break;
      case kTagNextStep:
        bp.next_step = static_cast<node::FirstLevelRole>(rec->AsU32());
        break;
      case kTagVersion: bp.genome_version = rec->AsU32(); break;
      case kTagResident: bp.resident_programs.push_back(rec->AsU64()); break;
      case kTagFact: {
        auto fact = DecodeFact(rec->payload);
        if (!fact.ok()) return fact.status();
        bp.facts.push_back(*fact);
        break;
      }
      case kTagModule: {
        auto gene = DecodeModule(rec->payload);
        if (!gene.ok()) return gene.status();
        bp.modules.push_back(*gene);
        break;
      }
      case kTagFunction: {
        auto kq = DecodeKnowledgeQuantum(rec->payload);
        if (!kq.ok()) return kq.status();
        bp.functions.push_back(kq->function);
        break;
      }
      default:
        break;
    }
  }
  if (static_cast<std::size_t>(bp.role) >=
          static_cast<std::size_t>(node::FirstLevelRole::kRoleCount) ||
      static_cast<std::size_t>(bp.next_step) >=
          static_cast<std::size_t>(node::FirstLevelRole::kRoleCount)) {
    return Status(InvalidArgument("blueprint has invalid role"));
  }
  if (static_cast<std::size_t>(bp.ship_class) >
      static_cast<std::size_t>(node::ShipClass::kAgent)) {
    return Status(InvalidArgument("blueprint has invalid ship class"));
  }
  return bp;
}

}  // namespace viator::wli
