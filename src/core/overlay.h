// Virtual topologies: the "Routing Control" class of §D — "overlaying and
// managing several virtual topologies on top of the same physical network
// infrastructure" — and the QoS "topology on demand" the paper promises
// ("we can generate a QoS oriented network topology on demand").
//
// An Overlay is a named set of member ships joined by virtual links, each
// pinned to a physical path. The manager spawns overlays (Figure 4's
// vertical wandering: clustering + spawning), builds QoS-bounded topologies
// and re-pins paths after physical change (overlay self-healing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "net/topology.h"
#include "sim/time.h"

namespace viator::wli {

using OverlayId = std::uint32_t;

struct VirtualLink {
  net::NodeId a = net::kInvalidNode;
  net::NodeId b = net::kInvalidNode;
  std::vector<net::NodeId> physical_path;  // includes both endpoints
  sim::Duration path_latency = 0;
};

struct Overlay {
  OverlayId id = 0;
  std::string name;
  std::vector<net::NodeId> members;
  std::vector<VirtualLink> links;
  sim::Duration qos_latency_bound = 0;  // 0 = best effort
};

class OverlayManager {
 public:
  explicit OverlayManager(net::Topology& topology) : topology_(topology) {}

  /// Spawns an overlay joining `members` pairwise (full mesh over physical
  /// fastest paths). With a nonzero `latency_bound`, virtual links whose
  /// path latency exceeds the bound are omitted; fails when the bound makes
  /// the overlay disconnected.
  Result<OverlayId> Spawn(std::string name, std::vector<net::NodeId> members,
                          sim::Duration latency_bound = 0);

  Status Remove(OverlayId id);

  const Overlay* Find(OverlayId id) const;
  const std::map<OverlayId, Overlay>& overlays() const { return overlays_; }

  /// Recomputes every virtual link's physical path against the current
  /// topology (after failures/mobility). Links that lost their path are
  /// re-routed; returns how many links changed. Unroutable links remain
  /// with an empty path (visible to callers as a QoS violation).
  std::size_t RefreshPaths();

  /// Average path stretch of an overlay: mean over virtual links of
  /// (physical hops on pinned path) / (current shortest-path hops).
  double AverageStretch(OverlayId id) const;

  std::uint64_t spawned_total() const { return spawned_total_; }

  // ---- Snapshot/restore support (genesis) ----
  OverlayId next_id() const { return next_id_; }
  void RestoreState(std::map<OverlayId, Overlay> overlays, OverlayId next_id,
                    std::uint64_t spawned_total) {
    overlays_ = std::move(overlays);
    next_id_ = next_id;
    spawned_total_ = spawned_total;
  }

 private:
  Result<VirtualLink> BuildLink(net::NodeId a, net::NodeId b,
                                sim::Duration latency_bound) const;
  static bool MembersConnected(const Overlay& overlay);

  net::Topology& topology_;
  std::map<OverlayId, Overlay> overlays_;
  OverlayId next_id_ = 1;
  std::uint64_t spawned_total_ = 0;
};

}  // namespace viator::wli
