#include "core/dcp.h"

namespace viator::wli {

void MorphingEngine::SetRequiredInterface(node::ShipClass cls,
                                          InterfaceId required) {
  required_[cls] = required;
}

void MorphingEngine::AddAdapter(InterfaceId from, InterfaceId to,
                                std::uint32_t overhead_bytes,
                                sim::Duration latency) {
  adapters_[{from, to}] = Adapter{overhead_bytes, latency};
}

InterfaceId MorphingEngine::RequiredInterface(node::ShipClass cls) const {
  const auto it = required_.find(cls);
  return it == required_.end() ? 0 : it->second;
}

MorphOutcome MorphingEngine::MorphForDock(Shuttle& shuttle) const {
  MorphOutcome outcome;
  const InterfaceId target = RequiredInterface(shuttle.header.dest_class_hint);
  ++attempted_;
  if (shuttle.header.interface_id == target) {
    outcome.success = true;
    outcome.already_matched = true;
    return outcome;
  }
  const auto it = adapters_.find({shuttle.header.interface_id, target});
  if (it == adapters_.end()) {
    ++failed_;
    return outcome;  // no adapter: the dock rejects the shuttle
  }
  shuttle.header.interface_id = target;
  outcome.success = true;
  outcome.overhead_bytes = it->second.overhead_bytes;
  outcome.latency = it->second.latency;
  return outcome;
}

bool CongruenceTracker::Observe(InterfaceId observed) {
  ++observations_;
  const bool hit = observed == predicted_;
  score_ = (1.0 - alpha_) * score_ + alpha_ * (hit ? 1.0 : 0.0);

  // Decay all votes, reinforce the observed interface, re-elect the leader.
  for (auto& [iface, vote] : votes_) vote *= (1.0 - alpha_);
  votes_[observed] += alpha_;
  InterfaceId best = predicted_;
  double best_vote = -1.0;
  for (const auto& [iface, vote] : votes_) {
    if (vote > best_vote) {
      best = iface;
      best_vote = vote;
    }
  }
  predicted_ = best;
  return hit;
}

}  // namespace viator::wli
