// Dualistic Congruence Principle (DCP).
//
// "A shuttle approaching a ship can re-configure itself becoming a morphing
// packet to provide the desired interface and match a ship's requirements.
// This operation can be based on the destination address and on the class of
// the ship included in this address." And symmetrically, a ship "can adapt
// (itself) a priori to communications to best-match the structure of the
// active packets at the time of delivery."
//
// MorphingEngine holds the interface requirements per ship class and the
// adapter graph a shuttle can traverse; CongruenceTracker is the ship-side
// a-priori adaptation (it predicts the next shuttle's interface from recent
// arrivals; a correct prediction removes the adaptation cost).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/shuttle.h"
#include "node/profile.h"
#include "sim/time.h"

namespace viator::wli {

/// Interface identifiers are opaque; 0 is the universal default interface.
using InterfaceId = std::uint32_t;

struct MorphOutcome {
  bool success = false;
  std::uint32_t overhead_bytes = 0;  // added to the shuttle's wire size
  sim::Duration latency = 0;         // adaptation time at the dock
  bool already_matched = false;      // no adaptation was needed
};

class MorphingEngine {
 public:
  /// Declares that ships of `cls` require shuttles to present `required`.
  void SetRequiredInterface(node::ShipClass cls, InterfaceId required);

  /// Registers an adapter that rewrites a shuttle from one interface to
  /// another at a given cost. Adapters are direct (no multi-step search):
  /// the shuttle either has the adapter for the target or fails to dock.
  void AddAdapter(InterfaceId from, InterfaceId to,
                  std::uint32_t overhead_bytes, sim::Duration latency);

  /// Interface required by a class (default interface 0 when undeclared).
  InterfaceId RequiredInterface(node::ShipClass cls) const;

  /// Morphs `shuttle` to the interface its destination class requires,
  /// using the class hint in the header. Mutates interface_id and counts
  /// the outcome; returns what happened.
  MorphOutcome MorphForDock(Shuttle& shuttle) const;

  std::uint64_t morphs_attempted() const { return attempted_; }
  std::uint64_t morphs_failed() const { return failed_; }

  /// Restores morph accounting from a snapshot (genesis); the interface and
  /// adapter configuration is re-declared by the services layer.
  void RestoreCounters(std::uint64_t attempted, std::uint64_t failed) {
    attempted_ = attempted;
    failed_ = failed;
  }

 private:
  struct Adapter {
    std::uint32_t overhead_bytes;
    sim::Duration latency;
  };
  std::map<node::ShipClass, InterfaceId> required_;
  std::map<std::pair<InterfaceId, InterfaceId>, Adapter> adapters_;
  mutable std::uint64_t attempted_ = 0;
  mutable std::uint64_t failed_ = 0;
};

/// Ship-side congruence: exponentially weighted prediction of arriving
/// shuttle structure. When the prediction matches, the dock is "congruent"
/// and adaptation cost is waived (the ship pre-configured itself).
class CongruenceTracker {
 public:
  explicit CongruenceTracker(double alpha = 0.2) : alpha_(alpha) {}

  /// Observes an arrival; returns true when the ship had correctly
  /// pre-adapted (predicted interface == observed).
  bool Observe(InterfaceId observed);

  /// The interface the ship is currently pre-configured for.
  InterfaceId predicted() const { return predicted_; }

  /// Running congruence score in [0,1]: EWMA of prediction hits.
  double score() const { return score_; }

  std::uint64_t observations() const { return observations_; }

  /// Exact learned state, for snapshot/restore (genesis).
  struct RawState {
    InterfaceId predicted = 0;
    std::map<InterfaceId, double> votes;
    double score = 0.0;
    std::uint64_t observations = 0;
  };
  RawState SaveState() const {
    return RawState{predicted_, votes_, score_, observations_};
  }
  void RestoreState(RawState state) {
    predicted_ = state.predicted;
    votes_ = std::move(state.votes);
    score_ = state.score;
    observations_ = state.observations;
  }

 private:
  double alpha_;
  InterfaceId predicted_ = 0;
  // Frequency-weighted vote per recently seen interface.
  std::map<InterfaceId, double> votes_;
  double score_ = 0.0;
  std::uint64_t observations_ = 0;
};

}  // namespace viator::wli
