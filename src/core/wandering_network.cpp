#include "core/wandering_network.h"

#include <cmath>

#include "telemetry/perf_counters.h"

namespace viator::wli {

// The latency plane (self-contained below core) mirrors these enums as
// plain byte dimensions; keep its tables in lock step with the real ones.
static_assert(telemetry::lat::kClassCount ==
                  static_cast<std::size_t>(ShuttleKind::kKindCount),
              "lat::kClassCount must mirror ShuttleKind");
static_assert(telemetry::lat::kRoleCount ==
                  static_cast<std::size_t>(node::FirstLevelRole::kRoleCount),
              "lat::kRoleCount must mirror node::FirstLevelRole");

WanderingNetwork::WanderingNetwork(sim::Simulator& simulator,
                                   net::Topology& topology,
                                   const WnConfig& config, std::uint64_t seed)
    : simulator_(simulator),
      topology_(topology),
      config_(config),
      rng_(seed),
      trace_(8192),
      // Trace-id stream is forked off the seed with its own salt so tracing
      // never consumes draws from (or correlates with) the network stream.
      telemetry_(simulator, config.telemetry, seed ^ 0xd6e8feb86659fd93ULL),
      fabric_(simulator, topology, Rng(seed ^ 0x5bd1e995), stats_),
      shuttles_injected_(stats_.GetCounter("wn.shuttles_injected")),
      excluded_dropped_(stats_.GetCounter("wn.excluded_dropped")),
      router_absorbed_(stats_.GetCounter("wn.router_absorbed")),
      unroutable_(stats_.GetCounter("wn.unroutable")),
      reputation_(config.reputation),
      overlays_(topology),
      horizontal_(config.horizontal),
      vertical_(config.vertical),
      resonance_(config.resonance) {
  // Past-time schedules are clamped silently by the simulator; surface the
  // count as a regular metric so exports and gates can watch it.
  simulator_.BindClampCounter(&stats_.GetCounter("sim.clamped_events"));
  // Per-hop queue/transit stages and in-fabric losses attribute to this
  // network's lane.
  fabric_.BindLatencyLane(&lat_lane_);
}

Ship& WanderingNetwork::AddShip(net::NodeId node, node::ShipClass ship_class) {
  if (ships_.size() <= node) ships_.resize(node + 1);
  if (!ships_[node]) {
    ships_[node] = std::make_unique<Ship>(
        *this, node, ship_class, config_.quota,
        node::Capabilities::ForGeneration(config_.generation), rng_.Fork());
    ++ship_count_;
    fabric_.SetReceiveHandler(node, [this, node](net::Frame& frame) {
      // The frame is ours to consume: moving the shuttle out of the payload
      // saves a deep copy (code image + payload + genome) on every hop.
      if (auto* shuttle = std::any_cast<Shuttle>(&frame.payload)) {
        ships_[node]->Receive(std::move(*shuttle), frame.from);
      }
    });
  }
  return *ships_[node];
}

void WanderingNetwork::PopulateAllNodes() {
  for (net::NodeId n = 0; n < topology_.node_count(); ++n) {
    AddShip(n, node::ShipClass::kServer);
  }
}

Ship* WanderingNetwork::ship(net::NodeId node) {
  return node < ships_.size() ? ships_[node].get() : nullptr;
}

const Ship* WanderingNetwork::ship(net::NodeId node) const {
  return node < ships_.size() ? ships_[node].get() : nullptr;
}

void WanderingNetwork::ForEachShip(const std::function<void(Ship&)>& fn) {
  for (auto& ship : ships_) {
    if (ship) fn(*ship);
  }
}

Result<Digest> WanderingNetwork::PublishProgram(const vm::Program& program,
                                                net::NodeId origin) {
  auto digest = repository_.Install(program);
  if (!digest.ok()) return digest;
  origins_[*digest] = origin;
  // The origin ship holds the code resident from the start.
  if (Ship* origin_ship = ship(origin); origin_ship != nullptr) {
    (void)origin_ship->os().AdmitProgram(program);
  }
  return digest;
}

const vm::Program* WanderingNetwork::FindPublished(Digest digest) const {
  return repository_.Find(digest);
}

net::NodeId WanderingNetwork::OriginOf(Digest digest) const {
  const auto it = origins_.find(digest);
  return it == origins_.end() ? net::kInvalidNode : it->second;
}

Status WanderingNetwork::Inject(Shuttle shuttle) {
  const net::NodeId src = shuttle.header.source;
  if (src >= ships_.size() || !ships_[src]) {
    return InvalidArgument("no ship at source node");
  }
  // A freshly injected capsule starts a new trace; the inject span is the
  // root of its causal tree. Both calls are inert when tracing is off.
  if (telemetry_.tracing_enabled() && !shuttle.trace.active()) {
    shuttle.trace = telemetry_.StartTrace();
  }
  telemetry::SpanScope span(telemetry_, shuttle.trace, src, "wn", "inject");
  shuttle.trace = span.context();
  // Lifecycle birth: injection is where the end-to-end delivery clock
  // starts (self-deliveries included; Receive closes them immediately).
  VIATOR_LAT_BIRTH(&lat_lane_, shuttle, simulator_.now());
  if (shuttle.header.destination == src) {
    ships_[src]->Receive(std::move(shuttle), src);
    return OkStatus();
  }
  shuttles_injected_.Add();
  return Dispatch(src, std::move(shuttle));
}

Status WanderingNetwork::Dispatch(net::NodeId at, Shuttle shuttle) {
  const net::NodeId dst = shuttle.header.destination;
  const bool probe = shuttle.header.kind == ShuttleKind::kProbe;
  // Births not seen by Inject (ship-originated replies, jets, migrations)
  // start their clock here; re-dispatched flights (lat_id set) are no-ops.
  VIATOR_LAT_BIRTH(&lat_lane_, shuttle, simulator_.now());
  if (dst == at) {
    if (ships_[at]) ships_[at]->Receive(std::move(shuttle), at);
    return OkStatus();
  }
  // SRP community enforcement: excluded ships get no service. Probes are
  // exempt — the health plane must keep observing excluded ships too.
  if (!probe && reputation_.IsExcluded(shuttle.header.source)) {
    excluded_dropped_.Add();
    VIATOR_LAT_DROP(&lat_lane_, shuttle, simulator_.now());
    shuttle_pool_.Release(std::move(shuttle));
    return PermissionDenied("source ship excluded from community");
  }
  net::NodeId next = net::kInvalidNode;
  // Routing services may keep mutable state (route caches, pending-route
  // buffers); probes bypass the chooser so measurement never feeds it.
  if (next_hop_chooser_ && !probe) {
    next = next_hop_chooser_(at, shuttle);
    if (next == at) {
      // Chooser absorbed the shuttle (e.g. buffered pending route
      // discovery); nothing to transmit now.
      router_absorbed_.Add();
      return OkStatus();
    }
  }
  if (next == net::kInvalidNode) {
    // The BFS-per-hop cost center ROADMAP item 2 wants cached away; the
    // probe quantifies it per shard and per run.
    VIATOR_PERF_SCOPE(kRouteNextHop);
    next = topology_.NextHop(at, dst);
  }
  if (next == net::kInvalidNode) {
    unroutable_.Add();
    VIATOR_LAT_DROP(&lat_lane_, shuttle, simulator_.now());
    shuttle_pool_.Release(std::move(shuttle));
    return NotFound("no route to destination");
  }
  net::Frame frame;
  frame.from = at;
  frame.to = next;
  frame.size_bytes = shuttle.WireSize();
  frame.telemetry = probe;
  // Mirror the attribution keys onto the frame so the fabric can class
  // queue/hop stages and close the flight on in-fabric loss without
  // looking inside the payload.
  frame.lat_class = static_cast<std::uint8_t>(shuttle.header.kind);
  frame.lat_id = shuttle.lat_id;
  frame.payload = std::move(shuttle);
  return fabric_.Send(std::move(frame));
}

void WanderingNetwork::HandleProbe(Ship& at, Shuttle probe,
                                   net::NodeId arrived_from) {
  if (probe_handler_) {
    probe_handler_(at, std::move(probe), arrived_from);
    return;
  }
  stats_.GetCounter("wn.probe_unhandled").Add();
}

void WanderingNetwork::HandleBoundary(Ship& at, Shuttle shuttle,
                                      net::NodeId arrived_from) {
  if (boundary_handler_) {
    boundary_handler_(at, std::move(shuttle), arrived_from);
    return;
  }
  stats_.GetCounter("wn.boundary_unhandled").Add();
}

FunctionId WanderingNetwork::DeployFunction(net::NodeId host,
                                            NetFunction function) {
  if (function.id == 0) function.id = NextFunctionId();
  placements_[function.id] = host;
  placement_roles_[function.id] = function.role;
  ledger_.RecordPlacement(function.id, host, simulator_.now());
  if (Ship* host_ship = ship(host); host_ship != nullptr) {
    host_ship->functions().Install(function);
    (void)host_ship->SwitchRole(function.role,
                                node::SwitchMechanism::kResidentSoftware);
  }
  return function.id;
}

void WanderingNetwork::NotifyFunctionInstalled(net::NodeId host,
                                               const NetFunction& function) {
  placements_[function.id] = host;
  placement_roles_[function.id] = function.role;
  ledger_.RecordPlacement(function.id, host, simulator_.now());
  if (Ship* host_ship = ship(host); host_ship != nullptr) {
    (void)host_ship->SwitchRole(function.role,
                                node::SwitchMechanism::kResidentSoftware);
  }
  stats_.GetCounter("wn.migrations_landed").Add();
}

Status WanderingNetwork::MigrateFunction(FunctionId function, net::NodeId to) {
  const auto placed = placements_.find(function);
  if (placed == placements_.end()) {
    return NotFound("function has no placement");
  }
  const net::NodeId from_node = placed->second;
  if (from_node == to) return OkStatus();
  Ship* from = ship(from_node);
  Ship* target = ship(to);
  if (from == nullptr || target == nullptr) {
    return NotFound("migration endpoint has no ship");
  }
  const NetFunction* fn = from->functions().Find(function);
  if (fn == nullptr) return NotFound("function not resident on host");

  // The function travels as a code shuttle: program image (if any) plus a
  // genome carrying the function descriptor — paying real network cost.
  Shuttle carrier;
  carrier.header.source = from_node;
  carrier.header.destination = to;
  carrier.header.kind = ShuttleKind::kCode;
  ShipBlueprint genome;
  genome.role = fn->role;
  genome.next_step = from->os().next_step();
  genome.functions.push_back(*fn);
  carrier.genome = EncodeBlueprint(genome);
  if (const vm::Program* program = FindPublished(fn->program_digest);
      program != nullptr) {
    carrier.code_image = program->Serialize();
  }
  if (config_.auth_key != 0) {
    carrier.auth_tag = KeyedTag(config_.auth_key, carrier.code_image);
  }

  if (telemetry_.tracing_enabled()) carrier.trace = telemetry_.StartTrace();
  telemetry::SpanScope span(telemetry_, carrier.trace, from_node, "wn",
                            "migrate");
  carrier.trace = span.context();

  from->functions().Remove(function);
  placements_[function] = to;  // provisional; confirmed on install
  ++migrations_executed_;
  stats_.GetCounter("wn.migrations_started").Add();
  trace_.Log(simulator_.now(), sim::TraceLevel::kInfo, "pmp",
             "migrate fn " + std::to_string(function) + " " +
                 std::to_string(from_node) + " -> " + std::to_string(to));
  return Dispatch(from_node, std::move(carrier));
}

void WanderingNetwork::ExecuteMigrations() {
  const auto migrations =
      horizontal_.Decide(placements_, placement_roles_, demand_);
  for (const auto& migration : migrations) {
    (void)MigrateFunction(migration.function, migration.to);
  }
}

void WanderingNetwork::Pulse() {
  telemetry::Profiler::Scope prof(&telemetry_.profiler(), "wn.pulse");
  ++pulses_;
  const sim::TimePoint now = simulator_.now();

  // 1. Fact lifecycle: sweep every ship's store, expire dead functions.
  std::size_t facts_died = 0;
  std::size_t functions_died = 0;
  ForEachShip([&](Ship& s) {
    facts_died += s.facts().Sweep(now);
    functions_died += s.functions().Expire(s.facts());
  });
  stats_.GetCounter("wn.facts_expired").Add(facts_died);
  stats_.GetCounter("wn.functions_expired").Add(functions_died);
  // Drop placements of expired functions.
  for (auto it = placements_.begin(); it != placements_.end();) {
    Ship* host = ship(it->second);
    if (host == nullptr || host->functions().Find(it->first) == nullptr) {
      ledger_.RecordRemoval(it->first, now);
      placement_roles_.erase(it->first);
      it = placements_.erase(it);
    } else {
      ++it;
    }
  }

  // 2. Horizontal wandering (4G: adaptive self-distribution).
  if (config_.enable_horizontal && config_.generation >= 4) {
    ExecuteMigrations();
  }

  // 3. Vertical wandering: spawn overlays from intra-node class activity.
  if (config_.enable_vertical) {
    std::map<net::NodeId, std::map<node::SecondLevelClass, double>> activity;
    ForEachShip([&](Ship& s) {
      for (const auto& [cls, amount] : s.DrainClassActivity()) {
        activity[s.id()][static_cast<node::SecondLevelClass>(cls)] += amount;
      }
    });
    for (const auto& decision : vertical_.Decide(activity)) {
      auto existing = class_overlays_.find(decision.cls);
      if (existing != class_overlays_.end()) {
        continue;  // overlay for this class already spawned
      }
      auto spawned = overlays_.Spawn(
          std::string(node::SecondLevelClassName(decision.cls)),
          decision.members);
      if (spawned.ok()) {
        class_overlays_[decision.cls] = *spawned;
        stats_.GetCounter("wn.overlays_spawned").Add();
      }
    }
  }

  // 4. Network resonance: emergent functions from fact co-occurrence.
  if (config_.enable_resonance) {
    ForEachShip([&](Ship& s) {
      for (FactKey key : s.facts().Keys()) resonance_.Observe(s.id(), key);
    });
    for (const auto& group : resonance_.DetectAndReset()) {
      NetFunction fn;
      fn.id = NextFunctionId();
      fn.name = "resonant-" + std::to_string(fn.id);
      // The emergent role is derived deterministically from the group.
      Digest h = kFnvOffsetBasis;
      for (FactKey key : group) h = HashCombineWord(h, key);
      fn.role = static_cast<node::FirstLevelRole>(
          h % static_cast<std::uint64_t>(node::FirstLevelRole::kRoleCount));
      fn.cls = node::DefaultClassFor(fn.role);
      fn.fact_keys = group;
      const net::NodeId host = demand_.HottestNode(fn.role);
      const net::NodeId target =
          host != net::kInvalidNode && ship(host) != nullptr
              ? host
              : (ship_count_ > 0 ? FirstShipNode() : net::kInvalidNode);
      if (target != net::kInvalidNode) {
        DeployFunction(target, fn);
        ++functions_emerged_;
        stats_.GetCounter("wn.functions_emerged").Add();
      }
    }
  }

  // 5. Feedback/cluster maintenance.
  demand_.Decay();
  clusters_.Decay();
  overlays_.RefreshPaths();

  stats_.GetTimeSeries("wn.role_diversity").Record(now, RoleDiversity());
  // Route-cache effectiveness is deliberately NOT mirrored here: cache
  // temperature is an execution detail (a resumed snapshot starts cold), and
  // this registry is genesis-compared bit-for-bit. Call
  // net::PublishRouteCacheStats(stats(), topology()) at report time instead;
  // the sharded merge layer publishes per-shard gauges itself.
}

void WanderingNetwork::StartPulse(sim::TimePoint until) {
  simulator_.ScheduleAfter(
      config_.pulse_interval,
      [this, until] {
        Pulse();
        if (simulator_.now() + config_.pulse_interval <= until) {
          StartPulse(until);
        }
      },
      "wn.pulse");
}

void WanderingNetwork::MixDigest(Hasher& hasher) const {
  for (std::uint64_t word : rng_.SaveState()) hasher.Mix(word);
  topology_.MixDigest(hasher);
  fabric_.MixDigest(hasher);
  hasher.Mix(static_cast<std::uint64_t>(ship_count_));
  for (const auto& ship : ships_) {
    if (ship) ship->MixDigest(hasher);
  }
  repository_.MixDigest(hasher);
  hasher.Mix(static_cast<std::uint64_t>(placements_.size()));
  for (const auto& [function, host] : placements_) {
    hasher.Mix(function);
    hasher.Mix(host);
  }
  hasher.Mix(static_cast<std::uint64_t>(origins_.size()));
  for (const auto& [digest, origin] : origins_) {
    hasher.Mix(digest);
    hasher.Mix(origin);
  }
  hasher.Mix(next_function_id_);
  hasher.Mix(migrations_executed_);
  hasher.Mix(functions_emerged_);
  hasher.Mix(pulses_);
}

net::NodeId WanderingNetwork::FirstShipNode() const {
  for (net::NodeId n = 0; n < ships_.size(); ++n) {
    if (ships_[n]) return n;
  }
  return net::kInvalidNode;
}

double WanderingNetwork::RoleDiversity() const {
  const auto census = RoleCensus();
  double total = 0.0;
  for (const auto& [role, count] : census) {
    total += static_cast<double>(count);
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (const auto& [role, count] : census) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

std::map<node::FirstLevelRole, std::size_t> WanderingNetwork::RoleCensus()
    const {
  std::map<node::FirstLevelRole, std::size_t> census;
  for (const auto& ship : ships_) {
    if (ship) ++census[ship->os().current_role()];
  }
  return census;
}

}  // namespace viator::wli
