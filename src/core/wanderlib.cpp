#include "core/wanderlib.h"

#include <string>

#include "vm/assembler.h"
#include "vm/verifier.h"

namespace viator::wli::wanderlib {
namespace {

Result<vm::Program> AssembleVerified(std::string_view name,
                                     const std::string& source) {
  auto program = vm::Assemble(name, source);
  if (!program.ok()) return program.status();
  if (auto verified = vm::Verify(*program); !verified.ok()) {
    return verified.status();
  }
  return program;
}

}  // namespace

Result<vm::Program> HeartbeatProbe(std::int64_t fact_key,
                                   std::int64_t reply_flow) {
  const std::string source = R"(
; heartbeat: store backlog fact, reply to source is emulated by send_value
  sys queue_depth
  store 0
  push )" + std::to_string(fact_key) + R"(
  load 0
  push 100          ; weight 1.00
  sys put_fact
  pop
; reply: send_value(dst=payload[0] carries the probe origin, tag, value)
  push 0
  sys payload       ; origin node id rides in payload[0]
  push )" + std::to_string(reply_flow) + R"(
  load 0
  sys send_value
  sys emit
  halt
)";
  return AssembleVerified("wanderlib.heartbeat", source);
}

Result<vm::Program> FactPlanter() {
  // locals: 0 = index, 1 = size, 2 = key, 3 = value
  const std::string source = R"(
  sys payload_size
  store 1
loop:
  load 0
  load 1
  lt
  jz done
  load 0
  sys payload
  store 2
  load 0
  push 1
  add
  sys payload
  store 3
  load 2
  load 3
  push 200          ; weight 2.00
  sys put_fact
  pop
  load 0
  push 2
  add
  store 0
  jmp loop
done:
  halt
)";
  return AssembleVerified("wanderlib.fact-planter", source);
}

Result<vm::Program> RoleBalancer(std::int64_t threshold_bytes) {
  // Role indices mirror node::FirstLevelRole: 0 fusion, 2 caching.
  const std::string source = R"(
  sys queue_depth
  push )" + std::to_string(threshold_bytes) + R"(
  gt
  jz calm
  push 0            ; FirstLevelRole::kFusion
  sys request_role
  sys emit
  halt
calm:
  push 2            ; FirstLevelRole::kCaching
  sys request_role
  sys emit
  halt
)";
  return AssembleVerified("wanderlib.role-balancer", source);
}

Result<vm::Program> PayloadChecksum(std::int64_t fact_key) {
  // locals: 0 = index, 1 = size, 2 = accumulator.
  // fold: acc = acc * 31 + word, through a subroutine (call/ret showcase).
  const std::string source = R"(
  sys payload_size
  store 1
  push 7
  store 2
loop:
  load 0
  load 1
  lt
  jz done
  call fold
  load 0
  push 1
  add
  store 0
  jmp loop
done:
  load 2
  sys emit
  pop
  push )" + std::to_string(fact_key) + R"(
  load 2
  push 100
  sys put_fact
  halt
fold:
  load 2
  push 31
  mul
  load 0
  sys payload
  add
  store 2
  ret
)";
  return AssembleVerified("wanderlib.checksum", source);
}

Result<vm::Program> NeighborCensus(std::int64_t fact_key) {
  // locals: 0 = loop index (counts down), 1 = neighbor id
  const std::string source = R"(
  sys neighbor_count
  store 0
  push )" + std::to_string(fact_key) + R"(
  sys neighbor_count
  push 150          ; weight 1.50
  sys put_fact
  pop
spread:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  load 0
  sys neighbor
  sys replicate     ; no-op unless riding a jet with budget
  pop
  jmp spread
done:
  halt
)";
  return AssembleVerified("wanderlib.neighbor-census", source);
}

}  // namespace viator::wli::wanderlib
