// Self-Reference Principle (SRP).
//
// Definition 2 requires that (1) each ship knows and honestly displays its
// own architecture — "ships are required to be fair and cooperative w.r.t.
// the information they display to the external world; otherwise they [are]
// excluded from the community"; (2) ships live, die and organize themselves
// into clusters through feedback; (3) ships can aggregate into joint
// architectures.
//
// SelfDescription is what a ship displays; ReputationSystem scores fairness
// from verified interactions and excludes cheaters; ClusterManager groups
// ships by observed co-activity (a feedback mechanism), yielding temporary
// aggregations.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "base/hash.h"
#include "net/types.h"
#include "node/profile.h"

namespace viator::wli {

/// What a ship advertises about itself (Def. 2(1)). The `descriptor_digest`
/// commits to the full blueprint so peers can audit honesty: a ship whose
/// actual genome hash differs from its advertised one is unfair.
struct SelfDescription {
  net::NodeId ship = net::kInvalidNode;
  node::ShipClass ship_class = node::ShipClass::kServer;
  node::FirstLevelRole role = node::FirstLevelRole::kCaching;
  std::uint32_t ee_count = 0;
  std::uint64_t fact_count = 0;
  Digest descriptor_digest = 0;
};

struct ReputationConfig {
  double initial_score = 0.5;
  double alpha = 0.15;             // EWMA step per interaction report
  double exclusion_threshold = 0.2;
  double readmission_threshold = 0.35;  // hysteresis for re-entry
};

/// Community-wide fairness scoring. One instance per Wandering Network;
/// ships report audit outcomes, the community excludes ships whose score
/// falls below threshold (and readmits above the hysteresis bound).
class ReputationSystem {
 public:
  explicit ReputationSystem(const ReputationConfig& config = {})
      : config_(config) {}

  /// Records an audited interaction with `subject` (fair or unfair).
  void ReportInteraction(net::NodeId subject, bool fair);

  double ScoreOf(net::NodeId subject) const;
  bool IsExcluded(net::NodeId subject) const;

  std::size_t excluded_count() const;
  std::uint64_t reports() const { return reports_; }

  struct Entry {
    double score;
    bool excluded = false;
  };

  // ---- Snapshot/restore support (genesis) ----
  const std::map<net::NodeId, Entry>& entries() const { return entries_; }
  void RestoreState(std::map<net::NodeId, Entry> entries,
                    std::uint64_t reports) {
    entries_ = std::move(entries);
    reports_ = reports;
  }

 private:
  ReputationConfig config_;
  std::map<net::NodeId, Entry> entries_;
  std::uint64_t reports_ = 0;
};

/// Co-activity clustering (Def. 2(2)): ships that repeatedly exchange
/// shuttles accumulate pairwise affinity; clusters are the connected
/// components of the affinity graph above a threshold. Affinities decay so
/// clusters are *temporary* aggregations, as the paper requires.
class ClusterManager {
 public:
  explicit ClusterManager(double decay = 0.9) : decay_(decay) {}

  /// Records one interaction between two ships (order-insensitive).
  void ObserveInteraction(net::NodeId a, net::NodeId b, double strength = 1.0);

  /// Applies one decay step to all affinities (called per pulse).
  void Decay();

  /// Connected components over edges with affinity >= threshold. Singleton
  /// components are omitted. Components and members are sorted for
  /// determinism.
  std::vector<std::vector<net::NodeId>> Clusters(double threshold) const;

  double AffinityBetween(net::NodeId a, net::NodeId b) const;

  using Pair = std::pair<net::NodeId, net::NodeId>;

  // ---- Snapshot/restore support (genesis) ----
  const std::map<Pair, double>& affinities() const { return affinity_; }
  void RestoreState(std::map<Pair, double> affinities) {
    affinity_ = std::move(affinities);
  }

 private:
  static Pair Canonical(net::NodeId a, net::NodeId b) {
    return a < b ? Pair{a, b} : Pair{b, a};
  }
  double decay_;
  std::map<Pair, double> affinity_;
};

}  // namespace viator::wli
