// Pulsating Metamorphosis Principle (PMP) policy engines.
//
// Def. 3 distinguishes horizontal (inter-node) and vertical (intra-node)
// movement of network functionality. These classes are the *policies* —
// pure, deterministic decision logic driven by demand and fact statistics;
// the WanderingNetwork executes their decisions with real shuttles on each
// metamorphosis pulse. Network resonance (Def. 3(4)) — functions emerging
// "on their own by getting in touch with other net functions, facts, user
// interactions or other transmitted information" — is detected from fact
// co-occurrence across ships.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/facts.h"
#include "core/knowledge.h"
#include "net/types.h"
#include "node/profile.h"
#include "sim/time.h"

namespace viator::wli {

/// Demand statistics per (node, first-level role), decayed each pulse so the
/// wanderer follows *current* load (the Figure-3 hotspot moving over time).
class DemandTracker {
 public:
  explicit DemandTracker(double decay = 0.7) : decay_(decay) {}

  void Record(net::NodeId node, node::FirstLevelRole role, double amount);
  void Decay();

  double DemandAt(net::NodeId node, node::FirstLevelRole role) const;

  /// Node with the highest demand for `role` (kInvalidNode when none).
  net::NodeId HottestNode(node::FirstLevelRole role) const;

  /// Aggregate demand for `role` across all nodes.
  double TotalDemand(node::FirstLevelRole role) const;

  using Key = std::pair<net::NodeId, node::FirstLevelRole>;

  // ---- Snapshot/restore support (genesis) ----
  const std::map<Key, double>& demand() const { return demand_; }
  void RestoreState(std::map<Key, double> demand) {
    demand_ = std::move(demand);
  }

 private:
  double decay_;
  std::map<Key, double> demand_;
};

/// Horizontal (inter-node) wandering policy: move a function from its host
/// toward the demand hotspot when the hotspot's demand exceeds the host's
/// by the hysteresis factor. "Functions can change their hosts, wander and
/// settle down in other hosts."
class HorizontalWanderer {
 public:
  struct Config {
    double hysteresis = 1.5;     // hotspot must beat host by this factor
    double min_demand = 1.0;     // below this nothing moves
  };

  HorizontalWanderer() : HorizontalWanderer(Config()) {}
  explicit HorizontalWanderer(const Config& config) : config_(config) {}

  struct Migration {
    FunctionId function = 0;
    net::NodeId from = net::kInvalidNode;
    net::NodeId to = net::kInvalidNode;
  };

  /// Placement: function id -> current host.
  std::vector<Migration> Decide(
      const std::map<FunctionId, net::NodeId>& placement,
      const std::map<FunctionId, node::FirstLevelRole>& roles,
      const DemandTracker& demand) const;

 private:
  Config config_;
};

/// Vertical (intra-node) wandering policy: decide which overlay networks to
/// spawn from per-node, per-class activity (Figure 4's clustering/spawning).
class VerticalWanderer {
 public:
  struct Config {
    double spawn_threshold = 5.0;  // class activity needed to spawn
    std::size_t min_members = 2;
  };

  VerticalWanderer() : VerticalWanderer(Config()) {}
  explicit VerticalWanderer(const Config& config) : config_(config) {}

  struct SpawnDecision {
    node::SecondLevelClass cls = node::SecondLevelClass::kSupplementary;
    std::vector<net::NodeId> members;
  };

  /// `activity[node][class]` = recent invocations of that class at node.
  std::vector<SpawnDecision> Decide(
      const std::map<net::NodeId,
                     std::map<node::SecondLevelClass, double>>& activity)
      const;

 private:
  Config config_;
};

/// Network resonance: fact keys that co-occur on many ships within a window
/// indicate an emergent correlation worth instantiating as a net function.
class ResonanceDetector {
 public:
  struct Config {
    std::size_t min_support = 3;   // ships that must hold both facts
    double min_jaccard = 0.5;      // |both| / |either|
  };

  ResonanceDetector() : ResonanceDetector(Config()) {}
  explicit ResonanceDetector(const Config& config) : config_(config) {}

  /// Observes that `ship` currently holds `key` (fed once per pulse).
  void Observe(net::NodeId ship, FactKey key);

  /// Resonant groups: maximal merged sets of fact keys whose pairwise
  /// co-occurrence meets the thresholds. Clears observations afterwards
  /// (each pulse sees a fresh window).
  std::vector<std::vector<FactKey>> DetectAndReset();

 private:
  Config config_;
  std::map<FactKey, std::set<net::NodeId>> holders_;
};

}  // namespace viator::wli
