// The Wandering Network orchestrator — the top-level public API.
//
// Owns the ships, the code origin store, the principle engines (DCP
// morphing, SRP reputation/clustering, MFP feedback bus, PMP wanderers and
// resonance), the overlay manager and the metamorphosis pulse. Transport is
// delegated to net::Fabric over the caller's Topology; shuttles are routed
// hop-by-hop along shortest paths unless a routing service overrides the
// next-hop choice.
//
// Definition 1 in one type: a closed set of ship productions whose
// composition/decomposition at all functional levels (Pulse()) recursively
// re-constitutes the system and specifies its own extension.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "base/hash.h"
#include "base/rng.h"
#include "base/status.h"
#include "core/dcp.h"
#include "core/knowledge.h"
#include "core/ledger.h"
#include "core/mfp.h"
#include "core/overlay.h"
#include "core/pmp.h"
#include "core/ship.h"
#include "core/shuttle.h"
#include "core/shuttle_pool.h"
#include "core/srp.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "telemetry/latency_plane.h"
#include "telemetry/telemetry.h"
#include "vm/code_repository.h"

namespace viator::wli {

struct WnConfig {
  /// Wandering Network generation (1..4, §B). Gates node capabilities and
  /// which pulse mechanisms run (4G enables self-distribution/replication).
  int generation = 4;

  node::ResourceQuota quota;
  FactStoreConfig fact_config;

  /// Metamorphosis cadence: one pulse = sweep facts, expire functions,
  /// horizontal + vertical wandering, resonance detection.
  sim::Duration pulse_interval = 500 * sim::kMillisecond;

  bool enable_horizontal = true;
  bool enable_vertical = true;
  bool enable_resonance = true;

  HorizontalWanderer::Config horizontal;
  VerticalWanderer::Config vertical;
  ResonanceDetector::Config resonance;
  ReputationConfig reputation;

  /// Shared capsule-authorization key; 0 disables authorization checks.
  std::uint64_t auth_key = 0;

  /// Upper bound the security class clamps jet replication budgets to.
  std::uint32_t jet_budget_cap = 16;

  /// Wandering Observatory switches (both off by default: zero-cost).
  telemetry::TelemetryConfig telemetry;
};

class WanderingNetwork {
 public:
  /// Borrows the simulator and topology (must outlive the network). `seed`
  /// drives every stochastic choice in this network instance.
  WanderingNetwork(sim::Simulator& simulator, net::Topology& topology,
                   const WnConfig& config, std::uint64_t seed);

  WanderingNetwork(const WanderingNetwork&) = delete;
  WanderingNetwork& operator=(const WanderingNetwork&) = delete;

  // ---- Population ----

  /// Creates the ship living on physical node `node`.
  Ship& AddShip(net::NodeId node,
                node::ShipClass ship_class = node::ShipClass::kServer);

  /// Creates one server ship per topology node.
  void PopulateAllNodes();

  Ship* ship(net::NodeId node);
  const Ship* ship(net::NodeId node) const;
  std::size_t ship_count() const { return ship_count_; }
  /// Iterates ships in node order.
  void ForEachShip(const std::function<void(Ship&)>& fn);

  // ---- Code distribution ----

  /// Verifies and stores a program at the network origin `origin` (the
  /// publisher node demand-loading requests are sent to).
  Result<Digest> PublishProgram(const vm::Program& program,
                                net::NodeId origin);
  const vm::Program* FindPublished(Digest digest) const;
  net::NodeId OriginOf(Digest digest) const;

  // ---- Transport ----

  /// Injects a shuttle at its header source and routes it to destination.
  Status Inject(Shuttle shuttle);

  /// Routes `shuttle` one hop onward from `at` (used by ships; exposed for
  /// routing services that precomputed the next hop themselves).
  Status Dispatch(net::NodeId at, Shuttle shuttle);

  /// Routing override: services may install a next-hop chooser; return
  /// kInvalidNode to fall back to shortest path, or `at` itself to signal
  /// that the chooser absorbed the shuttle (buffered it for later).
  using NextHopChooser =
      std::function<net::NodeId(net::NodeId at, const Shuttle&)>;
  void SetNextHopChooser(NextHopChooser chooser) {
    next_hop_chooser_ = std::move(chooser);
  }

  /// Health-plane hook: every kProbe shuttle arriving at a ship is handed to
  /// this handler *before* any workload processing (TTL, feedback, counters),
  /// so probes observe ships without perturbing them. Unhandled probes are
  /// dropped and counted.
  using ProbeHandler = std::function<void(Ship& at, Shuttle probe,
                                          net::NodeId arrived_from)>;
  void SetProbeHandler(ProbeHandler handler) {
    probe_handler_ = std::move(handler);
  }
  /// Called by ships on probe arrival (internal plumbing).
  void HandleProbe(Ship& at, Shuttle probe, net::NodeId arrived_from);

  /// Sharding hook: a shuttle that reaches its shard-local destination while
  /// still carrying a transit_destination is a cross-shard capsule at its
  /// exit gateway. It is handed to this handler *instead of* being consumed,
  /// so the sharding layer (src/shard) can carry it over the cross-shard
  /// link into the neighbouring shard's network. Without a handler such
  /// shuttles are dropped and counted (wn.boundary_unhandled) — a plain
  /// single-network run never produces them.
  using BoundaryHandler = std::function<void(Ship& at, Shuttle shuttle,
                                             net::NodeId arrived_from)>;
  void SetBoundaryHandler(BoundaryHandler handler) {
    boundary_handler_ = std::move(handler);
  }
  /// Called by ships when a transit shuttle lands on its gateway (internal
  /// plumbing, same shape as HandleProbe).
  void HandleBoundary(Ship& at, Shuttle shuttle, net::NodeId arrived_from);

  // ---- Function deployment and wandering ----

  /// Installs `function` on `host` and registers its placement. Returns the
  /// (possibly newly assigned) function id.
  FunctionId DeployFunction(net::NodeId host, NetFunction function);

  const std::map<FunctionId, net::NodeId>& placements() const {
    return placements_;
  }

  /// Called by ships when a migrated function finishes installing.
  void NotifyFunctionInstalled(net::NodeId host, const NetFunction& function);

  /// Moves one function to a new host by shipping its code and genome as a
  /// real code shuttle (it pays transfer bytes and latency; placement is
  /// updated when the shuttle lands). Used by the horizontal wanderer and
  /// by nomadic services (Delegation).
  Status MigrateFunction(FunctionId function, net::NodeId to);

  /// One metamorphosis cycle (also runs on the periodic pulse timer).
  void Pulse();

  /// Starts the periodic pulse until `until`.
  void StartPulse(sim::TimePoint until);

  /// Mixes the whole network state — RNG streams, fabric accounting,
  /// topology structure, every ship (node order), placements, repository
  /// contents and orchestrator counters — into a rolling state digest
  /// (flight-recorder hook). Deliberately excludes the simulator clock,
  /// dispatch count and the stats registry so that runs differing only in
  /// observation probes stay comparable.
  void MixDigest(Hasher& hasher) const;

  // ---- Figure-1 metrics ----

  /// Shannon entropy (bits) of the ship-role distribution.
  double RoleDiversity() const;
  std::map<node::FirstLevelRole, std::size_t> RoleCensus() const;

  std::uint64_t migrations_executed() const { return migrations_executed_; }
  std::uint64_t functions_emerged() const { return functions_emerged_; }
  std::uint64_t pulses() const { return pulses_; }

  // ---- Infrastructure access ----

  sim::Simulator& simulator() { return simulator_; }
  net::Topology& topology() { return topology_; }
  net::Fabric& fabric() { return fabric_; }
  sim::StatsRegistry& stats() { return stats_; }
  sim::TraceSink& trace() { return trace_; }
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }
  MorphingEngine& morphing() { return morphing_; }
  FeedbackBus& feedback() { return feedback_; }
  ReputationSystem& reputation() { return reputation_; }
  ClusterManager& clusters() { return clusters_; }
  OverlayManager& overlays() { return overlays_; }
  DemandTracker& demand() { return demand_; }
  FunctionUsageLedger& ledger() { return ledger_; }
  const FunctionUsageLedger& ledger() const { return ledger_; }
  const WnConfig& config() const { return config_; }
  /// Free-list of shuttle shells: ships release consumed shuttles here and
  /// hot senders acquire from it, recycling section-buffer capacity.
  ShuttlePool& shuttle_pool() { return shuttle_pool_; }
  const ShuttlePool& shuttle_pool() const { return shuttle_pool_; }
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }
  /// Latency-plane state for this network: lifecycle sketches and the
  /// in-flight side table (telemetry/latency_plane.h). Single-writer: only
  /// the thread currently running this network (shard worker in a window,
  /// barrier thread between windows) may touch it.
  telemetry::lat::Lane& lat_lane() { return lat_lane_; }
  const telemetry::lat::Lane& lat_lane() const { return lat_lane_; }
  FunctionId NextFunctionId() { return next_function_id_++; }
  FunctionId next_function_id() const { return next_function_id_; }

  // ---- Genesis (whole-network snapshot/restore) support ----

  vm::CodeRepository& repository() { return repository_; }
  const vm::CodeRepository& repository() const { return repository_; }
  const std::map<Digest, net::NodeId>& origins() const { return origins_; }
  const std::map<FunctionId, node::FirstLevelRole>& placement_roles() const {
    return placement_roles_;
  }
  const std::map<node::SecondLevelClass, OverlayId>& class_overlays() const {
    return class_overlays_;
  }

  /// Raw placement restore: records where a function lives without the
  /// deploy side effects (ledger episode, role switch) — those are restored
  /// from their own snapshot sections.
  void RestorePlacement(FunctionId function, net::NodeId host,
                        node::FirstLevelRole role) {
    placements_[function] = host;
    placement_roles_[function] = role;
  }
  void RestoreOrigin(Digest digest, net::NodeId origin) {
    origins_[digest] = origin;
  }
  void RestoreClassOverlay(node::SecondLevelClass cls, OverlayId overlay) {
    class_overlays_[cls] = overlay;
  }
  void RestoreCounters(std::uint64_t migrations, std::uint64_t emerged,
                       std::uint64_t pulse_count, FunctionId next_function) {
    migrations_executed_ = migrations;
    functions_emerged_ = emerged;
    pulses_ = pulse_count;
    next_function_id_ = next_function;
  }

 private:
  void ExecuteMigrations();
  net::NodeId FirstShipNode() const;

  sim::Simulator& simulator_;
  net::Topology& topology_;
  WnConfig config_;
  Rng rng_;
  sim::StatsRegistry stats_;
  sim::TraceSink trace_;
  telemetry::Telemetry telemetry_;
  telemetry::lat::Lane lat_lane_;
  net::Fabric fabric_;
  // Per-dispatch counters resolved once — Dispatch() is the hottest path in
  // the system and registry name lookups would tax every shuttle hop.
  sim::Counter& shuttles_injected_;
  sim::Counter& excluded_dropped_;
  sim::Counter& router_absorbed_;
  sim::Counter& unroutable_;

  std::vector<std::unique_ptr<Ship>> ships_;  // indexed by NodeId
  std::size_t ship_count_ = 0;
  ShuttlePool shuttle_pool_;

  vm::CodeRepository repository_;
  std::map<Digest, net::NodeId> origins_;

  MorphingEngine morphing_;
  FeedbackBus feedback_;
  ReputationSystem reputation_;
  ClusterManager clusters_;
  OverlayManager overlays_;
  DemandTracker demand_;
  FunctionUsageLedger ledger_;
  HorizontalWanderer horizontal_;
  VerticalWanderer vertical_;
  ResonanceDetector resonance_;

  std::map<FunctionId, net::NodeId> placements_;
  std::map<FunctionId, node::FirstLevelRole> placement_roles_;
  std::map<node::SecondLevelClass, OverlayId> class_overlays_;

  NextHopChooser next_hop_chooser_;
  ProbeHandler probe_handler_;
  BoundaryHandler boundary_handler_;

  FunctionId next_function_id_ = 1;
  std::uint64_t migrations_executed_ = 0;
  std::uint64_t functions_emerged_ = 0;
  std::uint64_t pulses_ = 0;
};

}  // namespace viator::wli
