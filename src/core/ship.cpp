#include "core/ship.h"

#include <algorithm>

#include "core/wandering_network.h"
#include "telemetry/latency_plane.h"
#include "telemetry/telemetry.h"
#include "vm/assembler.h"

namespace viator::wli {

Ship::Ship(WanderingNetwork& network, net::NodeId id,
           node::ShipClass ship_class, const node::ResourceQuota& quota,
           const node::Capabilities& caps, Rng rng)
    : network_(network),
      id_(id),
      class_(ship_class),
      os_(quota, caps),
      facts_(network.config().fact_config),
      rng_(rng) {}

void Ship::SetRoleHandler(node::FirstLevelRole role, NativeHandler handler) {
  role_handlers_[static_cast<std::size_t>(role)] = std::move(handler);
}

bool Ship::HasRoleHandler(node::FirstLevelRole role) const {
  return static_cast<bool>(role_handlers_[static_cast<std::size_t>(role)]);
}

Status Ship::SendShuttle(Shuttle shuttle) {
  if (shuttle.header.source == net::kInvalidNode) {
    shuttle.header.source = id_;
  }
  return network_.Dispatch(id_, std::move(shuttle));
}

void Ship::Receive(Shuttle shuttle, net::NodeId arrived_from) {
  // Health probes are measurement, not workload: they are handed to the
  // probe plane before TTL accounting, per-message feedback, counters or
  // consumption, so a probed ship behaves exactly like an unprobed one.
  if (shuttle.header.kind == ShuttleKind::kProbe) [[unlikely]] {
    // A probe's first waypoint closes its delivery clock (injection → first
    // intercept); the itinerary's later hops re-close as no-ops.
    VIATOR_LAT_DELIVERED(&network_.lat_lane(), shuttle,
                         network_.simulator().now());
    network_.HandleProbe(*this, std::move(shuttle), arrived_from);
    return;
  }
  if (shuttle.header.destination != id_) {
    // Transit: decrement TTL and forward. Ships "could do some processing"
    // on transit shuttles too; the per-message feedback dimension observes
    // every forwarded message.
    if (shuttle.header.ttl == 0) {
      network_.stats().GetCounter("wn.ttl_expired").Add();
      VIATOR_LAT_DROP(&network_.lat_lane(), shuttle,
                      network_.simulator().now());
      network_.shuttle_pool().Release(std::move(shuttle));
      return;
    }
    --shuttle.header.ttl;
    ++shuttles_forwarded_;
    // Causal hop: the next hop's span becomes a child of this forward.
    telemetry::SpanScope span(network_.telemetry(), shuttle.trace, id_,
                              "ship", "forward");
    shuttle.trace = span.context();
    network_.feedback().Publish(
        FeedbackSignal{FeedbackDimension::kPerMessage, id_,
                       shuttle.header.flow_id, 1.0,
                       network_.simulator().now()});
    (void)network_.Dispatch(id_, std::move(shuttle));
    return;
  }
  if (shuttle.in_transit()) [[unlikely]] {
    // This ship is only the shard-exit gateway: the capsule's journey
    // continues in another topology shard. Hand it to the sharding layer
    // instead of consuming it.
    network_.HandleBoundary(*this, std::move(shuttle), arrived_from);
    return;
  }
  Consume(shuttle, arrived_from);
  // The shuttle dies here: recycle its shell (buffer capacity) for the next
  // sender instead of freeing it.
  network_.shuttle_pool().Release(std::move(shuttle));
}

void Ship::Consume(const Shuttle& shuttle, net::NodeId arrived_from) {
  telemetry::Profiler::Scope prof(&network_.telemetry().profiler(),
                                  "ship.consume");
  // DCP dock: the shuttle morphs to this ship class's interface; the ship's
  // congruence tracker simultaneously learns the traffic structure.
  Shuttle docked = shuttle;
  // All work this delivery causes (handlers, services, replies) becomes a
  // child of the consume span.
  telemetry::SpanScope span(network_.telemetry(), docked.trace, id_, "ship",
                            "consume");
  docked.trace = span.context();
  // Exec stage opens at consumption entry: for shuttles that park awaiting
  // a code fetch, OnExecDone later measures the whole fetch wait.
  VIATOR_LAT_EXEC_ENTER(&network_.lat_lane(), docked,
                        network_.simulator().now());
  const MorphOutcome morph = network_.morphing().MorphForDock(docked);
  if (!morph.success) {
    network_.stats().GetCounter("wn.dock_rejected").Add();
    VIATOR_LAT_DROP(&network_.lat_lane(), docked, network_.simulator().now());
    return;
  }
  if (!morph.already_matched) {
    network_.stats().GetCounter("wn.morphs").Add();
    network_.stats()
        .GetHistogram("wn.morph_latency_ns")
        .Record(static_cast<double>(morph.latency));
  }
  congruence_.Observe(docked.header.interface_id);

  ++shuttles_consumed_;
  network_.clusters().ObserveInteraction(id_, docked.header.source);
  network_.demand().Record(id_, os_.current_role(), 1.0);

  switch (docked.header.kind) {
    case ShuttleKind::kData: {
      if (docked.code_digest != 0) {
        const vm::Program* program = os_.code_cache().Get(docked.code_digest);
        if (program == nullptr) {
          // Demand code loading: park the shuttle, fetch from the origin.
          ++code_misses_;
          if (os_.resources().AcquirePendingSlot().ok()) {
            waiting_for_code_[docked.code_digest].push_back(docked);
            const net::NodeId origin = network_.OriginOf(docked.code_digest);
            if (origin != net::kInvalidNode && origin != id_) {
              Shuttle request =
                  Shuttle::CodeRequest(id_, origin, docked.code_digest);
              request.trace = docked.trace;
              (void)SendShuttle(std::move(request));
            }
          } else {
            network_.stats().GetCounter("wn.pending_overflow").Add();
            // No pending slot: the shuttle is discarded, not parked.
            VIATOR_LAT_DROP(&network_.lat_lane(), docked,
                            network_.simulator().now());
          }
          return;  // sink runs when the parked shuttle finally executes
        }
        ExecuteShuttleCode(docked, *program);
      } else {
        const auto& handler =
            role_handlers_[static_cast<std::size_t>(os_.current_role())];
        if (handler) handler(*this, docked);
      }
      // Usage statistics (paper §E): every data shuttle served by the
      // active role counts as one use of the functions filling it.
      for (const NetFunction* fn :
           functions_.ForRole(os_.current_role())) {
        network_.ledger().RecordUse(fn->id);
      }
      break;
    }
    case ShuttleKind::kCode:
      HandleCodeShuttle(docked);
      break;
    case ShuttleKind::kCodeRequest:
      HandleCodeRequest(docked);
      break;
    case ShuttleKind::kCodeReply:
      HandleCodeReply(docked);
      break;
    case ShuttleKind::kKnowledge:
      HandleKnowledge(docked);
      break;
    case ShuttleKind::kJet:
      HandleJet(docked);
      break;
    case ShuttleKind::kControl:
      if (control_handler_) control_handler_(*this, docked);
      break;
    case ShuttleKind::kProbe:  // intercepted at the top of Receive()
    case ShuttleKind::kKindCount:
      break;
  }

  // End-to-end delivery closes here (parked shuttles close later, in
  // ReleaseWaiters, so their delivery time includes the code-fetch wait).
  VIATOR_LAT_DELIVERED(&network_.lat_lane(), docked,
                       network_.simulator().now());
  if (delivery_sink_) delivery_sink_(*this, docked);
  (void)arrived_from;
}

void Ship::ExecuteShuttleCode(const Shuttle& shuttle,
                              const vm::Program& program) {
  telemetry::Profiler::Scope prof(&network_.telemetry().profiler(),
                                  "ee.execute");
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, id_, "ee",
                            "execute");
  auto& ee = os_.GetOrCreateEe(node::DefaultClassFor(os_.current_role()));
  current_shuttle_ = &shuttle;
  last_emissions_.clear();
  auto result = ee.Execute(program, *this, os_.resources());
  current_shuttle_ = nullptr;
  ++code_executions_;
  VIATOR_LAT_EXEC_DONE(
      &network_.lat_lane(), shuttle, network_.simulator().now(),
      static_cast<std::uint8_t>(os_.current_role()));
  class_activity_[static_cast<int>(ee.function_class())] += 1.0;
  if (!result.ok()) {
    network_.stats().GetCounter("wn.exec_rejected").Add();
    return;
  }
  if (result->reason == vm::ExitReason::kFault) {
    network_.stats().GetCounter("wn.exec_faults").Add();
    // Faulting code is evidence of an unfair/broken source ship.
    network_.reputation().ReportInteraction(shuttle.header.source, false);
  } else if (result->reason == vm::ExitReason::kOutOfFuel) {
    network_.stats().GetCounter("wn.exec_out_of_fuel").Add();
  }
  network_.stats()
      .GetHistogram("wn.exec_fuel")
      .Record(static_cast<double>(result->fuel_used));
}

void Ship::HandleCodeShuttle(const Shuttle& shuttle) {
  // Capsule authorization: with a community key configured, unsigned or
  // mis-signed code is refused and the sender reported. The tag covers the
  // code image (possibly empty for genome-only carriers).
  const std::uint64_t key = network_.config().auth_key;
  if (key != 0) {
    const std::uint64_t expected = KeyedTag(key, shuttle.code_image);
    if (shuttle.auth_tag != expected) {
      network_.stats().GetCounter("wn.code_unauthorized").Add();
      network_.reputation().ReportInteraction(shuttle.header.source, false);
      return;
    }
  }
  // Genome-only carriers (native functions migrating) have no code image.
  if (!shuttle.code_image.empty()) {
    auto program = vm::Program::Deserialize(shuttle.code_image);
    if (!program.ok()) {
      network_.stats().GetCounter("wn.code_malformed").Add();
      network_.reputation().ReportInteraction(shuttle.header.source, false);
      return;
    }
    auto admitted = os_.AdmitProgram(*program);
    if (!admitted.ok()) {
      network_.stats().GetCounter("wn.code_rejected").Add();
      return;
    }
    network_.stats().GetCounter("wn.code_installed").Add();
    ReleaseWaiters(*admitted);
  }

  // A code shuttle may carry a function genome: install it and take the
  // role over (this is how horizontal wandering lands).
  if (!shuttle.genome.empty()) {
    auto blueprint = DecodeBlueprint(shuttle.genome);
    if (blueprint.ok()) {
      (void)ApplyBlueprint(*blueprint);
      for (const NetFunction& fn : blueprint->functions) {
        network_.NotifyFunctionInstalled(id_, fn);
      }
    }
  }
}

void Ship::HandleCodeRequest(const Shuttle& shuttle) {
  const Digest digest = shuttle.code_digest;
  const vm::Program* program = os_.code_cache().Get(digest);
  if (program == nullptr) program = network_.FindPublished(digest);
  if (program == nullptr) {
    network_.stats().GetCounter("wn.code_request_miss").Add();
    return;
  }
  telemetry::SpanScope span(network_.telemetry(), shuttle.trace, id_, "ship",
                            "code_reply");
  Shuttle reply;
  reply.header.source = id_;
  reply.header.destination = shuttle.header.source;
  reply.header.kind = ShuttleKind::kCodeReply;
  reply.code_digest = digest;
  reply.code_image = program->Serialize();
  reply.trace = span.context();
  const std::uint64_t key = network_.config().auth_key;
  if (key != 0) reply.auth_tag = KeyedTag(key, reply.code_image);
  (void)SendShuttle(std::move(reply));
}

void Ship::HandleCodeReply(const Shuttle& shuttle) {
  auto program = vm::Program::Deserialize(shuttle.code_image);
  if (!program.ok()) return;
  const std::uint64_t key = network_.config().auth_key;
  if (key != 0 &&
      shuttle.auth_tag != KeyedTag(key, shuttle.code_image)) {
    network_.stats().GetCounter("wn.code_unauthorized").Add();
    return;
  }
  if (!os_.AdmitProgram(*program).ok()) return;
  ReleaseWaiters(program->digest());
}

void Ship::ReleaseWaiters(Digest digest) {
  const auto it = waiting_for_code_.find(digest);
  if (it == waiting_for_code_.end()) return;
  std::vector<Shuttle> parked = std::move(it->second);
  waiting_for_code_.erase(it);
  const vm::Program* program = os_.code_cache().Get(digest);
  for (const Shuttle& shuttle : parked) {
    os_.resources().ReleasePendingSlot();
    if (program != nullptr) {
      ExecuteShuttleCode(shuttle, *program);
      VIATOR_LAT_DELIVERED(&network_.lat_lane(), shuttle,
                           network_.simulator().now());
      if (delivery_sink_) delivery_sink_(*this, shuttle);
    } else {
      VIATOR_LAT_DROP(&network_.lat_lane(), shuttle,
                      network_.simulator().now());
    }
  }
}

void Ship::HandleKnowledge(const Shuttle& shuttle) {
  auto kq = DecodeKnowledgeQuantum(shuttle.genome);
  if (!kq.ok()) {
    network_.stats().GetCounter("wn.kq_malformed").Add();
    return;
  }
  const sim::TimePoint now = network_.simulator().now();
  for (const FactSnapshot& fact : kq->facts) {
    facts_.Touch(fact.key, fact.value, fact.weight, now);
  }
  // payload[0] == 1 requests installing the carried function here.
  if (!shuttle.payload.empty() && shuttle.payload[0] == 1) {
    functions_.Install(kq->function);
    network_.NotifyFunctionInstalled(id_, kq->function);
  }
  network_.stats().GetCounter("wn.kq_absorbed").Add();
}

void Ship::HandleJet(Shuttle shuttle) {
  if (!os_.capabilities().self_replicating) {
    network_.stats().GetCounter("wn.jet_refused").Add();
    return;
  }
  // Security class clamps the replication budget (runaway containment).
  shuttle.replication_budget =
      std::min(shuttle.replication_budget, network_.config().jet_budget_cap);
  if (shuttle.code_digest != 0) {
    const vm::Program* program = os_.code_cache().Get(shuttle.code_digest);
    if (program == nullptr && !shuttle.code_image.empty()) {
      auto inline_program = vm::Program::Deserialize(shuttle.code_image);
      if (inline_program.ok() && os_.AdmitProgram(*inline_program).ok()) {
        program = os_.code_cache().Get(shuttle.code_digest);
      }
    }
    if (program != nullptr) {
      ExecuteShuttleCode(shuttle, *program);
    } else {
      network_.stats().GetCounter("wn.jet_code_missing").Add();
    }
  }
}

Status Ship::SwitchRole(node::FirstLevelRole role,
                        node::SwitchMechanism mechanism) {
  auto latency = os_.RequestRoleSwitch(role, mechanism);
  if (!latency.ok()) return latency.status();
  network_.stats()
      .GetHistogram("wn.role_switch_ns")
      .Record(static_cast<double>(*latency));
  network_.stats().GetCounter("wn.role_switches").Add();
  network_.feedback().Publish(FeedbackSignal{
      FeedbackDimension::kPerConfiguration, id_,
      static_cast<std::uint64_t>(role), 1.0, network_.simulator().now()});
  return OkStatus();
}

ShipBlueprint Ship::ToBlueprint(std::size_t max_facts) const {
  ShipBlueprint bp;
  bp.ship_class = class_;
  bp.role = os_.current_role();
  bp.next_step = os_.next_step();
  for (const auto& fact : facts_.TopByWeight(max_facts)) {
    bp.facts.push_back(FactSnapshot{fact.key, fact.value, fact.weight});
  }
  for (const auto& slot : os_.hardware().slots()) {
    bp.modules.push_back(ModuleGene{
        slot.module.module_id, slot.module.accelerates,
        slot.module.gate_count, slot.module.speedup,
        slot.module.driver_digest});
  }
  bp.functions = functions_.functions();
  return bp;
}

Status Ship::ApplyBlueprint(const ShipBlueprint& blueprint) {
  // Role state.
  (void)os_.RequestRoleSwitch(blueprint.role,
                              node::SwitchMechanism::kResidentSoftware);
  os_.set_next_step(blueprint.next_step);
  // Facts.
  const sim::TimePoint now = network_.simulator().now();
  for (const FactSnapshot& fact : blueprint.facts) {
    facts_.Touch(fact.key, fact.value, fact.weight, now);
  }
  // Functions.
  for (const NetFunction& fn : blueprint.functions) {
    functions_.Install(fn);
  }
  // Hardware genes: best effort, gated by generation and gate budget.
  if (os_.capabilities().hardware_reconfigurable) {
    for (const ModuleGene& gene : blueprint.modules) {
      node::HardwareModule module;
      module.module_id = gene.module_id;
      module.accelerates = gene.accelerates;
      module.gate_count = gene.gate_count;
      module.speedup = gene.speedup;
      module.driver_digest = gene.driver_digest;
      (void)os_.hardware().Install(module);
    }
  }
  network_.stats().GetCounter("wn.blueprints_applied").Add();
  return OkStatus();
}

SelfDescription Ship::DescribeSelf() const {
  SelfDescription desc;
  desc.ship = id_;
  desc.ship_class = class_;
  desc.role = os_.current_role();
  desc.ee_count = static_cast<std::uint32_t>(os_.ee_count());
  desc.fact_count = facts_.size();
  const auto genome = EncodeBlueprint(ToBlueprint());
  desc.descriptor_digest = HashBytes(genome);
  if (!honest_) {
    // An unfair ship advertises a bogus commitment (Def. 2(1) violation).
    desc.descriptor_digest ^= 0xdeadbeefULL;
  }
  return desc;
}

std::unordered_map<int, double> Ship::DrainClassActivity() {
  std::unordered_map<int, double> out;
  out.swap(class_activity_);
  return out;
}

void Ship::MixDigest(Hasher& hasher) const {
  hasher.Mix(id_);
  hasher.Mix(static_cast<std::uint64_t>(class_));
  for (std::uint64_t word : rng_.SaveState()) hasher.Mix(word);
  hasher.Mix(honest_ ? 1u : 0u);
  hasher.Mix(shuttles_consumed_);
  hasher.Mix(shuttles_forwarded_);
  hasher.Mix(code_executions_);
  hasher.Mix(code_misses_);
  hasher.Mix(static_cast<std::uint64_t>(facts_.size()));
  os_.MixDigest(hasher);
}

Result<std::int64_t> Ship::Invoke(vm::Syscall id,
                                  std::span<const std::int64_t> args) {
  using vm::Syscall;
  switch (id) {
    case Syscall::kNodeId:
      return static_cast<std::int64_t>(id_);
    case Syscall::kTime:
      return static_cast<std::int64_t>(network_.simulator().now() / 1000);
    case Syscall::kGetFact:
      return facts_.Get(static_cast<FactKey>(args[0])).value_or(0);
    case Syscall::kPutFact: {
      const double weight =
          std::max(0.1, static_cast<double>(args[2]) / 100.0);
      facts_.Touch(static_cast<FactKey>(args[0]), args[1], weight,
                   network_.simulator().now());
      return std::int64_t{1};
    }
    case Syscall::kEraseFact:
      return static_cast<std::int64_t>(
          facts_.Erase(static_cast<FactKey>(args[0])));
    case Syscall::kSendValue: {
      const auto dst = static_cast<net::NodeId>(args[0]);
      if (dst >= network_.topology().node_count()) return std::int64_t{0};
      // Pool-backed send: kSendValue is the workload inner loop, and a
      // recycled shell makes the reply allocation-free at steady state.
      const std::int64_t word[] = {args[2]};
      Shuttle out = network_.shuttle_pool().AcquireData(
          id_, dst, word, static_cast<std::uint64_t>(args[1]));
      if (current_shuttle_ != nullptr) out.trace = current_shuttle_->trace;
      return static_cast<std::int64_t>(SendShuttle(std::move(out)).ok());
    }
    case Syscall::kRole:
      return static_cast<std::int64_t>(os_.current_role());
    case Syscall::kRequestRole: {
      const auto role_index = static_cast<std::uint64_t>(args[0]);
      if (role_index >=
          static_cast<std::uint64_t>(node::FirstLevelRole::kRoleCount)) {
        return std::int64_t{0};
      }
      return static_cast<std::int64_t>(
          SwitchRole(static_cast<node::FirstLevelRole>(role_index),
                     node::SwitchMechanism::kResidentSoftware)
              .ok());
    }
    case Syscall::kNeighborCount:
      return static_cast<std::int64_t>(
          network_.topology().Neighbors(id_).size());
    case Syscall::kNeighbor: {
      const auto neighbors = network_.topology().Neighbors(id_);
      const auto index = static_cast<std::uint64_t>(args[0]);
      if (index >= neighbors.size()) return std::int64_t{-1};
      return static_cast<std::int64_t>(neighbors[index]);
    }
    case Syscall::kReplicate: {
      if (current_shuttle_ == nullptr ||
          current_shuttle_->header.kind != ShuttleKind::kJet ||
          current_shuttle_->replication_budget == 0) {
        return std::int64_t{0};
      }
      if (!os_.capabilities().self_replicating) return std::int64_t{0};
      const auto dst = static_cast<net::NodeId>(args[0]);
      if (dst >= network_.topology().node_count() || dst == id_) {
        return std::int64_t{0};
      }
      Shuttle replica = *current_shuttle_;
      replica.header.source = id_;
      replica.header.destination = dst;
      replica.header.ttl = 64;
      --replica.replication_budget;
      network_.stats().GetCounter("wn.jet_replications").Add();
      return static_cast<std::int64_t>(SendShuttle(std::move(replica)).ok());
    }
    case Syscall::kPayloadSize:
      return current_shuttle_ == nullptr
                 ? std::int64_t{0}
                 : static_cast<std::int64_t>(current_shuttle_->payload.size());
    case Syscall::kPayload: {
      if (current_shuttle_ == nullptr) return std::int64_t{0};
      const auto index = static_cast<std::uint64_t>(args[0]);
      if (index >= current_shuttle_->payload.size()) return std::int64_t{0};
      return current_shuttle_->payload[index];
    }
    case Syscall::kEmit:
      last_emissions_.push_back(args[0]);
      return std::int64_t{1};
    case Syscall::kRandom:
      return static_cast<std::int64_t>(rng_.Next() >> 1);
    case Syscall::kLog:
      network_.trace().Log(network_.simulator().now(),
                           sim::TraceLevel::kDebug,
                           "ship" + std::to_string(id_),
                           "log " + std::to_string(args[0]));
      return std::int64_t{1};
    case Syscall::kMorph: {
      if (current_shuttle_ == nullptr) return std::int64_t{0};
      const auto cls_index = static_cast<std::uint64_t>(args[0]);
      if (cls_index > static_cast<std::uint64_t>(node::ShipClass::kAgent)) {
        return std::int64_t{0};
      }
      Shuttle probe = *current_shuttle_;
      probe.header.dest_class_hint =
          static_cast<node::ShipClass>(cls_index);
      return static_cast<std::int64_t>(
          network_.morphing().MorphForDock(probe).success);
    }
    case Syscall::kQueueDepth:
      return static_cast<std::int64_t>(network_.fabric().QueuedBytesAt(id_));
    case Syscall::kSyscallCount:
      break;
  }
  return Status(InvalidArgument("unknown syscall"));
}

}  // namespace viator::wli
