// wanderlib: the standard library of WanderScript shuttle programs.
//
// The paper postulates "built-in primitives and behavioral patterns
// available at each node" as one prerequisite of evolutionary active
// networking (§A). wanderlib is that inventory: small, verified mobile
// programs for the recurring behaviours — telemetry, fact gossip,
// self-reconfiguration — written in WanderScript assembly so they travel
// in shuttles like any user code. Every function returns an assembled and
// *verified* Program; the digests are stable across runs (content
// addressing), so ships can pre-warm their caches with the library.
#pragma once

#include "base/status.h"
#include "vm/program.h"

namespace viator::wli::wanderlib {

/// Heartbeat probe: records the host's egress backlog as fact `fact_key`
/// (weight 1.0) and sends the value back to the shuttle's source on flow
/// `reply_flow`. Used for telemetry sweeps.
Result<vm::Program> HeartbeatProbe(std::int64_t fact_key,
                                   std::int64_t reply_flow);

/// Fact planter: walks its payload as {key, value} pairs and stores each as
/// a fact of weight 2.0 on the host. The gossip service's executable
/// counterpart for actively seeding knowledge.
Result<vm::Program> FactPlanter();

/// Role balancer: if the host's egress backlog exceeds `threshold` bytes,
/// requests the Fusion role (shed load by aggregating); otherwise requests
/// Caching. Emits 1 if a switch was accepted. A self-reconfiguration
/// pattern (DCP: packets processing nodes).
Result<vm::Program> RoleBalancer(std::int64_t threshold_bytes);

/// Payload checksum: folds the payload into a 63-bit FNV-style digest via a
/// subroutine, emits it and stores it as fact `fact_key`. Exercises
/// call/ret in transit-grade code.
Result<vm::Program> PayloadChecksum(std::int64_t fact_key);

/// Neighborhood census: counts the host's up neighbors, stores the count as
/// fact `fact_key` and replicates itself to every neighbor when carried by
/// a jet (bounded by the jet budget). The paper's "selective activation of
/// the network topology" pattern.
Result<vm::Program> NeighborCensus(std::int64_t fact_key);

}  // namespace viator::wli::wanderlib
