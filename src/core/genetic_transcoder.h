// Genetic transcoding (PMP Def. 3(5) and contribution 3, "Node Genesis"):
// "encoding and embedding the structural information about a mobile node,
// the ship, and its environment into the executable part of the active
// packets, the shuttles."
//
// A ShipBlueprint is the genome: role state, resident code, hardware
// configuration and the strongest facts. Ships encode themselves into
// shuttle genomes; a receiving ship (or the self-healing coordinator
// reconstructing a dead node's function elsewhere) decodes and applies it.
#pragma once

#include <cstdint>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "core/facts.h"
#include "core/knowledge.h"
#include "node/profile.h"

namespace viator::wli {

/// Hardware module description inside a genome.
struct ModuleGene {
  std::uint32_t module_id = 0;
  node::SecondLevelClass accelerates = node::SecondLevelClass::kSupplementary;
  std::uint32_t gate_count = 0;
  double speedup = 1.0;
  Digest driver_digest = 0;
};

/// The decoded structural genome of a ship.
struct ShipBlueprint {
  node::ShipClass ship_class = node::ShipClass::kServer;
  node::FirstLevelRole role = node::FirstLevelRole::kCaching;
  node::FirstLevelRole next_step = node::FirstLevelRole::kCaching;
  std::vector<Digest> resident_programs;
  std::vector<FactSnapshot> facts;
  std::vector<ModuleGene> modules;
  std::vector<NetFunction> functions;
  std::uint32_t genome_version = 1;
};

/// Serializes a blueprint into a shuttle genome (TLV with checksum).
std::vector<std::byte> EncodeBlueprint(const ShipBlueprint& blueprint);

/// Decodes a genome; rejects corrupt streams and out-of-range enums.
Result<ShipBlueprint> DecodeBlueprint(std::span<const std::byte> genome);

}  // namespace viator::wli
