// Shuttles: the active packets of the Wandering Network.
//
// A shuttle generalizes an ANTS capsule (§B): it carries a reference to its
// processing routine (demand-loaded by digest), optionally the routine
// itself, data payload, and a *genetic* section encoding structural
// information about ships or network functions. Jets are the special shuttle
// class "allowed to replicate themselves and to create/remove/modify other
// capsules and resources in the network" — bounded here by an explicit
// replication budget that the security class enforces.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "base/hash.h"
#include "net/types.h"
#include "node/profile.h"
#include "telemetry/trace_context.h"

namespace viator::wli {

enum class ShuttleKind : std::uint8_t {
  kData = 0,     // payload processed by the destination's active function
  kCode,         // transports a program for installation (role upgrade)
  kCodeRequest,  // demand code-distribution: "send me program <digest>"
  kCodeReply,    // demand code-distribution: carries the requested program
  kKnowledge,    // carries knowledge quanta (PMP)
  kJet,          // self-replicating management shuttle
  kControl,      // signalling between ships (routing, clustering, feedback)
  kProbe,        // in-band health probe (self-referential observability)
  kKindCount,
};

std::string_view ShuttleKindName(ShuttleKind kind);

/// Per-hop-immutable addressing and typing information.
struct ShuttleHeader {
  net::NodeId source = net::kInvalidNode;
  net::NodeId destination = net::kInvalidNode;
  std::uint64_t flow_id = 0;
  ShuttleKind kind = ShuttleKind::kData;
  /// Class of the destination ship as encoded in the address — the DCP
  /// morphing decision is keyed on this ("based on the destination address
  /// and on the class of the ship included in this address").
  node::ShipClass dest_class_hint = node::ShipClass::kServer;
  /// Interface/format the shuttle currently presents (morphing rewrites it).
  std::uint32_t interface_id = 0;
  std::uint8_t ttl = 64;
};

struct Shuttle {
  ShuttleHeader header;

  /// Digest of the processing routine this shuttle wants executed on
  /// arrival; 0 means "no code" (plain data handled by the resident role).
  Digest code_digest = 0;

  /// Inline serialized program (kCode / kCodeReply shuttles, or capsules
  /// that carry their own routine).
  std::vector<std::byte> code_image;

  /// Data payload in VM words; services also use it as abstract content.
  std::vector<std::int64_t> payload;

  /// Genetic section: TLV-encoded knowledge quanta or ship blueprints.
  std::vector<std::byte> genome;

  /// Remaining self-replications (jets only; 0 for ordinary shuttles).
  std::uint32_t replication_budget = 0;

  /// Keyed authorization tag over the code image (capsule authorization).
  std::uint64_t auth_tag = 0;

  /// Sharded-simulation transit addressing (src/shard): the *global* node id
  /// this shuttle is ultimately bound for when `header.destination` is only
  /// the local gateway (shard-exit) ship of the current topology shard. The
  /// boundary handler re-addresses the shuttle across the cross-shard link.
  /// kInvalidNode (the default) means "not in transit" — single-network runs
  /// never set it. When set it adds 8 bytes to WireSize(), the extra
  /// addressing a cross-shard capsule genuinely carries on the wire.
  net::NodeId transit_destination = net::kInvalidNode;

  bool in_transit() const { return transit_destination != net::kInvalidNode; }

  /// Causal trace context (observability metadata). Travels with the shuttle
  /// — including inside Frame payloads across hops — but is NOT part of
  /// WireSize(), so tracing never changes transport behavior.
  telemetry::TraceContext trace;

  /// Latency-plane flight id (telemetry/latency_plane.h): keys this
  /// shuttle's lifecycle record in the network's side table. 0 = untracked
  /// (the plane is off, or birth not yet probed). Like `trace`, pure
  /// observability metadata: not part of WireSize(), never read by any
  /// simulation decision, and NOT deterministic across thread counts (ids
  /// come from a global counter) — only the sim-time durations it keys are.
  /// Copies of a shuttle (jet replication, broadcast fan-out) share the id;
  /// the first lifecycle close wins and later closes are no-ops.
  std::uint64_t lat_id = 0;

  /// Wire size used for transmission accounting: fixed header plus the
  /// variable sections.
  std::uint32_t WireSize() const;

  /// Convenience constructors for the common kinds.
  static Shuttle Data(net::NodeId src, net::NodeId dst,
                      std::vector<std::int64_t> payload,
                      std::uint64_t flow = 0);
  static Shuttle CodeRequest(net::NodeId src, net::NodeId dst, Digest digest);
};

inline constexpr std::uint32_t kShuttleHeaderBytes = 32;

}  // namespace viator::wli
