// Net functions and knowledge quanta (PMP, Def. 3(2)).
//
// "A net function can be based on one or more facts. The combination of net
// function and facts is called a knowledge quantum (kq). Knowledge quanta
// are a new type of capsules which are distributed via shuttles."
//
// A NetFunction binds a first/second-level role to a processing routine and
// the facts that justify its existence; its lifetime is the lifetime of its
// facts. A KnowledgeQuantum snapshots a function plus the current values of
// its facts for transport in a shuttle's genetic section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "core/facts.h"
#include "node/profile.h"

namespace viator::wli {

using FunctionId = std::uint64_t;

/// A deployable network function: what the ships wander.
struct NetFunction {
  FunctionId id = 0;
  std::string name;
  node::FirstLevelRole role = node::FirstLevelRole::kCaching;
  node::SecondLevelClass cls = node::SecondLevelClass::kSupplementary;
  Digest program_digest = 0;       // processing routine (0 = native handler)
  std::vector<FactKey> fact_keys;  // facts this function is based on
};

/// Fact snapshot inside a knowledge quantum.
struct FactSnapshot {
  FactKey key = 0;
  std::int64_t value = 0;
  double weight = 1.0;
};

/// A knowledge quantum: net function + the facts it is based on.
struct KnowledgeQuantum {
  NetFunction function;
  std::vector<FactSnapshot> facts;
  std::uint32_t version = 1;
};

/// Serializes a KQ into TLV bytes for a shuttle genome.
std::vector<std::byte> EncodeKnowledgeQuantum(const KnowledgeQuantum& kq);

/// Parses one KQ back; validates the checksum trailer.
Result<KnowledgeQuantum> DecodeKnowledgeQuantum(
    std::span<const std::byte> bytes);

/// "The lifetime of a knowledge quantum is defined by the lifetime of its
/// network function", and the function lives while its facts live: true iff
/// every fact key of `function` is present in `store`. Functions without
/// facts are unconditioned (infrastructure functions) and always alive.
bool FunctionAlive(const NetFunction& function, const FactStore& store);

/// Registry of the functions a ship currently hosts. Expire() removes the
/// ones whose facts died (the PMP churn mechanism).
class FunctionTable {
 public:
  /// Installs or replaces a function ("a modification of a net function is
  /// determined by a new set of knowledge quanta").
  void Install(NetFunction function);

  bool Remove(FunctionId id);
  const NetFunction* Find(FunctionId id) const;
  const std::vector<NetFunction>& functions() const { return functions_; }

  /// Removes every function whose facts are gone; returns how many died.
  std::size_t Expire(const FactStore& store);

  /// Functions currently filling a given first-level role.
  std::vector<const NetFunction*> ForRole(node::FirstLevelRole role) const;

 private:
  std::vector<NetFunction> functions_;
};

}  // namespace viator::wli
