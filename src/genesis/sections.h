// Per-subsystem section codecs: one Save/Load pair per snapshot section.
//
// Save* functions produce a finished TLV stream (the section payload);
// Load* functions validate and apply it. Loads are strict: malformed
// payloads yield Status errors without crashing, though a failed load may
// leave a partially-restored subsystem behind — GenesisManager::RestoreFull
// therefore validates the whole container before applying any section.
//
// Runtime closures (role handlers, delivery sinks, feedback subscriptions,
// next-hop choosers) are deliberately not serialized: they belong to the
// services layer, which re-installs them against the restored network.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace viator::genesis {

// ---- Substrate sections ---------------------------------------------------

std::vector<std::byte> SaveClock(const sim::Simulator& simulator);
Status LoadClock(std::span<const std::byte> payload, sim::Simulator& simulator);

std::vector<std::byte> SaveRng(const Rng& rng);
Status LoadRng(std::span<const std::byte> payload, Rng& rng);

std::vector<std::byte> SaveStats(const sim::StatsRegistry& stats);
Status LoadStats(std::span<const std::byte> payload, sim::StatsRegistry& stats);

std::vector<std::byte> SaveTrace(const sim::TraceSink& trace);
Status LoadTrace(std::span<const std::byte> payload, sim::TraceSink& trace);

/// Serializes nodes, links (config + up flags) and node up flags.
std::vector<std::byte> SaveTopology(const net::Topology& topology);
/// Rebuilds into an *empty* topology (kFailedPrecondition otherwise).
Status LoadTopology(std::span<const std::byte> payload,
                    net::Topology& topology);

// ---- Network sections (operate on the WanderingNetwork) -------------------
// Saves take a non-const network because several state accessors (RNG
// streams, congruence trackers) expose mutable references only.

std::vector<std::byte> SaveFabric(wli::WanderingNetwork& network);
Status LoadFabric(std::span<const std::byte> payload,
                  wli::WanderingNetwork& network);

std::vector<std::byte> SaveRepository(const wli::WanderingNetwork& network);
Status LoadRepository(std::span<const std::byte> payload,
                      wli::WanderingNetwork& network);

/// One nested record per ship: identity, RNG, role state, resources, facts,
/// functions, congruence, code cache (with inline program images), EEs and
/// the hardware plane. Load recreates the ships via AddShip and overwrites
/// every piece of state; requires a network with no ships yet.
std::vector<std::byte> SaveShips(wli::WanderingNetwork& network);
Status LoadShips(std::span<const std::byte> payload,
                 wli::WanderingNetwork& network);

std::vector<std::byte> SavePlacements(const wli::WanderingNetwork& network);
Status LoadPlacements(std::span<const std::byte> payload,
                      wli::WanderingNetwork& network);

std::vector<std::byte> SaveLedger(const wli::WanderingNetwork& network);
Status LoadLedger(std::span<const std::byte> payload,
                  wli::WanderingNetwork& network);

std::vector<std::byte> SaveReputation(const wli::WanderingNetwork& network);
Status LoadReputation(std::span<const std::byte> payload,
                      wli::WanderingNetwork& network);

std::vector<std::byte> SaveClusters(const wli::WanderingNetwork& network);
Status LoadClusters(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network);

std::vector<std::byte> SaveDemand(const wli::WanderingNetwork& network);
Status LoadDemand(std::span<const std::byte> payload,
                  wli::WanderingNetwork& network);

std::vector<std::byte> SaveOverlays(const wli::WanderingNetwork& network);
Status LoadOverlays(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network);

std::vector<std::byte> SaveMorphing(const wli::WanderingNetwork& network);
Status LoadMorphing(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network);

std::vector<std::byte> SaveFeedback(const wli::WanderingNetwork& network);
Status LoadFeedback(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network);

std::vector<std::byte> SaveNetworkCounters(
    const wli::WanderingNetwork& network);
Status LoadNetworkCounters(std::span<const std::byte> payload,
                           wli::WanderingNetwork& network);

/// Memory watermarks (calendar-queue heap peak, shuttle-pool retained
/// peak). Advisory telemetry, kept out of the decision-state sections: see
/// the kSectionMemPeaks note in snapshot.h.
std::vector<std::byte> SaveMemPeaks(const wli::WanderingNetwork& network);
Status LoadMemPeaks(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network);

/// Latency Observatory sketches (every per-(stage, class) quantile sketch
/// plus the window delivery sketch, sparse buckets + exact integer totals).
/// Advisory telemetry like the peaks, but integer-exact: the section
/// round-trips bit-identically. See the kSectionLatency note in snapshot.h.
std::vector<std::byte> SaveLatency(const wli::WanderingNetwork& network);
Status LoadLatency(std::span<const std::byte> payload,
                   wli::WanderingNetwork& network);

}  // namespace viator::genesis
