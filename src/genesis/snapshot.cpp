#include "genesis/snapshot.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/strings.h"
#include "base/tlv.h"

namespace viator::genesis {
namespace {

// Outer container tags.
constexpr TlvTag kTagMagic = 0x01;
constexpr TlvTag kTagFormatVersion = 0x02;
constexpr TlvTag kTagKind = 0x03;
constexpr TlvTag kTagSequence = 0x04;
constexpr TlvTag kTagBaseSequence = 0x05;
constexpr TlvTag kTagSnapTime = 0x06;
constexpr TlvTag kTagScenarioTag = 0x07;
constexpr TlvTag kTagSectionCount = 0x08;
constexpr TlvTag kTagSection = 0x10;

// Section record inner tags.
constexpr TlvTag kTagSectionId = 0x01;
constexpr TlvTag kTagSectionVersion = 0x02;
constexpr TlvTag kTagSectionDigest = 0x03;
constexpr TlvTag kTagSectionPayload = 0x04;

Result<SectionRecord> ParseSection(std::span<const std::byte> bytes) {
  TlvReader reader(bytes);
  SectionRecord section;
  bool have_id = false, have_digest = false, have_payload = false;
  while (reader.HasNext()) {
    auto rec = reader.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagSectionId:
        section.id = rec->AsU32();
        have_id = true;
        break;
      case kTagSectionVersion:
        section.version = rec->AsU32();
        break;
      case kTagSectionDigest:
        section.digest = rec->AsU64();
        have_digest = true;
        break;
      case kTagSectionPayload:
        section.payload.assign(rec->payload.begin(), rec->payload.end());
        have_payload = true;
        break;
      default:
        break;  // forward-compatible skip
    }
  }
  if (!have_id || !have_digest || !have_payload) {
    return Status(InvalidArgument("snapshot section missing id/digest/payload"));
  }
  if (HashBytes(section.payload) != section.digest) {
    return Status(InvalidArgument("snapshot section '" +
                                  SectionName(section.id) +
                                  "' digest mismatch (payload corrupted)"));
  }
  return section;
}

}  // namespace

std::string SectionName(std::uint32_t id) {
  switch (id) {
    case kSectionClock: return "clock";
    case kSectionNetworkRng: return "network-rng";
    case kSectionStats: return "stats";
    case kSectionTrace: return "trace";
    case kSectionTopology: return "topology";
    case kSectionFabric: return "fabric";
    case kSectionRepository: return "repository";
    case kSectionShips: return "ships";
    case kSectionPlacements: return "placements";
    case kSectionLedger: return "ledger";
    case kSectionReputation: return "reputation";
    case kSectionClusters: return "clusters";
    case kSectionDemand: return "demand";
    case kSectionOverlays: return "overlays";
    case kSectionMorphing: return "morphing";
    case kSectionFeedback: return "feedback";
    case kSectionNetworkCounters: return "network-counters";
    case kSectionMemPeaks: return "mem-peaks";
    case kSectionLatency: return "latency";
    default:
      if (id >= kExtraSectionBase) {
        return "extra:" + std::to_string(id);
      }
      return "unknown:" + std::to_string(id);
  }
}

void SnapshotBuilder::AddSection(std::uint32_t id,
                                 std::vector<std::byte> payload,
                                 std::uint32_t version) {
  SectionRecord section;
  section.id = id;
  section.version = version;
  section.digest = HashBytes(payload);
  section.payload = std::move(payload);
  mem_bytes_.Add(section.payload.capacity());
  sections_.push_back(std::move(section));
}

std::vector<std::byte> SnapshotBuilder::Finish() const {
  TlvWriter writer;
  writer.PutU64(kTagMagic, kSnapshotMagic);
  writer.PutU32(kTagFormatVersion, header_.format_version);
  writer.PutU32(kTagKind, static_cast<std::uint32_t>(header_.kind));
  writer.PutU64(kTagSequence, header_.sequence);
  writer.PutU64(kTagBaseSequence, header_.base_sequence);
  writer.PutU64(kTagSnapTime, header_.snap_time);
  writer.PutU64(kTagScenarioTag, header_.scenario_tag);
  writer.PutU32(kTagSectionCount,
                static_cast<std::uint32_t>(sections_.size()));
  for (const SectionRecord& section : sections_) {
    TlvWriter inner;
    inner.PutU32(kTagSectionId, section.id);
    inner.PutU32(kTagSectionVersion, section.version);
    inner.PutU64(kTagSectionDigest, section.digest);
    inner.PutBytes(kTagSectionPayload, section.payload);
    writer.PutNested(kTagSection, inner.Finish());
  }
  return writer.Finish();
}

const SectionRecord* ParsedSnapshot::Find(std::uint32_t id) const {
  for (const SectionRecord& section : sections) {
    if (section.id == id) return &section;
  }
  return nullptr;
}

Result<ParsedSnapshot> ParseSnapshot(std::span<const std::byte> bytes) {
  TlvReader reader(bytes);
  if (Status s = reader.Verify(); !s.ok()) return s;

  ParsedSnapshot snapshot;
  bool have_magic = false, have_version = false, have_count = false;
  std::uint32_t declared_count = 0;
  while (reader.HasNext()) {
    auto rec = reader.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagMagic:
        if (rec->AsU64() != kSnapshotMagic) {
          return Status(InvalidArgument("not a genesis snapshot (bad magic)"));
        }
        have_magic = true;
        break;
      case kTagFormatVersion:
        snapshot.header.format_version = rec->AsU32();
        have_version = true;
        break;
      case kTagKind: {
        const std::uint32_t kind = rec->AsU32();
        if (kind > static_cast<std::uint32_t>(SnapshotKind::kDelta)) {
          return Status(InvalidArgument("unknown snapshot kind"));
        }
        snapshot.header.kind = static_cast<SnapshotKind>(kind);
        break;
      }
      case kTagSequence: snapshot.header.sequence = rec->AsU64(); break;
      case kTagBaseSequence:
        snapshot.header.base_sequence = rec->AsU64();
        break;
      case kTagSnapTime: snapshot.header.snap_time = rec->AsU64(); break;
      case kTagScenarioTag:
        snapshot.header.scenario_tag = rec->AsU64();
        break;
      case kTagSectionCount:
        declared_count = rec->AsU32();
        have_count = true;
        break;
      case kTagSection: {
        auto section = ParseSection(rec->payload);
        if (!section.ok()) return section.status();
        for (const SectionRecord& existing : snapshot.sections) {
          if (existing.id == section->id) {
            return Status(InvalidArgument("duplicate snapshot section '" +
                                          SectionName(section->id) + "'"));
          }
        }
        snapshot.sections.push_back(*std::move(section));
        break;
      }
      default:
        break;  // forward-compatible skip
    }
  }
  if (!have_magic) {
    return Status(InvalidArgument("not a genesis snapshot (no magic record)"));
  }
  if (!have_version ||
      snapshot.header.format_version != kFormatVersion) {
    return Status(InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(snapshot.header.format_version) + " (expected " +
        std::to_string(kFormatVersion) + ")"));
  }
  if (!have_count || declared_count != snapshot.sections.size()) {
    return Status(InvalidArgument("snapshot section count mismatch"));
  }
  return snapshot;
}

Status VerifySnapshot(std::span<const std::byte> bytes) {
  return ParseSnapshot(bytes).status();
}

Result<std::vector<std::byte>> MergeDelta(std::span<const std::byte> base,
                                          std::span<const std::byte> delta) {
  auto base_snap = ParseSnapshot(base);
  if (!base_snap.ok()) return base_snap.status();
  auto delta_snap = ParseSnapshot(delta);
  if (!delta_snap.ok()) return delta_snap.status();
  if (base_snap->header.kind != SnapshotKind::kFull) {
    return Status(FailedPrecondition("merge base is not a full snapshot"));
  }
  if (delta_snap->header.kind != SnapshotKind::kDelta) {
    return Status(FailedPrecondition("merge delta is not a delta snapshot"));
  }
  if (delta_snap->header.base_sequence != base_snap->header.sequence) {
    return Status(FailedPrecondition(
        "delta bases on sequence " +
        std::to_string(delta_snap->header.base_sequence) +
        " but the given full snapshot is sequence " +
        std::to_string(base_snap->header.sequence)));
  }

  SnapshotHeader merged = delta_snap->header;
  merged.kind = SnapshotKind::kFull;
  merged.base_sequence = 0;
  SnapshotBuilder builder(merged);
  for (const SectionRecord& section : base_snap->sections) {
    const SectionRecord* replacement = delta_snap->Find(section.id);
    const SectionRecord& chosen = replacement ? *replacement : section;
    builder.AddSection(chosen.id, chosen.payload, chosen.version);
  }
  for (const SectionRecord& section : delta_snap->sections) {
    if (base_snap->Find(section.id) == nullptr) {
      builder.AddSection(section.id, section.payload, section.version);
    }
  }
  return builder.Finish();
}

Result<std::string> InspectSnapshot(std::span<const std::byte> bytes) {
  auto snapshot = ParseSnapshot(bytes);
  if (!snapshot.ok()) return snapshot.status();

  std::ostringstream out;
  const SnapshotHeader& h = snapshot->header;
  out << "genesis snapshot: "
      << (h.kind == SnapshotKind::kFull ? "full" : "delta")
      << " v" << h.format_version << " seq " << h.sequence;
  if (h.kind == SnapshotKind::kDelta) {
    out << " (base seq " << h.base_sequence << ")";
  }
  out << "\n  snap time: " << FormatNanos(h.snap_time)
      << "\n  scenario tag: " << h.scenario_tag
      << "\n  total size: " << FormatBytes(bytes.size())
      << "\n  sections: " << snapshot->sections.size() << "\n";

  TablePrinter table({"section", "id", "ver", "bytes", "digest"});
  for (const SectionRecord& section : snapshot->sections) {
    table.AddRow({SectionName(section.id), std::to_string(section.id),
                  std::to_string(section.version),
                  std::to_string(section.payload.size()),
                  DigestToHex(section.digest)});
  }
  out << table.ToString();
  return out.str();
}

Result<std::string> DiffSnapshots(std::span<const std::byte> a,
                                  std::span<const std::byte> b) {
  auto snap_a = ParseSnapshot(a);
  if (!snap_a.ok()) return snap_a.status();
  auto snap_b = ParseSnapshot(b);
  if (!snap_b.ok()) return snap_b.status();

  std::map<std::uint32_t, const SectionRecord*> in_a, in_b;
  for (const SectionRecord& s : snap_a->sections) in_a[s.id] = &s;
  for (const SectionRecord& s : snap_b->sections) in_b[s.id] = &s;

  std::ostringstream out;
  TablePrinter table({"section", "state", "bytes a", "bytes b"});
  std::size_t changed = 0;
  for (const auto& [id, sec_a] : in_a) {
    const auto it = in_b.find(id);
    if (it == in_b.end()) {
      table.AddRow({SectionName(id), "removed",
                    std::to_string(sec_a->payload.size()), "-"});
      ++changed;
    } else if (it->second->digest != sec_a->digest) {
      table.AddRow({SectionName(id), "changed",
                    std::to_string(sec_a->payload.size()),
                    std::to_string(it->second->payload.size())});
      ++changed;
    }
  }
  for (const auto& [id, sec_b] : in_b) {
    if (in_a.find(id) == in_a.end()) {
      table.AddRow({SectionName(id), "added", "-",
                    std::to_string(sec_b->payload.size())});
      ++changed;
    }
  }
  out << changed << " section(s) differ (" << in_a.size() << " in a, "
      << in_b.size() << " in b)\n";
  if (changed > 0) out << table.ToString();
  return out.str();
}

}  // namespace viator::genesis
