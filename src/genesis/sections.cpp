#include "genesis/sections.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "base/tlv.h"

namespace viator::genesis {
namespace {

// Shared validation helpers -------------------------------------------------

Status BadPayload(const char* what) {
  return InvalidArgument(std::string("genesis section payload: ") + what);
}

Result<node::FirstLevelRole> CheckRole(std::uint32_t raw) {
  if (raw >= static_cast<std::uint32_t>(node::FirstLevelRole::kRoleCount)) {
    return Status(BadPayload("first-level role out of range"));
  }
  return static_cast<node::FirstLevelRole>(raw);
}

Result<node::SecondLevelClass> CheckClass(std::uint32_t raw) {
  if (raw >= static_cast<std::uint32_t>(node::SecondLevelClass::kClassCount)) {
    return Status(BadPayload("second-level class out of range"));
  }
  return static_cast<node::SecondLevelClass>(raw);
}

// Every section payload is itself a checksummed TLV stream; loads verify the
// inner checksum too (defense in depth under the section digest).
Status OpenReader(std::span<const std::byte> payload, TlvReader& reader) {
  reader = TlvReader(payload);
  return reader.Verify();
}

}  // namespace

// ---- Clock ----------------------------------------------------------------

namespace {
constexpr TlvTag kTagNow = 0x01;
constexpr TlvTag kTagDispatched = 0x02;
constexpr TlvTag kTagScheduleOrdinal = 0x03;
}  // namespace

std::vector<std::byte> SaveClock(const sim::Simulator& simulator) {
  TlvWriter w;
  w.PutU64(kTagNow, simulator.now());
  w.PutU64(kTagDispatched, simulator.dispatched());
  w.PutU64(kTagScheduleOrdinal, simulator.schedule_ordinal());
  return w.Finish();
}

Status LoadClock(std::span<const std::byte> payload,
                 sim::Simulator& simulator) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  sim::TimePoint now = 0;
  std::uint64_t dispatched = 0;
  // Snapshots from before the stable tie-break ordinal carry no ordinal tag;
  // restoring them leaves the counter where the fresh simulator put it.
  std::uint64_t ordinal = sim::Simulator::kKeepScheduleOrdinal;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagNow) now = rec->AsU64();
    if (rec->tag == kTagDispatched) dispatched = rec->AsU64();
    if (rec->tag == kTagScheduleOrdinal) ordinal = rec->AsU64();
  }
  return simulator.RestoreClock(now, dispatched, ordinal);
}

// ---- RNG ------------------------------------------------------------------

namespace {
constexpr TlvTag kTagRngWord = 0x01;
}

std::vector<std::byte> SaveRng(const Rng& rng) {
  TlvWriter w;
  for (std::uint64_t word : rng.SaveState()) w.PutU64(kTagRngWord, word);
  return w.Finish();
}

Status LoadRng(std::span<const std::byte> payload, Rng& rng) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::array<std::uint64_t, 4> words{};
  std::size_t count = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagRngWord) {
      if (count >= words.size()) return BadPayload("too many RNG words");
      words[count++] = rec->AsU64();
    }
  }
  if (count != words.size()) return BadPayload("missing RNG words");
  rng.RestoreState(words);
  return OkStatus();
}

// ---- Stats ----------------------------------------------------------------

namespace {
constexpr TlvTag kTagCounter = 0x01;
constexpr TlvTag kTagGauge = 0x02;
constexpr TlvTag kTagHistogram = 0x03;
constexpr TlvTag kTagSeries = 0x04;
// inner
constexpr TlvTag kTagName = 0x01;
constexpr TlvTag kTagValueU64 = 0x02;
constexpr TlvTag kTagValueD = 0x03;
constexpr TlvTag kTagHistCount = 0x04;
constexpr TlvTag kTagHistSum = 0x05;
constexpr TlvTag kTagHistSumSq = 0x06;
constexpr TlvTag kTagHistMin = 0x07;
constexpr TlvTag kTagHistMax = 0x08;
constexpr TlvTag kTagHistZeros = 0x09;
constexpr TlvTag kTagHistBucket = 0x0A;
constexpr TlvTag kTagSample = 0x0B;
// Added with fractional histogram buckets and bounded series; absent tags
// read back as the legacy defaults, so old snapshots stay loadable.
constexpr TlvTag kTagSeriesStride = 0x0C;
constexpr TlvTag kTagSeriesTicks = 0x0D;
constexpr TlvTag kTagHistOrigin = 0x0E;
constexpr TlvTag kTagSampleTime = 0x01;
constexpr TlvTag kTagSampleValue = 0x02;
}  // namespace

std::vector<std::byte> SaveStats(const sim::StatsRegistry& stats) {
  TlvWriter w;
  for (const auto& [name, counter] : stats.counters()) {
    TlvWriter inner;
    inner.PutString(kTagName, name);
    inner.PutU64(kTagValueU64, counter.value());
    w.PutNested(kTagCounter, inner.Finish());
  }
  for (const auto& [name, gauge] : stats.gauges()) {
    TlvWriter inner;
    inner.PutString(kTagName, name);
    inner.PutDouble(kTagValueD, gauge.value());
    w.PutNested(kTagGauge, inner.Finish());
  }
  for (const auto& [name, hist] : stats.histograms()) {
    const sim::Histogram::RawState raw = hist.SaveState();
    TlvWriter inner;
    inner.PutString(kTagName, name);
    inner.PutU64(kTagHistCount, raw.count);
    inner.PutDouble(kTagHistSum, raw.sum);
    inner.PutDouble(kTagHistSumSq, raw.sum_sq);
    inner.PutDouble(kTagHistMin, raw.min);
    inner.PutDouble(kTagHistMax, raw.max);
    inner.PutU64(kTagHistZeros, raw.zeros);
    inner.PutU64(kTagHistOrigin,
                 static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(raw.bucket_origin)));
    for (std::uint64_t bucket : raw.buckets) {
      inner.PutU64(kTagHistBucket, bucket);
    }
    w.PutNested(kTagHistogram, inner.Finish());
  }
  for (const auto& [name, series] : stats.series()) {
    TlvWriter inner;
    inner.PutString(kTagName, name);
    inner.PutU64(kTagSeriesStride, series.stride());
    inner.PutU64(kTagSeriesTicks, series.ticks());
    for (const auto& sample : series.samples()) {
      TlvWriter sw;
      sw.PutU64(kTagSampleTime, sample.time);
      sw.PutDouble(kTagSampleValue, sample.value);
      inner.PutNested(kTagSample, sw.Finish());
    }
    w.PutNested(kTagSeries, inner.Finish());
  }
  return w.Finish();
}

Status LoadStats(std::span<const std::byte> payload,
                 sim::StatsRegistry& stats) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    TlvReader inner(rec->payload);
    switch (rec->tag) {
      case kTagCounter: {
        std::string name;
        std::uint64_t value = 0;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          if (f->tag == kTagName) name = f->AsString();
          if (f->tag == kTagValueU64) value = f->AsU64();
        }
        if (name.empty()) return BadPayload("unnamed counter");
        auto& counter = stats.GetCounter(name);
        counter.Reset();
        counter.Add(value);
        break;
      }
      case kTagGauge: {
        std::string name;
        double value = 0.0;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          if (f->tag == kTagName) name = f->AsString();
          if (f->tag == kTagValueD) value = f->AsDouble();
        }
        if (name.empty()) return BadPayload("unnamed gauge");
        stats.GetGauge(name).Set(value);
        break;
      }
      case kTagHistogram: {
        std::string name;
        sim::Histogram::RawState raw;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagName: name = f->AsString(); break;
            case kTagHistCount: raw.count = f->AsU64(); break;
            case kTagHistSum: raw.sum = f->AsDouble(); break;
            case kTagHistSumSq: raw.sum_sq = f->AsDouble(); break;
            case kTagHistMin: raw.min = f->AsDouble(); break;
            case kTagHistMax: raw.max = f->AsDouble(); break;
            case kTagHistZeros: raw.zeros = f->AsU64(); break;
            case kTagHistOrigin:
              raw.bucket_origin = static_cast<std::int32_t>(
                  static_cast<std::int64_t>(f->AsU64()));
              break;
            case kTagHistBucket: raw.buckets.push_back(f->AsU64()); break;
            default: break;
          }
        }
        if (name.empty()) return BadPayload("unnamed histogram");
        stats.GetHistogram(name).RestoreState(raw);
        break;
      }
      case kTagSeries: {
        std::string name;
        std::vector<sim::TimeSeries::Sample> samples;
        std::uint64_t stride = 0;  // 0 = legacy payload without the tag
        std::uint64_t ticks = 0;
        bool has_ticks = false;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          if (f->tag == kTagName) name = f->AsString();
          if (f->tag == kTagSeriesStride) stride = f->AsU64();
          if (f->tag == kTagSeriesTicks) {
            ticks = f->AsU64();
            has_ticks = true;
          }
          if (f->tag == kTagSample) {
            TlvReader sr(f->payload);
            sim::TimeSeries::Sample sample{0, 0.0};
            while (sr.HasNext()) {
              auto sf = sr.Next();
              if (!sf.ok()) return sf.status();
              if (sf->tag == kTagSampleTime) sample.time = sf->AsU64();
              if (sf->tag == kTagSampleValue) sample.value = sf->AsDouble();
            }
            samples.push_back(sample);
          }
        }
        if (name.empty()) return BadPayload("unnamed time series");
        if (!has_ticks) ticks = samples.size();  // legacy: one tick per kept
        stats.GetTimeSeries(name).RestoreState(
            std::move(samples), stride == 0 ? 1 : stride, ticks);
        break;
      }
      default:
        break;
    }
  }
  return OkStatus();
}

// ---- Trace ----------------------------------------------------------------

namespace {
constexpr TlvTag kTagEntry = 0x01;
constexpr TlvTag kTagEntryTime = 0x01;
constexpr TlvTag kTagEntryLevel = 0x02;
constexpr TlvTag kTagEntryComponent = 0x03;
constexpr TlvTag kTagEntryMessage = 0x04;
}  // namespace

std::vector<std::byte> SaveTrace(const sim::TraceSink& trace) {
  TlvWriter w;
  for (const auto& entry : trace.entries()) {
    TlvWriter inner;
    inner.PutU64(kTagEntryTime, entry.time);
    inner.PutU32(kTagEntryLevel, static_cast<std::uint32_t>(entry.level));
    inner.PutString(kTagEntryComponent, entry.component);
    inner.PutString(kTagEntryMessage, entry.message);
    w.PutNested(kTagEntry, inner.Finish());
  }
  return w.Finish();
}

Status LoadTrace(std::span<const std::byte> payload, sim::TraceSink& trace) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  trace.Clear();
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag != kTagEntry) continue;
    TlvReader inner(rec->payload);
    sim::TraceSink::Entry entry{0, sim::TraceLevel::kDebug, "", ""};
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      switch (f->tag) {
        case kTagEntryTime: entry.time = f->AsU64(); break;
        case kTagEntryLevel: {
          const std::uint32_t level = f->AsU32();
          if (level > static_cast<std::uint32_t>(sim::TraceLevel::kError)) {
            return BadPayload("trace level out of range");
          }
          entry.level = static_cast<sim::TraceLevel>(level);
          break;
        }
        case kTagEntryComponent: entry.component = f->AsString(); break;
        case kTagEntryMessage: entry.message = f->AsString(); break;
        default: break;
      }
    }
    trace.RestoreEntry(std::move(entry));
  }
  return OkStatus();
}

// ---- Topology -------------------------------------------------------------

namespace {
constexpr TlvTag kTagNodeCount = 0x01;
constexpr TlvTag kTagNodeUp = 0x02;
constexpr TlvTag kTagLink = 0x03;
constexpr TlvTag kTagLinkA = 0x01;
constexpr TlvTag kTagLinkB = 0x02;
constexpr TlvTag kTagLinkBandwidth = 0x03;
constexpr TlvTag kTagLinkLatency = 0x04;
constexpr TlvTag kTagLinkLoss = 0x05;
constexpr TlvTag kTagLinkQueue = 0x06;
constexpr TlvTag kTagLinkUp = 0x07;
}  // namespace

std::vector<std::byte> SaveTopology(const net::Topology& topology) {
  TlvWriter w;
  w.PutU64(kTagNodeCount, topology.node_count());
  for (net::NodeId n = 0; n < topology.node_count(); ++n) {
    w.PutU32(kTagNodeUp, topology.IsNodeUp(n) ? 1 : 0);
  }
  for (net::LinkId id = 0; id < topology.link_count(); ++id) {
    const net::Link& link = topology.link(id);
    TlvWriter inner;
    inner.PutU64(kTagLinkA, link.a);
    inner.PutU64(kTagLinkB, link.b);
    inner.PutDouble(kTagLinkBandwidth, link.config.bandwidth_bps);
    inner.PutU64(kTagLinkLatency, link.config.latency);
    inner.PutDouble(kTagLinkLoss, link.config.loss_probability);
    inner.PutU32(kTagLinkQueue, link.config.queue_capacity_bytes);
    inner.PutU32(kTagLinkUp, link.up ? 1 : 0);
    w.PutNested(kTagLink, inner.Finish());
  }
  return w.Finish();
}

Status LoadTopology(std::span<const std::byte> payload,
                    net::Topology& topology) {
  if (topology.node_count() != 0 || topology.link_count() != 0) {
    return FailedPrecondition(
        "topology restore requires an empty topology");
  }
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;

  std::uint64_t node_count = 0;
  std::vector<bool> node_up;
  struct LinkSpec {
    net::NodeId a, b;
    net::LinkConfig config;
    bool up;
  };
  std::vector<LinkSpec> links;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagNodeCount: node_count = rec->AsU64(); break;
      case kTagNodeUp: node_up.push_back(rec->AsU32() != 0); break;
      case kTagLink: {
        TlvReader inner(rec->payload);
        LinkSpec spec{net::kInvalidNode, net::kInvalidNode, {}, true};
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagLinkA:
              spec.a = static_cast<net::NodeId>(f->AsU64());
              break;
            case kTagLinkB:
              spec.b = static_cast<net::NodeId>(f->AsU64());
              break;
            case kTagLinkBandwidth:
              spec.config.bandwidth_bps = f->AsDouble();
              break;
            case kTagLinkLatency: spec.config.latency = f->AsU64(); break;
            case kTagLinkLoss:
              spec.config.loss_probability = f->AsDouble();
              break;
            case kTagLinkQueue:
              spec.config.queue_capacity_bytes = f->AsU32();
              break;
            case kTagLinkUp: spec.up = f->AsU32() != 0; break;
            default: break;
          }
        }
        links.push_back(std::move(spec));
        break;
      }
      default:
        break;
    }
  }
  if (node_up.size() != node_count) {
    return BadPayload("topology node flag count mismatch");
  }
  for (const LinkSpec& spec : links) {
    if (spec.a >= node_count || spec.b >= node_count || spec.a == spec.b) {
      return BadPayload("topology link endpoint out of range");
    }
  }
  if (node_count > 0) topology.AddNodes(node_count);
  for (const LinkSpec& spec : links) {
    topology.AddLink(spec.a, spec.b, spec.config);
  }
  // Node flags first (SetNodeUp toggles incident links), then exact link
  // flags, so the final link state matches the capture bit for bit.
  for (net::NodeId n = 0; n < node_up.size(); ++n) {
    if (!node_up[n]) topology.SetNodeUp(n, false);
  }
  for (net::LinkId id = 0; id < links.size(); ++id) {
    topology.SetLinkUp(id, links[id].up);
  }
  return OkStatus();
}

// ---- Fabric ---------------------------------------------------------------

namespace {
constexpr TlvTag kTagFramesDelivered = 0x01;
constexpr TlvTag kTagFramesDropped = 0x02;
constexpr TlvTag kTagBytesSent = 0x03;
constexpr TlvTag kTagNextFrame = 0x04;
constexpr TlvTag kTagFabricRng = 0x05;
constexpr TlvTag kTagLinkBytes = 0x06;
}  // namespace

std::vector<std::byte> SaveFabric(wli::WanderingNetwork& network) {
  net::Fabric& fabric = network.fabric();
  TlvWriter w;
  w.PutU64(kTagFramesDelivered, fabric.frames_delivered());
  w.PutU64(kTagFramesDropped, fabric.frames_dropped());
  w.PutU64(kTagBytesSent, fabric.bytes_sent());
  w.PutU64(kTagNextFrame, fabric.next_frame_id());
  w.PutNested(kTagFabricRng, SaveRng(fabric.rng()));
  for (std::uint64_t bytes : fabric.link_bytes()) {
    w.PutU64(kTagLinkBytes, bytes);
  }
  return w.Finish();
}

Status LoadFabric(std::span<const std::byte> payload,
                  wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t delivered = 0, dropped = 0, bytes = 0, next_frame = 1;
  std::vector<std::uint64_t> link_bytes;
  bool have_rng = false;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagFramesDelivered: delivered = rec->AsU64(); break;
      case kTagFramesDropped: dropped = rec->AsU64(); break;
      case kTagBytesSent: bytes = rec->AsU64(); break;
      case kTagNextFrame: next_frame = rec->AsU64(); break;
      case kTagFabricRng: {
        if (Status s = LoadRng(rec->payload, network.fabric().rng()); !s.ok()) {
          return s;
        }
        have_rng = true;
        break;
      }
      case kTagLinkBytes: link_bytes.push_back(rec->AsU64()); break;
      default: break;
    }
  }
  if (!have_rng) return BadPayload("fabric section missing RNG state");
  network.fabric().RestoreState(std::move(link_bytes), delivered, dropped,
                                bytes, next_frame);
  return OkStatus();
}

// ---- Code repository + origins --------------------------------------------

namespace {
constexpr TlvTag kTagProgram = 0x01;
constexpr TlvTag kTagOrigin = 0x02;
constexpr TlvTag kTagOriginDigest = 0x01;
constexpr TlvTag kTagOriginNode = 0x02;
}  // namespace

std::vector<std::byte> SaveRepository(const wli::WanderingNetwork& network) {
  TlvWriter w;
  for (Digest digest : network.repository().Digests()) {
    const vm::Program* program = network.repository().Find(digest);
    if (program != nullptr) w.PutNested(kTagProgram, program->Serialize());
  }
  for (const auto& [digest, node] : network.origins()) {
    TlvWriter inner;
    inner.PutU64(kTagOriginDigest, digest);
    inner.PutU64(kTagOriginNode, node);
    w.PutNested(kTagOrigin, inner.Finish());
  }
  return w.Finish();
}

Status LoadRepository(std::span<const std::byte> payload,
                      wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagProgram) {
      auto program = vm::Program::Deserialize(rec->payload);
      if (!program.ok()) return program.status();
      auto digest = network.repository().Install(*std::move(program));
      if (!digest.ok()) return digest.status();
    } else if (rec->tag == kTagOrigin) {
      TlvReader inner(rec->payload);
      Digest digest = 0;
      net::NodeId node = net::kInvalidNode;
      while (inner.HasNext()) {
        auto f = inner.Next();
        if (!f.ok()) return f.status();
        if (f->tag == kTagOriginDigest) digest = f->AsU64();
        if (f->tag == kTagOriginNode) {
          node = static_cast<net::NodeId>(f->AsU64());
        }
      }
      network.RestoreOrigin(digest, node);
    }
  }
  return OkStatus();
}

// ---- Ships ----------------------------------------------------------------

namespace {
constexpr TlvTag kTagShip = 0x01;
// ship inner
constexpr TlvTag kTagShipNode = 0x01;
constexpr TlvTag kTagShipClass = 0x02;
constexpr TlvTag kTagShipHonest = 0x03;
constexpr TlvTag kTagShipRng = 0x04;
constexpr TlvTag kTagShipConsumed = 0x05;
constexpr TlvTag kTagShipForwarded = 0x06;
constexpr TlvTag kTagShipExecutions = 0x07;
constexpr TlvTag kTagShipMisses = 0x08;
constexpr TlvTag kTagShipActivity = 0x09;
constexpr TlvTag kTagShipRoleCurrent = 0x0A;
constexpr TlvTag kTagShipRoleNext = 0x0B;
constexpr TlvTag kTagShipRoleSwitches = 0x0C;
constexpr TlvTag kTagShipEpochFuel = 0x0D;
constexpr TlvTag kTagShipTotalFuel = 0x0E;
constexpr TlvTag kTagShipMemory = 0x0F;
constexpr TlvTag kTagShipPending = 0x10;
constexpr TlvTag kTagShipFact = 0x11;
constexpr TlvTag kTagShipFactWindow = 0x12;
constexpr TlvTag kTagShipFactEvictions = 0x13;
constexpr TlvTag kTagShipFactExpirations = 0x14;
constexpr TlvTag kTagShipFunction = 0x15;
constexpr TlvTag kTagShipCongruence = 0x16;
constexpr TlvTag kTagShipCachedProgram = 0x17;
constexpr TlvTag kTagShipCacheHits = 0x18;
constexpr TlvTag kTagShipCacheMisses = 0x19;
constexpr TlvTag kTagShipEe = 0x1A;
constexpr TlvTag kTagShipHwModule = 0x1B;
constexpr TlvTag kTagShipHwReconfigs = 0x1C;
// activity inner
constexpr TlvTag kTagActivityClass = 0x01;
constexpr TlvTag kTagActivityValue = 0x02;
// fact inner
constexpr TlvTag kTagFactKey = 0x01;
constexpr TlvTag kTagFactValue = 0x02;
constexpr TlvTag kTagFactWeight = 0x03;
constexpr TlvTag kTagFactTouches = 0x04;
constexpr TlvTag kTagFactLastTouch = 0x05;
constexpr TlvTag kTagFactCreated = 0x06;
// congruence inner
constexpr TlvTag kTagCongPredicted = 0x01;
constexpr TlvTag kTagCongScore = 0x02;
constexpr TlvTag kTagCongObservations = 0x03;
constexpr TlvTag kTagCongVote = 0x04;
constexpr TlvTag kTagVoteInterface = 0x01;
constexpr TlvTag kTagVoteWeight = 0x02;
// EE inner
constexpr TlvTag kTagEeId = 0x01;
constexpr TlvTag kTagEeClass = 0x02;
constexpr TlvTag kTagEeBinding = 0x03;
constexpr TlvTag kTagEeResident = 0x04;
constexpr TlvTag kTagEeInvocations = 0x05;
constexpr TlvTag kTagEeFaults = 0x06;
constexpr TlvTag kTagEeFuel = 0x07;
// hardware module inner
constexpr TlvTag kTagHwId = 0x01;
constexpr TlvTag kTagHwName = 0x02;
constexpr TlvTag kTagHwClass = 0x03;
constexpr TlvTag kTagHwGates = 0x04;
constexpr TlvTag kTagHwSpeedup = 0x05;
constexpr TlvTag kTagHwDriver = 0x06;
constexpr TlvTag kTagHwActive = 0x07;

std::vector<std::byte> SaveOneShip(wli::Ship& ship) {
  TlvWriter w;
  w.PutU64(kTagShipNode, ship.id());
  w.PutU32(kTagShipClass, static_cast<std::uint32_t>(ship.ship_class()));
  w.PutU32(kTagShipHonest, ship.honest() ? 1 : 0);
  w.PutNested(kTagShipRng, SaveRng(ship.rng()));
  w.PutU64(kTagShipConsumed, ship.shuttles_consumed());
  w.PutU64(kTagShipForwarded, ship.shuttles_forwarded());
  w.PutU64(kTagShipExecutions, ship.code_executions());
  w.PutU64(kTagShipMisses, ship.code_misses());

  // Class activity, sorted for deterministic bytes.
  std::map<int, double> activity(ship.class_activity().begin(),
                                 ship.class_activity().end());
  for (const auto& [cls, value] : activity) {
    TlvWriter inner;
    inner.PutU64(kTagActivityClass, static_cast<std::uint64_t>(cls));
    inner.PutDouble(kTagActivityValue, value);
    w.PutNested(kTagShipActivity, inner.Finish());
  }

  const node::NodeOs& os = ship.os();
  w.PutU32(kTagShipRoleCurrent,
           static_cast<std::uint32_t>(os.current_role()));
  w.PutU32(kTagShipRoleNext, static_cast<std::uint32_t>(os.next_step()));
  w.PutU64(kTagShipRoleSwitches, os.role_switches());
  w.PutU64(kTagShipEpochFuel, os.resources().epoch_fuel_used());
  w.PutU64(kTagShipTotalFuel, os.resources().total_fuel_used());
  w.PutU64(kTagShipMemory, os.resources().memory_used());
  w.PutU32(kTagShipPending, os.resources().pending_shuttles());

  for (const wli::Fact& fact : ship.facts().AllFacts()) {
    TlvWriter inner;
    inner.PutU64(kTagFactKey, fact.key);
    inner.PutU64(kTagFactValue, static_cast<std::uint64_t>(fact.value));
    inner.PutDouble(kTagFactWeight, fact.weight);
    inner.PutU32(kTagFactTouches, fact.touches_in_window);
    inner.PutU64(kTagFactLastTouch, fact.last_touch);
    inner.PutU64(kTagFactCreated, fact.created);
    w.PutNested(kTagShipFact, inner.Finish());
  }
  w.PutU64(kTagShipFactWindow, ship.facts().window_start());
  w.PutU64(kTagShipFactEvictions, ship.facts().total_evictions());
  w.PutU64(kTagShipFactExpirations, ship.facts().total_expirations());

  for (const wli::NetFunction& fn : ship.functions().functions()) {
    wli::KnowledgeQuantum kq;
    kq.function = fn;
    w.PutNested(kTagShipFunction, wli::EncodeKnowledgeQuantum(kq));
  }

  const wli::CongruenceTracker::RawState cong = ship.congruence().SaveState();
  {
    TlvWriter inner;
    inner.PutU32(kTagCongPredicted, cong.predicted);
    inner.PutDouble(kTagCongScore, cong.score);
    inner.PutU64(kTagCongObservations, cong.observations);
    for (const auto& [iface, weight] : cong.votes) {
      TlvWriter vw;
      vw.PutU32(kTagVoteInterface, iface);
      vw.PutDouble(kTagVoteWeight, weight);
      inner.PutNested(kTagCongVote, vw.Finish());
    }
    w.PutNested(kTagShipCongruence, inner.Finish());
  }

  // Code cache: inline images MRU-first; restore Put()s them LRU-first.
  node::NodeOs& mutable_os = ship.os();
  vm::CodeCache& cache = mutable_os.code_cache();
  for (Digest digest : cache.LruDigests()) {
    if (const vm::Program* program = cache.Peek(digest); program != nullptr) {
      w.PutNested(kTagShipCachedProgram, program->Serialize());
    }
  }
  w.PutU64(kTagShipCacheHits, cache.hits());
  w.PutU64(kTagShipCacheMisses, cache.misses());

  // EEs in id order so restore recreates them with identical ids.
  std::vector<const node::ExecutionEnvironment*> ees;
  for (const auto& [cls, ee] : os.ees()) ees.push_back(ee.get());
  std::sort(ees.begin(), ees.end(),
            [](const auto* a, const auto* b) { return a->id() < b->id(); });
  for (const node::ExecutionEnvironment* ee : ees) {
    TlvWriter inner;
    inner.PutU32(kTagEeId, ee->id());
    inner.PutU32(kTagEeClass, static_cast<std::uint32_t>(ee->function_class()));
    inner.PutU32(kTagEeBinding, static_cast<std::uint32_t>(ee->binding()));
    for (Digest digest : ee->residents()) {
      inner.PutU64(kTagEeResident, digest);
    }
    inner.PutU64(kTagEeInvocations, ee->invocations());
    inner.PutU64(kTagEeFaults, ee->faults());
    inner.PutU64(kTagEeFuel, ee->fuel_consumed());
    w.PutNested(kTagShipEe, inner.Finish());
  }

  for (const node::HardwarePlane::Slot& slot : os.hardware().slots()) {
    TlvWriter inner;
    inner.PutU32(kTagHwId, slot.module.module_id);
    inner.PutString(kTagHwName, slot.module.name);
    inner.PutU32(kTagHwClass,
                 static_cast<std::uint32_t>(slot.module.accelerates));
    inner.PutU32(kTagHwGates, slot.module.gate_count);
    inner.PutDouble(kTagHwSpeedup, slot.module.speedup);
    inner.PutU64(kTagHwDriver, slot.module.driver_digest);
    inner.PutU32(kTagHwActive, slot.driver_active ? 1 : 0);
    w.PutNested(kTagShipHwModule, inner.Finish());
  }
  w.PutU64(kTagShipHwReconfigs, os.hardware().reconfigurations());
  return w.Finish();
}

Status LoadOneShip(std::span<const std::byte> bytes,
                   wli::WanderingNetwork& network) {
  TlvReader r(bytes);

  net::NodeId node = net::kInvalidNode;
  std::uint32_t ship_class_raw = 0;
  bool honest = true;
  std::span<const std::byte> rng_payload;
  std::uint64_t consumed = 0, forwarded = 0, executions = 0, misses = 0;
  std::unordered_map<int, double> activity;
  std::uint32_t role_current = 0, role_next = 0;
  std::uint64_t role_switches = 0;
  std::uint64_t epoch_fuel = 0, total_fuel = 0, memory = 0;
  std::uint32_t pending = 0;
  std::vector<wli::Fact> facts;
  sim::TimePoint fact_window = 0;
  std::uint64_t fact_evictions = 0, fact_expirations = 0;
  std::vector<wli::NetFunction> functions;
  wli::CongruenceTracker::RawState congruence;
  std::vector<vm::Program> cached_programs;  // MRU-first
  std::uint64_t cache_hits = 0, cache_misses = 0;
  struct EeSpec {
    std::uint32_t id = 0;
    node::SecondLevelClass cls = node::SecondLevelClass::kSupplementary;
    node::RoleBinding binding = node::RoleBinding::kAuxiliary;
    std::vector<Digest> residents;
    std::uint64_t invocations = 0, faults = 0, fuel = 0;
  };
  std::vector<EeSpec> ees;
  struct HwSpec {
    node::HardwareModule module;
    bool active = false;
  };
  std::vector<HwSpec> hw_modules;
  std::uint64_t hw_reconfigs = 0;

  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagShipNode:
        node = static_cast<net::NodeId>(rec->AsU64());
        break;
      case kTagShipClass: ship_class_raw = rec->AsU32(); break;
      case kTagShipHonest: honest = rec->AsU32() != 0; break;
      case kTagShipRng: rng_payload = rec->payload; break;
      case kTagShipConsumed: consumed = rec->AsU64(); break;
      case kTagShipForwarded: forwarded = rec->AsU64(); break;
      case kTagShipExecutions: executions = rec->AsU64(); break;
      case kTagShipMisses: misses = rec->AsU64(); break;
      case kTagShipActivity: {
        TlvReader inner(rec->payload);
        int cls = 0;
        double value = 0.0;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          if (f->tag == kTagActivityClass) {
            cls = static_cast<int>(f->AsU64());
          }
          if (f->tag == kTagActivityValue) value = f->AsDouble();
        }
        activity[cls] = value;
        break;
      }
      case kTagShipRoleCurrent: role_current = rec->AsU32(); break;
      case kTagShipRoleNext: role_next = rec->AsU32(); break;
      case kTagShipRoleSwitches: role_switches = rec->AsU64(); break;
      case kTagShipEpochFuel: epoch_fuel = rec->AsU64(); break;
      case kTagShipTotalFuel: total_fuel = rec->AsU64(); break;
      case kTagShipMemory: memory = rec->AsU64(); break;
      case kTagShipPending: pending = rec->AsU32(); break;
      case kTagShipFact: {
        TlvReader inner(rec->payload);
        wli::Fact fact;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagFactKey: fact.key = f->AsU64(); break;
            case kTagFactValue:
              fact.value = static_cast<std::int64_t>(f->AsU64());
              break;
            case kTagFactWeight: fact.weight = f->AsDouble(); break;
            case kTagFactTouches: fact.touches_in_window = f->AsU32(); break;
            case kTagFactLastTouch: fact.last_touch = f->AsU64(); break;
            case kTagFactCreated: fact.created = f->AsU64(); break;
            default: break;
          }
        }
        facts.push_back(fact);
        break;
      }
      case kTagShipFactWindow: fact_window = rec->AsU64(); break;
      case kTagShipFactEvictions: fact_evictions = rec->AsU64(); break;
      case kTagShipFactExpirations: fact_expirations = rec->AsU64(); break;
      case kTagShipFunction: {
        auto kq = wli::DecodeKnowledgeQuantum(rec->payload);
        if (!kq.ok()) return kq.status();
        functions.push_back(kq->function);
        break;
      }
      case kTagShipCongruence: {
        TlvReader inner(rec->payload);
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagCongPredicted: congruence.predicted = f->AsU32(); break;
            case kTagCongScore: congruence.score = f->AsDouble(); break;
            case kTagCongObservations:
              congruence.observations = f->AsU64();
              break;
            case kTagCongVote: {
              TlvReader vr(f->payload);
              wli::InterfaceId iface = 0;
              double weight = 0.0;
              while (vr.HasNext()) {
                auto vf = vr.Next();
                if (!vf.ok()) return vf.status();
                if (vf->tag == kTagVoteInterface) iface = vf->AsU32();
                if (vf->tag == kTagVoteWeight) weight = vf->AsDouble();
              }
              congruence.votes[iface] = weight;
              break;
            }
            default: break;
          }
        }
        break;
      }
      case kTagShipCachedProgram: {
        auto program = vm::Program::Deserialize(rec->payload);
        if (!program.ok()) return program.status();
        cached_programs.push_back(*std::move(program));
        break;
      }
      case kTagShipCacheHits: cache_hits = rec->AsU64(); break;
      case kTagShipCacheMisses: cache_misses = rec->AsU64(); break;
      case kTagShipEe: {
        TlvReader inner(rec->payload);
        EeSpec spec;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagEeId: spec.id = f->AsU32(); break;
            case kTagEeClass: {
              auto cls = CheckClass(f->AsU32());
              if (!cls.ok()) return cls.status();
              spec.cls = *cls;
              break;
            }
            case kTagEeBinding: {
              const std::uint32_t binding = f->AsU32();
              if (binding >
                  static_cast<std::uint32_t>(node::RoleBinding::kAuxiliary)) {
                return BadPayload("EE binding out of range");
              }
              spec.binding = static_cast<node::RoleBinding>(binding);
              break;
            }
            case kTagEeResident: spec.residents.push_back(f->AsU64()); break;
            case kTagEeInvocations: spec.invocations = f->AsU64(); break;
            case kTagEeFaults: spec.faults = f->AsU64(); break;
            case kTagEeFuel: spec.fuel = f->AsU64(); break;
            default: break;
          }
        }
        ees.push_back(std::move(spec));
        break;
      }
      case kTagShipHwModule: {
        TlvReader inner(rec->payload);
        HwSpec spec;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagHwId: spec.module.module_id = f->AsU32(); break;
            case kTagHwName: spec.module.name = f->AsString(); break;
            case kTagHwClass: {
              auto cls = CheckClass(f->AsU32());
              if (!cls.ok()) return cls.status();
              spec.module.accelerates = *cls;
              break;
            }
            case kTagHwGates: spec.module.gate_count = f->AsU32(); break;
            case kTagHwSpeedup: spec.module.speedup = f->AsDouble(); break;
            case kTagHwDriver: spec.module.driver_digest = f->AsU64(); break;
            case kTagHwActive: spec.active = f->AsU32() != 0; break;
            default: break;
          }
        }
        hw_modules.push_back(std::move(spec));
        break;
      }
      case kTagShipHwReconfigs: hw_reconfigs = rec->AsU64(); break;
      default:
        break;
    }
  }

  if (node == net::kInvalidNode) return BadPayload("ship record missing node");
  if (ship_class_raw >
      static_cast<std::uint32_t>(node::ShipClass::kAgent)) {
    return BadPayload("ship class out of range");
  }
  auto current = CheckRole(role_current);
  if (!current.ok()) return current.status();
  auto next = CheckRole(role_next);
  if (!next.ok()) return next.status();
  for (const wli::NetFunction& fn : functions) {
    if (static_cast<std::size_t>(fn.role) >=
        static_cast<std::size_t>(node::FirstLevelRole::kRoleCount)) {
      return BadPayload("net function role out of range");
    }
  }

  wli::Ship& ship =
      network.AddShip(node, static_cast<node::ShipClass>(ship_class_raw));
  ship.set_honest(honest);
  if (!rng_payload.empty()) {
    if (Status s = LoadRng(rng_payload, ship.rng()); !s.ok()) return s;
  }
  ship.RestoreCounters(consumed, forwarded, executions, misses);
  ship.RestoreClassActivity(std::move(activity));
  ship.os().RestoreRoleState(*current, *next, role_switches);
  ship.os().resources().RestoreUsage(epoch_fuel, total_fuel, memory, pending);
  ship.facts().RestoreState(facts, fact_window, fact_evictions,
                            fact_expirations);
  for (wli::NetFunction& fn : functions) {
    ship.functions().Install(std::move(fn));
  }
  ship.congruence().RestoreState(std::move(congruence));

  vm::CodeCache& cache = ship.os().code_cache();
  for (auto it = cached_programs.rbegin(); it != cached_programs.rend();
       ++it) {
    if (Status s = cache.Put(*it); !s.ok()) return s;
  }
  cache.RestoreCounters(cache_hits, cache_misses);

  std::sort(ees.begin(), ees.end(),
            [](const EeSpec& a, const EeSpec& b) { return a.id < b.id; });
  const std::uint32_t max_resident =
      ship.os().resources().quota().max_resident_programs;
  for (const EeSpec& spec : ees) {
    node::ExecutionEnvironment& ee =
        ship.os().GetOrCreateEe(spec.cls, spec.binding);
    if (ee.id() != spec.id) {
      return Internal("EE id mismatch on restore (snapshot id " +
                      std::to_string(spec.id) + ", recreated id " +
                      std::to_string(ee.id()) + ")");
    }
    ee.set_binding(spec.binding);
    for (Digest digest : spec.residents) {
      if (Status s = ee.AddResident(digest, max_resident); !s.ok()) return s;
    }
    ee.RestoreUsage(spec.invocations, spec.faults, spec.fuel);
  }

  for (const HwSpec& spec : hw_modules) {
    auto latency = ship.os().hardware().Install(spec.module);
    if (!latency.ok()) return latency.status();
    if (spec.active) {
      if (Status s = ship.os().hardware().ActivateDriver(
              spec.module.module_id, spec.module.driver_digest);
          !s.ok()) {
        return s;
      }
    }
  }
  ship.os().hardware().RestoreReconfigurations(hw_reconfigs);
  return OkStatus();
}

}  // namespace

std::vector<std::byte> SaveShips(wli::WanderingNetwork& network) {
  TlvWriter w;
  network.ForEachShip(
      [&w](wli::Ship& ship) { w.PutNested(kTagShip, SaveOneShip(ship)); });
  return w.Finish();
}

Status LoadShips(std::span<const std::byte> payload,
                 wli::WanderingNetwork& network) {
  if (network.ship_count() != 0) {
    return FailedPrecondition("ship restore requires a network with no ships");
  }
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag != kTagShip) continue;
    if (Status s = LoadOneShip(rec->payload, network); !s.ok()) return s;
  }
  return OkStatus();
}

// ---- Placements -----------------------------------------------------------

namespace {
constexpr TlvTag kTagPlacement = 0x01;
constexpr TlvTag kTagPlacementFunction = 0x01;
constexpr TlvTag kTagPlacementHost = 0x02;
constexpr TlvTag kTagPlacementRole = 0x03;
}  // namespace

std::vector<std::byte> SavePlacements(const wli::WanderingNetwork& network) {
  TlvWriter w;
  for (const auto& [function, host] : network.placements()) {
    TlvWriter inner;
    inner.PutU64(kTagPlacementFunction, function);
    inner.PutU64(kTagPlacementHost, host);
    const auto role_it = network.placement_roles().find(function);
    const node::FirstLevelRole role =
        role_it != network.placement_roles().end()
            ? role_it->second
            : node::FirstLevelRole::kCaching;
    inner.PutU32(kTagPlacementRole, static_cast<std::uint32_t>(role));
    w.PutNested(kTagPlacement, inner.Finish());
  }
  return w.Finish();
}

Status LoadPlacements(std::span<const std::byte> payload,
                      wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag != kTagPlacement) continue;
    TlvReader inner(rec->payload);
    wli::FunctionId function = 0;
    net::NodeId host = net::kInvalidNode;
    std::uint32_t role_raw = 0;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      if (f->tag == kTagPlacementFunction) function = f->AsU64();
      if (f->tag == kTagPlacementHost) {
        host = static_cast<net::NodeId>(f->AsU64());
      }
      if (f->tag == kTagPlacementRole) role_raw = f->AsU32();
    }
    auto role = CheckRole(role_raw);
    if (!role.ok()) return role.status();
    network.RestorePlacement(function, host, *role);
  }
  return OkStatus();
}

// ---- Ledger ---------------------------------------------------------------

namespace {
constexpr TlvTag kTagLedgerFunction = 0x01;
constexpr TlvTag kTagLedgerFunctionId = 0x01;
constexpr TlvTag kTagLedgerEpisode = 0x02;
constexpr TlvTag kTagEpisodeHost = 0x01;
constexpr TlvTag kTagEpisodeFrom = 0x02;
constexpr TlvTag kTagEpisodeTo = 0x03;
constexpr TlvTag kTagEpisodeUses = 0x04;
}  // namespace

std::vector<std::byte> SaveLedger(const wli::WanderingNetwork& network) {
  TlvWriter w;
  for (const auto& [function, episodes] : network.ledger().history()) {
    TlvWriter inner;
    inner.PutU64(kTagLedgerFunctionId, function);
    for (const auto& episode : episodes) {
      TlvWriter ew;
      ew.PutU64(kTagEpisodeHost, episode.host);
      ew.PutU64(kTagEpisodeFrom, episode.from);
      ew.PutU64(kTagEpisodeTo, episode.to);
      ew.PutU64(kTagEpisodeUses, episode.uses);
      inner.PutNested(kTagLedgerEpisode, ew.Finish());
    }
    w.PutNested(kTagLedgerFunction, inner.Finish());
  }
  return w.Finish();
}

Status LoadLedger(std::span<const std::byte> payload,
                  wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::map<wli::FunctionId, std::vector<wli::FunctionUsageLedger::Episode>>
      history;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag != kTagLedgerFunction) continue;
    TlvReader inner(rec->payload);
    wli::FunctionId function = 0;
    std::vector<wli::FunctionUsageLedger::Episode> episodes;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      if (f->tag == kTagLedgerFunctionId) function = f->AsU64();
      if (f->tag == kTagLedgerEpisode) {
        TlvReader er(f->payload);
        wli::FunctionUsageLedger::Episode episode;
        while (er.HasNext()) {
          auto ef = er.Next();
          if (!ef.ok()) return ef.status();
          switch (ef->tag) {
            case kTagEpisodeHost:
              episode.host = static_cast<net::NodeId>(ef->AsU64());
              break;
            case kTagEpisodeFrom: episode.from = ef->AsU64(); break;
            case kTagEpisodeTo: episode.to = ef->AsU64(); break;
            case kTagEpisodeUses: episode.uses = ef->AsU64(); break;
            default: break;
          }
        }
        episodes.push_back(episode);
      }
    }
    history[function] = std::move(episodes);
  }
  network.ledger().RestoreState(std::move(history));
  return OkStatus();
}

// ---- Reputation -----------------------------------------------------------

namespace {
constexpr TlvTag kTagReports = 0x01;
constexpr TlvTag kTagRepEntry = 0x02;
constexpr TlvTag kTagRepNode = 0x01;
constexpr TlvTag kTagRepScore = 0x02;
constexpr TlvTag kTagRepExcluded = 0x03;
}  // namespace

std::vector<std::byte> SaveReputation(const wli::WanderingNetwork& network) {
  const wli::ReputationSystem& reputation =
      const_cast<wli::WanderingNetwork&>(network).reputation();
  TlvWriter w;
  w.PutU64(kTagReports, reputation.reports());
  for (const auto& [node, entry] : reputation.entries()) {
    TlvWriter inner;
    inner.PutU64(kTagRepNode, node);
    inner.PutDouble(kTagRepScore, entry.score);
    inner.PutU32(kTagRepExcluded, entry.excluded ? 1 : 0);
    w.PutNested(kTagRepEntry, inner.Finish());
  }
  return w.Finish();
}

Status LoadReputation(std::span<const std::byte> payload,
                      wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t reports = 0;
  std::map<net::NodeId, wli::ReputationSystem::Entry> entries;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagReports) reports = rec->AsU64();
    if (rec->tag == kTagRepEntry) {
      TlvReader inner(rec->payload);
      net::NodeId node = net::kInvalidNode;
      wli::ReputationSystem::Entry entry{0.0, false};
      while (inner.HasNext()) {
        auto f = inner.Next();
        if (!f.ok()) return f.status();
        if (f->tag == kTagRepNode) node = static_cast<net::NodeId>(f->AsU64());
        if (f->tag == kTagRepScore) entry.score = f->AsDouble();
        if (f->tag == kTagRepExcluded) entry.excluded = f->AsU32() != 0;
      }
      entries[node] = entry;
    }
  }
  network.reputation().RestoreState(std::move(entries), reports);
  return OkStatus();
}

// ---- Clusters -------------------------------------------------------------

namespace {
constexpr TlvTag kTagAffinity = 0x01;
constexpr TlvTag kTagAffinityA = 0x01;
constexpr TlvTag kTagAffinityB = 0x02;
constexpr TlvTag kTagAffinityValue = 0x03;
}  // namespace

std::vector<std::byte> SaveClusters(const wli::WanderingNetwork& network) {
  const wli::ClusterManager& clusters =
      const_cast<wli::WanderingNetwork&>(network).clusters();
  TlvWriter w;
  for (const auto& [pair, affinity] : clusters.affinities()) {
    TlvWriter inner;
    inner.PutU64(kTagAffinityA, pair.first);
    inner.PutU64(kTagAffinityB, pair.second);
    inner.PutDouble(kTagAffinityValue, affinity);
    w.PutNested(kTagAffinity, inner.Finish());
  }
  return w.Finish();
}

Status LoadClusters(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::map<wli::ClusterManager::Pair, double> affinities;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag != kTagAffinity) continue;
    TlvReader inner(rec->payload);
    net::NodeId a = net::kInvalidNode, b = net::kInvalidNode;
    double value = 0.0;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      if (f->tag == kTagAffinityA) a = static_cast<net::NodeId>(f->AsU64());
      if (f->tag == kTagAffinityB) b = static_cast<net::NodeId>(f->AsU64());
      if (f->tag == kTagAffinityValue) value = f->AsDouble();
    }
    affinities[{a, b}] = value;
  }
  network.clusters().RestoreState(std::move(affinities));
  return OkStatus();
}

// ---- Demand ---------------------------------------------------------------

namespace {
constexpr TlvTag kTagDemandEntry = 0x01;
constexpr TlvTag kTagDemandNode = 0x01;
constexpr TlvTag kTagDemandRole = 0x02;
constexpr TlvTag kTagDemandValue = 0x03;
}  // namespace

std::vector<std::byte> SaveDemand(const wli::WanderingNetwork& network) {
  const wli::DemandTracker& demand =
      const_cast<wli::WanderingNetwork&>(network).demand();
  TlvWriter w;
  for (const auto& [key, value] : demand.demand()) {
    TlvWriter inner;
    inner.PutU64(kTagDemandNode, key.first);
    inner.PutU32(kTagDemandRole, static_cast<std::uint32_t>(key.second));
    inner.PutDouble(kTagDemandValue, value);
    w.PutNested(kTagDemandEntry, inner.Finish());
  }
  return w.Finish();
}

Status LoadDemand(std::span<const std::byte> payload,
                  wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::map<wli::DemandTracker::Key, double> demand;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag != kTagDemandEntry) continue;
    TlvReader inner(rec->payload);
    net::NodeId node = net::kInvalidNode;
    std::uint32_t role_raw = 0;
    double value = 0.0;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      if (f->tag == kTagDemandNode) node = static_cast<net::NodeId>(f->AsU64());
      if (f->tag == kTagDemandRole) role_raw = f->AsU32();
      if (f->tag == kTagDemandValue) value = f->AsDouble();
    }
    auto role = CheckRole(role_raw);
    if (!role.ok()) return role.status();
    demand[{node, *role}] = value;
  }
  network.demand().RestoreState(std::move(demand));
  return OkStatus();
}

// ---- Overlays -------------------------------------------------------------

namespace {
constexpr TlvTag kTagOverlayNextId = 0x01;
constexpr TlvTag kTagOverlaySpawned = 0x02;
constexpr TlvTag kTagOverlay = 0x03;
constexpr TlvTag kTagClassOverlay = 0x04;
constexpr TlvTag kTagOverlayId = 0x01;
constexpr TlvTag kTagOverlayName = 0x02;
constexpr TlvTag kTagOverlayMember = 0x03;
constexpr TlvTag kTagOverlayQos = 0x04;
constexpr TlvTag kTagOverlayLink = 0x05;
constexpr TlvTag kTagVLinkA = 0x01;
constexpr TlvTag kTagVLinkB = 0x02;
constexpr TlvTag kTagVLinkLatency = 0x03;
constexpr TlvTag kTagVLinkPathNode = 0x04;
constexpr TlvTag kTagClassOverlayClass = 0x01;
constexpr TlvTag kTagClassOverlayId = 0x02;
}  // namespace

std::vector<std::byte> SaveOverlays(const wli::WanderingNetwork& network) {
  const wli::OverlayManager& overlays =
      const_cast<wli::WanderingNetwork&>(network).overlays();
  TlvWriter w;
  w.PutU32(kTagOverlayNextId, overlays.next_id());
  w.PutU64(kTagOverlaySpawned, overlays.spawned_total());
  for (const auto& [id, overlay] : overlays.overlays()) {
    TlvWriter inner;
    inner.PutU32(kTagOverlayId, id);
    inner.PutString(kTagOverlayName, overlay.name);
    for (net::NodeId member : overlay.members) {
      inner.PutU64(kTagOverlayMember, member);
    }
    inner.PutU64(kTagOverlayQos, overlay.qos_latency_bound);
    for (const wli::VirtualLink& link : overlay.links) {
      TlvWriter lw;
      lw.PutU64(kTagVLinkA, link.a);
      lw.PutU64(kTagVLinkB, link.b);
      lw.PutU64(kTagVLinkLatency, link.path_latency);
      for (net::NodeId hop : link.physical_path) {
        lw.PutU64(kTagVLinkPathNode, hop);
      }
      inner.PutNested(kTagOverlayLink, lw.Finish());
    }
    w.PutNested(kTagOverlay, inner.Finish());
  }
  for (const auto& [cls, overlay] : network.class_overlays()) {
    TlvWriter inner;
    inner.PutU32(kTagClassOverlayClass, static_cast<std::uint32_t>(cls));
    inner.PutU32(kTagClassOverlayId, overlay);
    w.PutNested(kTagClassOverlay, inner.Finish());
  }
  return w.Finish();
}

Status LoadOverlays(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  wli::OverlayId next_id = 1;
  std::uint64_t spawned = 0;
  std::map<wli::OverlayId, wli::Overlay> overlays;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagOverlayNextId: next_id = rec->AsU32(); break;
      case kTagOverlaySpawned: spawned = rec->AsU64(); break;
      case kTagOverlay: {
        TlvReader inner(rec->payload);
        wli::Overlay overlay;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagOverlayId: overlay.id = f->AsU32(); break;
            case kTagOverlayName: overlay.name = f->AsString(); break;
            case kTagOverlayMember:
              overlay.members.push_back(
                  static_cast<net::NodeId>(f->AsU64()));
              break;
            case kTagOverlayQos:
              overlay.qos_latency_bound = f->AsU64();
              break;
            case kTagOverlayLink: {
              TlvReader lr(f->payload);
              wli::VirtualLink link;
              while (lr.HasNext()) {
                auto lf = lr.Next();
                if (!lf.ok()) return lf.status();
                switch (lf->tag) {
                  case kTagVLinkA:
                    link.a = static_cast<net::NodeId>(lf->AsU64());
                    break;
                  case kTagVLinkB:
                    link.b = static_cast<net::NodeId>(lf->AsU64());
                    break;
                  case kTagVLinkLatency:
                    link.path_latency = lf->AsU64();
                    break;
                  case kTagVLinkPathNode:
                    link.physical_path.push_back(
                        static_cast<net::NodeId>(lf->AsU64()));
                    break;
                  default: break;
                }
              }
              overlay.links.push_back(std::move(link));
              break;
            }
            default: break;
          }
        }
        overlays[overlay.id] = std::move(overlay);
        break;
      }
      case kTagClassOverlay: {
        TlvReader inner(rec->payload);
        std::uint32_t cls_raw = 0;
        wli::OverlayId overlay = 0;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          if (f->tag == kTagClassOverlayClass) cls_raw = f->AsU32();
          if (f->tag == kTagClassOverlayId) overlay = f->AsU32();
        }
        auto cls = CheckClass(cls_raw);
        if (!cls.ok()) return cls.status();
        network.RestoreClassOverlay(*cls, overlay);
        break;
      }
      default:
        break;
    }
  }
  network.overlays().RestoreState(std::move(overlays), next_id, spawned);
  return OkStatus();
}

// ---- Morphing / feedback / network counters -------------------------------

namespace {
constexpr TlvTag kTagMorphAttempted = 0x01;
constexpr TlvTag kTagMorphFailed = 0x02;
constexpr TlvTag kTagFbPublished = 0x01;
constexpr TlvTag kTagFbDelivered = 0x02;
constexpr TlvTag kTagFbSuppressed = 0x03;
constexpr TlvTag kTagWnMigrations = 0x01;
constexpr TlvTag kTagWnEmerged = 0x02;
constexpr TlvTag kTagWnPulses = 0x03;
constexpr TlvTag kTagWnNextFunction = 0x04;
}  // namespace

std::vector<std::byte> SaveMorphing(const wli::WanderingNetwork& network) {
  const wli::MorphingEngine& morphing =
      const_cast<wli::WanderingNetwork&>(network).morphing();
  TlvWriter w;
  w.PutU64(kTagMorphAttempted, morphing.morphs_attempted());
  w.PutU64(kTagMorphFailed, morphing.morphs_failed());
  return w.Finish();
}

Status LoadMorphing(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t attempted = 0, failed = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagMorphAttempted) attempted = rec->AsU64();
    if (rec->tag == kTagMorphFailed) failed = rec->AsU64();
  }
  network.morphing().RestoreCounters(attempted, failed);
  return OkStatus();
}

std::vector<std::byte> SaveFeedback(const wli::WanderingNetwork& network) {
  const wli::FeedbackBus& feedback =
      const_cast<wli::WanderingNetwork&>(network).feedback();
  TlvWriter w;
  w.PutU64(kTagFbPublished, feedback.published());
  w.PutU64(kTagFbDelivered, feedback.delivered());
  w.PutU64(kTagFbSuppressed, feedback.suppressed());
  return w.Finish();
}

Status LoadFeedback(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t published = 0, delivered = 0, suppressed = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagFbPublished) published = rec->AsU64();
    if (rec->tag == kTagFbDelivered) delivered = rec->AsU64();
    if (rec->tag == kTagFbSuppressed) suppressed = rec->AsU64();
  }
  network.feedback().RestoreCounters(published, delivered, suppressed);
  return OkStatus();
}

std::vector<std::byte> SaveNetworkCounters(
    const wli::WanderingNetwork& network) {
  TlvWriter w;
  w.PutU64(kTagWnMigrations, network.migrations_executed());
  w.PutU64(kTagWnEmerged, network.functions_emerged());
  w.PutU64(kTagWnPulses, network.pulses());
  w.PutU64(kTagWnNextFunction, network.next_function_id());
  return w.Finish();
}

Status LoadNetworkCounters(std::span<const std::byte> payload,
                           wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t migrations = 0, emerged = 0, pulses = 0;
  wli::FunctionId next_function = 1;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagWnMigrations: migrations = rec->AsU64(); break;
      case kTagWnEmerged: emerged = rec->AsU64(); break;
      case kTagWnPulses: pulses = rec->AsU64(); break;
      case kTagWnNextFunction: next_function = rec->AsU64(); break;
      default: break;
    }
  }
  network.RestoreCounters(migrations, emerged, pulses, next_function);
  return OkStatus();
}

// ---- Memory watermarks ------------------------------------------------------

namespace {
constexpr TlvTag kTagPeakQueueHeapBytes = 0x01;
constexpr TlvTag kTagPeakPoolRetainedBytes = 0x02;
}  // namespace

std::vector<std::byte> SaveMemPeaks(const wli::WanderingNetwork& network) {
  auto& mutable_network = const_cast<wli::WanderingNetwork&>(network);
  TlvWriter w;
  w.PutU64(kTagPeakQueueHeapBytes,
           mutable_network.simulator().queue_peak_heap_bytes());
  w.PutU64(kTagPeakPoolRetainedBytes,
           network.shuttle_pool().peak_retained_bytes());
  return w.Finish();
}

Status LoadMemPeaks(std::span<const std::byte> payload,
                    wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t queue_peak = 0;
  std::optional<std::uint64_t> pool_peak;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagPeakQueueHeapBytes) queue_peak = rec->AsU64();
    if (rec->tag == kTagPeakPoolRetainedBytes) pool_peak = rec->AsU64();
  }
  // This section loads last, after every pending event has been
  // rescheduled, so the monotone restore folds the saved peak into whatever
  // the rebuild itself already reached. Pre-observatory snapshots have no
  // section at all and simply keep the fresh world's own watermarks.
  network.simulator().RestoreQueuePeakHeapBytes(queue_peak);
  if (pool_peak.has_value()) {
    network.shuttle_pool().RestorePeakRetainedBytes(
        static_cast<std::size_t>(*pool_peak));
  }
  return OkStatus();
}

// ---- Latency Observatory ---------------------------------------------------

namespace {
// One kTagLatSketch nested record per non-empty sketch; the window delivery
// sketch rides under its own tag so a mid-window capture still round-trips.
constexpr TlvTag kTagLatSketch = 0x01;
constexpr TlvTag kTagLatWindowSketch = 0x02;
// inner
constexpr TlvTag kTagLatStage = 0x01;
constexpr TlvTag kTagLatIndex = 0x02;
constexpr TlvTag kTagLatCount = 0x03;
constexpr TlvTag kTagLatSum = 0x04;
// Sparse bucket pairs: an index immediately followed by its occupancy.
constexpr TlvTag kTagLatBucketIdx = 0x05;
constexpr TlvTag kTagLatBucketN = 0x06;

std::vector<std::byte> EncodeLatSketch(
    const telemetry::lat::LatencySketch& sketch, std::uint32_t stage,
    std::uint32_t index) {
  TlvWriter inner;
  inner.PutU32(kTagLatStage, stage);
  inner.PutU32(kTagLatIndex, index);
  inner.PutU64(kTagLatCount, sketch.count());
  inner.PutU64(kTagLatSum, sketch.sum());
  const auto& buckets = sketch.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    inner.PutU32(kTagLatBucketIdx, static_cast<std::uint32_t>(i));
    inner.PutU64(kTagLatBucketN, buckets[i]);
  }
  return inner.Finish();
}

Status DecodeLatSketch(std::span<const std::byte> payload,
                       telemetry::lat::LatencySketch& sketch,
                       std::uint32_t& stage, std::uint32_t& index) {
  TlvReader inner(payload);
  sketch.Reset();
  std::uint64_t count = 0, sum = 0;
  std::optional<std::uint32_t> pending_idx;
  while (inner.HasNext()) {
    auto f = inner.Next();
    if (!f.ok()) return f.status();
    switch (f->tag) {
      case kTagLatStage: stage = f->AsU32(); break;
      case kTagLatIndex: index = f->AsU32(); break;
      case kTagLatCount: count = f->AsU64(); break;
      case kTagLatSum: sum = f->AsU64(); break;
      case kTagLatBucketIdx: pending_idx = f->AsU32(); break;
      case kTagLatBucketN:
        if (!pending_idx.has_value()) {
          return BadPayload("latency bucket occupancy without an index");
        }
        sketch.RestoreBucket(*pending_idx, f->AsU64());
        pending_idx.reset();
        break;
      default: break;
    }
  }
  sketch.RestoreTotals(count, sum);
  return OkStatus();
}
}  // namespace

std::vector<std::byte> SaveLatency(const wli::WanderingNetwork& network) {
  const telemetry::lat::Lane& lane = network.lat_lane();
  TlvWriter w;
  for (std::size_t stage = 0;
       stage < static_cast<std::size_t>(telemetry::lat::Stage::kCount);
       ++stage) {
    const auto s = static_cast<telemetry::lat::Stage>(stage);
    for (std::size_t index = 0; index < telemetry::lat::StageClassCount(s);
         ++index) {
      const telemetry::lat::LatencySketch& sketch = lane.Sketch(s, index);
      if (sketch.empty()) continue;
      w.PutNested(kTagLatSketch,
                  EncodeLatSketch(sketch, static_cast<std::uint32_t>(stage),
                                  static_cast<std::uint32_t>(index)));
    }
  }
  if (!lane.window_sketch().empty()) {
    w.PutNested(kTagLatWindowSketch,
                EncodeLatSketch(lane.window_sketch(), 0, 0));
  }
  return w.Finish();
}

Status LoadLatency(std::span<const std::byte> payload,
                   wli::WanderingNetwork& network) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  telemetry::lat::Lane& lane = network.lat_lane();
  lane.Reset();
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagLatSketch) {
      telemetry::lat::LatencySketch sketch;
      std::uint32_t stage = 0, index = 0;
      if (Status s = DecodeLatSketch(rec->payload, sketch, stage, index);
          !s.ok()) {
        return s;
      }
      const auto st = static_cast<telemetry::lat::Stage>(stage);
      if (stage >= static_cast<std::uint32_t>(telemetry::lat::Stage::kCount) ||
          index >= telemetry::lat::StageClassCount(st)) {
        return BadPayload("latency sketch coordinates out of range");
      }
      lane.MutableSketch(st, index) = sketch;
    } else if (rec->tag == kTagLatWindowSketch) {
      std::uint32_t stage = 0, index = 0;
      telemetry::lat::LatencySketch sketch;
      if (Status s = DecodeLatSketch(rec->payload, sketch, stage, index);
          !s.ok()) {
        return s;
      }
      lane.mutable_window_sketch() = sketch;
    }
  }
  return OkStatus();
}

}  // namespace viator::genesis
