#include "genesis/manager.h"

#include <algorithm>
#include <utility>

#include "base/hash.h"
#include "genesis/sections.h"

namespace viator::genesis {

GenesisManager::GenesisManager(wli::WanderingNetwork& network,
                               GenesisConfig config)
    : network_(network), config_(config) {}

Status GenesisManager::RegisterExtra(Snapshotable& extra) {
  if (extra.section_id() < kExtraSectionBase) {
    return InvalidArgument("extra section id " +
                           std::to_string(extra.section_id()) +
                           " collides with built-in sections (use "
                           "kExtraSectionBase and above)");
  }
  for (const Snapshotable* existing : extras_) {
    if (existing->section_id() == extra.section_id()) {
      return InvalidArgument("extra section id " +
                             std::to_string(extra.section_id()) +
                             " registered twice");
    }
  }
  extras_.push_back(&extra);
  return OkStatus();
}

bool GenesisManager::IsQuiescent() const {
  if (network_.simulator().PendingEvents() != 0) return false;
  bool quiescent = true;
  network_.ForEachShip([&quiescent](wli::Ship& ship) {
    if (ship.waiting_for_code_count() != 0) quiescent = false;
  });
  return quiescent;
}

std::vector<GenesisManager::BuiltSection> GenesisManager::BuildSections() {
  std::vector<BuiltSection> sections;
  auto add = [&sections](std::uint32_t id, std::vector<std::byte> payload) {
    sections.push_back(BuiltSection{id, 1, std::move(payload)});
  };
  add(kSectionTopology, SaveTopology(network_.topology()));
  add(kSectionClock, SaveClock(network_.simulator()));
  add(kSectionRepository, SaveRepository(network_));
  add(kSectionShips, SaveShips(network_));
  add(kSectionPlacements, SavePlacements(network_));
  add(kSectionLedger, SaveLedger(network_));
  add(kSectionReputation, SaveReputation(network_));
  add(kSectionClusters, SaveClusters(network_));
  add(kSectionDemand, SaveDemand(network_));
  add(kSectionOverlays, SaveOverlays(network_));
  add(kSectionMorphing, SaveMorphing(network_));
  add(kSectionFeedback, SaveFeedback(network_));
  add(kSectionNetworkCounters, SaveNetworkCounters(network_));
  add(kSectionNetworkRng, SaveRng(network_.rng()));
  add(kSectionFabric, SaveFabric(network_));
  add(kSectionStats, SaveStats(network_.stats()));
  add(kSectionTrace, SaveTrace(network_.trace()));
  add(kSectionMemPeaks, SaveMemPeaks(network_));
  add(kSectionLatency, SaveLatency(network_));
  for (const Snapshotable* extra : extras_) {
    sections.push_back(
        BuiltSection{extra->section_id(), extra->section_version(),
                     extra->Save()});
  }
  return sections;
}

Result<std::vector<std::byte>> GenesisManager::Capture(SnapshotKind kind) {
  if (config_.require_quiescent && !IsQuiescent()) {
    return Status(FailedPrecondition(
        "capture requires a quiescent network (pending events or "
        "shuttles waiting for code)"));
  }
  std::vector<BuiltSection> sections = BuildSections();

  SnapshotHeader header;
  header.kind = kind;
  header.sequence = ++sequence_;
  header.base_sequence =
      kind == SnapshotKind::kDelta ? full_sequence_ : 0;
  header.snap_time = network_.simulator().now();
  header.scenario_tag = config_.scenario_tag;

  SnapshotBuilder builder(header);
  std::map<std::uint32_t, std::uint64_t> digests;
  for (BuiltSection& section : sections) {
    const std::uint64_t digest = HashBytes(section.payload);
    digests[section.id] = digest;
    if (kind == SnapshotKind::kDelta) {
      const auto it = full_digests_.find(section.id);
      if (it != full_digests_.end() && it->second == digest) {
        continue;  // unchanged since the base full snapshot
      }
    }
    builder.AddSection(section.id, std::move(section.payload),
                       section.version);
  }
  ++captures_taken_;
  if (kind == SnapshotKind::kFull) {
    full_digests_ = std::move(digests);
    full_sequence_ = header.sequence;
    have_full_ = true;
  }
  return builder.Finish();
}

Result<std::vector<std::byte>> GenesisManager::CaptureFull() {
  return Capture(SnapshotKind::kFull);
}

Result<std::vector<std::byte>> GenesisManager::CaptureDelta() {
  if (!have_full_) {
    return Status(FailedPrecondition(
        "delta capture requires a prior full capture as base"));
  }
  return Capture(SnapshotKind::kDelta);
}

Status GenesisManager::RestoreFull(std::span<const std::byte> bytes) {
  // Validate the entire container (framing, checksum, per-section digests)
  // before touching any state.
  auto snapshot = ParseSnapshot(bytes);
  if (!snapshot.ok()) return snapshot.status();
  if (snapshot->header.kind != SnapshotKind::kFull) {
    return FailedPrecondition(
        "restore requires a full snapshot (merge deltas onto their base "
        "first)");
  }
  if (network_.topology().node_count() != 0 || network_.ship_count() != 0) {
    return FailedPrecondition(
        "restore requires a freshly constructed network (empty topology, "
        "no ships)");
  }
  if (network_.simulator().PendingEvents() != 0) {
    return FailedPrecondition("restore requires an idle simulator");
  }

  // Dependency order: substrate (topology, clock) first, then code, then
  // ships (AddShip forks the network RNG and installs fabric handlers), then
  // engine state, and only then the RNG streams the earlier steps perturbed.
  const ParsedSnapshot& snap = *snapshot;
  struct Step {
    std::uint32_t id;
    Status (*apply)(std::span<const std::byte>, wli::WanderingNetwork&);
  };
  static constexpr Step kSteps[] = {
      {kSectionTopology,
       [](std::span<const std::byte> p, wli::WanderingNetwork& n) {
         return LoadTopology(p, n.topology());
       }},
      {kSectionClock,
       [](std::span<const std::byte> p, wli::WanderingNetwork& n) {
         return LoadClock(p, n.simulator());
       }},
      {kSectionRepository, &LoadRepository},
      {kSectionShips, &LoadShips},
      {kSectionPlacements, &LoadPlacements},
      {kSectionLedger, &LoadLedger},
      {kSectionReputation, &LoadReputation},
      {kSectionClusters, &LoadClusters},
      {kSectionDemand, &LoadDemand},
      {kSectionOverlays, &LoadOverlays},
      {kSectionMorphing, &LoadMorphing},
      {kSectionFeedback, &LoadFeedback},
      {kSectionNetworkCounters, &LoadNetworkCounters},
      {kSectionNetworkRng,
       [](std::span<const std::byte> p, wli::WanderingNetwork& n) {
         return LoadRng(p, n.rng());
       }},
      {kSectionFabric, &LoadFabric},
      {kSectionStats,
       [](std::span<const std::byte> p, wli::WanderingNetwork& n) {
         return LoadStats(p, n.stats());
       }},
      {kSectionTrace,
       [](std::span<const std::byte> p, wli::WanderingNetwork& n) {
         return LoadTrace(p, n.trace());
       }},
      // Last on purpose: by now every pending event has been rescheduled,
      // so the monotone queue-peak restore sits on top of the rebuild.
      {kSectionMemPeaks, &LoadMemPeaks},
      {kSectionLatency, &LoadLatency},
  };
  for (const Step& step : kSteps) {
    const SectionRecord* section = snap.Find(step.id);
    if (section == nullptr) continue;  // absent sections keep fresh state
    if (Status s = step.apply(section->payload, network_); !s.ok()) {
      return Status(s.code(), "restoring section '" + SectionName(step.id) +
                                  "': " + std::string(s.message()));
    }
  }
  for (Snapshotable* extra : extras_) {
    const SectionRecord* section = snap.Find(extra->section_id());
    if (section == nullptr) continue;
    if (section->version != extra->section_version()) {
      return InvalidArgument(
          "extra section '" + extra->section_name() + "' is version " +
          std::to_string(section->version) + " but the registered handler "
          "expects version " + std::to_string(extra->section_version()));
    }
    if (Status s = extra->Load(section->payload); !s.ok()) {
      return Status(s.code(), "restoring section '" + extra->section_name() +
                                  "': " + std::string(s.message()));
    }
  }

  // The restored state is now the delta base: re-derive its digests so
  // CaptureDelta() diffs against what was just applied.
  sequence_ = snap.header.sequence;
  full_sequence_ = snap.header.sequence;
  full_digests_.clear();
  for (const SectionRecord& section : snap.sections) {
    full_digests_[section.id] = section.digest;
  }
  have_full_ = true;
  return OkStatus();
}

void GenesisManager::CheckpointTick(sim::TimePoint until) {
  if (IsQuiescent() || !config_.require_quiescent) {
    auto snapshot = CaptureFull();
    if (snapshot.ok()) {
      checkpoints_.push_back(*std::move(snapshot));
      while (checkpoints_.size() > config_.keep_checkpoints) {
        checkpoints_.pop_front();
      }
      ++checkpoints_taken_;
    } else {
      ++checkpoints_skipped_;
    }
  } else {
    ++checkpoints_skipped_;
  }
  const sim::TimePoint next =
      network_.simulator().now() + config_.checkpoint_cadence;
  if (next <= until) {
    network_.simulator().ScheduleAt(next,
                                    [this, until] { CheckpointTick(until); });
  }
}

void GenesisManager::StartCheckpointing(sim::TimePoint until) {
  const sim::TimePoint first =
      network_.simulator().now() + config_.checkpoint_cadence;
  if (first > until) return;
  network_.simulator().ScheduleAt(first,
                                  [this, until] { CheckpointTick(until); });
}

}  // namespace viator::genesis
