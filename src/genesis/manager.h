// GenesisManager: captures and restores whole-network snapshots.
//
// A manager is bound to one WanderingNetwork. CaptureFull() serializes every
// subsystem into one container; CaptureDelta() re-serializes everything but
// emits only the sections whose content digest changed since the last full
// capture (deltas are cumulative against that full, so any single delta can
// be merged onto its base). RestoreFull() validates the whole container
// first — corrupt input never touches network state — then applies sections
// in dependency order into a *fresh* network (empty topology, no ships,
// idle simulator).
//
// StartCheckpointing() self-schedules a capture cadence on the network's
// simulator and keeps a bounded ring of recent checkpoints, the crash
// recovery story: after a failure, restore the newest checkpoint into a
// fresh network and resume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "base/status.h"
#include "core/wandering_network.h"
#include "genesis/snapshot.h"
#include "genesis/snapshotable.h"
#include "sim/time.h"

namespace viator::genesis {

struct GenesisConfig {
  /// Refuse captures while simulator events or shuttles-waiting-for-code are
  /// in flight (their std::function state cannot be serialized).
  bool require_quiescent = true;

  /// Checkpoint cadence for StartCheckpointing().
  sim::Duration checkpoint_cadence = 50 * sim::kMillisecond;

  /// Bounded checkpoint ring: oldest snapshots are dropped beyond this.
  std::size_t keep_checkpoints = 4;

  /// Free-form creator tag stamped into every header (e.g. scenario seed).
  std::uint64_t scenario_tag = 0;
};

class GenesisManager {
 public:
  explicit GenesisManager(wli::WanderingNetwork& network,
                          GenesisConfig config = {});

  /// Adds an external subsystem (service, failure/mobility process) to every
  /// subsequent capture. Fails on ids below kExtraSectionBase or duplicates.
  /// The object must outlive the manager; restores apply to it in place.
  Status RegisterExtra(Snapshotable& extra);

  /// True when nothing non-serializable is in flight.
  bool IsQuiescent() const;

  Result<std::vector<std::byte>> CaptureFull();

  /// Sections unchanged since the last CaptureFull() are omitted. Requires a
  /// prior full capture.
  Result<std::vector<std::byte>> CaptureDelta();

  /// Validates `bytes` end to end, then applies every section. The bound
  /// network must be freshly constructed: empty topology, zero ships, idle
  /// simulator. After a successful restore the manager can produce deltas
  /// against the restored snapshot.
  Status RestoreFull(std::span<const std::byte> bytes);

  /// Schedules periodic full captures on the network's simulator, every
  /// checkpoint_cadence until `until` (inclusive). Captures that find the
  /// network non-quiescent are skipped and counted, not errored.
  void StartCheckpointing(sim::TimePoint until);

  /// Most recent checkpoints, oldest first (bounded by keep_checkpoints).
  const std::deque<std::vector<std::byte>>& checkpoints() const {
    return checkpoints_;
  }

  std::uint64_t captures_taken() const { return captures_taken_; }
  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  std::uint64_t checkpoints_skipped() const { return checkpoints_skipped_; }
  std::uint64_t last_sequence() const { return sequence_; }

 private:
  struct BuiltSection {
    std::uint32_t id = 0;
    std::uint32_t version = 1;
    std::vector<std::byte> payload;
  };

  /// Serializes every subsystem (and registered extras) in canonical order.
  std::vector<BuiltSection> BuildSections();

  Result<std::vector<std::byte>> Capture(SnapshotKind kind);
  void CheckpointTick(sim::TimePoint until);

  wli::WanderingNetwork& network_;
  GenesisConfig config_;
  std::vector<Snapshotable*> extras_;

  std::uint64_t sequence_ = 0;
  // Digest per section at the last full capture; deltas diff against these.
  std::map<std::uint32_t, std::uint64_t> full_digests_;
  std::uint64_t full_sequence_ = 0;
  bool have_full_ = false;

  std::deque<std::vector<std::byte>> checkpoints_;
  std::uint64_t captures_taken_ = 0;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t checkpoints_skipped_ = 0;
};

}  // namespace viator::genesis
