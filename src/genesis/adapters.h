// Snapshotable adapters for subsystems the WanderingNetwork does not own:
// network processes (failure injection, mobility) and services (routing,
// caching). Register them on a GenesisManager to ride in the extras region
// of every snapshot.
//
// Each adapter serializes durable state only. Scheduled closures (pending
// failure repairs, in-flight cache misses) cannot cross a snapshot; capture
// at quiescent points where none are outstanding.
#pragma once

#include <cstdint>

#include "genesis/snapshot.h"
#include "genesis/snapshotable.h"
#include "health/probe.h"
#include "net/failure.h"
#include "net/mobility.h"
#include "services/caching.h"
#include "services/routing.h"
#include "telemetry/telemetry.h"

namespace viator::genesis {

/// Failure-process RNG stream + injection counter.
class FailureInjectorAdapter : public Snapshotable {
 public:
  explicit FailureInjectorAdapter(net::FailureInjector& injector,
                                  std::uint32_t id = kExtraSectionBase + 0)
      : injector_(injector), id_(id) {}

  std::uint32_t section_id() const override { return id_; }
  std::string section_name() const override { return "failure-injector"; }
  std::vector<std::byte> Save() const override;
  Status Load(std::span<const std::byte> payload) override;

 private:
  net::FailureInjector& injector_;
  std::uint32_t id_;
};

/// Full kinematic state of a random-waypoint process.
class MobilityAdapter : public Snapshotable {
 public:
  explicit MobilityAdapter(net::RandomWaypointMobility& mobility,
                           std::uint32_t id = kExtraSectionBase + 1)
      : mobility_(mobility), id_(id) {}

  std::uint32_t section_id() const override { return id_; }
  std::string section_name() const override { return "mobility"; }
  std::vector<std::byte> Save() const override;
  Status Load(std::span<const std::byte> payload) override;

 private:
  net::RandomWaypointMobility& mobility_;
  std::uint32_t id_;
};

/// Distance-vector routing tables + control-plane counters.
class DvRouterAdapter : public Snapshotable {
 public:
  explicit DvRouterAdapter(services::DistanceVectorRouter& router,
                           std::uint32_t id = kExtraSectionBase + 2)
      : router_(router), id_(id) {}

  std::uint32_t section_id() const override { return id_; }
  std::string section_name() const override { return "dv-router"; }
  std::vector<std::byte> Save() const override;
  Status Load(std::span<const std::byte> payload) override;

 private:
  services::DistanceVectorRouter& router_;
  std::uint32_t id_;
};

/// LRU content cache of a CachingService, bodies included.
class CachingServiceAdapter : public Snapshotable {
 public:
  explicit CachingServiceAdapter(services::CachingService& cache,
                                 std::uint32_t id = kExtraSectionBase + 3)
      : cache_(cache), id_(id) {}

  std::uint32_t section_id() const override { return id_; }
  std::string section_name() const override { return "caching-service"; }
  std::vector<std::byte> Save() const override;
  Status Load(std::span<const std::byte> payload) override;

 private:
  services::CachingService& cache_;
  std::uint32_t id_;
};

/// Wandering Observatory span collector: id RNG stream, id/drop counters and
/// every retained span. Profiler wall-clock data is intentionally excluded
/// (host measurements, not simulated state), so traced runs snapshot
/// bit-identically whether or not profiling was on.
class TelemetryAdapter : public Snapshotable {
 public:
  explicit TelemetryAdapter(telemetry::Telemetry& telemetry,
                            std::uint32_t id = kExtraSectionBase + 4)
      : telemetry_(telemetry), id_(id) {}

  std::uint32_t section_id() const override { return id_; }
  std::string section_name() const override { return "telemetry"; }
  std::vector<std::byte> Save() const override;
  Status Load(std::span<const std::byte> payload) override;

 private:
  telemetry::Telemetry& telemetry_;
  std::uint32_t id_;
};

/// Whole health plane: probe RNG/counters, the pending-probe set, per-ship
/// registry series (EWMAs + histogram sketches) and the anomaly detector's
/// event log and episode flags. Capture at quiescent points with no probes
/// in flight (pending_count() == 0), like parked shuttles.
class HealthAdapter : public Snapshotable {
 public:
  explicit HealthAdapter(health::ProbePlane& plane,
                         std::uint32_t id = kExtraSectionBase + 5)
      : plane_(plane), id_(id) {}

  std::uint32_t section_id() const override { return id_; }
  std::string section_name() const override { return "health"; }
  std::vector<std::byte> Save() const override;
  Status Load(std::span<const std::byte> payload) override;

 private:
  health::ProbePlane& plane_;
  std::uint32_t id_;
};

}  // namespace viator::genesis
