// The serialize/restore interface a subsystem implements to ride in a
// genesis snapshot as an "extra" section (services, failure/mobility
// processes — anything the WanderingNetwork does not own directly).
//
// Core subsystems are serialized by the free functions in sections.h; this
// interface exists so external state can join the same container without
// the genesis library knowing every service type (manager calls Save()/
// Load() through the base class).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"

namespace viator::genesis {

class Snapshotable {
 public:
  virtual ~Snapshotable() = default;

  /// Stable section identifier; extras must use kExtraSectionBase and above
  /// and be unique within one manager.
  virtual std::uint32_t section_id() const = 0;

  /// Human name for inspection output.
  virtual std::string section_name() const = 0;

  /// Payload schema version, bumped on incompatible layout changes.
  virtual std::uint32_t section_version() const { return 1; }

  /// Serializes the subsystem state as a finished TLV stream.
  virtual std::vector<std::byte> Save() const = 0;

  /// Restores the subsystem from a payload produced by Save(). Must reject
  /// malformed payloads with a Status error and leave usable state behind.
  virtual Status Load(std::span<const std::byte> payload) = 0;
};

}  // namespace viator::genesis
