// Network Genesis snapshot container.
//
// The paper's Node Genesis serializes one ship as a genome; Network Genesis
// lifts the same genetic transcoding to the whole Wandering Network: a
// versioned, checksummed TLV container holding one section per subsystem
// (clock, RNG streams, topology, fabric, ships, engines, ledger, overlays,
// stats, trace, ...). Full snapshots carry every section; delta snapshots
// carry only the sections whose content digest changed since the base full
// snapshot. Every section carries its own FNV-1a digest and the outer TLV
// stream carries the codec checksum trailer, so corruption anywhere is
// detected before any state is touched.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "sim/time.h"
#include "telemetry/mem_counters.h"

namespace viator::genesis {

/// "VGENES01" as a little-endian u64 — the first record of every snapshot.
inline constexpr std::uint64_t kSnapshotMagic = 0x31305345'4E454756ULL;

/// Bumped on incompatible container changes; mismatches are rejected.
inline constexpr std::uint32_t kFormatVersion = 1;

enum class SnapshotKind : std::uint32_t { kFull = 0, kDelta = 1 };

/// Well-known section identifiers. Extra sections registered through
/// GenesisManager::RegisterExtra live at kExtraSectionBase and above.
enum SectionId : std::uint32_t {
  kSectionClock = 1,
  kSectionNetworkRng,
  kSectionStats,
  kSectionTrace,
  kSectionTopology,
  kSectionFabric,
  kSectionRepository,
  kSectionShips,
  kSectionPlacements,
  kSectionLedger,
  kSectionReputation,
  kSectionClusters,
  kSectionDemand,
  kSectionOverlays,
  kSectionMorphing,
  kSectionFeedback,
  kSectionNetworkCounters,
  /// Memory watermarks (pool / queue peak bytes). Advisory telemetry: the
  /// peaks round-trip a restore so a resumed world remembers its high-water
  /// marks, but they are not decision state — pools restore empty by
  /// design, so a resumed run's subsequent watermarks may lawfully diverge
  /// from the uninterrupted run's (see GenesisResume tests).
  kSectionMemPeaks,
  /// Latency Observatory sketches (telemetry/latency_plane.h): the exact
  /// bucket arrays + integer totals of every per-(stage, class) quantile
  /// sketch plus the current window's delivery sketch. Advisory telemetry
  /// like the peaks above — never decision state — but integer-exact, so a
  /// capture → restore → capture cycle reproduces the section bit for bit.
  /// Open-flight side entries are transient and deliberately not captured
  /// (snapshots are quiescent; nothing is in flight).
  kSectionLatency,
  kExtraSectionBase = 0x1000,
};

/// Human name for a section id ("clock", "ships", "extra:4097", ...).
std::string SectionName(std::uint32_t id);

struct SnapshotHeader {
  std::uint32_t format_version = kFormatVersion;
  SnapshotKind kind = SnapshotKind::kFull;
  std::uint64_t sequence = 0;       // capture counter of the producing manager
  std::uint64_t base_sequence = 0;  // deltas: sequence of the base full
  sim::TimePoint snap_time = 0;     // virtual clock at capture
  std::uint64_t scenario_tag = 0;   // free-form creator tag (e.g. the seed)
};

struct SectionRecord {
  std::uint32_t id = 0;
  std::uint32_t version = 1;
  std::uint64_t digest = 0;  // FNV-1a over payload
  std::vector<std::byte> payload;
};

/// Assembles a snapshot byte stream. Sections keep insertion order.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(const SnapshotHeader& header) : header_(header) {}

  /// Adds a section; the digest is computed over `payload`.
  void AddSection(std::uint32_t id, std::vector<std::byte> payload,
                  std::uint32_t version = 1);

  std::vector<std::byte> Finish() const;

 private:
  SnapshotHeader header_;
  std::vector<SectionRecord> sections_;
  // Accumulated section payload bytes, attributed to the kGenesisBuffer
  // domain while the builder holds them (released when the builder dies).
  telemetry::mem::ChargedBytes<telemetry::mem::Domain::kGenesisBuffer>
      mem_bytes_;
};

struct ParsedSnapshot {
  SnapshotHeader header;
  std::vector<SectionRecord> sections;

  const SectionRecord* Find(std::uint32_t id) const;
};

/// Strict parse: validates the codec checksum, the magic, the format
/// version, the section count, per-section digests and duplicate ids.
/// Corrupt, truncated or version-mismatched input yields a Status error —
/// never a partially-parsed result.
Result<ParsedSnapshot> ParseSnapshot(std::span<const std::byte> bytes);

/// Parse-and-discard validation (the wngen `verify` command).
Status VerifySnapshot(std::span<const std::byte> bytes);

/// Applies a delta to its base full snapshot, yielding a new full snapshot:
/// sections present in the delta replace (or extend) the base's. Fails when
/// the delta's base_sequence does not match the base's sequence.
Result<std::vector<std::byte>> MergeDelta(std::span<const std::byte> base,
                                          std::span<const std::byte> delta);

/// Human-readable header + section table (the wngen `inspect` command).
Result<std::string> InspectSnapshot(std::span<const std::byte> bytes);

/// Section-level comparison of two snapshots (the wngen `diff` command):
/// lists sections that changed, appeared or disappeared between `a` and `b`.
Result<std::string> DiffSnapshots(std::span<const std::byte> a,
                                  std::span<const std::byte> b);

}  // namespace viator::genesis
