#include "genesis/adapters.h"

#include <utility>

#include "base/tlv.h"
#include "genesis/sections.h"

namespace viator::genesis {
namespace {

Status OpenReader(std::span<const std::byte> payload, TlvReader& reader) {
  reader = TlvReader(payload);
  return reader.Verify();
}

}  // namespace

// ---- FailureInjectorAdapter ------------------------------------------------

namespace {
constexpr TlvTag kTagFailRng = 0x01;
constexpr TlvTag kTagFailCount = 0x02;
}  // namespace

std::vector<std::byte> FailureInjectorAdapter::Save() const {
  TlvWriter w;
  w.PutNested(kTagFailRng, SaveRng(injector_.rng()));
  w.PutU64(kTagFailCount, injector_.failures_injected());
  return w.Finish();
}

Status FailureInjectorAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t count = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagFailRng) {
      if (Status s = LoadRng(rec->payload, injector_.rng()); !s.ok()) return s;
    }
    if (rec->tag == kTagFailCount) count = rec->AsU64();
  }
  injector_.RestoreState(count);
  return OkStatus();
}

// ---- MobilityAdapter -------------------------------------------------------

namespace {
constexpr TlvTag kTagMobRng = 0x01;
constexpr TlvTag kTagMobNode = 0x02;
constexpr TlvTag kTagMobX = 0x01;
constexpr TlvTag kTagMobY = 0x02;
constexpr TlvTag kTagMobTargetX = 0x03;
constexpr TlvTag kTagMobTargetY = 0x04;
constexpr TlvTag kTagMobSpeed = 0x05;
constexpr TlvTag kTagMobPause = 0x06;
constexpr TlvTag kTagMobPinned = 0x07;
}  // namespace

std::vector<std::byte> MobilityAdapter::Save() const {
  TlvWriter w;
  w.PutNested(kTagMobRng, SaveRng(mobility_.rng()));
  for (std::size_t i = 0; i < mobility_.positions().size(); ++i) {
    const net::Position& pos = mobility_.positions()[i];
    const net::RandomWaypointMobility::NodeState& state =
        mobility_.states()[i];
    TlvWriter inner;
    inner.PutDouble(kTagMobX, pos.x);
    inner.PutDouble(kTagMobY, pos.y);
    inner.PutDouble(kTagMobTargetX, state.target.x);
    inner.PutDouble(kTagMobTargetY, state.target.y);
    inner.PutDouble(kTagMobSpeed, state.speed);
    inner.PutDouble(kTagMobPause, state.pause_left);
    inner.PutU32(kTagMobPinned, mobility_.pinned()[i] ? 1 : 0);
    w.PutNested(kTagMobNode, inner.Finish());
  }
  return w.Finish();
}

Status MobilityAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::vector<net::Position> positions;
  std::vector<net::RandomWaypointMobility::NodeState> states;
  std::vector<bool> pinned;
  std::span<const std::byte> rng_payload;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagMobRng) rng_payload = rec->payload;
    if (rec->tag != kTagMobNode) continue;
    TlvReader inner(rec->payload);
    net::Position pos;
    net::RandomWaypointMobility::NodeState state;
    bool pin = false;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      switch (f->tag) {
        case kTagMobX: pos.x = f->AsDouble(); break;
        case kTagMobY: pos.y = f->AsDouble(); break;
        case kTagMobTargetX: state.target.x = f->AsDouble(); break;
        case kTagMobTargetY: state.target.y = f->AsDouble(); break;
        case kTagMobSpeed: state.speed = f->AsDouble(); break;
        case kTagMobPause: state.pause_left = f->AsDouble(); break;
        case kTagMobPinned: pin = f->AsU32() != 0; break;
        default: break;
      }
    }
    positions.push_back(pos);
    states.push_back(state);
    pinned.push_back(pin);
  }
  if (positions.size() != mobility_.positions().size()) {
    return InvalidArgument(
        "mobility snapshot covers " + std::to_string(positions.size()) +
        " nodes but the process has " +
        std::to_string(mobility_.positions().size()));
  }
  if (!rng_payload.empty()) {
    if (Status s = LoadRng(rng_payload, mobility_.rng()); !s.ok()) return s;
  }
  mobility_.RestoreState(std::move(positions), std::move(states),
                         std::move(pinned));
  return OkStatus();
}

// ---- DvRouterAdapter -------------------------------------------------------

namespace {
constexpr TlvTag kTagDvAdsSent = 0x01;
constexpr TlvTag kTagDvControlBytes = 0x02;
constexpr TlvTag kTagDvDropped = 0x03;
constexpr TlvTag kTagDvTable = 0x04;
constexpr TlvTag kTagDvRoute = 0x01;
constexpr TlvTag kTagDvDst = 0x01;
constexpr TlvTag kTagDvNextHop = 0x02;
constexpr TlvTag kTagDvMetric = 0x03;
constexpr TlvTag kTagDvExpires = 0x04;
}  // namespace

std::vector<std::byte> DvRouterAdapter::Save() const {
  TlvWriter w;
  w.PutU64(kTagDvAdsSent, router_.ads_sent());
  w.PutU64(kTagDvControlBytes, router_.control_bytes());
  w.PutU64(kTagDvDropped, router_.dropped_no_route());
  for (const auto& table : router_.tables()) {
    TlvWriter tw;
    for (const auto& [dst, route] : table) {
      TlvWriter rw;
      rw.PutU64(kTagDvDst, dst);
      rw.PutU64(kTagDvNextHop, route.next_hop);
      rw.PutU32(kTagDvMetric, route.metric);
      rw.PutU64(kTagDvExpires, route.expires);
      tw.PutNested(kTagDvRoute, rw.Finish());
    }
    w.PutNested(kTagDvTable, tw.Finish());
  }
  return w.Finish();
}

Status DvRouterAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t ads = 0, bytes = 0, dropped = 0;
  std::vector<services::DistanceVectorRouter::RouteTable> tables;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagDvAdsSent: ads = rec->AsU64(); break;
      case kTagDvControlBytes: bytes = rec->AsU64(); break;
      case kTagDvDropped: dropped = rec->AsU64(); break;
      case kTagDvTable: {
        TlvReader tr(rec->payload);
        services::DistanceVectorRouter::RouteTable table;
        while (tr.HasNext()) {
          auto t = tr.Next();
          if (!t.ok()) return t.status();
          if (t->tag != kTagDvRoute) continue;
          TlvReader rr(t->payload);
          net::NodeId dst = net::kInvalidNode;
          services::DistanceVectorRouter::Route route;
          while (rr.HasNext()) {
            auto f = rr.Next();
            if (!f.ok()) return f.status();
            switch (f->tag) {
              case kTagDvDst: dst = static_cast<net::NodeId>(f->AsU64()); break;
              case kTagDvNextHop:
                route.next_hop = static_cast<net::NodeId>(f->AsU64());
                break;
              case kTagDvMetric: route.metric = f->AsU32(); break;
              case kTagDvExpires: route.expires = f->AsU64(); break;
              default: break;
            }
          }
          table[dst] = route;
        }
        tables.push_back(std::move(table));
        break;
      }
      default:
        break;
    }
  }
  if (tables.size() != router_.tables().size()) {
    return InvalidArgument(
        "routing snapshot covers " + std::to_string(tables.size()) +
        " nodes but the router has " + std::to_string(router_.tables().size()));
  }
  router_.RestoreState(std::move(tables), ads, bytes, dropped);
  return OkStatus();
}

// ---- CachingServiceAdapter -------------------------------------------------

namespace {
constexpr TlvTag kTagCacheHits = 0x01;
constexpr TlvTag kTagCacheMisses = 0x02;
constexpr TlvTag kTagCacheObject = 0x03;
constexpr TlvTag kTagObjectId = 0x01;
constexpr TlvTag kTagObjectWord = 0x02;
}  // namespace

std::vector<std::byte> CachingServiceAdapter::Save() const {
  TlvWriter w;
  w.PutU64(kTagCacheHits, cache_.hits());
  w.PutU64(kTagCacheMisses, cache_.misses());
  for (const auto& [content_id, body] : cache_.CachedObjects()) {
    TlvWriter inner;
    inner.PutU64(kTagObjectId, content_id);
    for (std::int64_t word : body) {
      inner.PutU64(kTagObjectWord, static_cast<std::uint64_t>(word));
    }
    w.PutNested(kTagCacheObject, inner.Finish());
  }
  return w.Finish();
}

Status CachingServiceAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t hits = 0, misses = 0;
  std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>> objects;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagCacheHits) hits = rec->AsU64();
    if (rec->tag == kTagCacheMisses) misses = rec->AsU64();
    if (rec->tag != kTagCacheObject) continue;
    TlvReader inner(rec->payload);
    std::uint64_t content_id = 0;
    std::vector<std::int64_t> body;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      if (f->tag == kTagObjectId) content_id = f->AsU64();
      if (f->tag == kTagObjectWord) {
        body.push_back(static_cast<std::int64_t>(f->AsU64()));
      }
    }
    objects.emplace_back(content_id, std::move(body));
  }
  cache_.RestoreState(objects, hits, misses);
  return OkStatus();
}

// ---- TelemetryAdapter ------------------------------------------------------

namespace {
constexpr TlvTag kTagTelRngWord = 0x01;       // ×4, xoshiro words in order
constexpr TlvTag kTagTelLastSpanId = 0x02;
constexpr TlvTag kTagTelTracesStarted = 0x03;
constexpr TlvTag kTagTelSpansRecorded = 0x04;
constexpr TlvTag kTagTelSpansDropped = 0x05;
constexpr TlvTag kTagTelSpan = 0x06;          // nested, one per record
constexpr TlvTag kTagSpanTraceId = 0x01;
constexpr TlvTag kTagSpanId = 0x02;
constexpr TlvTag kTagSpanParentId = 0x03;
constexpr TlvTag kTagSpanShip = 0x04;
constexpr TlvTag kTagSpanComponent = 0x05;
constexpr TlvTag kTagSpanName = 0x06;
constexpr TlvTag kTagSpanStart = 0x07;
constexpr TlvTag kTagSpanEnd = 0x08;
}  // namespace

std::vector<std::byte> TelemetryAdapter::Save() const {
  const telemetry::SpanCollector::RawState state =
      telemetry_.spans().SaveState();
  TlvWriter w;
  for (std::uint64_t word : state.rng_state) w.PutU64(kTagTelRngWord, word);
  w.PutU64(kTagTelLastSpanId, state.last_span_id);
  w.PutU64(kTagTelTracesStarted, state.traces_started);
  w.PutU64(kTagTelSpansRecorded, state.spans_recorded);
  w.PutU64(kTagTelSpansDropped, state.spans_dropped);
  for (const telemetry::SpanRecord& span : state.spans) {
    TlvWriter inner;
    inner.PutU64(kTagSpanTraceId, span.trace_id);
    inner.PutU64(kTagSpanId, span.span_id);
    inner.PutU64(kTagSpanParentId, span.parent_span_id);
    inner.PutU64(kTagSpanShip, span.ship);
    inner.PutString(kTagSpanComponent, span.component);
    inner.PutString(kTagSpanName, span.name);
    inner.PutU64(kTagSpanStart, span.start);
    inner.PutU64(kTagSpanEnd, span.end);
    w.PutNested(kTagTelSpan, inner.Finish());
  }
  return w.Finish();
}

Status TelemetryAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  telemetry::SpanCollector::RawState state;
  std::size_t rng_words = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagTelRngWord:
        if (rng_words >= state.rng_state.size()) {
          return InvalidArgument("telemetry section has extra rng words");
        }
        state.rng_state[rng_words++] = rec->AsU64();
        break;
      case kTagTelLastSpanId:
        state.last_span_id = rec->AsU64();
        break;
      case kTagTelTracesStarted:
        state.traces_started = rec->AsU64();
        break;
      case kTagTelSpansRecorded:
        state.spans_recorded = rec->AsU64();
        break;
      case kTagTelSpansDropped:
        state.spans_dropped = rec->AsU64();
        break;
      case kTagTelSpan: {
        TlvReader inner(rec->payload);
        telemetry::SpanRecord span;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagSpanTraceId: span.trace_id = f->AsU64(); break;
            case kTagSpanId: span.span_id = f->AsU64(); break;
            case kTagSpanParentId: span.parent_span_id = f->AsU64(); break;
            case kTagSpanShip: span.ship = f->AsU64(); break;
            case kTagSpanComponent: span.component = f->AsString(); break;
            case kTagSpanName: span.name = f->AsString(); break;
            case kTagSpanStart: span.start = f->AsU64(); break;
            case kTagSpanEnd: span.end = f->AsU64(); break;
            default: break;  // forward compatibility
          }
        }
        state.spans.push_back(std::move(span));
        break;
      }
      default:
        break;  // forward compatibility
    }
  }
  if (rng_words != state.rng_state.size()) {
    return InvalidArgument("telemetry section has " +
                           std::to_string(rng_words) + " rng words, want " +
                           std::to_string(state.rng_state.size()));
  }
  telemetry_.spans().RestoreState(std::move(state));
  return OkStatus();
}

// ---- HealthAdapter ---------------------------------------------------------

namespace {
// top level
constexpr TlvTag kTagHpRngWord = 0x01;
constexpr TlvTag kTagHpNextProbeId = 0x02;
constexpr TlvTag kTagHpRounds = 0x03;
constexpr TlvTag kTagHpEmitted = 0x04;
constexpr TlvTag kTagHpAbsorbed = 0x05;
constexpr TlvTag kTagHpLost = 0x06;
constexpr TlvTag kTagHpTtlExpired = 0x07;
constexpr TlvTag kTagHpPending = 0x08;
constexpr TlvTag kTagHpShip = 0x09;
constexpr TlvTag kTagHpHopsObserved = 0x0A;
constexpr TlvTag kTagHpSpansIngested = 0x0B;
constexpr TlvTag kTagHpSpanCursor = 0x0C;
constexpr TlvTag kTagHpEvent = 0x0D;
constexpr TlvTag kTagHpActive = 0x0E;
constexpr TlvTag kTagHpPrevCounters = 0x0F;
// pending
constexpr TlvTag kTagHpPendId = 0x01;
constexpr TlvTag kTagHpPendEmitted = 0x02;
constexpr TlvTag kTagHpPendWaypoint = 0x03;
// ship
constexpr TlvTag kTagHsNode = 0x01;
constexpr TlvTag kTagHsQueueEwma = 0x02;
constexpr TlvTag kTagHsHopLatEwma = 0x03;
constexpr TlvTag kTagHsSvcLatEwma = 0x04;
constexpr TlvTag kTagHsSamples = 0x05;
constexpr TlvTag kTagHsSvcSamples = 0x06;
constexpr TlvTag kTagHsExpected = 0x07;
constexpr TlvTag kTagHsMissed = 0x08;
constexpr TlvTag kTagHsExecutions = 0x09;
constexpr TlvTag kTagHsMisses = 0x0A;
constexpr TlvTag kTagHsHopHist = 0x0B;
constexpr TlvTag kTagHsQueueHist = 0x0C;
// histogram raw state
constexpr TlvTag kTagHhCount = 0x01;
constexpr TlvTag kTagHhSum = 0x02;
constexpr TlvTag kTagHhSumSq = 0x03;
constexpr TlvTag kTagHhMin = 0x04;
constexpr TlvTag kTagHhMax = 0x05;
constexpr TlvTag kTagHhZeros = 0x06;
constexpr TlvTag kTagHhOrigin = 0x07;
constexpr TlvTag kTagHhBucket = 0x08;
// event
constexpr TlvTag kTagHeTime = 0x01;
constexpr TlvTag kTagHeKind = 0x02;
constexpr TlvTag kTagHeShip = 0x03;
constexpr TlvTag kTagHeValue = 0x04;
constexpr TlvTag kTagHeThreshold = 0x05;
constexpr TlvTag kTagHeDetail = 0x06;
// active / prev counters
constexpr TlvTag kTagHaKind = 0x01;
constexpr TlvTag kTagHaShip = 0x02;
constexpr TlvTag kTagHcShip = 0x01;
constexpr TlvTag kTagHcExecutions = 0x02;
constexpr TlvTag kTagHcMisses = 0x03;

std::vector<std::byte> SaveHealthHistogram(
    const sim::Histogram::RawState& raw) {
  TlvWriter w;
  w.PutU64(kTagHhCount, raw.count);
  w.PutDouble(kTagHhSum, raw.sum);
  w.PutDouble(kTagHhSumSq, raw.sum_sq);
  w.PutDouble(kTagHhMin, raw.min);
  w.PutDouble(kTagHhMax, raw.max);
  w.PutU64(kTagHhZeros, raw.zeros);
  w.PutU64(kTagHhOrigin, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(raw.bucket_origin)));
  for (std::uint64_t bucket : raw.buckets) w.PutU64(kTagHhBucket, bucket);
  return w.Finish();
}

Status LoadHealthHistogram(std::span<const std::byte> payload,
                           sim::Histogram::RawState& raw) {
  TlvReader r(payload);
  while (r.HasNext()) {
    auto f = r.Next();
    if (!f.ok()) return f.status();
    switch (f->tag) {
      case kTagHhCount: raw.count = f->AsU64(); break;
      case kTagHhSum: raw.sum = f->AsDouble(); break;
      case kTagHhSumSq: raw.sum_sq = f->AsDouble(); break;
      case kTagHhMin: raw.min = f->AsDouble(); break;
      case kTagHhMax: raw.max = f->AsDouble(); break;
      case kTagHhZeros: raw.zeros = f->AsU64(); break;
      case kTagHhOrigin:
        raw.bucket_origin = static_cast<std::int32_t>(
            static_cast<std::int64_t>(f->AsU64()));
        break;
      case kTagHhBucket: raw.buckets.push_back(f->AsU64()); break;
      default: break;
    }
  }
  return OkStatus();
}

}  // namespace

std::vector<std::byte> HealthAdapter::Save() const {
  const health::ProbePlane::RawState state = plane_.SaveState();
  TlvWriter w;
  for (std::uint64_t word : state.rng_state) w.PutU64(kTagHpRngWord, word);
  w.PutU64(kTagHpNextProbeId, state.next_probe_id);
  w.PutU64(kTagHpRounds, state.rounds);
  w.PutU64(kTagHpEmitted, state.probes_emitted);
  w.PutU64(kTagHpAbsorbed, state.probes_absorbed);
  w.PutU64(kTagHpLost, state.probes_lost);
  w.PutU64(kTagHpTtlExpired, state.probes_ttl_expired);
  for (const auto& pending : state.pending) {
    TlvWriter inner;
    inner.PutU64(kTagHpPendId, pending.probe_id);
    inner.PutU64(kTagHpPendEmitted, pending.emitted);
    for (const net::NodeId w2 : pending.waypoints) {
      inner.PutU64(kTagHpPendWaypoint, w2);
    }
    w.PutNested(kTagHpPending, inner.Finish());
  }
  for (const auto& ship : state.registry.ships) {
    TlvWriter inner;
    inner.PutU64(kTagHsNode, ship.ship);
    inner.PutDouble(kTagHsQueueEwma, ship.queue_ewma);
    inner.PutDouble(kTagHsHopLatEwma, ship.hop_latency_ewma);
    inner.PutDouble(kTagHsSvcLatEwma, ship.service_latency_ewma);
    inner.PutU64(kTagHsSamples, ship.samples);
    inner.PutU64(kTagHsSvcSamples, ship.service_samples);
    inner.PutU64(kTagHsExpected, ship.expected_visits);
    inner.PutU64(kTagHsMissed, ship.missed_visits);
    inner.PutU64(kTagHsExecutions, ship.code_executions);
    inner.PutU64(kTagHsMisses, ship.code_misses);
    inner.PutNested(kTagHsHopHist, SaveHealthHistogram(ship.hop_latency_ns));
    inner.PutNested(kTagHsQueueHist, SaveHealthHistogram(ship.queue_bytes));
    w.PutNested(kTagHpShip, inner.Finish());
  }
  w.PutU64(kTagHpHopsObserved, state.registry.hops_observed);
  w.PutU64(kTagHpSpansIngested, state.registry.spans_ingested);
  w.PutU64(kTagHpSpanCursor, state.registry.span_cursor);
  for (const health::HealthEvent& event : state.detector.events) {
    TlvWriter inner;
    inner.PutU64(kTagHeTime, event.time);
    inner.PutU32(kTagHeKind, static_cast<std::uint32_t>(event.kind));
    inner.PutU64(kTagHeShip, event.ship);
    inner.PutDouble(kTagHeValue, event.value);
    inner.PutDouble(kTagHeThreshold, event.threshold);
    inner.PutString(kTagHeDetail, event.detail);
    w.PutNested(kTagHpEvent, inner.Finish());
  }
  for (const auto& [kind, ship] : state.detector.active) {
    TlvWriter inner;
    inner.PutU32(kTagHaKind, kind);
    inner.PutU64(kTagHaShip, ship);
    w.PutNested(kTagHpActive, inner.Finish());
  }
  for (const auto& [ship, counters] : state.detector.prev_code_counters) {
    TlvWriter inner;
    inner.PutU64(kTagHcShip, ship);
    inner.PutU64(kTagHcExecutions, counters.first);
    inner.PutU64(kTagHcMisses, counters.second);
    w.PutNested(kTagHpPrevCounters, inner.Finish());
  }
  return w.Finish();
}

Status HealthAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  health::ProbePlane::RawState state;
  std::size_t rng_words = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagHpRngWord:
        if (rng_words >= state.rng_state.size()) {
          return InvalidArgument("health section has extra rng words");
        }
        state.rng_state[rng_words++] = rec->AsU64();
        break;
      case kTagHpNextProbeId: state.next_probe_id = rec->AsU64(); break;
      case kTagHpRounds: state.rounds = rec->AsU64(); break;
      case kTagHpEmitted: state.probes_emitted = rec->AsU64(); break;
      case kTagHpAbsorbed: state.probes_absorbed = rec->AsU64(); break;
      case kTagHpLost: state.probes_lost = rec->AsU64(); break;
      case kTagHpTtlExpired: state.probes_ttl_expired = rec->AsU64(); break;
      case kTagHpPending: {
        TlvReader inner(rec->payload);
        health::ProbePlane::RawState::Pending pending;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagHpPendId: pending.probe_id = f->AsU64(); break;
            case kTagHpPendEmitted: pending.emitted = f->AsU64(); break;
            case kTagHpPendWaypoint:
              pending.waypoints.push_back(
                  static_cast<net::NodeId>(f->AsU64()));
              break;
            default: break;
          }
        }
        state.pending.push_back(std::move(pending));
        break;
      }
      case kTagHpShip: {
        TlvReader inner(rec->payload);
        health::HealthRegistry::RawState::ShipState ship;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagHsNode:
              ship.ship = static_cast<net::NodeId>(f->AsU64());
              break;
            case kTagHsQueueEwma: ship.queue_ewma = f->AsDouble(); break;
            case kTagHsHopLatEwma:
              ship.hop_latency_ewma = f->AsDouble();
              break;
            case kTagHsSvcLatEwma:
              ship.service_latency_ewma = f->AsDouble();
              break;
            case kTagHsSamples: ship.samples = f->AsU64(); break;
            case kTagHsSvcSamples: ship.service_samples = f->AsU64(); break;
            case kTagHsExpected: ship.expected_visits = f->AsU64(); break;
            case kTagHsMissed: ship.missed_visits = f->AsU64(); break;
            case kTagHsExecutions: ship.code_executions = f->AsU64(); break;
            case kTagHsMisses: ship.code_misses = f->AsU64(); break;
            case kTagHsHopHist:
              if (Status s = LoadHealthHistogram(f->payload,
                                                 ship.hop_latency_ns);
                  !s.ok()) {
                return s;
              }
              break;
            case kTagHsQueueHist:
              if (Status s =
                      LoadHealthHistogram(f->payload, ship.queue_bytes);
                  !s.ok()) {
                return s;
              }
              break;
            default: break;
          }
        }
        state.registry.ships.push_back(std::move(ship));
        break;
      }
      case kTagHpHopsObserved:
        state.registry.hops_observed = rec->AsU64();
        break;
      case kTagHpSpansIngested:
        state.registry.spans_ingested = rec->AsU64();
        break;
      case kTagHpSpanCursor:
        state.registry.span_cursor = rec->AsU64();
        break;
      case kTagHpEvent: {
        TlvReader inner(rec->payload);
        health::HealthEvent event;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagHeTime: event.time = f->AsU64(); break;
            case kTagHeKind:
              if (f->AsU32() >= static_cast<std::uint32_t>(
                                    health::HealthEventKind::kKindCount)) {
                return InvalidArgument("health event kind out of range");
              }
              event.kind = static_cast<health::HealthEventKind>(f->AsU32());
              break;
            case kTagHeShip:
              event.ship = static_cast<net::NodeId>(f->AsU64());
              break;
            case kTagHeValue: event.value = f->AsDouble(); break;
            case kTagHeThreshold: event.threshold = f->AsDouble(); break;
            case kTagHeDetail: event.detail = f->AsString(); break;
            default: break;
          }
        }
        state.detector.events.push_back(std::move(event));
        break;
      }
      case kTagHpActive: {
        TlvReader inner(rec->payload);
        std::uint8_t kind = 0;
        net::NodeId ship = net::kInvalidNode;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          if (f->tag == kTagHaKind) {
            kind = static_cast<std::uint8_t>(f->AsU32());
          }
          if (f->tag == kTagHaShip) {
            ship = static_cast<net::NodeId>(f->AsU64());
          }
        }
        state.detector.active.emplace_back(kind, ship);
        break;
      }
      case kTagHpPrevCounters: {
        TlvReader inner(rec->payload);
        net::NodeId ship = net::kInvalidNode;
        std::uint64_t executions = 0, misses = 0;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          if (f->tag == kTagHcShip) {
            ship = static_cast<net::NodeId>(f->AsU64());
          }
          if (f->tag == kTagHcExecutions) executions = f->AsU64();
          if (f->tag == kTagHcMisses) misses = f->AsU64();
        }
        state.detector.prev_code_counters.emplace_back(
            ship, std::make_pair(executions, misses));
        break;
      }
      default:
        break;  // forward compatibility
    }
  }
  if (rng_words != state.rng_state.size()) {
    return InvalidArgument("health section has " + std::to_string(rng_words) +
                           " rng words, want " +
                           std::to_string(state.rng_state.size()));
  }
  plane_.RestoreState(std::move(state));
  return OkStatus();
}

}  // namespace viator::genesis
