#include "genesis/adapters.h"

#include <utility>

#include "base/tlv.h"
#include "genesis/sections.h"

namespace viator::genesis {
namespace {

Status OpenReader(std::span<const std::byte> payload, TlvReader& reader) {
  reader = TlvReader(payload);
  return reader.Verify();
}

}  // namespace

// ---- FailureInjectorAdapter ------------------------------------------------

namespace {
constexpr TlvTag kTagFailRng = 0x01;
constexpr TlvTag kTagFailCount = 0x02;
}  // namespace

std::vector<std::byte> FailureInjectorAdapter::Save() const {
  TlvWriter w;
  w.PutNested(kTagFailRng, SaveRng(injector_.rng()));
  w.PutU64(kTagFailCount, injector_.failures_injected());
  return w.Finish();
}

Status FailureInjectorAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t count = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagFailRng) {
      if (Status s = LoadRng(rec->payload, injector_.rng()); !s.ok()) return s;
    }
    if (rec->tag == kTagFailCount) count = rec->AsU64();
  }
  injector_.RestoreState(count);
  return OkStatus();
}

// ---- MobilityAdapter -------------------------------------------------------

namespace {
constexpr TlvTag kTagMobRng = 0x01;
constexpr TlvTag kTagMobNode = 0x02;
constexpr TlvTag kTagMobX = 0x01;
constexpr TlvTag kTagMobY = 0x02;
constexpr TlvTag kTagMobTargetX = 0x03;
constexpr TlvTag kTagMobTargetY = 0x04;
constexpr TlvTag kTagMobSpeed = 0x05;
constexpr TlvTag kTagMobPause = 0x06;
constexpr TlvTag kTagMobPinned = 0x07;
}  // namespace

std::vector<std::byte> MobilityAdapter::Save() const {
  TlvWriter w;
  w.PutNested(kTagMobRng, SaveRng(mobility_.rng()));
  for (std::size_t i = 0; i < mobility_.positions().size(); ++i) {
    const net::Position& pos = mobility_.positions()[i];
    const net::RandomWaypointMobility::NodeState& state =
        mobility_.states()[i];
    TlvWriter inner;
    inner.PutDouble(kTagMobX, pos.x);
    inner.PutDouble(kTagMobY, pos.y);
    inner.PutDouble(kTagMobTargetX, state.target.x);
    inner.PutDouble(kTagMobTargetY, state.target.y);
    inner.PutDouble(kTagMobSpeed, state.speed);
    inner.PutDouble(kTagMobPause, state.pause_left);
    inner.PutU32(kTagMobPinned, mobility_.pinned()[i] ? 1 : 0);
    w.PutNested(kTagMobNode, inner.Finish());
  }
  return w.Finish();
}

Status MobilityAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::vector<net::Position> positions;
  std::vector<net::RandomWaypointMobility::NodeState> states;
  std::vector<bool> pinned;
  std::span<const std::byte> rng_payload;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagMobRng) rng_payload = rec->payload;
    if (rec->tag != kTagMobNode) continue;
    TlvReader inner(rec->payload);
    net::Position pos;
    net::RandomWaypointMobility::NodeState state;
    bool pin = false;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      switch (f->tag) {
        case kTagMobX: pos.x = f->AsDouble(); break;
        case kTagMobY: pos.y = f->AsDouble(); break;
        case kTagMobTargetX: state.target.x = f->AsDouble(); break;
        case kTagMobTargetY: state.target.y = f->AsDouble(); break;
        case kTagMobSpeed: state.speed = f->AsDouble(); break;
        case kTagMobPause: state.pause_left = f->AsDouble(); break;
        case kTagMobPinned: pin = f->AsU32() != 0; break;
        default: break;
      }
    }
    positions.push_back(pos);
    states.push_back(state);
    pinned.push_back(pin);
  }
  if (positions.size() != mobility_.positions().size()) {
    return InvalidArgument(
        "mobility snapshot covers " + std::to_string(positions.size()) +
        " nodes but the process has " +
        std::to_string(mobility_.positions().size()));
  }
  if (!rng_payload.empty()) {
    if (Status s = LoadRng(rng_payload, mobility_.rng()); !s.ok()) return s;
  }
  mobility_.RestoreState(std::move(positions), std::move(states),
                         std::move(pinned));
  return OkStatus();
}

// ---- DvRouterAdapter -------------------------------------------------------

namespace {
constexpr TlvTag kTagDvAdsSent = 0x01;
constexpr TlvTag kTagDvControlBytes = 0x02;
constexpr TlvTag kTagDvDropped = 0x03;
constexpr TlvTag kTagDvTable = 0x04;
constexpr TlvTag kTagDvRoute = 0x01;
constexpr TlvTag kTagDvDst = 0x01;
constexpr TlvTag kTagDvNextHop = 0x02;
constexpr TlvTag kTagDvMetric = 0x03;
constexpr TlvTag kTagDvExpires = 0x04;
}  // namespace

std::vector<std::byte> DvRouterAdapter::Save() const {
  TlvWriter w;
  w.PutU64(kTagDvAdsSent, router_.ads_sent());
  w.PutU64(kTagDvControlBytes, router_.control_bytes());
  w.PutU64(kTagDvDropped, router_.dropped_no_route());
  for (const auto& table : router_.tables()) {
    TlvWriter tw;
    for (const auto& [dst, route] : table) {
      TlvWriter rw;
      rw.PutU64(kTagDvDst, dst);
      rw.PutU64(kTagDvNextHop, route.next_hop);
      rw.PutU32(kTagDvMetric, route.metric);
      rw.PutU64(kTagDvExpires, route.expires);
      tw.PutNested(kTagDvRoute, rw.Finish());
    }
    w.PutNested(kTagDvTable, tw.Finish());
  }
  return w.Finish();
}

Status DvRouterAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t ads = 0, bytes = 0, dropped = 0;
  std::vector<std::map<net::NodeId, services::DistanceVectorRouter::Route>>
      tables;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagDvAdsSent: ads = rec->AsU64(); break;
      case kTagDvControlBytes: bytes = rec->AsU64(); break;
      case kTagDvDropped: dropped = rec->AsU64(); break;
      case kTagDvTable: {
        TlvReader tr(rec->payload);
        std::map<net::NodeId, services::DistanceVectorRouter::Route> table;
        while (tr.HasNext()) {
          auto t = tr.Next();
          if (!t.ok()) return t.status();
          if (t->tag != kTagDvRoute) continue;
          TlvReader rr(t->payload);
          net::NodeId dst = net::kInvalidNode;
          services::DistanceVectorRouter::Route route;
          while (rr.HasNext()) {
            auto f = rr.Next();
            if (!f.ok()) return f.status();
            switch (f->tag) {
              case kTagDvDst: dst = static_cast<net::NodeId>(f->AsU64()); break;
              case kTagDvNextHop:
                route.next_hop = static_cast<net::NodeId>(f->AsU64());
                break;
              case kTagDvMetric: route.metric = f->AsU32(); break;
              case kTagDvExpires: route.expires = f->AsU64(); break;
              default: break;
            }
          }
          table[dst] = route;
        }
        tables.push_back(std::move(table));
        break;
      }
      default:
        break;
    }
  }
  if (tables.size() != router_.tables().size()) {
    return InvalidArgument(
        "routing snapshot covers " + std::to_string(tables.size()) +
        " nodes but the router has " + std::to_string(router_.tables().size()));
  }
  router_.RestoreState(std::move(tables), ads, bytes, dropped);
  return OkStatus();
}

// ---- CachingServiceAdapter -------------------------------------------------

namespace {
constexpr TlvTag kTagCacheHits = 0x01;
constexpr TlvTag kTagCacheMisses = 0x02;
constexpr TlvTag kTagCacheObject = 0x03;
constexpr TlvTag kTagObjectId = 0x01;
constexpr TlvTag kTagObjectWord = 0x02;
}  // namespace

std::vector<std::byte> CachingServiceAdapter::Save() const {
  TlvWriter w;
  w.PutU64(kTagCacheHits, cache_.hits());
  w.PutU64(kTagCacheMisses, cache_.misses());
  for (const auto& [content_id, body] : cache_.CachedObjects()) {
    TlvWriter inner;
    inner.PutU64(kTagObjectId, content_id);
    for (std::int64_t word : body) {
      inner.PutU64(kTagObjectWord, static_cast<std::uint64_t>(word));
    }
    w.PutNested(kTagCacheObject, inner.Finish());
  }
  return w.Finish();
}

Status CachingServiceAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  std::uint64_t hits = 0, misses = 0;
  std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>> objects;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    if (rec->tag == kTagCacheHits) hits = rec->AsU64();
    if (rec->tag == kTagCacheMisses) misses = rec->AsU64();
    if (rec->tag != kTagCacheObject) continue;
    TlvReader inner(rec->payload);
    std::uint64_t content_id = 0;
    std::vector<std::int64_t> body;
    while (inner.HasNext()) {
      auto f = inner.Next();
      if (!f.ok()) return f.status();
      if (f->tag == kTagObjectId) content_id = f->AsU64();
      if (f->tag == kTagObjectWord) {
        body.push_back(static_cast<std::int64_t>(f->AsU64()));
      }
    }
    objects.emplace_back(content_id, std::move(body));
  }
  cache_.RestoreState(objects, hits, misses);
  return OkStatus();
}

// ---- TelemetryAdapter ------------------------------------------------------

namespace {
constexpr TlvTag kTagTelRngWord = 0x01;       // ×4, xoshiro words in order
constexpr TlvTag kTagTelLastSpanId = 0x02;
constexpr TlvTag kTagTelTracesStarted = 0x03;
constexpr TlvTag kTagTelSpansRecorded = 0x04;
constexpr TlvTag kTagTelSpansDropped = 0x05;
constexpr TlvTag kTagTelSpan = 0x06;          // nested, one per record
constexpr TlvTag kTagSpanTraceId = 0x01;
constexpr TlvTag kTagSpanId = 0x02;
constexpr TlvTag kTagSpanParentId = 0x03;
constexpr TlvTag kTagSpanShip = 0x04;
constexpr TlvTag kTagSpanComponent = 0x05;
constexpr TlvTag kTagSpanName = 0x06;
constexpr TlvTag kTagSpanStart = 0x07;
constexpr TlvTag kTagSpanEnd = 0x08;
}  // namespace

std::vector<std::byte> TelemetryAdapter::Save() const {
  const telemetry::SpanCollector::RawState state =
      telemetry_.spans().SaveState();
  TlvWriter w;
  for (std::uint64_t word : state.rng_state) w.PutU64(kTagTelRngWord, word);
  w.PutU64(kTagTelLastSpanId, state.last_span_id);
  w.PutU64(kTagTelTracesStarted, state.traces_started);
  w.PutU64(kTagTelSpansRecorded, state.spans_recorded);
  w.PutU64(kTagTelSpansDropped, state.spans_dropped);
  for (const telemetry::SpanRecord& span : state.spans) {
    TlvWriter inner;
    inner.PutU64(kTagSpanTraceId, span.trace_id);
    inner.PutU64(kTagSpanId, span.span_id);
    inner.PutU64(kTagSpanParentId, span.parent_span_id);
    inner.PutU64(kTagSpanShip, span.ship);
    inner.PutString(kTagSpanComponent, span.component);
    inner.PutString(kTagSpanName, span.name);
    inner.PutU64(kTagSpanStart, span.start);
    inner.PutU64(kTagSpanEnd, span.end);
    w.PutNested(kTagTelSpan, inner.Finish());
  }
  return w.Finish();
}

Status TelemetryAdapter::Load(std::span<const std::byte> payload) {
  TlvReader r({});
  if (Status s = OpenReader(payload, r); !s.ok()) return s;
  telemetry::SpanCollector::RawState state;
  std::size_t rng_words = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    if (!rec.ok()) return rec.status();
    switch (rec->tag) {
      case kTagTelRngWord:
        if (rng_words >= state.rng_state.size()) {
          return InvalidArgument("telemetry section has extra rng words");
        }
        state.rng_state[rng_words++] = rec->AsU64();
        break;
      case kTagTelLastSpanId:
        state.last_span_id = rec->AsU64();
        break;
      case kTagTelTracesStarted:
        state.traces_started = rec->AsU64();
        break;
      case kTagTelSpansRecorded:
        state.spans_recorded = rec->AsU64();
        break;
      case kTagTelSpansDropped:
        state.spans_dropped = rec->AsU64();
        break;
      case kTagTelSpan: {
        TlvReader inner(rec->payload);
        telemetry::SpanRecord span;
        while (inner.HasNext()) {
          auto f = inner.Next();
          if (!f.ok()) return f.status();
          switch (f->tag) {
            case kTagSpanTraceId: span.trace_id = f->AsU64(); break;
            case kTagSpanId: span.span_id = f->AsU64(); break;
            case kTagSpanParentId: span.parent_span_id = f->AsU64(); break;
            case kTagSpanShip: span.ship = f->AsU64(); break;
            case kTagSpanComponent: span.component = f->AsString(); break;
            case kTagSpanName: span.name = f->AsString(); break;
            case kTagSpanStart: span.start = f->AsU64(); break;
            case kTagSpanEnd: span.end = f->AsU64(); break;
            default: break;  // forward compatibility
          }
        }
        state.spans.push_back(std::move(span));
        break;
      }
      default:
        break;  // forward compatibility
    }
  }
  if (rng_words != state.rng_state.size()) {
    return InvalidArgument("telemetry section has " +
                           std::to_string(rng_words) + " rng words, want " +
                           std::to_string(state.rng_state.size()));
  }
  telemetry_.spans().RestoreState(std::move(state));
  return OkStatus();
}

}  // namespace viator::genesis
