#include "health/slo_burn.h"

#include <cstdio>
#include <string>

namespace viator::health {

std::optional<HealthEvent> SloBurnDetector::Observe(
    std::size_t spec_index, std::uint64_t quantile_ns, sim::TimePoint now,
    std::uint64_t exemplar_trace) {
  if (spec_index >= specs_.size()) return std::nullopt;
  const SloSpec& spec = specs_[spec_index];
  SpecState& state = states_[spec_index];

  // A quiet window (no deliveries folds to quantile 0) or a healthy one ends
  // the breach run and closes any active episode.
  if (quantile_ns == 0 || quantile_ns <= spec.bound_ns) {
    state.burning = 0;
    state.active = false;
    return std::nullopt;
  }

  ++state.burning;
  if (state.active || state.burning < spec.burn_windows) return std::nullopt;

  state.active = true;
  HealthEvent event;
  event.time = now;
  event.kind = HealthEventKind::kSloBurn;
  event.ship = static_cast<net::NodeId>(spec_index);  // spec index, not a ship
  event.value = static_cast<double>(quantile_ns);
  event.threshold = static_cast<double>(spec.bound_ns);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p%g delivery %llu ns > %llu ns for %u windows; exemplar "
                "trace %016llx",
                spec.quantile * 100.0,
                static_cast<unsigned long long>(quantile_ns),
                static_cast<unsigned long long>(spec.bound_ns), state.burning,
                static_cast<unsigned long long>(exemplar_trace));
  event.detail = buf;
  events_.push_back(event);
  return event;
}

}  // namespace viator::health
