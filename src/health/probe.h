// Probe capsules: in-band network telemetry for the Wandering Network.
//
// A probe is a kProbe shuttle whose payload is a self-describing record: a
// fixed header (probe id, round, itinerary cursor, emit time, waypoint
// list) followed by one fixed-width block per hop, appended in place as the
// capsule wanders — the INT pattern, done with capsules instead of switch
// ASICs. The ProbePlane emits probes on a deterministic schedule, handles
// every probe hop (ships hand probes over before any workload processing),
// deposits finished records into the HealthRegistry and runs the
// AnomalyDetector.
//
// Determinism neutrality, by construction:
//  - probes draw waypoints from the plane's own RNG (salted fork of the
//    scenario seed), never from the network or fabric streams;
//  - kProbe shuttles have WireSize() 0 and ride telemetry frames, so they
//    never occupy queue bytes, never delay serialization and never consume
//    fabric loss draws;
//  - ships intercept probes before TTL/feedback/counter accounting;
//  - probes bypass next-hop choosers (routing services see no probe).
// A run with probes enabled therefore makes the exact same simulation
// decisions as the same seed with probes disabled.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "base/rng.h"
#include "core/wandering_network.h"
#include "health/health.h"
#include "health/report.h"

namespace viator::health {

// ---- Probe payload codec ---------------------------------------------------
// Layout (int64 words):
//   [0] probe id        [1] round            [2] itinerary cursor
//   [3] waypoint count  [4] emit time (ns)   [5..5+n) waypoints
//   then kHopWords-wide hop blocks: ship, arrived_from, arrival ns,
//   queue bytes, service EWMA ns, code executions, code misses, ttl left.

inline constexpr std::size_t kProbeHeaderWords = 5;
inline constexpr std::size_t kHopWords = 8;

std::vector<std::int64_t> EncodeProbe(std::uint64_t probe_id,
                                      std::uint64_t round,
                                      sim::TimePoint emitted,
                                      const std::vector<net::NodeId>& waypoints);

/// Appends one hop block in place (the per-hop INT write).
void AppendHop(std::vector<std::int64_t>& payload, const HopSample& hop);

/// Decodes a full record; nullopt on malformed payloads.
std::optional<ProbeRecord> DecodeProbe(const std::vector<std::int64_t>& payload);

/// Itinerary accessors used mid-flight.
std::size_t ProbeCursor(const std::vector<std::int64_t>& payload);
void SetProbeCursor(std::vector<std::int64_t>& payload, std::size_t cursor);
std::size_t ProbeWaypointCount(const std::vector<std::int64_t>& payload);
net::NodeId ProbeWaypoint(const std::vector<std::int64_t>& payload,
                          std::size_t index);

// ---- ProbePlane ------------------------------------------------------------

/// Owns the probe schedule, the HealthRegistry and the AnomalyDetector for
/// one WanderingNetwork. Construction installs the network's probe handler;
/// nothing runs until StartProbes() (and with enable_probes false, never).
class ProbePlane {
 public:
  /// `seed` is the scenario seed; the plane salts it for its private RNG so
  /// probe itineraries never perturb (or correlate with) network draws.
  ProbePlane(wli::WanderingNetwork& network, const HealthConfig& config,
             std::uint64_t seed);

  ProbePlane(const ProbePlane&) = delete;
  ProbePlane& operator=(const ProbePlane&) = delete;

  /// Schedules RunRound() every probe_interval until `until` (no-op when
  /// probes are disabled).
  void StartProbes(sim::TimePoint until);

  /// One round: ingest new spans, expire lost probes, evaluate anomaly
  /// rules, then emit this round's probes. Also callable directly (tests,
  /// tools) — rounds are deterministic functions of prior state.
  void RunRound();

  /// Evaluation half of RunRound() without emitting: used at end of run so
  /// the final report reflects every deposited record.
  void Evaluate();

  HealthRegistry& registry() { return registry_; }
  const HealthRegistry& registry() const { return registry_; }
  AnomalyDetector& detector() { return detector_; }
  const AnomalyDetector& detector() const { return detector_; }
  const HealthConfig& config() const { return config_; }

  std::uint64_t probes_emitted() const { return probes_emitted_; }
  std::uint64_t probes_absorbed() const { return probes_absorbed_; }
  std::uint64_t probes_lost() const { return probes_lost_; }
  std::uint64_t rounds() const { return rounds_; }
  /// Probes in flight (emitted, not yet deposited or expired). Genesis
  /// captures require this to be zero, like parked shuttles.
  std::size_t pending_count() const { return pending_.size(); }

  /// Snapshot of scores, events and counters for export (report.h).
  HealthReport BuildReport() const;

  /// Exact plane state for genesis: RNG, ids, counters and the pending set.
  /// Registry/detector state ride along so one section restores the whole
  /// health plane.
  struct RawState {
    std::array<std::uint64_t, 4> rng_state{};
    std::uint64_t next_probe_id = 1;
    std::uint64_t rounds = 0;
    std::uint64_t probes_emitted = 0;
    std::uint64_t probes_absorbed = 0;
    std::uint64_t probes_lost = 0;
    std::uint64_t probes_ttl_expired = 0;
    struct Pending {
      std::uint64_t probe_id = 0;
      sim::TimePoint emitted = 0;
      std::vector<net::NodeId> waypoints;
    };
    std::vector<Pending> pending;
    HealthRegistry::RawState registry;
    AnomalyDetector::RawState detector;
  };
  RawState SaveState() const;
  void RestoreState(RawState state);

 private:
  void OnProbe(wli::Ship& ship, wli::Shuttle shuttle, net::NodeId from);
  void Deposit(const wli::Shuttle& shuttle, sim::TimePoint now);
  void EmitProbe(const std::vector<net::NodeId>& candidates);
  void ExpirePending(sim::TimePoint now);
  void HandleEvents(const std::vector<HealthEvent>& events);
  std::vector<net::NodeId> ShipNodes() const;

  wli::WanderingNetwork& network_;
  HealthConfig config_;
  Rng rng_;
  HealthRegistry registry_;
  AnomalyDetector detector_;

  struct PendingProbe {
    sim::TimePoint emitted = 0;
    std::vector<net::NodeId> waypoints;
  };
  std::map<std::uint64_t, PendingProbe> pending_;

  std::uint64_t next_probe_id_ = 1;
  std::uint64_t rounds_ = 0;
  std::uint64_t probes_emitted_ = 0;
  std::uint64_t probes_absorbed_ = 0;
  std::uint64_t probes_lost_ = 0;
  std::uint64_t probes_ttl_expired_ = 0;
};

}  // namespace viator::health
