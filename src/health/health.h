// Self-Referential Health Plane: streaming health scoring and anomaly
// detection over in-band probe measurements.
//
// The Self-Reference Principle requires the network to observe and describe
// itself; the Multidimensional Feedback Principle requires those
// observations to feed back into its evolution. The health plane closes
// that loop: probe capsules (probe.h) wander the network recording per-hop
// measurements, the HealthRegistry folds the deposited records into per-ship
// EWMAs and deterministic quantile sketches (sim::Histogram buckets), and
// the AnomalyDetector raises structured HealthEvents from rule + z-score
// checks over those series — optionally feeding SRP's ReputationSystem.
//
// Everything here is bit-for-bit deterministic: same seed, same probes, same
// scores, same events. Wall-clock never enters any health series.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/types.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "telemetry/span.h"

namespace viator::health {

struct HealthConfig {
  /// Master switch. Off (the default) means no probes are ever emitted and
  /// the plane costs one branch per shuttle receive — the seed behaves
  /// identically to a build without the health plane.
  bool enable_probes = false;

  /// Ship that emits probes and collects deposited records.
  net::NodeId collector = 0;

  /// Probe schedule: every `probe_interval`, `probes_per_round` capsules are
  /// emitted, each wandering through `waypoints_per_probe` random ships
  /// before returning to the collector.
  sim::Duration probe_interval = 50 * sim::kMillisecond;
  std::size_t probes_per_round = 4;
  std::size_t waypoints_per_probe = 2;
  std::uint8_t probe_ttl = 64;

  /// A pending probe older than this counts as lost; its waypoints accrue
  /// missed visits (the loss-ratio rule below detects dead/flaky ships).
  sim::Duration probe_timeout = 200 * sim::kMillisecond;

  /// Streaming-score parameters. Scores are the product of three factors in
  /// (0, 1]: queue pressure, hop latency and probe-visit reachability (see
  /// docs/HEALTH.md for the exact formula).
  double ewma_alpha = 0.2;
  double queue_scale_bytes = 4096.0;
  double latency_scale_ns = 2.0e7;

  /// Anomaly rules.
  double z_threshold = 3.0;            // hop-latency z-score → degraded
  double degraded_score = 0.5;         // absolute score floor → degraded
  double loss_ratio_threshold = 0.5;   // missed/expected visits → degraded
  std::uint64_t min_samples = 8;       // hop samples before score/z rules
  std::uint64_t min_expected_visits = 6;  // visits before the loss rule
  std::size_t loop_repeats = 3;        // same ship > this often in one record

  /// MFP loop closure: report anomalous ships to SRP's ReputationSystem as
  /// unfair interactions. Off by default (pure observation).
  bool feed_reputation = false;
};

enum class HealthEventKind : std::uint8_t {
  kDegradedShip = 0,  // slow, congested or unreachable ship
  kStarvedEe,         // code misses accumulate but nothing ever executes
  kRoutingLoop,       // one probe crossed the same ship repeatedly
  kMemGrowth,         // a memory domain grew monotonically past its slack
  kSloBurn,           // a latency SLO burned for consecutive windows
  kKindCount,
};

std::string_view HealthEventKindName(HealthEventKind kind);
std::optional<HealthEventKind> HealthEventKindFromName(std::string_view name);

/// One structured anomaly. `value` is the measured quantity that tripped the
/// rule, `threshold` the configured bound it crossed.
struct HealthEvent {
  sim::TimePoint time = 0;
  HealthEventKind kind = HealthEventKind::kDegradedShip;
  net::NodeId ship = net::kInvalidNode;
  double value = 0.0;
  double threshold = 0.0;
  std::string detail;
};

/// One decoded per-hop measurement (probe payload codec in probe.h).
struct HopSample {
  net::NodeId ship = net::kInvalidNode;
  net::NodeId arrived_from = net::kInvalidNode;
  sim::TimePoint arrival = 0;
  std::uint64_t queue_bytes = 0;        // fabric tx bytes queued at the ship
  std::uint64_t service_latency_ns = 0; // registry service EWMA at hop time
  std::uint64_t code_executions = 0;    // ship counters at hop time
  std::uint64_t code_misses = 0;
  std::uint32_t ttl_remaining = 0;
};

/// One deposited probe record.
struct ProbeRecord {
  std::uint64_t probe_id = 0;
  std::uint64_t round = 0;
  sim::TimePoint emitted = 0;
  std::vector<net::NodeId> waypoints;
  std::vector<HopSample> hops;
};

/// Streaming per-ship health state: EWMAs for the score, Histograms (the
/// deterministic fixed-bucket quantile sketch) for the distributions.
class HealthRegistry {
 public:
  explicit HealthRegistry(const HealthConfig& config) : config_(config) {}

  struct ShipHealth {
    double queue_ewma = 0.0;
    double hop_latency_ewma = 0.0;
    double service_latency_ewma = 0.0;
    std::uint64_t samples = 0;           // hop samples folded in
    std::uint64_t service_samples = 0;   // spans folded in
    std::uint64_t expected_visits = 0;   // times picked as a probe waypoint
    std::uint64_t missed_visits = 0;     // waypoint visits of lost probes
    std::uint64_t code_executions = 0;   // latest probe-observed counters
    std::uint64_t code_misses = 0;
    sim::Histogram hop_latency_ns;
    sim::Histogram queue_bytes;
  };

  /// A probe was emitted with these waypoints (visit expectations).
  void RecordEmission(const std::vector<net::NodeId>& waypoints);

  /// A probe record was deposited at the collector: fold every hop sample
  /// into the per-ship series. With `mirror` set, network-wide distributions
  /// ("health.hop_latency_ns", "health.queue_bytes") are also recorded there
  /// so the standard exporters see them.
  void AbsorbProbe(const ProbeRecord& record,
                   sim::StatsRegistry* mirror = nullptr);

  /// A pending probe timed out: its waypoints accrue missed visits.
  void RecordLoss(const std::vector<net::NodeId>& waypoints);

  /// Folds spans committed since the last call into per-ship service-latency
  /// EWMAs — the self-referential step: the observability plane feeds on the
  /// network's own span stream. Assumes the collector is not Clear()ed
  /// between calls (the cursor resets if it shrinks).
  void IngestSpans(const telemetry::SpanCollector& spans);

  /// Streaming health score in (0, 1]; 1.0 for ships never observed.
  double ScoreOf(net::NodeId ship) const;

  const std::map<net::NodeId, ShipHealth>& ships() const { return ships_; }
  const HealthConfig& config() const { return config_; }

  std::uint64_t hops_observed() const { return hops_observed_; }
  std::uint64_t spans_ingested() const { return spans_ingested_; }

  /// Writes per-ship score gauges ("health.score.<node>") and the tracked
  /// ship count into `stats`, making scores visible to every exporter.
  void PublishScores(sim::StatsRegistry& stats) const;

  /// Exact state for genesis snapshots; restoring reproduces every accessor
  /// bit-for-bit.
  struct RawState {
    struct ShipState {
      net::NodeId ship = net::kInvalidNode;
      double queue_ewma = 0.0;
      double hop_latency_ewma = 0.0;
      double service_latency_ewma = 0.0;
      std::uint64_t samples = 0;
      std::uint64_t service_samples = 0;
      std::uint64_t expected_visits = 0;
      std::uint64_t missed_visits = 0;
      std::uint64_t code_executions = 0;
      std::uint64_t code_misses = 0;
      sim::Histogram::RawState hop_latency_ns;
      sim::Histogram::RawState queue_bytes;
    };
    std::vector<ShipState> ships;
    std::uint64_t hops_observed = 0;
    std::uint64_t spans_ingested = 0;
    std::uint64_t span_cursor = 0;
  };
  RawState SaveState() const;
  void RestoreState(const RawState& state);

 private:
  void Ewma(double& acc, double sample, std::uint64_t prior_count) const;

  HealthConfig config_;
  std::map<net::NodeId, ShipHealth> ships_;
  std::uint64_t hops_observed_ = 0;
  std::uint64_t spans_ingested_ = 0;
  std::size_t span_cursor_ = 0;  // spans consumed from the collector
};

/// Deterministic rule + z-score engine over the registry's health series.
/// Raised events accumulate in `events()`; an active-set keeps one event per
/// (kind, ship) condition episode (the flag clears when the condition does).
class AnomalyDetector {
 public:
  explicit AnomalyDetector(const HealthConfig& config) : config_(config) {}

  /// Immediate per-record rule: routing-loop suspicion (one ship visited
  /// more than `loop_repeats` times by a single probe).
  std::vector<HealthEvent> CheckRecord(const ProbeRecord& record,
                                       sim::TimePoint now);

  /// Periodic rules over the whole registry: hop-latency z-score, absolute
  /// score floor, probe-loss ratio (degraded ship) and starved-EE detection.
  /// Returns only the events newly raised by this evaluation.
  std::vector<HealthEvent> Evaluate(const HealthRegistry& registry,
                                    sim::TimePoint now);

  const std::vector<HealthEvent>& events() const { return events_; }

  struct RawState {
    std::vector<HealthEvent> events;
    /// Active (kind, ship) condition episodes.
    std::vector<std::pair<std::uint8_t, net::NodeId>> active;
    /// Per-ship (executions, misses) seen at the previous Evaluate().
    std::vector<std::pair<net::NodeId, std::pair<std::uint64_t, std::uint64_t>>>
        prev_code_counters;
  };
  RawState SaveState() const;
  void RestoreState(RawState state);

 private:
  /// Raises (kind, ship) unless its episode is already active. Returns true
  /// when a new event was appended to both `events_` and `fresh`.
  bool Raise(HealthEventKind kind, net::NodeId ship, sim::TimePoint now,
             double value, double threshold, std::string detail,
             std::vector<HealthEvent>& fresh);
  void Clear(HealthEventKind kind, net::NodeId ship);

  HealthConfig config_;
  std::vector<HealthEvent> events_;
  std::map<std::pair<std::uint8_t, net::NodeId>, bool> active_;
  std::map<net::NodeId, std::pair<std::uint64_t, std::uint64_t>>
      prev_code_counters_;
};

}  // namespace viator::health
