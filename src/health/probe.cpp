#include "health/probe.h"

#include <algorithm>
#include <utility>

#include "sim/trace.h"

namespace viator::health {

// ---- Probe payload codec ---------------------------------------------------

std::vector<std::int64_t> EncodeProbe(
    std::uint64_t probe_id, std::uint64_t round, sim::TimePoint emitted,
    const std::vector<net::NodeId>& waypoints) {
  std::vector<std::int64_t> payload;
  payload.reserve(kProbeHeaderWords + waypoints.size());
  payload.push_back(static_cast<std::int64_t>(probe_id));
  payload.push_back(static_cast<std::int64_t>(round));
  payload.push_back(0);  // itinerary cursor
  payload.push_back(static_cast<std::int64_t>(waypoints.size()));
  payload.push_back(static_cast<std::int64_t>(emitted));
  for (const net::NodeId w : waypoints) {
    payload.push_back(static_cast<std::int64_t>(w));
  }
  return payload;
}

void AppendHop(std::vector<std::int64_t>& payload, const HopSample& hop) {
  payload.push_back(static_cast<std::int64_t>(hop.ship));
  payload.push_back(static_cast<std::int64_t>(hop.arrived_from));
  payload.push_back(static_cast<std::int64_t>(hop.arrival));
  payload.push_back(static_cast<std::int64_t>(hop.queue_bytes));
  payload.push_back(static_cast<std::int64_t>(hop.service_latency_ns));
  payload.push_back(static_cast<std::int64_t>(hop.code_executions));
  payload.push_back(static_cast<std::int64_t>(hop.code_misses));
  payload.push_back(static_cast<std::int64_t>(hop.ttl_remaining));
}

std::size_t ProbeCursor(const std::vector<std::int64_t>& payload) {
  return static_cast<std::size_t>(payload[2]);
}

void SetProbeCursor(std::vector<std::int64_t>& payload, std::size_t cursor) {
  payload[2] = static_cast<std::int64_t>(cursor);
}

std::size_t ProbeWaypointCount(const std::vector<std::int64_t>& payload) {
  return static_cast<std::size_t>(payload[3]);
}

net::NodeId ProbeWaypoint(const std::vector<std::int64_t>& payload,
                          std::size_t index) {
  return static_cast<net::NodeId>(payload[kProbeHeaderWords + index]);
}

std::optional<ProbeRecord> DecodeProbe(
    const std::vector<std::int64_t>& payload) {
  if (payload.size() < kProbeHeaderWords) return std::nullopt;
  const auto waypoint_count = static_cast<std::size_t>(payload[3]);
  if (payload[3] < 0 || payload.size() < kProbeHeaderWords + waypoint_count) {
    return std::nullopt;
  }
  const std::size_t hop_words =
      payload.size() - kProbeHeaderWords - waypoint_count;
  if (hop_words % kHopWords != 0) return std::nullopt;

  ProbeRecord record;
  record.probe_id = static_cast<std::uint64_t>(payload[0]);
  record.round = static_cast<std::uint64_t>(payload[1]);
  record.emitted = static_cast<sim::TimePoint>(payload[4]);
  record.waypoints.reserve(waypoint_count);
  for (std::size_t i = 0; i < waypoint_count; ++i) {
    record.waypoints.push_back(ProbeWaypoint(payload, i));
  }
  record.hops.reserve(hop_words / kHopWords);
  std::size_t at = kProbeHeaderWords + waypoint_count;
  while (at < payload.size()) {
    HopSample hop;
    hop.ship = static_cast<net::NodeId>(payload[at + 0]);
    hop.arrived_from = static_cast<net::NodeId>(payload[at + 1]);
    hop.arrival = static_cast<sim::TimePoint>(payload[at + 2]);
    hop.queue_bytes = static_cast<std::uint64_t>(payload[at + 3]);
    hop.service_latency_ns = static_cast<std::uint64_t>(payload[at + 4]);
    hop.code_executions = static_cast<std::uint64_t>(payload[at + 5]);
    hop.code_misses = static_cast<std::uint64_t>(payload[at + 6]);
    hop.ttl_remaining = static_cast<std::uint32_t>(payload[at + 7]);
    record.hops.push_back(hop);
    at += kHopWords;
  }
  return record;
}

// ---- ProbePlane ------------------------------------------------------------

ProbePlane::ProbePlane(wli::WanderingNetwork& network,
                       const HealthConfig& config, std::uint64_t seed)
    : network_(network),
      config_(config),
      // Private itinerary stream, salted off the scenario seed: probe routes
      // are reproducible yet never consume network/fabric draws.
      rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      registry_(config),
      detector_(config) {
  network_.SetProbeHandler(
      [this](wli::Ship& ship, wli::Shuttle shuttle, net::NodeId from) {
        OnProbe(ship, std::move(shuttle), from);
      });
}

void ProbePlane::StartProbes(sim::TimePoint until) {
  if (!config_.enable_probes || config_.probe_interval == 0) return;
  network_.simulator().ScheduleAfter(
      config_.probe_interval,
      [this, until] {
        RunRound();
        if (network_.simulator().now() + config_.probe_interval <= until) {
          StartProbes(until);
        }
      },
      "health.probe");
}

void ProbePlane::RunRound() {
  Evaluate();
  ++rounds_;
  if (network_.ship(config_.collector) == nullptr) return;
  std::vector<net::NodeId> candidates = ShipNodes();
  std::erase(candidates, config_.collector);
  if (candidates.empty()) return;
  for (std::size_t i = 0; i < config_.probes_per_round; ++i) {
    EmitProbe(candidates);
  }
}

void ProbePlane::Evaluate() {
  const sim::TimePoint now = network_.simulator().now();
  registry_.IngestSpans(network_.telemetry().spans());
  ExpirePending(now);
  HandleEvents(detector_.Evaluate(registry_, now));
  registry_.PublishScores(network_.stats());
}

std::vector<net::NodeId> ProbePlane::ShipNodes() const {
  std::vector<net::NodeId> nodes;
  // ForEachShip iterates in node order, so the candidate list (and with it
  // the itinerary RNG consumption) is deterministic.
  const_cast<wli::WanderingNetwork&>(network_).ForEachShip(
      [&nodes](wli::Ship& ship) { nodes.push_back(ship.id()); });
  return nodes;
}

void ProbePlane::EmitProbe(const std::vector<net::NodeId>& candidates) {
  const std::size_t want =
      std::min(config_.waypoints_per_probe, candidates.size());
  if (want == 0) return;
  // Partial Fisher–Yates: `want` distinct waypoints from the plane's RNG.
  std::vector<net::NodeId> pool = candidates;
  std::vector<net::NodeId> waypoints;
  waypoints.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t pick = rng_.Index(pool.size());
    waypoints.push_back(pool[pick]);
    pool[pick] = pool.back();
    pool.pop_back();
  }

  const sim::TimePoint now = network_.simulator().now();
  const std::uint64_t id = next_probe_id_++;
  wli::Shuttle probe;
  probe.header.source = config_.collector;
  probe.header.destination = waypoints.front();
  probe.header.kind = wli::ShuttleKind::kProbe;
  probe.header.flow_id = id;
  probe.header.ttl = config_.probe_ttl;
  probe.payload = EncodeProbe(id, rounds_, now, waypoints);

  registry_.RecordEmission(waypoints);
  pending_[id] = PendingProbe{now, waypoints};
  ++probes_emitted_;
  network_.stats().GetCounter("health.probes_emitted").Add();
  if (!network_.Dispatch(config_.collector, std::move(probe)).ok()) {
    // First hop refused (no route, link down): lost on the spot.
    registry_.RecordLoss(waypoints);
    pending_.erase(id);
    ++probes_lost_;
    network_.stats().GetCounter("health.probes_lost").Add();
  }
}

void ProbePlane::OnProbe(wli::Ship& ship, wli::Shuttle shuttle,
                         net::NodeId from) {
  if (shuttle.payload.size() < kProbeHeaderWords) {
    network_.stats().GetCounter("health.probe_malformed").Add();
    return;
  }
  if (shuttle.header.ttl == 0) {
    // The probe dies here; its pending entry will expire into a loss.
    ++probes_ttl_expired_;
    network_.stats().GetCounter("health.probe_ttl_expired").Add();
    return;
  }
  --shuttle.header.ttl;

  const sim::TimePoint now = network_.simulator().now();
  HopSample hop;
  hop.ship = ship.id();
  hop.arrived_from = from;
  hop.arrival = now;
  hop.queue_bytes = network_.fabric().QueuedBytesAt(ship.id());
  // Self-reference: the probe carries the plane's own span-derived service
  // EWMA for this ship, so deposited records are complete in-band documents.
  const auto known = registry_.ships().find(ship.id());
  hop.service_latency_ns =
      known == registry_.ships().end()
          ? 0
          : static_cast<std::uint64_t>(known->second.service_latency_ewma);
  hop.code_executions = ship.code_executions();
  hop.code_misses = ship.code_misses();
  hop.ttl_remaining = shuttle.header.ttl;
  AppendHop(shuttle.payload, hop);

  std::size_t cursor = ProbeCursor(shuttle.payload);
  const std::size_t waypoint_count = ProbeWaypointCount(shuttle.payload);
  if (cursor < waypoint_count &&
      ship.id() == ProbeWaypoint(shuttle.payload, cursor)) {
    SetProbeCursor(shuttle.payload, ++cursor);
  }
  if (cursor >= waypoint_count && ship.id() == config_.collector) {
    Deposit(shuttle, now);
    return;
  }
  shuttle.header.destination = cursor < waypoint_count
                                   ? ProbeWaypoint(shuttle.payload, cursor)
                                   : config_.collector;
  (void)network_.Dispatch(ship.id(), std::move(shuttle));
}

void ProbePlane::Deposit(const wli::Shuttle& shuttle, sim::TimePoint now) {
  const auto record = DecodeProbe(shuttle.payload);
  if (!record) {
    network_.stats().GetCounter("health.probe_malformed").Add();
    return;
  }
  pending_.erase(record->probe_id);
  ++probes_absorbed_;
  network_.stats().GetCounter("health.probes_absorbed").Add();
  registry_.AbsorbProbe(*record, &network_.stats());
  HandleEvents(detector_.CheckRecord(*record, now));
}

void ProbePlane::ExpirePending(sim::TimePoint now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.emitted + config_.probe_timeout <= now) {
      registry_.RecordLoss(it->second.waypoints);
      ++probes_lost_;
      network_.stats().GetCounter("health.probes_lost").Add();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void ProbePlane::HandleEvents(const std::vector<HealthEvent>& events) {
  const sim::TimePoint now = network_.simulator().now();
  for (const HealthEvent& event : events) {
    network_.stats().GetCounter("health.events").Add();
    network_.stats()
        .GetCounter("health.events." +
                    std::string(HealthEventKindName(event.kind)))
        .Add();
    network_.trace().Log(now, sim::TraceLevel::kInfo, "health",
                         std::string(HealthEventKindName(event.kind)) +
                             " ship " + std::to_string(event.ship) + ": " +
                             event.detail);
    // MFP loop closure: anomalies become SRP reputation reports.
    if (config_.feed_reputation && event.ship != net::kInvalidNode) {
      network_.reputation().ReportInteraction(event.ship, /*fair=*/false);
    }
  }
}

HealthReport ProbePlane::BuildReport() const {
  HealthReport report;
  for (const auto& [node, state] : registry_.ships()) {
    ShipReportEntry entry;
    entry.ship = node;
    entry.score = registry_.ScoreOf(node);
    entry.queue_ewma = state.queue_ewma;
    entry.hop_latency_ewma = state.hop_latency_ewma;
    entry.service_latency_ewma = state.service_latency_ewma;
    entry.samples = state.samples;
    entry.expected_visits = state.expected_visits;
    entry.missed_visits = state.missed_visits;
    entry.code_executions = state.code_executions;
    entry.code_misses = state.code_misses;
    report.ships.push_back(entry);
  }
  report.events = detector_.events();
  report.summary.probes_emitted = probes_emitted_;
  report.summary.probes_absorbed = probes_absorbed_;
  report.summary.probes_lost = probes_lost_;
  report.summary.hops_observed = registry_.hops_observed();
  report.summary.spans_ingested = registry_.spans_ingested();
  report.summary.events = detector_.events().size();
  return report;
}

ProbePlane::RawState ProbePlane::SaveState() const {
  RawState state;
  state.rng_state = rng_.SaveState();
  state.next_probe_id = next_probe_id_;
  state.rounds = rounds_;
  state.probes_emitted = probes_emitted_;
  state.probes_absorbed = probes_absorbed_;
  state.probes_lost = probes_lost_;
  state.probes_ttl_expired = probes_ttl_expired_;
  for (const auto& [id, pending] : pending_) {
    state.pending.push_back({id, pending.emitted, pending.waypoints});
  }
  state.registry = registry_.SaveState();
  state.detector = detector_.SaveState();
  return state;
}

void ProbePlane::RestoreState(RawState state) {
  rng_.RestoreState(state.rng_state);
  next_probe_id_ = state.next_probe_id;
  rounds_ = state.rounds;
  probes_emitted_ = state.probes_emitted;
  probes_absorbed_ = state.probes_absorbed;
  probes_lost_ = state.probes_lost;
  probes_ttl_expired_ = state.probes_ttl_expired;
  pending_.clear();
  for (RawState::Pending& pending : state.pending) {
    pending_[pending.probe_id] =
        PendingProbe{pending.emitted, std::move(pending.waypoints)};
  }
  registry_.RestoreState(state.registry);
  detector_.RestoreState(std::move(state.detector));
}

}  // namespace viator::health
