// Latency SLO burn gate: a deterministic consecutive-breach detector over
// per-window delivery quantiles from the Latency Observatory
// (telemetry/latency_plane.h).
//
// The memory gate (mem_growth.h) watches the simulator's own heap; this one
// watches the workload's end-to-end latency. Once per window the harness
// feeds each SLO's measured quantile into Observe(). A spec whose quantile
// exceeds its bound for `burn_windows` consecutive windows raises one
// `slo_burn` HealthEvent carrying the worst offender's trace id, so the
// alert hands wnreplay/wnscope the exact shuttle to drill into. The episode
// stays active (no re-raise) until a window comes in under the bound,
// mirroring MemGrowthDetector's per-key episode dedup.
//
// Determinism contract: quantiles from the latency plane are pure sim-time
// arithmetic, so the same run raises the same events at the same windows on
// every machine and thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "health/health.h"

namespace viator::health {

/// One latency objective: "the per-window `quantile` of end-to-end delivery
/// latency stays at or under `bound_ns` simulated nanoseconds". `quantile`
/// is descriptive (it names which quantile the harness feeds Observe); the
/// detector itself only compares the fed value against the bound.
struct SloSpec {
  double quantile = 0.99;
  std::uint64_t bound_ns = 0;
  /// Consecutive breaching windows before the episode raises. Windows with
  /// no deliveries (quantile 0) do not breach and end any breach run.
  std::uint32_t burn_windows = 4;
};

class SloBurnDetector {
 public:
  explicit SloBurnDetector(std::vector<SloSpec> specs)
      : specs_(std::move(specs)), states_(specs_.size()) {}

  /// Feeds one window's measured quantile for spec `spec_index`, plus the
  /// trace id of the window's worst delivery (0 = none captured). Returns
  /// the freshly raised event, if any. HealthEvent::ship carries the spec
  /// index (this detector keys episodes by objective, not by ship); `value`
  /// is the measured quantile in ns, `threshold` the bound; `detail` names
  /// the objective and the exemplar trace id for drill-down.
  std::optional<HealthEvent> Observe(std::size_t spec_index,
                                     std::uint64_t quantile_ns,
                                     sim::TimePoint now,
                                     std::uint64_t exemplar_trace = 0);

  /// Every event raised since construction, in raise order.
  const std::vector<HealthEvent>& events() const { return events_; }

  const std::vector<SloSpec>& specs() const { return specs_; }

 private:
  struct SpecState {
    bool active = false;       // episode already reported
    std::uint32_t burning = 0; // length of the current breach run
  };

  std::vector<SloSpec> specs_;
  std::vector<SpecState> states_;
  std::vector<HealthEvent> events_;
};

}  // namespace viator::health
