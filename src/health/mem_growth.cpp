#include "health/mem_growth.h"

#include <string>

namespace viator::health {

std::optional<HealthEvent> MemGrowthDetector::Observe(
    telemetry::mem::Domain domain, std::uint64_t live_bytes,
    sim::TimePoint now) {
  DomainState& state = domains_[static_cast<std::size_t>(domain)];
  if (!state.seen) {
    state.seen = true;
    state.last_bytes = live_bytes;
    state.run_start_bytes = live_bytes;
    return std::nullopt;
  }

  if (live_bytes > state.last_bytes) {
    if (state.growing == 0) state.run_start_bytes = state.last_bytes;
    ++state.growing;
  } else {
    // Flat or shrinking: the run is over and so is any active episode.
    state.growing = 0;
    state.run_start_bytes = live_bytes;
    state.active = false;
  }
  state.last_bytes = live_bytes;

  const std::uint64_t growth = live_bytes - state.run_start_bytes;
  if (state.active || state.growing < config_.consecutive_windows ||
      growth <= config_.slack_bytes) {
    return std::nullopt;
  }

  state.active = true;
  HealthEvent event;
  event.time = now;
  event.kind = HealthEventKind::kMemGrowth;
  event.ship = static_cast<net::NodeId>(domain);  // domain index, not a ship
  event.value = static_cast<double>(growth);
  event.threshold = static_cast<double>(config_.slack_bytes);
  event.detail = std::string(telemetry::mem::DomainName(domain)) + " grew " +
                 std::to_string(growth) + " bytes over " +
                 std::to_string(state.growing) + " windows";
  events_.push_back(event);
  return event;
}

std::vector<HealthEvent> MemGrowthDetector::ObserveBlock(
    const telemetry::mem::ThreadBlock& aggregate, sim::TimePoint now) {
  std::vector<HealthEvent> fresh;
  for (std::size_t d = 0; d < telemetry::mem::kDomainCount; ++d) {
    const auto& counter = aggregate.counters[d];
    const std::uint64_t live =
        counter.live_bytes > 0
            ? static_cast<std::uint64_t>(counter.live_bytes)
            : 0;
    if (auto event = Observe(static_cast<telemetry::mem::Domain>(d), live, now);
        event.has_value()) {
      fresh.push_back(std::move(*event));
    }
  }
  return fresh;
}

}  // namespace viator::health
