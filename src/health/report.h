// Health reports: the export format of the health plane, plus the
// regression-gate logic behind tools/wnhealth.
//
// A report is JSONL with three line kinds ("ship", "event", "summary");
// writers emit fixed field order so identical-seed runs produce byte-equal
// files. Diffing compares per-ship scores inside a tolerance band and event
// census per kind; the bench gate compares flat BENCH_*.json metric maps
// against committed baselines, ignoring wall-clock-derived keys.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "health/health.h"

namespace viator::health {

struct ShipReportEntry {
  net::NodeId ship = net::kInvalidNode;
  double score = 1.0;
  double queue_ewma = 0.0;
  double hop_latency_ewma = 0.0;
  double service_latency_ewma = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t expected_visits = 0;
  std::uint64_t missed_visits = 0;
  std::uint64_t code_executions = 0;
  std::uint64_t code_misses = 0;
};

struct HealthSummary {
  std::uint64_t probes_emitted = 0;
  std::uint64_t probes_absorbed = 0;
  std::uint64_t probes_lost = 0;
  std::uint64_t hops_observed = 0;
  std::uint64_t spans_ingested = 0;
  std::uint64_t events = 0;
};

struct HealthReport {
  std::vector<ShipReportEntry> ships;  // ship-id order
  std::vector<HealthEvent> events;     // raise order
  HealthSummary summary;
};

/// One line per ship, then per event, then the summary line.
void WriteHealthJsonl(const HealthReport& report, std::ostream& out);

/// Parses a written report back; nullopt when no summary line is found
/// (truncated or not a health report).
std::optional<HealthReport> ParseHealthJsonl(std::istream& in);

// ---- Report diff (wnhealth diff) ------------------------------------------

struct HealthDiffOptions {
  /// Allowed per-ship score drop before it counts as a regression.
  double score_tolerance = 0.05;
};

/// Regressions of `current` against `baseline`: ship score drops beyond the
/// tolerance band, ships that disappeared, and per-kind event-count growth.
/// Empty means the gate passes. Improvements are not regressions.
std::vector<std::string> DiffHealthReports(const HealthReport& baseline,
                                           const HealthReport& current,
                                           const HealthDiffOptions& options);

// ---- Bench gate (wnhealth bench) ------------------------------------------

/// Parses a flat one-level JSON object ({"metric": number, ...}) — the
/// BENCH_*.json shape written by telemetry::BenchReport.
std::map<std::string, double> ParseFlatJson(std::istream& in);

struct BenchGateOptions {
  /// Allowed relative drift per metric.
  double tolerance = 0.25;
  /// Metrics whose name contains any of these substrings are skipped:
  /// wall-clock-derived values vary across machines and never gate.
  std::vector<std::string> ignore_substrings = {"wall", "per_sec", "mops",
                                                "seconds", "speedup"};
};

/// Regressions of `current` against `baseline`: missing metrics and values
/// drifting beyond the tolerance band. Metrics only in `current` are new,
/// not regressions.
std::vector<std::string> CompareBenchMetrics(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& current,
    const BenchGateOptions& options);

}  // namespace viator::health
