// Memory-growth anomaly gate: a deterministic monotone-growth detector over
// per-domain byte series from the Memory Observatory (telemetry/mem_counters.h).
//
// The health plane's other rules watch the network's traffic; this one
// watches the simulator's own memory domains. Once per window the harness
// feeds each domain's live-byte sample into Observe(). A domain that grows
// strictly for `consecutive_windows` windows AND has gained more than
// `slack_bytes` since the run of growth began raises one `mem_growth`
// HealthEvent. The episode stays active (no re-raise) until the series goes
// flat or shrinks, mirroring AnomalyDetector's (kind, key) episode dedup.
//
// Determinism contract: the detector consumes only deterministic inputs
// (domain byte counters are exact under the single-writer windows the shard
// runtime guarantees) and keeps no wall-clock state, so the same series
// raises the same events at the same windows on every run.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "health/health.h"
#include "telemetry/mem_counters.h"

namespace viator::health {

struct MemGrowthConfig {
  /// Strictly-growing windows required before a domain is suspicious.
  std::uint32_t consecutive_windows = 4;
  /// Net growth over the current run must exceed this many bytes — absorbs
  /// warm-up growth of pools that legitimately expand toward steady state.
  std::uint64_t slack_bytes = 1 << 16;
};

class MemGrowthDetector {
 public:
  explicit MemGrowthDetector(const MemGrowthConfig& config = {})
      : config_(config) {}

  /// Feeds one window's live-byte sample for `domain`. Returns the freshly
  /// raised event, if any. HealthEvent::ship carries the domain index (this
  /// detector keys episodes by memory domain, not by ship); `value` is the
  /// net growth of the current run in bytes, `threshold` the slack.
  std::optional<HealthEvent> Observe(telemetry::mem::Domain domain,
                                     std::uint64_t live_bytes,
                                     sim::TimePoint now);

  /// Convenience sweep: feeds every domain's live bytes from an aggregated
  /// counter block (negative per-thread transients clamp to zero). Returns
  /// only the events newly raised by this sweep.
  std::vector<HealthEvent> ObserveBlock(
      const telemetry::mem::ThreadBlock& aggregate, sim::TimePoint now);

  /// Every event raised since construction, in raise order.
  const std::vector<HealthEvent>& events() const { return events_; }

  const MemGrowthConfig& config() const { return config_; }

 private:
  struct DomainState {
    bool seen = false;           // first sample only seeds the series
    bool active = false;         // episode already reported
    std::uint32_t growing = 0;   // length of the current strict-growth run
    std::uint64_t last_bytes = 0;
    std::uint64_t run_start_bytes = 0;  // sample before the run began
  };

  MemGrowthConfig config_;
  std::array<DomainState, telemetry::mem::kDomainCount> domains_{};
  std::vector<HealthEvent> events_;
};

}  // namespace viator::health
