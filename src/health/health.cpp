#include "health/health.h"

#include <algorithm>
#include <cmath>

namespace viator::health {

std::string_view HealthEventKindName(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kDegradedShip: return "degraded-ship";
    case HealthEventKind::kStarvedEe: return "starved-ee";
    case HealthEventKind::kRoutingLoop: return "routing-loop";
    case HealthEventKind::kMemGrowth: return "mem_growth";
    case HealthEventKind::kSloBurn: return "slo_burn";
    case HealthEventKind::kKindCount: break;
  }
  return "?";
}

std::optional<HealthEventKind> HealthEventKindFromName(std::string_view name) {
  for (std::uint8_t k = 0;
       k < static_cast<std::uint8_t>(HealthEventKind::kKindCount); ++k) {
    const auto kind = static_cast<HealthEventKind>(k);
    if (HealthEventKindName(kind) == name) return kind;
  }
  return std::nullopt;
}

// ---- HealthRegistry --------------------------------------------------------

void HealthRegistry::Ewma(double& acc, double sample,
                          std::uint64_t prior_count) const {
  // First sample seeds the EWMA exactly; later samples decay toward it.
  acc = prior_count == 0 ? sample
                         : acc + config_.ewma_alpha * (sample - acc);
}

void HealthRegistry::RecordEmission(const std::vector<net::NodeId>& waypoints) {
  for (const net::NodeId w : waypoints) ++ships_[w].expected_visits;
}

void HealthRegistry::AbsorbProbe(const ProbeRecord& record,
                                 sim::StatsRegistry* mirror) {
  sim::TimePoint prev = record.emitted;
  for (const HopSample& hop : record.hops) {
    ShipHealth& ship = ships_[hop.ship];
    const double hop_latency =
        static_cast<double>(hop.arrival >= prev ? hop.arrival - prev : 0);
    const double queue = static_cast<double>(hop.queue_bytes);
    Ewma(ship.hop_latency_ewma, hop_latency, ship.samples);
    Ewma(ship.queue_ewma, queue, ship.samples);
    ship.hop_latency_ns.Record(hop_latency);
    ship.queue_bytes.Record(queue);
    if (mirror != nullptr) {
      mirror->GetHistogram("health.hop_latency_ns").Record(hop_latency);
      mirror->GetHistogram("health.queue_bytes").Record(queue);
    }
    ship.code_executions = hop.code_executions;
    ship.code_misses = hop.code_misses;
    ++ship.samples;
    ++hops_observed_;
    prev = hop.arrival;
  }
}

void HealthRegistry::RecordLoss(const std::vector<net::NodeId>& waypoints) {
  for (const net::NodeId w : waypoints) ++ships_[w].missed_visits;
}

void HealthRegistry::IngestSpans(const telemetry::SpanCollector& spans) {
  const auto& all = spans.spans();
  if (span_cursor_ > all.size()) span_cursor_ = 0;  // collector was cleared
  for (; span_cursor_ < all.size(); ++span_cursor_) {
    const telemetry::SpanRecord& span = all[span_cursor_];
    ShipHealth& ship = ships_[static_cast<net::NodeId>(span.ship)];
    const double duration =
        static_cast<double>(span.end >= span.start ? span.end - span.start : 0);
    Ewma(ship.service_latency_ewma, duration, ship.service_samples);
    ++ship.service_samples;
    ++spans_ingested_;
  }
}

double HealthRegistry::ScoreOf(net::NodeId ship) const {
  const auto it = ships_.find(ship);
  if (it == ships_.end()) return 1.0;
  const ShipHealth& s = it->second;
  const double queue_factor =
      1.0 / (1.0 + s.queue_ewma / config_.queue_scale_bytes);
  const double latency_factor =
      1.0 / (1.0 + s.hop_latency_ewma / config_.latency_scale_ns);
  const double reach_factor =
      s.expected_visits == 0
          ? 1.0
          : 1.0 - static_cast<double>(s.missed_visits) /
                      static_cast<double>(s.expected_visits);
  return queue_factor * latency_factor * std::max(0.0, reach_factor);
}

void HealthRegistry::PublishScores(sim::StatsRegistry& stats) const {
  for (const auto& [node, state] : ships_) {
    stats.GetGauge("health.score." + std::to_string(node)).Set(ScoreOf(node));
  }
  stats.GetGauge("health.ships_tracked")
      .Set(static_cast<double>(ships_.size()));
}

HealthRegistry::RawState HealthRegistry::SaveState() const {
  RawState state;
  state.ships.reserve(ships_.size());
  for (const auto& [node, s] : ships_) {
    RawState::ShipState out;
    out.ship = node;
    out.queue_ewma = s.queue_ewma;
    out.hop_latency_ewma = s.hop_latency_ewma;
    out.service_latency_ewma = s.service_latency_ewma;
    out.samples = s.samples;
    out.service_samples = s.service_samples;
    out.expected_visits = s.expected_visits;
    out.missed_visits = s.missed_visits;
    out.code_executions = s.code_executions;
    out.code_misses = s.code_misses;
    out.hop_latency_ns = s.hop_latency_ns.SaveState();
    out.queue_bytes = s.queue_bytes.SaveState();
    state.ships.push_back(std::move(out));
  }
  state.hops_observed = hops_observed_;
  state.spans_ingested = spans_ingested_;
  state.span_cursor = span_cursor_;
  return state;
}

void HealthRegistry::RestoreState(const RawState& state) {
  ships_.clear();
  for (const RawState::ShipState& in : state.ships) {
    ShipHealth s;
    s.queue_ewma = in.queue_ewma;
    s.hop_latency_ewma = in.hop_latency_ewma;
    s.service_latency_ewma = in.service_latency_ewma;
    s.samples = in.samples;
    s.service_samples = in.service_samples;
    s.expected_visits = in.expected_visits;
    s.missed_visits = in.missed_visits;
    s.code_executions = in.code_executions;
    s.code_misses = in.code_misses;
    s.hop_latency_ns.RestoreState(in.hop_latency_ns);
    s.queue_bytes.RestoreState(in.queue_bytes);
    ships_.emplace(in.ship, std::move(s));
  }
  hops_observed_ = state.hops_observed;
  spans_ingested_ = state.spans_ingested;
  span_cursor_ = state.span_cursor;
}

// ---- AnomalyDetector -------------------------------------------------------

bool AnomalyDetector::Raise(HealthEventKind kind, net::NodeId ship,
                            sim::TimePoint now, double value, double threshold,
                            std::string detail,
                            std::vector<HealthEvent>& fresh) {
  auto& flag = active_[{static_cast<std::uint8_t>(kind), ship}];
  if (flag) return false;  // episode already reported
  flag = true;
  HealthEvent event;
  event.time = now;
  event.kind = kind;
  event.ship = ship;
  event.value = value;
  event.threshold = threshold;
  event.detail = std::move(detail);
  events_.push_back(event);
  fresh.push_back(std::move(event));
  return true;
}

void AnomalyDetector::Clear(HealthEventKind kind, net::NodeId ship) {
  const auto it = active_.find({static_cast<std::uint8_t>(kind), ship});
  if (it != active_.end()) it->second = false;
}

std::vector<HealthEvent> AnomalyDetector::CheckRecord(
    const ProbeRecord& record, sim::TimePoint now) {
  std::vector<HealthEvent> fresh;
  std::map<net::NodeId, std::size_t> visits;
  for (const HopSample& hop : record.hops) ++visits[hop.ship];
  for (const auto& [ship, count] : visits) {
    if (count > config_.loop_repeats) {
      Raise(HealthEventKind::kRoutingLoop, ship, now,
            static_cast<double>(count),
            static_cast<double>(config_.loop_repeats),
            "probe " + std::to_string(record.probe_id) + " crossed ship " +
                std::to_string(ship) + " " + std::to_string(count) + " times",
            fresh);
    }
  }
  return fresh;
}

std::vector<HealthEvent> AnomalyDetector::Evaluate(
    const HealthRegistry& registry, sim::TimePoint now) {
  std::vector<HealthEvent> fresh;
  const auto& ships = registry.ships();

  // Network-wide hop-latency distribution for the z-score rule.
  double mean = 0.0, m2 = 0.0;
  std::uint64_t n = 0;
  for (const auto& [node, s] : ships) {
    if (s.samples < registry.config().min_samples) continue;
    ++n;
    const double delta = s.hop_latency_ewma - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (s.hop_latency_ewma - mean);
  }
  const double stddev = n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;

  for (const auto& [node, s] : ships) {
    bool degraded = false;
    // Rule 1: hop-latency z-score against the network's own distribution.
    if (s.samples >= config_.min_samples && stddev > 1e-9) {
      const double z = (s.hop_latency_ewma - mean) / stddev;
      if (z > config_.z_threshold) {
        degraded = true;
        Raise(HealthEventKind::kDegradedShip, node, now, z, config_.z_threshold,
              "hop latency z-score " + std::to_string(z), fresh);
      }
    }
    // Rule 2: probe-loss ratio — probes that name this ship as a waypoint
    // keep vanishing (dead or flaky ship / links).
    if (s.expected_visits >= config_.min_expected_visits) {
      const double ratio = static_cast<double>(s.missed_visits) /
                           static_cast<double>(s.expected_visits);
      if (ratio >= config_.loss_ratio_threshold) {
        degraded = true;
        Raise(HealthEventKind::kDegradedShip, node, now, ratio,
              config_.loss_ratio_threshold,
              "probe loss ratio " + std::to_string(ratio) + " (" +
                  std::to_string(s.missed_visits) + "/" +
                  std::to_string(s.expected_visits) + " visits missed)",
              fresh);
      }
    }
    // Rule 3: absolute score floor.
    if (s.samples >= config_.min_samples) {
      const double score = registry.ScoreOf(node);
      if (score < config_.degraded_score) {
        degraded = true;
        Raise(HealthEventKind::kDegradedShip, node, now, score,
              config_.degraded_score, "health score " + std::to_string(score),
              fresh);
      }
    }
    if (!degraded) Clear(HealthEventKind::kDegradedShip, node);

    // Rule 4: starved EE — code misses grew since the previous evaluation
    // while executions did not (demand loading never completes).
    const auto prev = prev_code_counters_.find(node);
    if (prev != prev_code_counters_.end()) {
      const auto [prev_exec, prev_miss] = prev->second;
      if (s.code_misses > prev_miss && s.code_executions == prev_exec) {
        Raise(HealthEventKind::kStarvedEe, node, now,
              static_cast<double>(s.code_misses - prev_miss), 0.0,
              std::to_string(s.code_misses - prev_miss) +
                  " new code misses with no executions",
              fresh);
      } else if (s.code_executions > prev_exec) {
        Clear(HealthEventKind::kStarvedEe, node);
      }
    }
    prev_code_counters_[node] = {s.code_executions, s.code_misses};
  }
  return fresh;
}

AnomalyDetector::RawState AnomalyDetector::SaveState() const {
  RawState state;
  state.events = events_;
  for (const auto& [key, flag] : active_) {
    if (flag) state.active.push_back(key);
  }
  for (const auto& [node, counters] : prev_code_counters_) {
    state.prev_code_counters.emplace_back(node, counters);
  }
  return state;
}

void AnomalyDetector::RestoreState(RawState state) {
  events_ = std::move(state.events);
  active_.clear();
  for (const auto& key : state.active) active_[key] = true;
  prev_code_counters_.clear();
  for (const auto& [node, counters] : state.prev_code_counters) {
    prev_code_counters_[node] = counters;
  }
}

}  // namespace viator::health
