#include "health/report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <set>

namespace viator::health {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string Quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  AppendEscaped(out, text);
  out += '"';
  return out;
}

// Field scanners for our own fixed-shape lines (mirrors telemetry/export.cpp;
// the shapes are private to each format, so the scanners are too).
std::optional<std::string> FindString(std::string_view line,
                                      std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\":\"";
  const auto pos = line.find(pattern);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + pattern.size();
  std::string out;
  while (i < line.size() && line[i] != '"') {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char esc = line[i + 1];
      i += 2;
      switch (esc) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += esc;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::optional<double> FindNumber(std::string_view line, std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\":";
  const auto pos = line.find(pattern);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string rest(line.substr(pos + pattern.size()));
  try {
    return std::stod(rest);
  } catch (...) {
    return std::nullopt;
  }
}

std::uint64_t AsU64(std::optional<double> v) {
  return v ? static_cast<std::uint64_t>(*v) : 0;
}

}  // namespace

void WriteHealthJsonl(const HealthReport& report, std::ostream& out) {
  for (const ShipReportEntry& s : report.ships) {
    out << "{\"kind\":\"ship\",\"ship\":" << s.ship
        << ",\"score\":" << Num(s.score)
        << ",\"queue_ewma\":" << Num(s.queue_ewma)
        << ",\"hop_latency_ewma\":" << Num(s.hop_latency_ewma)
        << ",\"service_latency_ewma\":" << Num(s.service_latency_ewma)
        << ",\"samples\":" << s.samples
        << ",\"expected_visits\":" << s.expected_visits
        << ",\"missed_visits\":" << s.missed_visits
        << ",\"code_executions\":" << s.code_executions
        << ",\"code_misses\":" << s.code_misses << "}\n";
  }
  for (const HealthEvent& e : report.events) {
    out << "{\"kind\":\"event\",\"time\":" << e.time
        << ",\"type\":" << Quoted(HealthEventKindName(e.kind))
        << ",\"ship\":" << e.ship << ",\"value\":" << Num(e.value)
        << ",\"threshold\":" << Num(e.threshold)
        << ",\"detail\":" << Quoted(e.detail) << "}\n";
  }
  const HealthSummary& sum = report.summary;
  out << "{\"kind\":\"summary\",\"probes_emitted\":" << sum.probes_emitted
      << ",\"probes_absorbed\":" << sum.probes_absorbed
      << ",\"probes_lost\":" << sum.probes_lost
      << ",\"hops_observed\":" << sum.hops_observed
      << ",\"spans_ingested\":" << sum.spans_ingested
      << ",\"events\":" << sum.events << "}\n";
}

std::optional<HealthReport> ParseHealthJsonl(std::istream& in) {
  HealthReport report;
  bool have_summary = false;
  std::string line;
  while (std::getline(in, line)) {
    const auto kind = FindString(line, "kind");
    if (!kind) continue;
    if (*kind == "ship") {
      ShipReportEntry s;
      s.ship = static_cast<net::NodeId>(AsU64(FindNumber(line, "ship")));
      s.score = FindNumber(line, "score").value_or(1.0);
      s.queue_ewma = FindNumber(line, "queue_ewma").value_or(0.0);
      s.hop_latency_ewma = FindNumber(line, "hop_latency_ewma").value_or(0.0);
      s.service_latency_ewma =
          FindNumber(line, "service_latency_ewma").value_or(0.0);
      s.samples = AsU64(FindNumber(line, "samples"));
      s.expected_visits = AsU64(FindNumber(line, "expected_visits"));
      s.missed_visits = AsU64(FindNumber(line, "missed_visits"));
      s.code_executions = AsU64(FindNumber(line, "code_executions"));
      s.code_misses = AsU64(FindNumber(line, "code_misses"));
      report.ships.push_back(s);
    } else if (*kind == "event") {
      HealthEvent e;
      e.time = AsU64(FindNumber(line, "time"));
      const auto type = FindString(line, "type");
      if (type) {
        if (const auto parsed = HealthEventKindFromName(*type)) {
          e.kind = *parsed;
        }
      }
      e.ship = static_cast<net::NodeId>(AsU64(FindNumber(line, "ship")));
      e.value = FindNumber(line, "value").value_or(0.0);
      e.threshold = FindNumber(line, "threshold").value_or(0.0);
      e.detail = FindString(line, "detail").value_or("");
      report.events.push_back(std::move(e));
    } else if (*kind == "summary") {
      report.summary.probes_emitted = AsU64(FindNumber(line, "probes_emitted"));
      report.summary.probes_absorbed =
          AsU64(FindNumber(line, "probes_absorbed"));
      report.summary.probes_lost = AsU64(FindNumber(line, "probes_lost"));
      report.summary.hops_observed = AsU64(FindNumber(line, "hops_observed"));
      report.summary.spans_ingested = AsU64(FindNumber(line, "spans_ingested"));
      report.summary.events = AsU64(FindNumber(line, "events"));
      have_summary = true;
    }
  }
  if (!have_summary) return std::nullopt;
  return report;
}

std::vector<std::string> DiffHealthReports(const HealthReport& baseline,
                                           const HealthReport& current,
                                           const HealthDiffOptions& options) {
  std::vector<std::string> regressions;
  std::map<net::NodeId, const ShipReportEntry*> current_ships;
  for (const ShipReportEntry& s : current.ships) current_ships[s.ship] = &s;
  for (const ShipReportEntry& base : baseline.ships) {
    const auto it = current_ships.find(base.ship);
    if (it == current_ships.end()) {
      regressions.push_back("ship " + std::to_string(base.ship) +
                            " disappeared from the current report");
      continue;
    }
    const double drop = base.score - it->second->score;
    if (drop > options.score_tolerance) {
      regressions.push_back(
          "ship " + std::to_string(base.ship) + " score dropped " +
          Num(base.score) + " -> " + Num(it->second->score) +
          " (tolerance " + Num(options.score_tolerance) + ")");
    }
  }
  // Event census per kind: more events of any kind is a regression.
  std::map<std::string, std::size_t> base_events, cur_events;
  for (const HealthEvent& e : baseline.events) {
    ++base_events[std::string(HealthEventKindName(e.kind))];
  }
  for (const HealthEvent& e : current.events) {
    ++cur_events[std::string(HealthEventKindName(e.kind))];
  }
  for (const auto& [kind, count] : cur_events) {
    const auto it = base_events.find(kind);
    const std::size_t base_count = it == base_events.end() ? 0 : it->second;
    if (count > base_count) {
      regressions.push_back("anomaly count for " + kind + " grew " +
                            std::to_string(base_count) + " -> " +
                            std::to_string(count));
    }
  }
  return regressions;
}

std::map<std::string, double> ParseFlatJson(std::istream& in) {
  std::map<std::string, double> metrics;
  std::string line;
  while (std::getline(in, line)) {
    const auto open = line.find('"');
    if (open == std::string::npos) continue;
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    const auto colon = line.find(':', close);
    if (colon == std::string::npos) continue;
    try {
      metrics[line.substr(open + 1, close - open - 1)] =
          std::stod(line.substr(colon + 1));
    } catch (...) {
      // not a "key": number line (braces etc.)
    }
  }
  return metrics;
}

std::vector<std::string> CompareBenchMetrics(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& current,
    const BenchGateOptions& options) {
  std::vector<std::string> regressions;
  const auto ignored = [&](const std::string& name) {
    for (const std::string& sub : options.ignore_substrings) {
      if (name.find(sub) != std::string::npos) return true;
    }
    return false;
  };
  for (const auto& [name, base] : baseline) {
    if (ignored(name)) continue;
    const auto it = current.find(name);
    if (it == current.end()) {
      regressions.push_back("metric " + name + " missing from current run");
      continue;
    }
    const double cur = it->second;
    const double denom = std::max(std::fabs(base), 1e-12);
    const double drift = std::fabs(cur - base) / denom;
    if (drift > options.tolerance) {
      regressions.push_back("metric " + name + " drifted " + Num(base) +
                            " -> " + Num(cur) + " (" + Num(drift * 100.0) +
                            "% > " + Num(options.tolerance * 100.0) + "%)");
    }
  }
  return regressions;
}

}  // namespace viator::health
