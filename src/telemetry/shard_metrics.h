// Per-shard telemetry naming and publishing for the sharded simulation core.
//
// The sharded core (src/shard) runs N private worlds; this helper gives
// their merge-layer metrics one stable naming scheme — `shard.<id>.<metric>`
// under the repo-wide dotted convention — so every existing exporter
// (Prometheus text, JSON, CSV) renders per-shard series without knowing what
// a shard is. Published per window from the single-threaded barrier.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/stats.h"

namespace viator::telemetry {

/// One shard's merge-layer sample for a single window.
struct ShardWindowSample {
  /// Events the shard dispatched during the window.
  std::uint64_t dispatched = 0;
  /// Cross-shard handoffs the shard emitted / received at the barrier.
  std::uint64_t handoffs_out = 0;
  std::uint64_t handoffs_in = 0;
  /// Wall-clock nanoseconds the shard idled waiting for the window's slowest
  /// shard (load-imbalance signal; diagnostic, never feeds simulation state).
  std::uint64_t stall_ns = 0;
  /// Event-queue occupancy after the window ran.
  double queue_depth = 0.0;
};

/// "shard.<id>.<metric>" (the dotted form exporters sanitize themselves).
std::string ShardMetricName(std::uint32_t shard, std::string_view metric);

/// Adds the sample into `stats`: counters shard.<id>.{dispatched,
/// handoffs_out, handoffs_in, stall_ns}, gauge shard.<id>.queue_depth.
void PublishShardWindow(sim::StatsRegistry& stats, std::uint32_t shard,
                        const ShardWindowSample& sample);

}  // namespace viator::telemetry
