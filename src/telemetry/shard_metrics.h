// Per-shard telemetry naming, publishing, and the Shard Observatory for the
// sharded simulation core.
//
// The sharded core (src/shard) runs N private worlds; this helper gives
// their merge-layer metrics one stable naming scheme — `shard.<id>.<metric>`
// under the repo-wide dotted convention — so every existing exporter
// (Prometheus text, JSON, CSV) renders per-shard series without knowing what
// a shard is. Published per window from the single-threaded barrier.
//
// The ShardObservatory sits on top: it retains per-window records (bounded),
// accumulates per-shard totals, and folds them into a straggler /
// critical-path report — which shard the windows wait for, how skewed the
// event load is, and what fraction of parallel capacity idles at barriers.
// Everything here is diagnostic: wall-clock fields never feed simulation
// state, hashes, or journals (docs/PARALLEL.md, docs/PERF.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.h"
#include "sim/time.h"

namespace viator::telemetry {

/// One shard's merge-layer sample for a single window.
struct ShardWindowSample {
  /// Events the shard dispatched during the window.
  std::uint64_t dispatched = 0;
  /// Cross-shard handoffs the shard emitted / received at the barrier.
  std::uint64_t handoffs_out = 0;
  std::uint64_t handoffs_in = 0;
  /// Wall-clock nanoseconds the shard's window run took on its worker
  /// (diagnostic, never feeds simulation state).
  std::uint64_t wall_ns = 0;
  /// Wall-clock offset of the shard's window start from the window epoch —
  /// when its worker actually picked it up. Timeline rendering only.
  std::uint64_t start_ns = 0;
  /// Wall-clock nanoseconds the shard idled waiting for the window's slowest
  /// shard (load-imbalance signal).
  std::uint64_t stall_ns = 0;
  /// Event-queue occupancy after the window ran.
  double queue_depth = 0.0;
  /// Heap bytes held by the shard's pools after the window ran (calendar
  /// queue + event slots + shuttle pool + route cache). Deterministic —
  /// unlike the wall fields, byte series are pinned by benches and drawn
  /// as Perfetto counter tracks.
  std::uint64_t pool_bytes = 0;
  /// Latency-plane window fold (telemetry/latency_plane.h): end-to-end
  /// delivery quantiles over the shuttles this shard delivered during the
  /// window, in simulated nanoseconds, and how many deliveries the fold
  /// covers. Pure sim-time arithmetic — deterministic across thread counts,
  /// pinned by bench_latency, drawn as Perfetto counter tracks. All zero
  /// when the latency plane is off or nothing was delivered.
  std::uint64_t lat_p50_ns = 0;
  std::uint64_t lat_p95_ns = 0;
  std::uint64_t lat_p99_ns = 0;
  std::uint64_t lat_delivered = 0;
};

/// "shard.<id>.<metric>" (the dotted form exporters sanitize themselves).
std::string ShardMetricName(std::uint32_t shard, std::string_view metric);

/// Adds the sample into `stats`: counters shard.<id>.{dispatched,
/// handoffs_out, handoffs_in, wall_ns, stall_ns, lat_delivered}, gauges
/// shard.<id>.{queue_depth, pool_bytes, lat_p50_ns, lat_p95_ns, lat_p99_ns}
/// (the lat gauges only when the sample folded deliveries).
void PublishShardWindow(sim::StatsRegistry& stats, std::uint32_t shard,
                        const ShardWindowSample& sample);

/// One window as the observatory retains it.
struct ShardWindowRecord {
  std::uint64_t window_index = 0;
  /// Virtual time span the window covered ((k-1)·W, k·W].
  sim::TimePoint virtual_start = 0;
  sim::TimePoint virtual_end = 0;
  /// Wall cost of the single-threaded barrier merge and the handoffs it
  /// moved.
  std::uint64_t merge_wall_ns = 0;
  std::uint64_t merge_handoffs = 0;
  /// Per-shard samples, indexed by shard id (size == shard_count).
  std::vector<ShardWindowSample> shards;
};

/// Whole-run accumulation for one shard (never dropped, unlike windows).
struct ShardTotals {
  std::uint64_t dispatched = 0;
  std::uint64_t handoffs_out = 0;
  std::uint64_t handoffs_in = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t stall_ns = 0;
  /// Windows in which this shard was the slowest (the one the barrier
  /// waited for). Ties go to the lowest shard id.
  std::uint64_t straggler_windows = 0;
};

/// The folded straggler / critical-path view of a run.
struct StragglerReport {
  std::uint64_t windows = 0;
  std::size_t shard_count = 0;

  /// The hot shard by dispatched events — deterministic for a given seed
  /// and plan (same on every machine and thread count), so benches can pin
  /// it against a baseline. Ties go to the lowest shard id.
  std::uint32_t hot_shard_by_events = 0;
  /// The shard that was the straggler most often, by wall clock —
  /// host-specific diagnostic.
  std::uint32_t hot_shard_by_wall = 0;

  /// max/mean of per-shard dispatched totals: 1.0 = perfectly balanced,
  /// approaching shard_count = one shard does everything. Deterministic.
  double imbalance_events = 1.0;
  /// Same index over per-shard wall totals (diagnostic).
  double imbalance_wall = 1.0;
  /// Fraction of total parallel capacity (shard-ns under the windows'
  /// critical path) spent idling at barriers: Σ stall / Σ (wall + stall).
  double barrier_stall_ratio = 0.0;
  /// Σ per-window max wall / Σ per-window total wall: the share of all
  /// shard work that sat on the critical path. 1/shard_count is perfect
  /// overlap, 1.0 is fully serialized.
  double critical_path_ratio = 0.0;

  std::vector<ShardTotals> shards;

  /// Human-readable table + verdict (wnscope timeline, bench output).
  std::string Format() const;
};

/// Bounded per-window retention + whole-run totals + report folding.
/// Single-threaded (barrier context), like the rest of the merge layer.
class ShardObservatory {
 public:
  static constexpr std::size_t kDefaultWindowCapacity = 1024;

  explicit ShardObservatory(std::size_t shard_count = 0,
                            std::size_t window_capacity =
                                kDefaultWindowCapacity);

  /// Folds one window in. Totals always accumulate; the record itself is
  /// retained only while under the window capacity (front of the run is
  /// kept, later windows are counted in windows_dropped — same policy as
  /// the span collector).
  void RecordWindow(ShardWindowRecord record);

  /// Re-dimensions and zeroes everything (the scenario-boundary reset hook).
  void Reset(std::size_t shard_count);
  void Reset() { Reset(shard_count_); }

  StragglerReport Report() const;

  /// Mirrors the report's headline indices into `stats` as gauges:
  /// shard.imbalance_events, shard.imbalance_wall, shard.barrier_stall_ratio,
  /// shard.straggler (hot shard id by events). Idempotent.
  void PublishStats(sim::StatsRegistry& stats) const;

  std::size_t shard_count() const { return shard_count_; }
  std::uint64_t windows_seen() const { return windows_seen_; }
  std::uint64_t windows_dropped() const { return windows_dropped_; }
  const std::vector<ShardWindowRecord>& windows() const { return windows_; }
  const std::vector<ShardTotals>& totals() const { return totals_; }

 private:
  std::size_t shard_count_ = 0;
  std::size_t window_capacity_ = kDefaultWindowCapacity;
  std::vector<ShardWindowRecord> windows_;
  std::vector<ShardTotals> totals_;
  std::uint64_t windows_seen_ = 0;
  std::uint64_t windows_dropped_ = 0;
  /// Σ per-window max wall (critical path) and Σ per-window total wall.
  std::uint64_t critical_path_wall_ns_ = 0;
  std::uint64_t total_wall_ns_ = 0;
  std::uint64_t total_stall_ns_ = 0;
};

}  // namespace viator::telemetry
