// Upper-layer helpers over the header-only perf counter core
// (telemetry/perf_counters.h): publication into a StatsRegistry — which
// flows through every exporter, Prometheus headers included — and a
// human-readable cost table. Split from the core header so base/sim can
// embed probes without linking viator_telemetry.
#pragma once

#include <array>
#include <string>

#include "sim/stats.h"
#include "telemetry/perf_counters.h"

namespace viator::telemetry {

/// Mirrors a perf aggregate into `stats` as gauges — three per probe:
/// `perf.<probe>.calls`, `perf.<probe>.cycles`, `perf.<probe>.max_cycles`.
/// Idempotent (Set, not Add): safe to call after every window batch.
void PublishPerfStats(sim::StatsRegistry& stats,
                      const std::array<perf::Counter, perf::kMetricCount>&
                          aggregate);

/// Convenience form over the live process-wide aggregate. Call only while
/// instrumented threads are quiescent (see perf::Registry::Aggregate).
void PublishPerfStats(sim::StatsRegistry& stats);

/// Fixed-width cost table: calls, cycles, cycles/call, max, share of all
/// counted cycles. Probes with zero calls are omitted.
std::string FormatPerfReport(
    const std::array<perf::Counter, perf::kMetricCount>& aggregate);
std::string FormatPerfReport();

}  // namespace viator::telemetry
