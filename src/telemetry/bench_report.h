// Machine-readable bench output.
//
// Every bench_* binary builds one BenchReport, sets its headline metrics
// (plus any StatsRegistry counters worth tracking) and calls Write(), which
// drops a flat `BENCH_<name>.json` next to the binary — or into
// $VIATOR_BENCH_DIR when set — so CI can archive the perf trajectory.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "sim/stats.h"

namespace viator::telemetry {

class BenchReport {
 public:
  explicit BenchReport(std::string_view bench_name) : name_(bench_name) {}

  /// Records one scalar metric (last write wins).
  void Set(std::string_view metric, double value) {
    metrics_[std::string(metric)] = value;
  }

  /// Imports every counter of a registry, prefixed with `prefix.`.
  void AddCounters(const sim::StatsRegistry& stats,
                   std::string_view prefix = "");

  /// Flat sorted JSON object {"metric": value, ...}.
  std::string ToJson() const;

  /// Writes BENCH_<name>.json into $VIATOR_BENCH_DIR (or the cwd).
  /// Returns false (after a perror-style message) when the file can't open.
  bool Write() const;

  const std::string& name() const { return name_; }
  const std::map<std::string, double>& metrics() const { return metrics_; }

 private:
  std::string name_;
  std::map<std::string, double> metrics_;
};

}  // namespace viator::telemetry
