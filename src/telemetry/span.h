// Span records and their collector.
//
// A span is one timed unit of work attributed to a (ship, component, name)
// triple and linked into a per-trace causal tree via parent span ids. The
// SpanCollector hands out trace/span ids and stores finished spans in a
// bounded buffer; its entire state snapshot/restores exactly (genesis).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "sim/time.h"
#include "telemetry/trace_context.h"

namespace viator::telemetry {

/// One finished span. Times are virtual (simulator) nanoseconds.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = root of its trace
  std::uint64_t ship = 0;            // node the work ran on
  std::string component;             // e.g. "ship", "svc.caching"
  std::string name;                  // e.g. "consume", "get"
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;
};

/// Issues trace/span ids and accumulates finished spans.
///
/// Ids are drawn from the collector's own RNG (forked from the replica seed
/// at construction), so tracing never perturbs the network's random stream:
/// a traced run and an untraced run make identical simulation decisions.
/// The buffer is bounded; once full, new spans are counted as dropped rather
/// than evicting old ones (the front of a trace is worth more than its tail).
class SpanCollector {
 public:
  SpanCollector(std::uint64_t id_seed, std::size_t capacity)
      : rng_(id_seed), capacity_(capacity) {}

  /// Starts a fresh trace: a context with a new nonzero trace id and no
  /// spans yet (span_id 0 = "the injection itself is the root's parent").
  TraceContext StartTrace() {
    ++traces_started_;
    return TraceContext{rng_.Next() | 1, 0, 0};
  }

  /// Next sequential span id (unique per collector, never 0).
  std::uint64_t NextSpanId() { return ++last_span_id_; }

  /// Stores a finished span, honoring the capacity bound.
  void Commit(SpanRecord record) {
    if (spans_.size() >= capacity_) {
      ++spans_dropped_;
      return;
    }
    spans_.push_back(std::move(record));
    ++spans_recorded_;
  }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::uint64_t traces_started() const { return traces_started_; }
  std::uint64_t spans_recorded() const { return spans_recorded_; }
  std::uint64_t spans_dropped() const { return spans_dropped_; }
  std::size_t capacity() const { return capacity_; }

  void Clear() {
    spans_.clear();
    // id state is deliberately kept: cleared collectors keep issuing unique
    // ids, so exported files from successive windows never collide.
  }

  /// Exact collector state for genesis. Capacity is configuration and is not
  /// part of the state.
  struct RawState {
    std::array<std::uint64_t, 4> rng_state{};
    std::uint64_t last_span_id = 0;
    std::uint64_t traces_started = 0;
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;
    std::vector<SpanRecord> spans;
  };
  RawState SaveState() const {
    RawState state;
    state.rng_state = rng_.SaveState();
    state.last_span_id = last_span_id_;
    state.traces_started = traces_started_;
    state.spans_recorded = spans_recorded_;
    state.spans_dropped = spans_dropped_;
    state.spans = spans_;
    return state;
  }
  void RestoreState(RawState state) {
    rng_.RestoreState(state.rng_state);
    last_span_id_ = state.last_span_id;
    traces_started_ = state.traces_started;
    spans_recorded_ = state.spans_recorded;
    spans_dropped_ = state.spans_dropped;
    spans_ = std::move(state.spans);
  }

 private:
  Rng rng_;
  std::size_t capacity_;
  std::uint64_t last_span_id_ = 0;
  std::uint64_t traces_started_ = 0;
  std::uint64_t spans_recorded_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::vector<SpanRecord> spans_;
};

}  // namespace viator::telemetry
