// Causal trace context carried by every Shuttle.
//
// Kept in its own tiny header so core/shuttle.h can embed a TraceContext
// without pulling in the rest of the telemetry subsystem.
#pragma once

#include <cstdint>

namespace viator::telemetry {

/// Identifies one capsule journey (trace) and the position within its causal
/// tree (span / parent span). trace_id 0 means "untraced": all telemetry
/// code treats such contexts as inert, so shuttles created while tracing is
/// disabled cost nothing.
///
/// TraceContext is metadata about a shuttle, not part of it: it is excluded
/// from Shuttle::WireSize(), so enabling tracing never changes transport
/// behavior (sizes, fragmentation, budgets) of a run.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool active() const { return trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

}  // namespace viator::telemetry
