// Event-loop profiler: per-component cost attribution.
//
// Attached to a Simulator, the profiler observes every dispatched event and
// accumulates, per component label, the event count, wall-clock nanoseconds
// spent in callbacks (a Histogram, so quantiles are available) and total
// virtual time attributed. Explicit Profiler::Scope blocks add finer-grained
// sections inside an event (e.g. "ship.consume" within a fabric delivery).
//
// Wall-clock numbers are measurements of the host machine, not of the
// simulated world: they are deliberately kept out of the network's
// StatsRegistry and out of genesis snapshots, so profiling never affects
// bit-for-bit determinism of a run or its snapshot bytes.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/simulator.h"
#include "sim/stats.h"

namespace viator::telemetry {

/// Accumulated cost of one component label.
struct ComponentCost {
  std::uint64_t calls = 0;
  sim::Histogram wall_ns;           // wall-clock ns per call
  std::uint64_t virtual_ns = 0;     // summed virtual-time gaps (events only)
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  ~Profiler() { Detach(); }

  /// Starts observing `simulator`'s dispatch loop. The profiler must outlive
  /// the attachment (Detach() runs from the destructor).
  void Attach(sim::Simulator& simulator);
  void Detach();

  bool enabled() const { return simulator_ != nullptr; }

  /// Records one timed section under `component` (used by Scope).
  void RecordSection(std::string_view component, std::uint64_t wall_ns);

  const std::map<std::string, ComponentCost, std::less<>>& costs() const {
    return costs_;
  }

  /// Human-readable cost table, sorted by total wall time descending.
  void Report(std::ostream& out) const;

  /// Flat JSON object: component → {calls, wall_ns total/mean/p99,
  /// virtual_ns}. One component per line for greppability.
  void WriteJson(std::ostream& out) const;

  /// Publishes the profiler's *deterministic* measurements as gauges:
  /// "profiler.queue_depth" / "profiler.queue_depth_max" (simulator event
  /// queue occupancy, current and high-water) and per-component event counts
  /// ("profiler.events.<component>"). Wall-clock numbers deliberately stay
  /// out — published values are identical across identical-seed runs.
  void PublishStats(sim::StatsRegistry& stats) const;

  /// RAII section timer. Constructing against a null profiler (or one that
  /// is not attached) is inert and costs one branch.
  class Scope {
   public:
    Scope(Profiler* profiler, std::string_view component)
        : profiler_(profiler && profiler->enabled() ? profiler : nullptr),
          component_(component) {
      if (profiler_) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (profiler_) {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        profiler_->RecordSection(component_,
                                 static_cast<std::uint64_t>(ns));
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* profiler_;
    std::string_view component_;
    std::chrono::steady_clock::time_point start_{};
  };

 private:
  sim::Simulator* simulator_ = nullptr;
  std::map<std::string, ComponentCost, std::less<>> costs_;
};

}  // namespace viator::telemetry
