#include "telemetry/perf_counters.h"

#include <algorithm>

#include "telemetry/perf_stats.h"
#include "telemetry/plane_report.h"

namespace viator::telemetry::perf {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kSimDispatch: return "perf.sim_dispatch";
    case Metric::kRngDraw: return "perf.rng_draw";
    case Metric::kRouteNextHop: return "perf.route_next_hop";
    case Metric::kGatewayRoute: return "perf.gateway_route";
    case Metric::kMailboxPush: return "perf.mailbox_push";
    case Metric::kMailboxDrain: return "perf.mailbox_drain";
    case Metric::kExecutorWindow: return "perf.executor_window";
    case Metric::kExecutorPost: return "perf.executor_post";
    case Metric::kBarrierWait: return "perf.barrier_wait";
    case Metric::kMergeWindow: return "perf.merge_window";
    case Metric::kRouteCacheHit: return "perf.route_cache_hit";
    case Metric::kRouteCacheMiss: return "perf.route_cache_miss";
    case Metric::kRouteCacheFill: return "perf.route_cache_fill";
    case Metric::kCount: break;
  }
  return "perf.unknown";
}

}  // namespace viator::telemetry::perf

namespace viator::telemetry {

void PublishPerfStats(sim::StatsRegistry& stats,
                      const std::array<perf::Counter, perf::kMetricCount>&
                          aggregate) {
  for (std::size_t i = 0; i < perf::kMetricCount; ++i) {
    const perf::Counter& c = aggregate[i];
    plane::PublishGaugeRow(
        stats, perf::MetricName(static_cast<perf::Metric>(i)),
        {{".calls", static_cast<double>(c.calls)},
         {".cycles", static_cast<double>(c.cycles)},
         {".max_cycles", static_cast<double>(c.max_cycles)}});
  }
}

void PublishPerfStats(sim::StatsRegistry& stats) {
  PublishPerfStats(stats, perf::Aggregate());
}

std::string FormatPerfReport(
    const std::array<perf::Counter, perf::kMetricCount>& aggregate) {
  std::uint64_t total_cycles = 0;
  for (const perf::Counter& c : aggregate) total_cycles += c.cycles;

  plane::TableBuilder table;
  table.Line("%-22s %12s %16s %10s %12s %7s\n", "probe", "calls", "cycles",
             "cyc/call", "max", "share");
  for (std::size_t i = 0; i < perf::kMetricCount; ++i) {
    const perf::Counter& c = aggregate[i];
    if (c.calls == 0) continue;
    const double per_call =
        static_cast<double>(c.cycles) / static_cast<double>(c.calls);
    const double share =
        total_cycles == 0
            ? 0.0
            : 100.0 * static_cast<double>(c.cycles) /
                  static_cast<double>(total_cycles);
    table.DataRow("%-22s %12llu %16llu %10.1f %12llu %6.1f%%\n",
                  perf::MetricName(static_cast<perf::Metric>(i)),
                  static_cast<unsigned long long>(c.calls),
                  static_cast<unsigned long long>(c.cycles), per_call,
                  static_cast<unsigned long long>(c.max_cycles), share);
  }
  return std::move(table).Finish(
      "(no probes fired: counters disabled or nothing ran)");
}

std::string FormatPerfReport() { return FormatPerfReport(perf::Aggregate()); }

}  // namespace viator::telemetry
