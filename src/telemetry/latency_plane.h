// End-to-end shuttle latency attribution — the time twin of the cycle plane
// (telemetry/perf_counters.h) and the byte plane (telemetry/mem_counters.h).
//
// A `lat::Lane` lives on each WanderingNetwork and owns (a) a side table of
// in-flight shuttles keyed by the shuttle's transient `lat_id` — kept out of
// the shuttle and the 64-byte simulator Event on purpose — and (b) a matrix
// of LatencySketch histograms over the lifecycle stages, classed by shuttle
// kind (delivery / hop / queue / drop) or by first-level service role
// (exec). Probes fire at birth (Inject/Dispatch), per-hop transit and queue
// wait (net::Fabric), EE execution (Ship::Consume → ExecuteShuttleCode) and
// delivery/drop; all durations are pure sim-time differences, so the sketch
// contents are bit-identical at any thread count (bench_latency's
// ReplayNeutrality + bucket-exactness gates).
//
// Cost contract (docs/LATENCY.md), same shape as the perf/mem planes:
//  - compile-time off (-DVIATOR_LAT_COUNTERS=0): every probe macro expands
//    to nothing (tests/test_lat_compiled_out.cpp);
//  - runtime off (the default): one relaxed atomic load + predicted branch
//    per probe;
//  - runtime on: integer bucket arithmetic against this network's Lane,
//    plus one hash-table touch per lifecycle transition.
//
// Determinism contract: latency values never feed a simulation decision,
// never enter journals or state hashes. `lat_id` values come from a global
// relaxed counter and are NOT deterministic across thread counts — they are
// transient side-table keys only and must never be published or compared;
// every published artifact (sketch buckets, quantiles, exemplars) is a
// function of deterministic sim-time values.
//
// Single-writer discipline: a Lane is touched only by the thread currently
// running its network (the shard worker inside a window, the barrier thread
// during merge/fold), the same quiescence argument the mem plane and the
// ShardSlot scratch rely on.
//
// This header is self-contained below net/core (sim + base only) so the
// fabric can record hop/queue stages without inverting the library order;
// the out-of-line helpers (PublishLatStats, FormatLatReport) live in
// latency_plane.cpp inside viator_telemetry.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "telemetry/latency_sketch.h"

#if !defined(VIATOR_LAT_COUNTERS)
#define VIATOR_LAT_COUNTERS 1
#endif

namespace viator::telemetry::lat {

/// Lifecycle stages a shuttle's time is attributed to.
enum class Stage : std::uint8_t {
  kDelivery = 0,  // birth → consumption (end-to-end, incl. cross-shard)
  kHop,           // per-hop link transit (fabric send → delivery)
  kQueue,         // per-hop serialization wait in the link queue
  kExec,          // EE/service execution (code-fetch park → completion)
  kDrop,          // birth → loss (TTL, no-route, queue/link drop, reject)
  kCount,
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);

/// Stable dotted stage name ("lat.delivery", ...), the exporters' prefix.
inline const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kDelivery: return "lat.delivery";
    case Stage::kHop: return "lat.hop";
    case Stage::kQueue: return "lat.queue";
    case Stage::kExec: return "lat.exec";
    case Stage::kDrop: return "lat.drop";
    case Stage::kCount: break;
  }
  return "lat.unknown";
}

/// Class dimension for delivery/hop/queue/drop: mirrors wli::ShuttleKind
/// (static_assert'd in core/wandering_network.cpp — this header cannot see
/// core). Kept as a plain byte so the fabric can class frames without
/// knowing shuttle types.
inline constexpr std::size_t kClassCount = 8;
inline const char* ClassName(std::size_t cls) {
  static constexpr const char* kNames[kClassCount] = {
      "data",      "code", "code_request", "code_reply",
      "knowledge", "jet",  "control",      "probe"};
  return cls < kClassCount ? kNames[cls] : "unknown";
}

/// Role dimension for the exec stage: mirrors node::FirstLevelRole
/// (static_assert'd in core/wandering_network.cpp).
inline constexpr std::size_t kRoleCount = 6;
inline const char* RoleName(std::size_t role) {
  static constexpr const char* kNames[kRoleCount] = {
      "fusion", "fission", "caching", "delegation", "replication",
      "next_step"};
  return role < kRoleCount ? kNames[role] : "unknown";
}

/// Sketch index space of a stage: exec is classed by role, the rest by kind.
inline constexpr std::size_t StageClassCount(Stage stage) {
  return stage == Stage::kExec ? kRoleCount : kClassCount;
}

namespace internal {
inline std::atomic<bool> g_enabled{false};
/// Global flight-id spring. Relaxed and shared across lanes/threads: ids
/// are unique, not deterministic (see the header contract).
inline std::atomic<std::uint64_t> g_next_id{1};
}  // namespace internal

/// The runtime switch. Off (default): every probe costs one predicted
/// branch. Flip before building the world to cover construction traffic.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}
inline std::uint64_t NextFlightId() {
  return internal::g_next_id.fetch_add(1, std::memory_order_relaxed);
}

/// One tail shuttle kept from a window: every field is a deterministic
/// function of sim time, so the worst-K selection is thread-count-stable.
/// `trace_id` is 0 when tracing was off; with tracing on it hands `wnscope
/// latency` / `wnreplay seek` the drill-down coordinate.
struct Exemplar {
  std::uint64_t duration_ns = 0;
  std::uint64_t trace_id = 0;
  sim::TimePoint birth = 0;
  std::uint8_t cls = 0;

  /// Worst-first order: longest duration, then trace/birth/class as
  /// deterministic tie-breaks.
  bool WorseThan(const Exemplar& other) const {
    if (duration_ns != other.duration_ns) {
      return duration_ns > other.duration_ns;
    }
    if (trace_id != other.trace_id) return trace_id < other.trace_id;
    if (birth != other.birth) return birth < other.birth;
    return cls < other.cls;
  }
  friend bool operator==(const Exemplar&, const Exemplar&) = default;
};

/// Per-network latency state. See the header comment for the writer
/// discipline; no method is thread-safe on its own.
class Lane {
 public:
  /// Worst-K exemplars retained per window.
  static constexpr std::size_t kDefaultExemplarCapacity = 4;

  // ---- side table -----------------------------------------------------

  struct Flight {
    sim::TimePoint birth = 0;
    sim::TimePoint exec_enter = 0;
    std::uint64_t trace_id = 0;
    std::uint8_t cls = 0;
    bool in_exec = false;
  };

  void OnBirth(std::uint64_t id, sim::TimePoint now, std::uint8_t cls,
               std::uint64_t trace_id) {
    flights_.emplace(id, Flight{now, 0, trace_id, cls, false});
  }

  void OnExecEnter(std::uint64_t id, sim::TimePoint now) {
    const auto it = flights_.find(id);
    if (it == flights_.end()) return;
    it->second.exec_enter = now;
    it->second.in_exec = true;
  }

  void OnExecDone(std::uint64_t id, sim::TimePoint now, std::uint8_t role) {
    const auto it = flights_.find(id);
    if (it == flights_.end() || !it->second.in_exec) return;
    it->second.in_exec = false;
    if (role < kRoleCount) {
      exec_[role].Record(DurationNs(it->second.exec_enter, now));
    }
  }

  /// Closes a flight as delivered: end-to-end duration into the cumulative
  /// per-class delivery sketch, the window sketch and the worst-K exemplars.
  void OnDelivered(std::uint64_t id, sim::TimePoint now) {
    const auto it = flights_.find(id);
    if (it == flights_.end()) return;
    const Flight& f = it->second;
    const std::uint64_t ns = DurationNs(f.birth, now);
    if (f.cls < kClassCount) per_class_[DeliveryIdx][f.cls].Record(ns);
    window_delivery_.Record(ns);
    OfferExemplar(Exemplar{ns, f.trace_id, f.birth, f.cls});
    flights_.erase(it);
  }

  /// Closes a flight as lost (TTL, unroutable, queue/link drop, reject).
  void OnDropped(std::uint64_t id, sim::TimePoint now) {
    const auto it = flights_.find(id);
    if (it == flights_.end()) return;
    const Flight& f = it->second;
    if (f.cls < kClassCount) {
      per_class_[DropIdx][f.cls].Record(DurationNs(f.birth, now));
    }
    flights_.erase(it);
  }

  void RecordHop(std::uint8_t cls, std::uint64_t ns) {
    if (cls < kClassCount) per_class_[HopIdx][cls].Record(ns);
  }
  void RecordQueue(std::uint8_t cls, std::uint64_t ns) {
    if (cls < kClassCount) per_class_[QueueIdx][cls].Record(ns);
  }

  // ---- cross-shard continuity ----------------------------------------

  /// A flight leaving this lane on a cross-shard handoff: the deterministic
  /// pieces travel on the Handoff, the local entry is retired.
  struct Departure {
    sim::TimePoint birth = 0;
    sim::TimePoint exec_enter = 0;
    std::uint64_t trace_id = 0;
    std::uint8_t cls = 0;
    bool valid = false;
  };

  Departure Depart(std::uint64_t id) {
    const auto it = flights_.find(id);
    if (it == flights_.end()) return {};
    Departure d{it->second.birth, it->second.exec_enter,
                it->second.trace_id, it->second.cls, true};
    flights_.erase(it);
    return d;
  }

  /// Seeds a flight carried over from another shard (barrier merge only).
  void Arrive(std::uint64_t id, const Departure& d) {
    if (!d.valid) return;
    flights_.emplace(id, Flight{d.birth, d.exec_enter, d.trace_id, d.cls,
                                false});
  }

  // ---- window fold (barrier / harness only) ---------------------------

  struct WindowStats {
    std::uint64_t p50_ns = 0;
    std::uint64_t p95_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t delivered = 0;
    std::vector<Exemplar> worst;  // worst-first, deterministic order
  };

  /// Quantiles + exemplars of the deliveries since the previous fold; the
  /// window sketch resets, cumulative per-class sketches keep integrating.
  WindowStats FoldWindow() {
    WindowStats w;
    w.delivered = window_delivery_.count();
    w.p50_ns = window_delivery_.ValueAtQuantile(0.50);
    w.p95_ns = window_delivery_.ValueAtQuantile(0.95);
    w.p99_ns = window_delivery_.ValueAtQuantile(0.99);
    w.worst = std::move(window_worst_);
    window_worst_.clear();
    window_delivery_.Reset();
    return w;
  }

  // ---- aggregation / inspection ---------------------------------------

  /// Folds this lane's cumulative sketches into `target` (cross-shard
  /// aggregation; side tables and window state stay put).
  void MergeInto(Lane& target) const {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const Stage stage = static_cast<Stage>(s);
      for (std::size_t c = 0; c < StageClassCount(stage); ++c) {
        target.MutableSketch(stage, c).Merge(Sketch(stage, c));
      }
    }
  }

  const LatencySketch& Sketch(Stage stage, std::size_t index) const {
    return stage == Stage::kExec ? exec_[index]
                                 : per_class_[StageIdx(stage)][index];
  }
  LatencySketch& MutableSketch(Stage stage, std::size_t index) {
    return stage == Stage::kExec ? exec_[index]
                                 : per_class_[StageIdx(stage)][index];
  }
  const LatencySketch& window_sketch() const { return window_delivery_; }
  LatencySketch& mutable_window_sketch() { return window_delivery_; }

  std::uint64_t DeliveredCount() const {
    std::uint64_t n = 0;
    for (const LatencySketch& s : per_class_[DeliveryIdx]) n += s.count();
    return n;
  }
  std::uint64_t DroppedCount() const {
    std::uint64_t n = 0;
    for (const LatencySketch& s : per_class_[DropIdx]) n += s.count();
    return n;
  }
  std::size_t open_flights() const { return flights_.size(); }

  void set_exemplar_capacity(std::size_t capacity) {
    exemplar_capacity_ = capacity == 0 ? 1 : capacity;
  }
  std::size_t exemplar_capacity() const { return exemplar_capacity_; }

  /// Full reset (bench scenario isolation): sketches, table, window state.
  void Reset() {
    for (auto& row : per_class_) {
      for (LatencySketch& s : row) s.Reset();
    }
    for (LatencySketch& s : exec_) s.Reset();
    window_delivery_.Reset();
    window_worst_.clear();
    flights_.clear();
  }

 private:
  // per_class_ rows for the four kind-classed stages; exec is role-classed.
  static constexpr std::size_t DeliveryIdx = 0;
  static constexpr std::size_t HopIdx = 1;
  static constexpr std::size_t QueueIdx = 2;
  static constexpr std::size_t DropIdx = 3;

  static constexpr std::size_t StageIdx(Stage stage) {
    switch (stage) {
      case Stage::kDelivery: return DeliveryIdx;
      case Stage::kHop: return HopIdx;
      case Stage::kQueue: return QueueIdx;
      case Stage::kDrop: return DropIdx;
      default: return DeliveryIdx;  // kExec handled by callers
    }
  }

  static std::uint64_t DurationNs(sim::TimePoint from, sim::TimePoint to) {
    return to >= from ? static_cast<std::uint64_t>(to - from) : 0;
  }

  /// Bounded worst-K insertion, kept sorted worst-first; cheap because a
  /// candidate below the current K-th worst is rejected with one compare.
  void OfferExemplar(Exemplar candidate) {
    if (window_worst_.size() >= exemplar_capacity_ &&
        !candidate.WorseThan(window_worst_.back())) {
      return;
    }
    const auto pos = std::lower_bound(
        window_worst_.begin(), window_worst_.end(), candidate,
        [](const Exemplar& a, const Exemplar& b) { return a.WorseThan(b); });
    window_worst_.insert(pos, candidate);
    if (window_worst_.size() > exemplar_capacity_) window_worst_.pop_back();
  }

  std::array<std::array<LatencySketch, kClassCount>, 4> per_class_{};
  std::array<LatencySketch, kRoleCount> exec_{};
  LatencySketch window_delivery_;
  std::vector<Exemplar> window_worst_;
  std::size_t exemplar_capacity_ = kDefaultExemplarCapacity;
  std::unordered_map<std::uint64_t, Flight> flights_;
};

// ---- probe helpers (duck-typed over wli::Shuttle, which this layer cannot
// see: any type with `lat_id`, `header.kind` and `trace.trace_id` works) ---

template <typename ShuttleT>
inline void ProbeBirth(Lane* lane, ShuttleT& shuttle, sim::TimePoint now) {
  if (lane == nullptr || !Enabled()) return;
  if (shuttle.lat_id != 0) return;  // re-dispatch of a tracked flight
  shuttle.lat_id = NextFlightId();
  lane->OnBirth(shuttle.lat_id, now,
                static_cast<std::uint8_t>(shuttle.header.kind),
                shuttle.trace.trace_id);
}

template <typename ShuttleT>
inline void ProbeDelivered(Lane* lane, const ShuttleT& shuttle,
                           sim::TimePoint now) {
  if (lane == nullptr || !Enabled() || shuttle.lat_id == 0) return;
  lane->OnDelivered(shuttle.lat_id, now);
}

template <typename ShuttleT>
inline void ProbeDrop(Lane* lane, const ShuttleT& shuttle,
                      sim::TimePoint now) {
  if (lane == nullptr || !Enabled() || shuttle.lat_id == 0) return;
  lane->OnDropped(shuttle.lat_id, now);
}

template <typename ShuttleT>
inline void ProbeExecEnter(Lane* lane, const ShuttleT& shuttle,
                           sim::TimePoint now) {
  if (lane == nullptr || !Enabled() || shuttle.lat_id == 0) return;
  lane->OnExecEnter(shuttle.lat_id, now);
}

template <typename ShuttleT>
inline void ProbeExecDone(Lane* lane, const ShuttleT& shuttle,
                          sim::TimePoint now, std::uint8_t role) {
  if (lane == nullptr || !Enabled() || shuttle.lat_id == 0) return;
  lane->OnExecDone(shuttle.lat_id, now, role);
}

inline void ProbeHop(Lane* lane, std::uint8_t cls, std::uint64_t ns) {
  if (lane == nullptr || !Enabled()) return;
  lane->RecordHop(cls, ns);
}

inline void ProbeQueue(Lane* lane, std::uint8_t cls, std::uint64_t ns) {
  if (lane == nullptr || !Enabled()) return;
  lane->RecordQueue(cls, ns);
}

/// A frame the fabric lost with the shuttle inside (loss draw, link down,
/// queue overflow before the payload type is known): closes by bare id.
inline void ProbeLost(Lane* lane, std::uint64_t lat_id, sim::TimePoint now) {
  if (lane == nullptr || !Enabled() || lat_id == 0) return;
  lane->OnDropped(lat_id, now);
}

}  // namespace viator::telemetry::lat

// The probe macros instrumented code uses. With VIATOR_LAT_COUNTERS=0 they
// expand to nothing at all — the compiled-out contract
// (tests/test_lat_compiled_out.cpp). Arguments are only evaluated when the
// plane is compiled in, so expressions must stay side-effect free.
#if VIATOR_LAT_COUNTERS
#define VIATOR_LAT_BIRTH(lane, shuttle, now) \
  ::viator::telemetry::lat::ProbeBirth((lane), (shuttle), (now))
#define VIATOR_LAT_DELIVERED(lane, shuttle, now) \
  ::viator::telemetry::lat::ProbeDelivered((lane), (shuttle), (now))
#define VIATOR_LAT_DROP(lane, shuttle, now) \
  ::viator::telemetry::lat::ProbeDrop((lane), (shuttle), (now))
#define VIATOR_LAT_EXEC_ENTER(lane, shuttle, now) \
  ::viator::telemetry::lat::ProbeExecEnter((lane), (shuttle), (now))
#define VIATOR_LAT_EXEC_DONE(lane, shuttle, now, role) \
  ::viator::telemetry::lat::ProbeExecDone((lane), (shuttle), (now), (role))
#define VIATOR_LAT_HOP(lane, cls, ns) \
  ::viator::telemetry::lat::ProbeHop((lane), (cls), (ns))
#define VIATOR_LAT_QUEUE(lane, cls, ns) \
  ::viator::telemetry::lat::ProbeQueue((lane), (cls), (ns))
#define VIATOR_LAT_LOST(lane, lat_id, now) \
  ::viator::telemetry::lat::ProbeLost((lane), (lat_id), (now))
#else
#define VIATOR_LAT_BIRTH(lane, shuttle, now) ((void)0)
#define VIATOR_LAT_DELIVERED(lane, shuttle, now) ((void)0)
#define VIATOR_LAT_DROP(lane, shuttle, now) ((void)0)
#define VIATOR_LAT_EXEC_ENTER(lane, shuttle, now) ((void)0)
#define VIATOR_LAT_EXEC_DONE(lane, shuttle, now, role) ((void)0)
#define VIATOR_LAT_HOP(lane, cls, ns) ((void)0)
#define VIATOR_LAT_QUEUE(lane, cls, ns) ((void)0)
#define VIATOR_LAT_LOST(lane, lat_id, now) ((void)0)
#endif
