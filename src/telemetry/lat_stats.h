// Upper-layer helpers over the header-only latency plane
// (telemetry/latency_plane.h): publication into a StatsRegistry — mirrored
// as real sim::Histogram state so the Prometheus classic-histogram
// exposition and every other exporter see the latency families through the
// standard registry — and a human-readable per-stage quantile table. Split
// from the plane header so net/core can embed probes without linking
// viator_telemetry (mirrors telemetry/mem_stats.h).
#pragma once

#include <string>

#include "sim/stats.h"
#include "telemetry/latency_plane.h"

namespace viator::telemetry {

/// Mirrors a lane's cumulative sketches into `stats`: one histogram per
/// non-empty (stage, class) sketch named `lat.<stage>.<class>_ns` (the exec
/// stage is classed by service role), with exact count/sum and the sketch
/// buckets re-expressed in the Histogram's half-power-of-two geometry via
/// each bucket's representative value, plus `lat.delivered`/`lat.dropped`
/// gauges. Idempotent (RestoreState/Set overwrite): safe to call after
/// every window batch. Aggregate shard lanes with Lane::MergeInto first.
void PublishLatStats(sim::StatsRegistry& stats, const lat::Lane& lane);

/// Fixed-width quantile table: count/p50/p95/p99/max per non-empty
/// (stage, class) sketch plus a delivered/dropped/in-flight trailer.
std::string FormatLatReport(const lat::Lane& lane);

}  // namespace viator::telemetry
