// Byte-level memory attribution for the allocator-owning layers of the
// simulation core, the memory twin of telemetry/perf_counters.h: a fixed
// enum of accounting domains, per-thread counter blocks (no sharing, no
// atomics on the hot path), and alloc/free probes that cost one predicted
// branch when the plane is off.
//
// Cost contract (docs/MEMORY.md):
//  - compile-time off (-DVIATOR_MEM_COUNTERS=0): every probe macro expands
//    to nothing — zero instructions, zero bytes, provably (see
//    tests/test_mem_compiled_out.cpp);
//  - runtime off (the default): one relaxed atomic load + predicted branch
//    per probe;
//  - runtime on: a handful of additions against this thread's private block.
//
// Determinism contract: counter values never feed a simulation decision,
// never enter snapshots or journals, and never appear in any hash — a
// counters-on run and a counters-off run of the same seed make bit-identical
// decisions (ReplayNeutrality, gated by bench_memory). Unlike perf cycles,
// the *byte* values themselves are deterministic functions of the workload
// (capacity growth follows the same doubling schedule every run), which is
// what lets bench/baselines/BENCH_memory.json pin them exactly.
//
// Aggregation semantics: live/alloc/free byte sums are order-independent and
// exact at any thread count (a shuttle pooled on shard A and reacquired on
// shard B contributes +N on one thread's block and -N on another's; the sum
// is right even though each block alone may go negative). Summed peaks are
// an upper bound on the true process-wide peak — exact when one thread does
// the touching, which is true for every pinned baseline tier.
//
// This header is deliberately self-contained (no sim/net/core includes) so
// the layers below telemetry — base/flat_map.h, sim/calendar_queue.h — can
// embed probes without inverting the library dependency order: everything is
// inline or thread_local; the only out-of-line helpers (report formatting,
// StatsRegistry publication, RSS readers) live in mem_counters.cpp inside
// viator_telemetry, which only upper layers call.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#if !defined(VIATOR_MEM_COUNTERS)
#define VIATOR_MEM_COUNTERS 1
#endif

namespace viator::telemetry::mem {

/// The accounted allocation domains. Extend here, name in DomainName(),
/// probe at the owning allocator — the aggregation, export and report
/// layers pick new entries up automatically.
enum class Domain : std::uint8_t {
  kShuttlePool = 0,  // pooled shuttle shells retained by wli::ShuttlePool
  kCalendarQueue,    // event-slot pool + calendar bucket heap storage
  kRouteCache,       // first-hop route cache rows on net::Topology
  kFlatMap,          // base::FlatMap/FlatNameMap backing stores (routing, ...)
  kStatsRegistry,    // StatsRegistry metric tables (a FlatNameMap tenant)
  kJournalRing,      // decision-journal record ring + window-hash log
  kMailbox,          // striped cross-shard handoff mailboxes
  kGenesisBuffer,    // snapshot encode/decode scratch buffers
  kFactsGenome,      // per-node FactStore hash tables
  kCount,
};

inline constexpr std::size_t kDomainCount =
    static_cast<std::size_t>(Domain::kCount);

/// Stable dotted domain name ("mem.shuttle_pool"), the exporters' key.
const char* DomainName(Domain domain);

/// One domain's accumulated traffic on one thread. `live_bytes` is signed:
/// a block whose thread frees memory another thread charged goes negative,
/// and only the cross-thread sum is meaningful.
struct Counter {
  std::int64_t live_bytes = 0;
  std::int64_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t free_bytes = 0;
};

/// Per-thread counter block. Written only by its owning thread; read (and
/// zeroed) by Registry under its lock, which callers must only do while the
/// writing threads are quiescent (e.g. at a window barrier) — the executor's
/// own synchronization then orders the accesses.
struct ThreadBlock {
  std::array<Counter, kDomainCount> counters{};
};

namespace internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace internal

/// The runtime switch. Off (default): every probe costs one predicted
/// branch. Flip it before building the world to attribute construction-time
/// allocations; per-thread counts accumulate until ResetAll().
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

/// Owns every thread's block for the lifetime of the process (blocks of
/// finished threads are retained so their counts stay in the aggregate).
/// Leaked singleton: probes must stay valid during static destruction.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry;  // intentionally leaked
    return *instance;
  }

  /// Creates and adopts the calling thread's block.
  ThreadBlock* Attach() {
    auto block = std::make_unique<ThreadBlock>();
    ThreadBlock* raw = block.get();
    std::lock_guard<std::mutex> lock(mutex_);
    blocks_.push_back(std::move(block));
    return raw;
  }

  /// Sum of every thread's counters (see the aggregation-semantics note in
  /// the header comment). Call only while instrumented threads are
  /// quiescent (see ThreadBlock).
  std::array<Counter, kDomainCount> Aggregate() const {
    std::array<Counter, kDomainCount> total{};
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& block : blocks_) {
      for (std::size_t i = 0; i < kDomainCount; ++i) {
        const Counter& c = block->counters[i];
        total[i].live_bytes += c.live_bytes;
        total[i].peak_bytes += c.peak_bytes;
        total[i].allocs += c.allocs;
        total[i].frees += c.frees;
        total[i].alloc_bytes += c.alloc_bytes;
        total[i].free_bytes += c.free_bytes;
      }
    }
    return total;
  }

  /// The scenario reset hook: zeroes every thread's block so successive
  /// scenarios in one process start from a clean slate instead of
  /// inheriting the previous run's counts. Same quiescence requirement as
  /// Aggregate().
  void ResetAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& block : blocks_) block->counters.fill(Counter{});
  }

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBlock>> blocks_;
};

inline ThreadBlock& LocalBlock() {
  thread_local ThreadBlock* block = Registry::Instance().Attach();
  return *block;
}

/// Convenience forwarders for the common calls.
inline std::array<Counter, kDomainCount> Aggregate() {
  return Registry::Instance().Aggregate();
}
inline void ResetAll() { Registry::Instance().ResetAll(); }

/// Charges `bytes` to `domain`: the owning allocator took that much more
/// heap (a capacity growth, a pooled shell retained, a row filled).
inline void OnAlloc(Domain domain, std::size_t bytes) {
  if (!Enabled()) return;
  Counter& c = LocalBlock().counters[static_cast<std::size_t>(domain)];
  ++c.allocs;
  c.alloc_bytes += bytes;
  c.live_bytes += static_cast<std::int64_t>(bytes);
  if (c.live_bytes > c.peak_bytes) c.peak_bytes = c.live_bytes;
}

/// Releases `bytes` from `domain` (a shrink, an eviction, a destructor).
inline void OnFree(Domain domain, std::size_t bytes) {
  if (!Enabled()) return;
  Counter& c = LocalBlock().counters[static_cast<std::size_t>(domain)];
  ++c.frees;
  c.free_bytes += bytes;
  c.live_bytes -= static_cast<std::int64_t>(bytes);
}

/// Capacity-delta helper for the common "container may have regrown" site:
/// charges or releases the difference, and is free when nothing changed.
inline void OnResize(Domain domain, std::size_t old_bytes,
                     std::size_t new_bytes) {
  if (new_bytes > old_bytes) {
    OnAlloc(domain, new_bytes - old_bytes);
  } else if (old_bytes > new_bytes) {
    OnFree(domain, old_bytes - new_bytes);
  }
}

/// An object-owned running charge against one domain: Add/Sub mirror every
/// byte into the global counters, the destructor returns the balance, a
/// copy re-charges its own balance and a move transfers it — so objects
/// holding one can be copied, moved and destroyed without ever leaking or
/// double-freeing attributed bytes. Value reads (`value()`) are always-on
/// and deterministic; only the global mirroring obeys Enabled().
///
/// `kMirror` defaults to this translation unit's VIATOR_MEM_COUNTERS value;
/// baking it into the type keeps -DVIATOR_MEM_COUNTERS=0 units (the
/// compiled-out test) from violating the ODR against library units built
/// with probes on — the two configurations instantiate distinct types.
template <Domain D, bool kMirror = (VIATOR_MEM_COUNTERS != 0)>
class ChargedBytes {
 public:
  ChargedBytes() = default;
  explicit ChargedBytes(std::size_t bytes) { Add(bytes); }
  ChargedBytes(const ChargedBytes& other) { Add(other.value_); }
  ChargedBytes& operator=(const ChargedBytes& other) {
    if (this != &other) Set(other.value_);
    return *this;
  }
  ChargedBytes(ChargedBytes&& other) noexcept : value_(other.value_) {
    other.value_ = 0;
  }
  ChargedBytes& operator=(ChargedBytes&& other) noexcept {
    if (this != &other) {
      Set(0);
      value_ = other.value_;
      other.value_ = 0;
    }
    return *this;
  }
  ~ChargedBytes() { Set(0); }

  void Add(std::size_t bytes) {
    if constexpr (kMirror) {
      if (bytes != 0) OnAlloc(D, bytes);
    }
    value_ += bytes;
  }
  void Sub(std::size_t bytes) {
    if constexpr (kMirror) {
      if (bytes != 0) OnFree(D, bytes);
    }
    value_ -= bytes;
  }
  void Set(std::size_t bytes) {
    if (bytes > value_) {
      Add(bytes - value_);
    } else if (bytes < value_) {
      Sub(value_ - bytes);
    }
  }
  std::size_t value() const { return value_; }

 private:
  std::size_t value_ = 0;
};

}  // namespace viator::telemetry::mem

// The probe macros instrumented code uses. With VIATOR_MEM_COUNTERS=0 they
// expand to nothing at all — the compiled-out contract. Arguments are only
// evaluated when the plane is compiled in, so byte expressions must stay
// side-effect free.
#if VIATOR_MEM_COUNTERS
#define VIATOR_MEM_ALLOC(domain, bytes)       \
  ::viator::telemetry::mem::OnAlloc(          \
      ::viator::telemetry::mem::Domain::domain, (bytes))
#define VIATOR_MEM_FREE(domain, bytes)        \
  ::viator::telemetry::mem::OnFree(           \
      ::viator::telemetry::mem::Domain::domain, (bytes))
#define VIATOR_MEM_RESIZE(domain, old_bytes, new_bytes)  \
  ::viator::telemetry::mem::OnResize(                    \
      ::viator::telemetry::mem::Domain::domain, (old_bytes), (new_bytes))
#else
#define VIATOR_MEM_ALLOC(domain, bytes) ((void)0)
#define VIATOR_MEM_FREE(domain, bytes) ((void)0)
#define VIATOR_MEM_RESIZE(domain, old_bytes, new_bytes) ((void)0)
#endif
