#include "telemetry/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>

namespace viator::telemetry {

void BenchReport::AddCounters(const sim::StatsRegistry& stats,
                              std::string_view prefix) {
  for (const auto& [name, counter] : stats.counters()) {
    std::string key;
    if (!prefix.empty()) {
      key.append(prefix).append(".");
    }
    key += name;
    metrics_[key] = static_cast<double>(counter.value());
  }
}

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  for (const auto& [metric, value] : metrics_) {
    if (!first) out << ",\n";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << "  \"" << metric << "\": " << buf;
  }
  out << "\n}\n";
  return out.str();
}

bool BenchReport::Write() const {
  std::string path;
  if (const char* dir = std::getenv("VIATOR_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort; open reports
    path.append(dir).append("/");
  }
  path.append("BENCH_").append(name_).append(".json");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "bench_report: cannot write " << path << "\n";
    return false;
  }
  out << ToJson();
  return out.good();
}

}  // namespace viator::telemetry
