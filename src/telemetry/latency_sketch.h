// Deterministic mergeable quantile sketch for sim-time latencies.
//
// A DDSketch-style log-bucketed histogram over integer nanosecond values,
// specialised for the latency plane's determinism contract: bucketing is
// pure integer arithmetic (a bit-scan and a shift — no logarithms, no
// floating point), so recording the same multiset of durations yields the
// same bucket array on every platform and at every thread count. That is
// what lets bench_latency pin per-class quantiles bucket-exactly across
// threads=1 and threads=4 and lets the genesis section round-trip
// bit-identically.
//
// Layout: log-linear, HdrHistogram-flavoured. Values 0..15 get one exact
// bucket each; above that every power-of-two octave is split into 16 linear
// subbuckets, so the bucket width is 2^(msb-4) for a value whose top bit is
// msb — a relative width of 1/16, and a worst-case relative error of 1/32
// (~3.2%) with the midpoint representative. 45 octaves (up to 2^48 ns ≈ 78
// sim-hours; larger values clamp into the top bucket) of 16 subbuckets
// plus the 16 exact small buckets gives 736 dense std::uint64_t buckets —
// 5.75 KiB per sketch, cheap enough to keep one per (stage, class) pair.
//
// The exact integer `sum` and `count` ride along so Prometheus
// `_sum`/`_count` exposition and mean latencies stay exact even though
// per-value resolution is bucketed. Merge is bucket-wise addition:
// associative, commutative, with the empty sketch as identity
// (tests/test_latency.cpp pins the algebra).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace viator::telemetry::lat {

class LatencySketch {
 public:
  /// 16 exact buckets for values 0..15, then 16 subbuckets per octave for
  /// msb 4..48 (45 octaves): 16 + 45 * 16 = 736 buckets.
  static constexpr std::size_t kSubBuckets = 16;
  static constexpr std::uint32_t kMaxMsb = 48;  // values clamp at 2^49 - 1
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (kMaxMsb - 3) * kSubBuckets;  // 16 + 45*16 = 736

  /// Bucket index of `value_ns`. Exact for 0..15; log-linear above.
  static constexpr std::size_t BucketIndex(std::uint64_t value_ns) {
    if (value_ns < kSubBuckets) return static_cast<std::size_t>(value_ns);
    std::uint32_t msb = static_cast<std::uint32_t>(
        std::bit_width(value_ns) - 1);
    if (msb > kMaxMsb) {
      msb = kMaxMsb;
      value_ns = (std::uint64_t{1} << (kMaxMsb + 1)) - 1;
    }
    const std::uint64_t sub = (value_ns >> (msb - 4)) & (kSubBuckets - 1);
    return kSubBuckets * (msb - 3) + static_cast<std::size_t>(sub);
  }

  /// Smallest value mapping to bucket `index`.
  static constexpr std::uint64_t BucketLowerBound(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::uint32_t msb =
        static_cast<std::uint32_t>(index / kSubBuckets) + 3;
    const std::uint64_t sub = index % kSubBuckets;
    return (kSubBuckets + sub) << (msb - 4);
  }

  /// One past the largest value mapping to bucket `index`: the bucket
  /// spans [BucketLowerBound, BucketUpperBound).
  static constexpr std::uint64_t BucketUpperBound(std::size_t index) {
    if (index < kSubBuckets) return index + 1;
    const std::uint32_t msb =
        static_cast<std::uint32_t>(index / kSubBuckets) + 3;
    return BucketLowerBound(index) + (std::uint64_t{1} << (msb - 4));
  }

  /// The value a bucket reports from quantile queries: its midpoint, which
  /// halves the worst-case relative error versus either edge.
  static constexpr std::uint64_t BucketRepresentative(std::size_t index) {
    return (BucketLowerBound(index) + BucketUpperBound(index) - 1) / 2;
  }

  void Record(std::uint64_t value_ns) {
    ++buckets_[BucketIndex(value_ns)];
    ++count_;
    sum_ += value_ns;
  }

  /// Bucket-wise addition; other sketches' exact totals fold in too.
  void Merge(const LatencySketch& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void Reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
  }

  std::uint64_t count() const { return count_; }
  /// Exact integer sum of every recorded value (no bucket rounding).
  std::uint64_t sum() const { return sum_; }
  bool empty() const { return count_ == 0; }

  /// Representative of the bucket holding the q-quantile (0 <= q <= 1) by
  /// cumulative rank walk; 0 when empty. The rank is derived from the
  /// integer count, so equal bucket arrays answer equal quantiles.
  std::uint64_t ValueAtQuantile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // ceil(q * count), clamped to [1, count]: rank r means "the r-th
    // smallest recorded value".
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += buckets_[i];
      if (cumulative >= rank) return BucketRepresentative(i);
    }
    return BucketRepresentative(kBucketCount - 1);
  }

  /// Representative of the lowest / highest non-empty bucket (0 when empty).
  std::uint64_t MinValue() const {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (buckets_[i] != 0) return BucketRepresentative(i);
    }
    return 0;
  }
  std::uint64_t MaxValue() const {
    for (std::size_t i = kBucketCount; i-- > 0;) {
      if (buckets_[i] != 0) return BucketRepresentative(i);
    }
    return 0;
  }

  const std::array<std::uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }

  /// Genesis restore support: re-seats one bucket / the exact totals
  /// verbatim (the loader rebuilds a sketch from its sparse serialization).
  void RestoreBucket(std::size_t index, std::uint64_t bucket_count) {
    if (index < kBucketCount) buckets_[index] = bucket_count;
  }
  void RestoreTotals(std::uint64_t count, std::uint64_t sum) {
    count_ = count;
    sum_ = sum;
  }

  friend bool operator==(const LatencySketch&, const LatencySketch&) = default;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace viator::telemetry::lat
