#include "telemetry/profiler.h"

#include <algorithm>
#include <iomanip>
#include <vector>

#include "base/strings.h"
#include "telemetry/mem_stats.h"

namespace viator::telemetry {

void Profiler::Attach(sim::Simulator& simulator) {
  Detach();
  simulator_ = &simulator;
  simulator_->SetDispatchObserver(
      [this](const char* component, sim::TimePoint /*when*/,
             sim::Duration virtual_gap, std::uint64_t wall_ns) {
        auto it = costs_.find(std::string_view(component));
        if (it == costs_.end()) {
          it = costs_.emplace(component, ComponentCost{}).first;
        }
        ComponentCost& cost = it->second;
        ++cost.calls;
        cost.wall_ns.Record(static_cast<double>(wall_ns));
        cost.virtual_ns += virtual_gap;
      });
}

void Profiler::Detach() {
  if (simulator_ != nullptr) {
    simulator_->SetDispatchObserver(nullptr);
    simulator_ = nullptr;
  }
}

void Profiler::RecordSection(std::string_view component,
                             std::uint64_t wall_ns) {
  auto it = costs_.find(component);
  if (it == costs_.end()) {
    it = costs_.emplace(std::string(component), ComponentCost{}).first;
  }
  ComponentCost& cost = it->second;
  ++cost.calls;
  cost.wall_ns.Record(static_cast<double>(wall_ns));
}

void Profiler::Report(std::ostream& out) const {
  std::vector<const std::pair<const std::string, ComponentCost>*> rows;
  rows.reserve(costs_.size());
  for (const auto& entry : costs_) rows.push_back(&entry);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->second.wall_ns.sum() != b->second.wall_ns.sum()) {
      return a->second.wall_ns.sum() > b->second.wall_ns.sum();
    }
    return a->first < b->first;
  });
  TablePrinter table({"component", "calls", "wall total", "wall mean",
                      "wall p99", "virtual total"});
  for (const auto* row : rows) {
    const ComponentCost& c = row->second;
    table.AddRow({row->first, std::to_string(c.calls),
                  FormatNanos(static_cast<std::uint64_t>(c.wall_ns.sum())),
                  FormatNanos(static_cast<std::uint64_t>(c.wall_ns.mean())),
                  FormatNanos(static_cast<std::uint64_t>(c.wall_ns.Quantile(0.99))),
                  FormatNanos(c.virtual_ns)});
  }
  table.Print(out);
}

void Profiler::WriteJson(std::ostream& out) const {
  out << "{\n";
  bool first = true;
  for (const auto& [name, cost] : costs_) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << name << "\": {\"calls\": " << cost.calls
        << ", \"wall_ns_total\": "
        << static_cast<std::uint64_t>(cost.wall_ns.sum())
        << ", \"wall_ns_mean\": "
        << static_cast<std::uint64_t>(cost.wall_ns.mean())
        << ", \"wall_ns_p99\": "
        << static_cast<std::uint64_t>(cost.wall_ns.Quantile(0.99))
        << ", \"virtual_ns\": " << cost.virtual_ns << "}";
  }
  out << "\n}\n";
}

void Profiler::PublishStats(sim::StatsRegistry& stats) const {
  if (simulator_ != nullptr) {
    stats.GetGauge("profiler.queue_depth")
        .Set(static_cast<double>(simulator_->queue_depth()));
    stats.GetGauge("profiler.queue_depth_max")
        .Set(static_cast<double>(simulator_->max_queue_depth()));
  }
  for (const auto& [name, cost] : costs_) {
    stats.GetGauge("profiler.events." + name)
        .Set(static_cast<double>(cost.calls));
  }
  // Process-level memory gauges ride along with every profiler publication
  // so dashboards can plot attributed domain bytes against the real RSS.
  PublishProcStats(stats, ReadRssBytes(), ReadMaxRssBytes());
}

}  // namespace viator::telemetry
