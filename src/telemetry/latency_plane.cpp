#include "telemetry/lat_stats.h"

#include <bit>
#include <cinttypes>
#include <string>
#include <vector>

#include "telemetry/plane_report.h"

namespace viator::telemetry {
namespace {

using lat::Lane;
using lat::LatencySketch;
using lat::Stage;

/// Dotted metric name of one (stage, class) sketch: "lat.delivery.data_ns".
std::string SketchName(Stage stage, std::size_t index) {
  std::string name = lat::StageName(stage);
  name.push_back('.');
  name.append(stage == Stage::kExec ? lat::RoleName(index)
                                    : lat::ClassName(index));
  name.append("_ns");
  return name;
}

/// Histogram bucket (0..191) holding integer value `v >= 1`: the
/// half-exponent e with 2^(e/2) <= v < 2^((e+1)/2), shifted by the origin.
/// Pure integer arithmetic — v >= 2^(msb + 1/2) iff v^2 >= 2^(2*msb+1) —
/// so the mirror is platform-deterministic like the sketch itself.
std::size_t HistogramBucketFor(std::uint64_t v) {
  const std::uint32_t msb =
      static_cast<std::uint32_t>(std::bit_width(v) - 1);
  const bool upper_half =
      msb < 32 ? (unsigned __int128)v * v >=
                     ((unsigned __int128)1 << (2 * msb + 1))
               : true;  // representatives this large always clamp below
  std::size_t e = 2 * static_cast<std::size_t>(msb) + (upper_half ? 1 : 0);
  // Index = half-exponent - origin; origin is -64.
  std::size_t index =
      e + static_cast<std::size_t>(-sim::Histogram::kBucketOrigin);
  if (index >= 192) index = 191;
  return index;
}

/// Re-expresses one sketch as exact Histogram internal state: count/sum are
/// exact; min/max/sum_sq and the bucket placement use each sketch bucket's
/// representative value (documented approximation, docs/LATENCY.md).
void MirrorSketch(sim::StatsRegistry& stats, const std::string& name,
                  const LatencySketch& sketch) {
  sim::Histogram::RawState raw;
  raw.count = sketch.count();
  raw.sum = static_cast<double>(sketch.sum());
  raw.min = static_cast<double>(sketch.MinValue());
  raw.max = static_cast<double>(sketch.MaxValue());
  raw.zeros = sketch.buckets()[0];  // only value 0 maps below 2^-32
  raw.bucket_origin = sim::Histogram::kBucketOrigin;
  raw.buckets.assign(192, 0);
  double sum_sq = 0.0;
  for (std::size_t i = 1; i < LatencySketch::kBucketCount; ++i) {
    const std::uint64_t n = sketch.buckets()[i];
    if (n == 0) continue;
    const std::uint64_t rep = LatencySketch::BucketRepresentative(i);
    raw.buckets[HistogramBucketFor(rep)] += n;
    sum_sq += static_cast<double>(n) * static_cast<double>(rep) *
              static_cast<double>(rep);
  }
  raw.sum_sq = sum_sq;
  stats.GetHistogram(name).RestoreState(raw);
}

}  // namespace

void PublishLatStats(sim::StatsRegistry& stats, const lat::Lane& lane) {
  for (std::size_t s = 0; s < lat::kStageCount; ++s) {
    const Stage stage = static_cast<Stage>(s);
    for (std::size_t c = 0; c < lat::StageClassCount(stage); ++c) {
      const LatencySketch& sketch = lane.Sketch(stage, c);
      if (sketch.empty()) continue;
      MirrorSketch(stats, SketchName(stage, c), sketch);
    }
  }
  plane::PublishGaugeRow(
      stats, "lat",
      {{".delivered", static_cast<double>(lane.DeliveredCount())},
       {".dropped", static_cast<double>(lane.DroppedCount())}});
}

std::string FormatLatReport(const lat::Lane& lane) {
  plane::TableBuilder table;
  table.Line("%-28s %10s %12s %12s %12s %12s\n", "stage", "count", "p50_ns",
             "p95_ns", "p99_ns", "max_ns");
  for (std::size_t s = 0; s < lat::kStageCount; ++s) {
    const Stage stage = static_cast<Stage>(s);
    for (std::size_t c = 0; c < lat::StageClassCount(stage); ++c) {
      const LatencySketch& sketch = lane.Sketch(stage, c);
      if (sketch.empty()) continue;
      table.DataRow("%-28s %10" PRIu64 " %12" PRIu64 " %12" PRIu64
                    " %12" PRIu64 " %12" PRIu64 "\n",
                    SketchName(stage, c).c_str(), sketch.count(),
                    sketch.ValueAtQuantile(0.50),
                    sketch.ValueAtQuantile(0.95),
                    sketch.ValueAtQuantile(0.99), sketch.MaxValue());
    }
  }
  if (table.has_rows()) {
    table.Line("delivered: %" PRIu64 "  dropped: %" PRIu64
               "  in-flight: %zu\n",
               lane.DeliveredCount(), lane.DroppedCount(),
               lane.open_flights());
  }
  return std::move(table).Finish(
      "(no shuttle lifecycles recorded: plane disabled or nothing ran)");
}

}  // namespace viator::telemetry
