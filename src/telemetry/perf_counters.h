// Cycle-level performance counters for the hot paths of the simulation core,
// in the style of nginx-vod's ngx_perf_counters: a fixed enum of probe
// points, per-thread counter blocks (no sharing, no atomics on the hot
// path), and an rdtsc-based cycle clock with a steady_clock fallback.
//
// Cost contract (docs/PERF.md):
//  - compile-time off (-DVIATOR_PERF_COUNTERS=0): every probe macro expands
//    to nothing — zero instructions, zero bytes, provably (see
//    tests/test_perf_compiled_out.cpp);
//  - runtime off (the default): one relaxed atomic load + predicted branch
//    per probe;
//  - runtime on: two cycle-clock reads per timed probe, one increment per
//    counting probe, all against this thread's private block.
//
// Determinism contract: counter values are measurements of the host
// machine. They never feed a simulation decision, never enter snapshots or
// journals, and never appear in any hash — a counters-on run and a
// counters-off run of the same seed make bit-identical decisions
// (ReplayNeutrality, gated by bench_shard_observatory).
//
// This header is deliberately self-contained (no sim/net/core includes) so
// the layers below telemetry — base/rng.cpp, sim/simulator.cpp — can embed
// probes without inverting the library dependency order: everything is
// inline or thread_local; the only out-of-line helpers (report formatting,
// StatsRegistry publication) live in perf_counters.cpp inside
// viator_telemetry, which only upper layers call.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#if !defined(VIATOR_PERF_COUNTERS)
#define VIATOR_PERF_COUNTERS 1
#endif

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace viator::telemetry::perf {

/// The instrumented hot paths. Extend here, name in MetricName(), probe at
/// the call site — the aggregation, export and report layers pick new
/// entries up automatically.
enum class Metric : std::uint8_t {
  kSimDispatch = 0,   // one simulator event: pop, tombstone check, callback
  kRngDraw,           // one raw xoshiro draw (counted, not timed)
  kRouteNextHop,      // per-hop next-hop lookup in WanderingNetwork::Dispatch
  kGatewayRoute,      // boundary-handler routing of a cross-shard shuttle
  kMailboxPush,       // stripe lock acquire + deposit of one handoff
  kMailboxDrain,      // barrier drain + deterministic sort of all stripes
  kExecutorWindow,    // one shard's RunUntil(window_end) on its worker
  kExecutorPost,      // post-window task (per-shard state hash)
  kBarrierWait,       // caller blocked waiting for the window's last shard
  kMergeWindow,       // single-threaded handoff merge at the barrier
  kRouteCacheHit,     // NextHop answered from a live cached row (counted)
  kRouteCacheMiss,    // NextHop had to (re)fill a row (counted)
  kRouteCacheFill,    // one full first-hop BFS filling a cache row
  kCount,
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(Metric::kCount);

/// Stable dotted metric name ("perf.sim_dispatch"), the exporters' key.
const char* MetricName(Metric metric);

/// One probe point's accumulated cost on one thread.
struct Counter {
  std::uint64_t calls = 0;
  std::uint64_t cycles = 0;
  std::uint64_t max_cycles = 0;
};

/// Per-thread counter block. Written only by its owning thread; read (and
/// zeroed) by Registry under its lock, which callers must only do while the
/// writing threads are quiescent (e.g. at a window barrier) — the executor's
/// own synchronization then orders the accesses.
struct ThreadBlock {
  std::array<Counter, kMetricCount> counters{};
};

/// Cycle clock: rdtsc where available (x86-64; ~20 cycles, monotonic enough
/// for deltas on any post-2008 part with constant_tsc), otherwise
/// steady_clock nanoseconds. Units are "ticks" either way — ratios and
/// shares are meaningful, absolute values are host-specific diagnostics.
inline std::uint64_t Cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

namespace internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace internal

/// The runtime switch. Off (default): every probe costs one predicted
/// branch. Flip it around a measured region; per-thread counts accumulate
/// until ResetAll().
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

/// Owns every thread's block for the lifetime of the process (blocks of
/// finished threads are retained so their counts stay in the aggregate).
/// Leaked singleton: probes must stay valid during static destruction.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry;  // intentionally leaked
    return *instance;
  }

  /// Creates and adopts the calling thread's block.
  ThreadBlock* Attach() {
    auto block = std::make_unique<ThreadBlock>();
    ThreadBlock* raw = block.get();
    std::lock_guard<std::mutex> lock(mutex_);
    blocks_.push_back(std::move(block));
    return raw;
  }

  /// Sum of every thread's counters. Call only while instrumented threads
  /// are quiescent (see ThreadBlock).
  std::array<Counter, kMetricCount> Aggregate() const {
    std::array<Counter, kMetricCount> total{};
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& block : blocks_) {
      for (std::size_t i = 0; i < kMetricCount; ++i) {
        const Counter& c = block->counters[i];
        total[i].calls += c.calls;
        total[i].cycles += c.cycles;
        if (c.max_cycles > total[i].max_cycles) {
          total[i].max_cycles = c.max_cycles;
        }
      }
    }
    return total;
  }

  /// The scenario reset hook: zeroes every thread's block so successive
  /// scenarios in one process start from a clean slate instead of
  /// inheriting the previous run's counts. Same quiescence requirement as
  /// Aggregate().
  void ResetAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& block : blocks_) block->counters.fill(Counter{});
  }

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBlock>> blocks_;
};

inline ThreadBlock& LocalBlock() {
  thread_local ThreadBlock* block = Registry::Instance().Attach();
  return *block;
}

/// Convenience forwarders for the common calls.
inline std::array<Counter, kMetricCount> Aggregate() {
  return Registry::Instance().Aggregate();
}
inline void ResetAll() { Registry::Instance().ResetAll(); }

/// Counting probe body (untimed): one branch off, branch + increment on.
inline void Count(Metric metric) {
  if (!Enabled()) return;
  ++LocalBlock().counters[static_cast<std::size_t>(metric)].calls;
}

/// Records one timed sample (used by Timer; callable directly when the
/// caller already has a cycle delta).
inline void Record(Metric metric, std::uint64_t cycles) {
  if (!Enabled()) return;
  Counter& c = LocalBlock().counters[static_cast<std::size_t>(metric)];
  ++c.calls;
  c.cycles += cycles;
  if (cycles > c.max_cycles) c.max_cycles = cycles;
}

/// RAII timed probe: samples Cycles() on entry and exit. The enabled check
/// happens once, at construction — flipping the switch mid-scope loses or
/// keeps that one sample, never corrupts.
class Timer {
 public:
  explicit Timer(Metric metric) : metric_(metric), armed_(Enabled()) {
    if (armed_) start_ = Cycles();
  }
  ~Timer() {
    if (armed_) Record(metric_, Cycles() - start_);
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

 private:
  Metric metric_;
  bool armed_;
  std::uint64_t start_ = 0;
};

}  // namespace viator::telemetry::perf

// The probe macros instrumented code uses. With VIATOR_PERF_COUNTERS=0 they
// expand to nothing at all — the compiled-out contract.
#if VIATOR_PERF_COUNTERS
#define VIATOR_PERF_CAT2(a, b) a##b
#define VIATOR_PERF_CAT(a, b) VIATOR_PERF_CAT2(a, b)
#define VIATOR_PERF_SCOPE(metric)                    \
  ::viator::telemetry::perf::Timer VIATOR_PERF_CAT(  \
      viator_perf_timer_, __LINE__)(::viator::telemetry::perf::Metric::metric)
#define VIATOR_PERF_COUNT(metric) \
  ::viator::telemetry::perf::Count(::viator::telemetry::perf::Metric::metric)
#else
#define VIATOR_PERF_SCOPE(metric) ((void)0)
#define VIATOR_PERF_COUNT(metric) ((void)0)
#endif
