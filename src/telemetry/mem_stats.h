// Upper-layer helpers over the header-only memory counter core
// (telemetry/mem_counters.h): publication into a StatsRegistry — which
// flows through every exporter, Prometheus headers included — a
// human-readable attribution table, and process-RSS readers for the
// coverage line. Split from the core header so base/sim can embed probes
// without linking viator_telemetry.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/stats.h"
#include "telemetry/mem_counters.h"

namespace viator::telemetry {

/// Mirrors a memory aggregate into `stats` as gauges — six per domain:
/// `mem.<domain>.{live_bytes,peak_bytes,allocs,frees,alloc_bytes,
/// free_bytes}`. Idempotent (Set, not Add): safe to call after every
/// window batch.
void PublishMemStats(sim::StatsRegistry& stats,
                     const std::array<mem::Counter, mem::kDomainCount>&
                         aggregate);

/// Convenience form over the live process-wide aggregate. Call only while
/// instrumented threads are quiescent (see mem::Registry::Aggregate).
void PublishMemStats(sim::StatsRegistry& stats);

/// Process-level gauges for the coverage line: `proc.rss_bytes` and
/// `proc.maxrss_bytes`. Split from the readers so golden tests can publish
/// fixed values.
void PublishProcStats(sim::StatsRegistry& stats, std::uint64_t rss_bytes,
                      std::uint64_t maxrss_bytes);

/// Current resident set size from /proc/self/statm (0 where unavailable).
std::uint64_t ReadRssBytes();

/// Peak resident set size from getrusage(RUSAGE_SELF) (0 where unavailable).
std::uint64_t ReadMaxRssBytes();

/// Fixed-width attribution table: live, peak, allocs, frees, alloc bytes
/// per domain plus a total row. Domains with no traffic are omitted. When
/// `maxrss_bytes` is nonzero a coverage line (total live vs maxrss)
/// follows the table.
std::string FormatMemReport(
    const std::array<mem::Counter, mem::kDomainCount>& aggregate,
    std::uint64_t maxrss_bytes = 0);
std::string FormatMemReport();

}  // namespace viator::telemetry
