#include "telemetry/shard_metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace viator::telemetry {

std::string ShardMetricName(std::uint32_t shard, std::string_view metric) {
  std::string name = "shard.";
  name += std::to_string(shard);
  name += '.';
  name += metric;
  return name;
}

void PublishShardWindow(sim::StatsRegistry& stats, std::uint32_t shard,
                        const ShardWindowSample& sample) {
  stats.GetCounter(ShardMetricName(shard, "dispatched")).Add(sample.dispatched);
  stats.GetCounter(ShardMetricName(shard, "handoffs_out"))
      .Add(sample.handoffs_out);
  stats.GetCounter(ShardMetricName(shard, "handoffs_in"))
      .Add(sample.handoffs_in);
  stats.GetCounter(ShardMetricName(shard, "wall_ns")).Add(sample.wall_ns);
  stats.GetCounter(ShardMetricName(shard, "stall_ns")).Add(sample.stall_ns);
  stats.GetGauge(ShardMetricName(shard, "queue_depth")).Set(sample.queue_depth);
  stats.GetGauge(ShardMetricName(shard, "pool_bytes"))
      .Set(static_cast<double>(sample.pool_bytes));
  // Latency-plane fold: only publish when the window folded deliveries, so
  // runs with the plane off never grow the metric namespace.
  if (sample.lat_delivered != 0) {
    stats.GetCounter(ShardMetricName(shard, "lat_delivered"))
        .Add(sample.lat_delivered);
    stats.GetGauge(ShardMetricName(shard, "lat_p50_ns"))
        .Set(static_cast<double>(sample.lat_p50_ns));
    stats.GetGauge(ShardMetricName(shard, "lat_p95_ns"))
        .Set(static_cast<double>(sample.lat_p95_ns));
    stats.GetGauge(ShardMetricName(shard, "lat_p99_ns"))
        .Set(static_cast<double>(sample.lat_p99_ns));
  }
}

ShardObservatory::ShardObservatory(std::size_t shard_count,
                                   std::size_t window_capacity)
    : window_capacity_(window_capacity) {
  Reset(shard_count);
}

void ShardObservatory::Reset(std::size_t shard_count) {
  shard_count_ = shard_count;
  windows_.clear();
  totals_.assign(shard_count_, ShardTotals{});
  windows_seen_ = 0;
  windows_dropped_ = 0;
  critical_path_wall_ns_ = 0;
  total_wall_ns_ = 0;
  total_stall_ns_ = 0;
}

void ShardObservatory::RecordWindow(ShardWindowRecord record) {
  if (record.shards.size() != shard_count_) {
    // Geometry changed under us (a Reset was missed). Re-dimension rather
    // than mis-index: the totals restart, which is the honest outcome.
    Reset(record.shards.size());
  }
  ++windows_seen_;

  std::uint64_t max_wall = 0;
  std::size_t slowest = 0;
  for (std::size_t shard = 0; shard < record.shards.size(); ++shard) {
    const ShardWindowSample& s = record.shards[shard];
    ShardTotals& t = totals_[shard];
    t.dispatched += s.dispatched;
    t.handoffs_out += s.handoffs_out;
    t.handoffs_in += s.handoffs_in;
    t.wall_ns += s.wall_ns;
    t.stall_ns += s.stall_ns;
    total_wall_ns_ += s.wall_ns;
    total_stall_ns_ += s.stall_ns;
    if (s.wall_ns > max_wall) {
      max_wall = s.wall_ns;
      slowest = shard;
    }
  }
  if (!record.shards.empty()) {
    ++totals_[slowest].straggler_windows;
    critical_path_wall_ns_ += max_wall;
  }

  if (windows_.size() < window_capacity_) {
    windows_.push_back(std::move(record));
  } else {
    ++windows_dropped_;
  }
}

StragglerReport ShardObservatory::Report() const {
  StragglerReport report;
  report.windows = windows_seen_;
  report.shard_count = shard_count_;
  report.shards = totals_;
  if (shard_count_ == 0 || windows_seen_ == 0) return report;

  std::uint64_t max_events = 0;
  std::uint64_t sum_events = 0;
  std::uint64_t max_wall = 0;
  std::uint64_t max_straggles = 0;
  for (std::size_t shard = 0; shard < totals_.size(); ++shard) {
    const ShardTotals& t = totals_[shard];
    sum_events += t.dispatched;
    if (t.dispatched > max_events) {
      max_events = t.dispatched;
      report.hot_shard_by_events = static_cast<std::uint32_t>(shard);
    }
    if (t.straggler_windows > max_straggles) {
      max_straggles = t.straggler_windows;
      report.hot_shard_by_wall = static_cast<std::uint32_t>(shard);
    }
    max_wall = std::max(max_wall, t.wall_ns);
  }

  // Every ratio guards its denominator: zero-event windows, zero-wall runs
  // (coarse clocks) and single-shard plans must report clean 1.0 / 0.0
  // values, never NaN (the degenerate-config contract, tests/test_shard.cpp).
  const double mean_events =
      static_cast<double>(sum_events) / static_cast<double>(shard_count_);
  if (mean_events > 0.0) {
    report.imbalance_events = static_cast<double>(max_events) / mean_events;
  }
  const double mean_wall = static_cast<double>(total_wall_ns_) /
                           static_cast<double>(shard_count_);
  if (mean_wall > 0.0) {
    report.imbalance_wall = static_cast<double>(max_wall) / mean_wall;
  }
  const std::uint64_t capacity_ns = total_wall_ns_ + total_stall_ns_;
  if (capacity_ns > 0) {
    report.barrier_stall_ratio = static_cast<double>(total_stall_ns_) /
                                 static_cast<double>(capacity_ns);
  }
  if (total_wall_ns_ > 0) {
    report.critical_path_ratio = static_cast<double>(critical_path_wall_ns_) /
                                 static_cast<double>(total_wall_ns_);
  }
  return report;
}

void ShardObservatory::PublishStats(sim::StatsRegistry& stats) const {
  const StragglerReport report = Report();
  stats.GetGauge("shard.imbalance_events").Set(report.imbalance_events);
  stats.GetGauge("shard.imbalance_wall").Set(report.imbalance_wall);
  stats.GetGauge("shard.barrier_stall_ratio").Set(report.barrier_stall_ratio);
  stats.GetGauge("shard.straggler")
      .Set(static_cast<double>(report.hot_shard_by_events));
}

std::string StragglerReport::Format() const {
  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "windows=%llu shards=%zu imbalance(events)=%.3f "
                "imbalance(wall)=%.3f stall_ratio=%.3f critical_path=%.3f\n",
                static_cast<unsigned long long>(windows), shard_count,
                imbalance_events, imbalance_wall, barrier_stall_ratio,
                critical_path_ratio);
  out << line;
  std::snprintf(line, sizeof(line), "%-6s %14s %12s %12s %14s %14s %10s\n",
                "shard", "dispatched", "h.out", "h.in", "wall_ns", "stall_ns",
                "straggled");
  out << line;
  for (std::size_t shard = 0; shard < shards.size(); ++shard) {
    const ShardTotals& t = shards[shard];
    std::snprintf(line, sizeof(line),
                  "%-6zu %14llu %12llu %12llu %14llu %14llu %10llu%s\n",
                  shard, static_cast<unsigned long long>(t.dispatched),
                  static_cast<unsigned long long>(t.handoffs_out),
                  static_cast<unsigned long long>(t.handoffs_in),
                  static_cast<unsigned long long>(t.wall_ns),
                  static_cast<unsigned long long>(t.stall_ns),
                  static_cast<unsigned long long>(t.straggler_windows),
                  shard == hot_shard_by_events ? "  <- hot (events)" : "");
    out << line;
  }
  if (shard_count > 0 && windows > 0) {
    std::snprintf(line, sizeof(line),
                  "straggler: shard %u by events, shard %u by wall\n",
                  hot_shard_by_events, hot_shard_by_wall);
    out << line;
  }
  return out.str();
}

}  // namespace viator::telemetry
