#include "telemetry/shard_metrics.h"

namespace viator::telemetry {

std::string ShardMetricName(std::uint32_t shard, std::string_view metric) {
  std::string name = "shard.";
  name += std::to_string(shard);
  name += '.';
  name += metric;
  return name;
}

void PublishShardWindow(sim::StatsRegistry& stats, std::uint32_t shard,
                        const ShardWindowSample& sample) {
  stats.GetCounter(ShardMetricName(shard, "dispatched")).Add(sample.dispatched);
  stats.GetCounter(ShardMetricName(shard, "handoffs_out"))
      .Add(sample.handoffs_out);
  stats.GetCounter(ShardMetricName(shard, "handoffs_in"))
      .Add(sample.handoffs_in);
  stats.GetCounter(ShardMetricName(shard, "stall_ns")).Add(sample.stall_ns);
  stats.GetGauge(ShardMetricName(shard, "queue_depth")).Set(sample.queue_depth);
}

}  // namespace viator::telemetry
