#include "telemetry/export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <functional>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "base/strings.h"

namespace viator::telemetry {
namespace {

std::string JsonString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  AppendEscaped(out, text, EscapeStyle::kJson);
  out += '"';
  return out;
}

std::string HexId(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string ShortestDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// --- minimal field scanners for our own fixed-shape output lines ---------

std::optional<std::string> FindStringField(std::string_view line,
                                           std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\":\"";
  const auto pos = line.find(pattern);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + pattern.size();
  std::string out;
  while (i < line.size() && line[i] != '"') {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char esc = line[i + 1];
      i += 2;
      switch (esc) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (i + 4 <= line.size()) {
            out += static_cast<char>(
                std::stoul(std::string(line.substr(i, 4)), nullptr, 16));
            i += 4;
          }
          break;
        default: out += esc;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::optional<std::uint64_t> FindU64Field(std::string_view line,
                                          std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\":";
  const auto pos = line.find(pattern);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + pattern.size();
  if (i >= line.size() || !std::isdigit(static_cast<unsigned char>(line[i]))) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
    value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return value;
}

std::optional<double> FindDoubleField(std::string_view line,
                                      std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\":";
  const auto pos = line.find(pattern);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string rest(line.substr(pos + pattern.size()));
  try {
    return std::stod(rest);
  } catch (...) {
    return std::nullopt;
  }
}

std::string PrometheusName(std::string_view name) {
  std::string out = "viator_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

void PrometheusHeader(std::ostream& out, const std::string& pname,
                      std::string_view original, std::string_view kind,
                      std::string_view type) {
  out << "# HELP " << pname << " Viator " << kind << " "
      << Escaped(original, EscapeStyle::kPrometheusHelp) << "\n"
      << "# TYPE " << pname << " " << type << "\n";
}

}  // namespace

void AppendEscaped(std::string& out, std::string_view text,
                   EscapeStyle style) {
  const bool json = style == EscapeStyle::kJson;
  const bool quotes = json || style == EscapeStyle::kPrometheusLabel;
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        out += quotes ? "\\\"" : "\"";
        break;
      case '\r':
        out += json ? "\\r" : "\r";
        break;
      case '\t':
        out += json ? "\\t" : "\t";
        break;
      default:
        if (json && static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string Escaped(std::string_view text, EscapeStyle style) {
  std::string out;
  out.reserve(text.size());
  AppendEscaped(out, text, style);
  return out;
}

void WriteSpansJsonl(const std::vector<SpanRecord>& spans, std::ostream& out) {
  for (const SpanRecord& s : spans) {
    out << "{\"trace\":\"" << HexId(s.trace_id) << "\",\"span\":" << s.span_id
        << ",\"parent\":" << s.parent_span_id << ",\"ship\":" << s.ship
        << ",\"component\":" << JsonString(s.component)
        << ",\"name\":" << JsonString(s.name) << ",\"start\":" << s.start
        << ",\"end\":" << s.end << "}\n";
  }
}

void WriteTraceEventJson(const std::vector<SpanRecord>& spans,
                         std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out << ",\n";
    first = false;
    char ts[48];
    char dur[48];
    // trace_event timestamps are microseconds; three decimals keep exact ns.
    std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                  static_cast<unsigned long long>(s.start / 1000),
                  static_cast<unsigned long long>(s.start % 1000));
    const std::uint64_t dur_ns = s.end >= s.start ? s.end - s.start : 0;
    std::snprintf(dur, sizeof(dur), "%llu.%03llu",
                  static_cast<unsigned long long>(dur_ns / 1000),
                  static_cast<unsigned long long>(dur_ns % 1000));
    out << "{\"name\":" << JsonString(s.name)
        << ",\"cat\":" << JsonString(s.component)
        << ",\"ph\":\"X\",\"ts\":" << ts << ",\"dur\":" << dur
        << ",\"pid\":1,\"tid\":" << s.ship << ",\"args\":{\"trace\":\""
        << HexId(s.trace_id) << "\",\"span\":" << s.span_id
        << ",\"parent\":" << s.parent_span_id << ",\"ship\":" << s.ship
        << ",\"component\":" << JsonString(s.component) << "}}";
  }
  out << "\n]}\n";
}

void WriteShardTimelineJson(const ShardObservatory& observatory,
                            std::ostream& out) {
  const std::size_t shard_count = observatory.shard_count();
  const std::uint64_t merge_tid = shard_count;  // one track past the shards

  const auto emit_ts = [](std::uint64_t ns) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
  };

  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << shard
        << ",\"args\":{\"name\":\"shard " << shard << "\"}}";
  }
  sep();
  out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
      << merge_tid << ",\"args\":{\"name\":\"merge\"}}";

  // Wall base accumulated across windows: each window occupies
  // [base, base + max shard end + merge], so successive windows abut the
  // way the run actually executed.
  std::uint64_t base_ns = 0;
  for (const ShardWindowRecord& w : observatory.windows()) {
    std::uint64_t window_span_ns = 0;
    for (const ShardWindowSample& s : w.shards) {
      window_span_ns = std::max(window_span_ns, s.start_ns + s.wall_ns);
    }
    for (std::size_t shard = 0; shard < w.shards.size(); ++shard) {
      const ShardWindowSample& s = w.shards[shard];
      sep();
      out << "{\"name\":\"window " << w.window_index
          << "\",\"cat\":\"shard.window\",\"ph\":\"X\",\"ts\":"
          << emit_ts(base_ns + s.start_ns) << ",\"dur\":" << emit_ts(s.wall_ns)
          << ",\"pid\":1,\"tid\":" << shard << ",\"args\":{\"window\":"
          << w.window_index << ",\"virtual_start\":" << w.virtual_start
          << ",\"virtual_end\":" << w.virtual_end
          << ",\"dispatched\":" << s.dispatched
          << ",\"handoffs_out\":" << s.handoffs_out
          << ",\"handoffs_in\":" << s.handoffs_in
          << ",\"queue_depth\":" << ShortestDouble(s.queue_depth) << "}}";
      // The idle tail: this shard finished, the barrier had not. Rendering
      // it makes stragglers visible as the only track with no gap.
      const std::uint64_t end_ns = s.start_ns + s.wall_ns;
      if (end_ns < window_span_ns) {
        sep();
        out << "{\"name\":\"barrier\",\"cat\":\"shard.barrier\",\"ph\":\"X\","
            << "\"ts\":" << emit_ts(base_ns + end_ns)
            << ",\"dur\":" << emit_ts(window_span_ns - end_ns)
            << ",\"pid\":1,\"tid\":" << shard << ",\"args\":{\"window\":"
            << w.window_index << ",\"stall_ns\":" << s.stall_ns << "}}";
      }
      // Per-shard memory counter track ("ph":"C"): the pool footprint
      // sampled at this window's barrier, stamped at the shard's window
      // end so the series steps exactly where the slices do.
      sep();
      out << "{\"name\":\"mem.pool_bytes\",\"cat\":\"shard.mem\","
          << "\"ph\":\"C\",\"ts\":" << emit_ts(base_ns + end_ns)
          << ",\"pid\":1,\"tid\":" << shard
          << ",\"args\":{\"bytes\":" << s.pool_bytes << "}}";
      // Per-shard latency counter track: the window's end-to-end delivery
      // quantiles from the latency plane's fold (simulated nanoseconds,
      // deterministic). Only drawn when the window folded deliveries, so
      // plane-off timelines are byte-identical to before the plane existed.
      if (s.lat_delivered != 0) {
        sep();
        out << "{\"name\":\"lat.delivery_ns\",\"cat\":\"shard.lat\","
            << "\"ph\":\"C\",\"ts\":" << emit_ts(base_ns + end_ns)
            << ",\"pid\":1,\"tid\":" << shard << ",\"args\":{\"p50\":"
            << s.lat_p50_ns << ",\"p95\":" << s.lat_p95_ns
            << ",\"p99\":" << s.lat_p99_ns
            << ",\"delivered\":" << s.lat_delivered << "}}";
      }
    }
    sep();
    out << "{\"name\":\"merge " << w.window_index
        << "\",\"cat\":\"shard.merge\",\"ph\":\"X\",\"ts\":"
        << emit_ts(base_ns + window_span_ns)
        << ",\"dur\":" << emit_ts(w.merge_wall_ns)
        << ",\"pid\":1,\"tid\":" << merge_tid << ",\"args\":{\"window\":"
        << w.window_index << ",\"handoffs\":" << w.merge_handoffs << "}}";
    base_ns += window_span_ns + w.merge_wall_ns;
  }
  out << "\n]}\n";
}

std::optional<SpanRecord> ParseSpanLine(std::string_view line) {
  const auto trace_hex = FindStringField(line, "trace");
  if (!trace_hex) return std::nullopt;
  SpanRecord s;
  try {
    s.trace_id = std::stoull(*trace_hex, nullptr, 16);
  } catch (...) {
    return std::nullopt;
  }
  const auto span = FindU64Field(line, "span");
  const auto name = FindStringField(line, "name");
  if (!span || !name) return std::nullopt;
  s.span_id = *span;
  s.parent_span_id = FindU64Field(line, "parent").value_or(0);
  s.ship = FindU64Field(line, "ship").value_or(0);
  s.component = FindStringField(line, "component").value_or("");
  if (s.component.empty()) s.component = FindStringField(line, "cat").value_or("");
  s.name = *name;
  const auto start = FindU64Field(line, "start");
  const auto end = FindU64Field(line, "end");
  if (start && end) {
    s.start = *start;
    s.end = *end;
  } else {
    // trace_event form: microsecond ts/dur back to nanoseconds.
    const double ts = FindDoubleField(line, "ts").value_or(0.0);
    const double dur = FindDoubleField(line, "dur").value_or(0.0);
    s.start = static_cast<sim::TimePoint>(std::llround(ts * 1000.0));
    s.end = s.start + static_cast<sim::TimePoint>(std::llround(dur * 1000.0));
  }
  return s;
}

std::vector<SpanRecord> ParseSpans(std::istream& in) {
  std::vector<SpanRecord> spans;
  std::string line;
  while (std::getline(in, line)) {
    if (auto s = ParseSpanLine(line)) spans.push_back(std::move(*s));
  }
  return spans;
}

std::map<std::uint64_t, std::vector<SpanRecord>> GroupByTrace(
    const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, std::vector<SpanRecord>> by_trace;
  for (const SpanRecord& s : spans) by_trace[s.trace_id].push_back(s);
  return by_trace;
}

bool IsConnectedTree(const std::vector<SpanRecord>& trace_spans) {
  if (trace_spans.empty()) return false;
  std::set<std::uint64_t> ids;
  for (const SpanRecord& s : trace_spans) ids.insert(s.span_id);
  if (ids.size() != trace_spans.size()) return false;  // duplicate span ids
  std::size_t roots = 0;
  for (const SpanRecord& s : trace_spans) {
    if (s.parent_span_id == 0) {
      ++roots;
    } else if (ids.count(s.parent_span_id) == 0) {
      return false;  // orphan: parent missing from the export
    }
  }
  return roots == 1;
}

std::string FormatTraceTree(const std::vector<SpanRecord>& trace_spans) {
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  const SpanRecord* root = nullptr;
  for (const SpanRecord& s : trace_spans) {
    children[s.parent_span_id].push_back(&s);
    if (s.parent_span_id == 0 && root == nullptr) root = &s;
  }
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(), [](const auto* a, const auto* b) {
      return a->span_id < b->span_id;
    });
  }
  std::ostringstream out;
  if (!trace_spans.empty()) {
    out << "trace " << HexId(trace_spans.front().trace_id) << "\n";
  }
  std::function<void(const SpanRecord&, int)> walk = [&](const SpanRecord& s,
                                                         int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
    out << s.component << "/" << s.name << "  span=" << s.span_id
        << " ship=" << s.ship << " t=[" << s.start << "," << s.end << "]\n";
    const auto it = children.find(s.span_id);
    if (it == children.end()) return;
    for (const SpanRecord* kid : it->second) walk(*kid, depth + 1);
  };
  if (root != nullptr) {
    walk(*root, 1);
  } else {
    out << "  (no root span: tree is disconnected)\n";
  }
  return out.str();
}

void WriteMetricsJsonl(const sim::StatsRegistry& stats, std::ostream& out) {
  for (const auto& [name, counter] : stats.counters()) {
    out << "{\"kind\":\"counter\",\"name\":" << JsonString(name)
        << ",\"value\":" << counter.value() << "}\n";
  }
  for (const auto& [name, gauge] : stats.gauges()) {
    out << "{\"kind\":\"gauge\",\"name\":" << JsonString(name)
        << ",\"value\":" << ShortestDouble(gauge.value()) << "}\n";
  }
  for (const auto& [name, hist] : stats.histograms()) {
    out << "{\"kind\":\"histogram\",\"name\":" << JsonString(name)
        << ",\"value\":" << ShortestDouble(hist.mean())
        << ",\"count\":" << hist.count()
        << ",\"sum\":" << ShortestDouble(hist.sum())
        << ",\"min\":" << ShortestDouble(hist.min())
        << ",\"max\":" << ShortestDouble(hist.max())
        << ",\"p50\":" << ShortestDouble(hist.Quantile(0.5))
        << ",\"p90\":" << ShortestDouble(hist.Quantile(0.9))
        << ",\"p99\":" << ShortestDouble(hist.Quantile(0.99)) << "}\n";
  }
  for (const auto& [name, series] : stats.series()) {
    out << "{\"kind\":\"series\",\"name\":" << JsonString(name)
        << ",\"value\":" << ShortestDouble(series.Mean())
        << ",\"samples\":" << series.samples().size() << "}\n";
  }
}

std::map<std::string, double> ParseMetricsJsonl(std::istream& in) {
  std::map<std::string, double> values;
  std::string line;
  while (std::getline(in, line)) {
    const auto name = FindStringField(line, "name");
    const auto value = FindDoubleField(line, "value");
    if (name && value) values[*name] = *value;
  }
  return values;
}

void WritePrometheusText(const sim::StatsRegistry& stats, std::ostream& out) {
  for (const auto& [name, counter] : stats.counters()) {
    const std::string pname = PrometheusName(name);
    PrometheusHeader(out, pname, name, "counter", "counter");
    out << pname << " " << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : stats.gauges()) {
    const std::string pname = PrometheusName(name);
    PrometheusHeader(out, pname, name, "gauge", "gauge");
    out << pname << " " << ShortestDouble(gauge.value()) << "\n";
  }
  for (const auto& [name, hist] : stats.histograms()) {
    const std::string pname = PrometheusName(name);
    PrometheusHeader(out, pname, name, "histogram", "histogram");
    // Classic (le-bucketed, cumulative) exposition straight from the
    // histogram's half-power-of-two buckets: bucket i covers
    // [2^((i+origin)/2), 2^((i+origin+1)/2)), so its upper bound is exact.
    // Empty buckets are skipped — Prometheus semantics are cumulative, so
    // sparse output loses nothing and keeps the text stable for goldens.
    const sim::Histogram::RawState raw = hist.SaveState();
    std::uint64_t cumulative = raw.zeros;
    if (cumulative > 0) {
      // Everything below the bucketed range (zeros and sub-2^-32 samples).
      out << pname << "_bucket{le=\""
          << ShortestDouble(std::exp2(raw.bucket_origin / 2.0)) << "\"} "
          << cumulative << "\n";
    }
    for (std::size_t i = 0; i < raw.buckets.size(); ++i) {
      if (raw.buckets[i] == 0) continue;
      cumulative += raw.buckets[i];
      const double upper =
          std::exp2((static_cast<double>(i) + raw.bucket_origin + 1) / 2.0);
      out << pname << "_bucket{le=\"" << ShortestDouble(upper) << "\"} "
          << cumulative << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << raw.count << "\n"
        << pname << "_sum " << ShortestDouble(hist.sum()) << "\n"
        << pname << "_count " << hist.count() << "\n";
  }
  for (const auto& [name, series] : stats.series()) {
    const std::string pname = PrometheusName(name);
    PrometheusHeader(out, pname, name, "series", "gauge");
    out << pname << " "
        << ShortestDouble(series.samples().empty()
                              ? 0.0
                              : series.samples().back().value)
        << "\n";
  }
}

}  // namespace viator::telemetry
