// Shared plumbing for the counter-plane reporters.
//
// Every observability plane (cycle: perf_counters, byte: mem_counters,
// time: latency_plane) publishes the same two artifacts from its aggregate:
// a family of point-in-time gauges in the standard StatsRegistry and a
// fixed-width human report with an "(nothing ran)" fallback. The three
// Publish*Stats / Format*Report implementations grew the same snprintf /
// GetGauge boilerplate independently; this header is the one copy all of
// them sit on. Keep it free of plane-specific knowledge — rows, names and
// column layouts stay with each plane.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>

#include "sim/stats.h"

namespace viator::telemetry::plane {

/// One gauge of a published row: dotted suffix under the row's base name.
struct GaugeValue {
  const char* suffix;  // e.g. ".live_bytes"
  double value;
};

/// Publishes `<base><suffix> = value` gauges. Gauges (not counters) on
/// purpose, following the profiler.* precedent: published values are
/// point-in-time mirrors of the aggregate, so re-publishing after more
/// windows overwrites instead of double-counting.
inline void PublishGaugeRow(sim::StatsRegistry& stats, std::string_view base,
                            std::initializer_list<GaugeValue> fields) {
  std::string name;
  for (const GaugeValue& field : fields) {
    name.assign(base);
    name.append(field.suffix);
    stats.GetGauge(name).Set(field.value);
  }
}

/// Fixed-width report builder: a header line, zero or more data rows, and a
/// fallback message when no row qualified (counters disabled / nothing ran).
/// Rows are printf-formatted into a bounded line buffer, matching the
/// existing report layouts byte for byte.
class TableBuilder {
 public:
  /// Appends one printf-formatted line without marking the table non-empty
  /// (headers, totals, trailers).
  [[gnu::format(printf, 2, 3)]] void Line(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    Append(fmt, args);
    va_end(args);
  }

  /// Appends one printf-formatted data row; at least one of these must land
  /// for Finish() to return the table instead of the fallback.
  [[gnu::format(printf, 2, 3)]] void DataRow(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    Append(fmt, args);
    va_end(args);
    has_rows_ = true;
  }

  bool has_rows() const { return has_rows_; }

  /// The assembled report, or header + `empty_message` (newline appended)
  /// when no data row was added.
  std::string Finish(std::string_view empty_message) && {
    if (!has_rows_) {
      body_.clear();
      body_.append(empty_message);
      body_.push_back('\n');
    }
    return std::move(header_) + std::move(body_);
  }

 private:
  void Append(const char* fmt, std::va_list args) {
    char line[192];
    const int n = std::vsnprintf(line, sizeof(line), fmt, args);
    std::string& dst = has_header_ ? body_ : header_;
    if (n > 0) dst.append(line, std::min<std::size_t>(
                                    static_cast<std::size_t>(n),
                                    sizeof(line) - 1));
    has_header_ = true;
  }

  std::string header_;
  std::string body_;
  bool has_header_ = false;
  bool has_rows_ = false;
};

}  // namespace viator::telemetry::plane
