// Telemetry export and re-import.
//
// Writers (formats described in docs/OBSERVABILITY.md):
//  - spans JSONL: one span object per line, virtual-ns timestamps — the
//    lossless native format;
//  - Chrome/Perfetto trace_event JSON: loadable in ui.perfetto.dev or
//    chrome://tracing; ships become tracks (tid), spans become "X" events,
//    causal ids ride in args;
//  - metrics JSONL + Prometheus text exposition for a StatsRegistry.
//
// Readers parse both span formats back into SpanRecords (wnscope and the
// tier-1 tests reconstruct causal trees from exported files), so every
// writer here has a round-trip check in tests/test_telemetry.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.h"
#include "telemetry/shard_metrics.h"
#include "telemetry/span.h"

namespace viator::telemetry {

/// Escaping styles the exporters share. All styles escape backslash and
/// newline; kJson additionally escapes the double quote, carriage return,
/// tab and all other control characters (as \uXXXX); kPrometheusLabel
/// additionally escapes only the double quote; kPrometheusHelp escapes
/// nothing further (HELP text per the exposition format).
enum class EscapeStyle { kJson, kPrometheusHelp, kPrometheusLabel };

/// Appends `text` to `out`, escaped per `style` — the one escaping
/// implementation behind the JSONL and Prometheus exporters.
void AppendEscaped(std::string& out, std::string_view text,
                   EscapeStyle style);

/// Convenience form returning the escaped copy.
std::string Escaped(std::string_view text, EscapeStyle style);

/// One span per line, fixed field order, 16-digit hex trace ids:
/// {"trace":"...","span":N,"parent":N,"ship":N,"component":"...",
///  "name":"...","start":N,"end":N}
void WriteSpansJsonl(const std::vector<SpanRecord>& spans, std::ostream& out);

/// Chrome trace_event JSON ({"displayTimeUnit":"ns","traceEvents":[...]}).
/// One complete ("ph":"X") event per line; ts/dur are microseconds with ns
/// precision kept in three decimals, pid is 1, tid is the ship id.
void WriteTraceEventJson(const std::vector<SpanRecord>& spans,
                         std::ostream& out);

/// Chrome/Perfetto trace_event JSON of the Shard Observatory's retained
/// windows as a real parallel timeline: one named track per shard (tid =
/// shard id) plus a "merge" track, window slices placed at each shard's
/// measured wall offsets, "barrier" slices covering the stall until the
/// window's slowest shard finished, and one merge slice per window. Wall
/// time accumulates across windows so the timeline reads left to right as
/// the run actually executed. Args carry dispatched/handoff counts, queue
/// depth and the window's virtual-time span.
void WriteShardTimelineJson(const ShardObservatory& observatory,
                            std::ostream& out);

/// Parses one exported line (either format above) back into a SpanRecord.
/// Returns nullopt for lines that are not span events (headers, brackets).
std::optional<SpanRecord> ParseSpanLine(std::string_view line);

/// Parses a whole exported stream (spans JSONL or trace_event JSON).
std::vector<SpanRecord> ParseSpans(std::istream& in);

/// Groups spans by trace id (id order, deterministic).
std::map<std::uint64_t, std::vector<SpanRecord>> GroupByTrace(
    const std::vector<SpanRecord>& spans);

/// True when the spans of one trace form a single connected parent-child
/// tree: exactly one root (parent_span_id 0) and every other span's parent
/// present in the set.
bool IsConnectedTree(const std::vector<SpanRecord>& trace_spans);

/// Indented causal-tree rendering of one trace (wnscope `tree`).
std::string FormatTraceTree(const std::vector<SpanRecord>& trace_spans);

/// One metric per line; every line carries a scalar "value" (counter count,
/// gauge level, histogram/series mean) so consumers can diff uniformly, and
/// histogram lines add count/sum/min/max/quantiles.
void WriteMetricsJsonl(const sim::StatsRegistry& stats, std::ostream& out);

/// Metric lines parsed back as name → scalar value (wnscope `diff`).
std::map<std::string, double> ParseMetricsJsonl(std::istream& in);

/// Prometheus text exposition: names are sanitized ('.' → '_') and prefixed
/// "viator_"; every metric gets "# HELP" (backslash/newline escaped) and
/// "# TYPE" lines; histograms export as summaries with quantile labels
/// (label values escaped per the exposition format). Output is byte-stable
/// for a given registry state — tests golden it.
void WritePrometheusText(const sim::StatsRegistry& stats, std::ostream& out);

}  // namespace viator::telemetry
