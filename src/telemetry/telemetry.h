// The Wandering Observatory hub: one Telemetry object per WanderingNetwork
// owning the span collector and event-loop profiler.
//
// Design constraints (see docs/OBSERVABILITY.md):
//  - zero-cost-when-off: with tracing and profiling disabled, instrumented
//    code paths pay one branch per SpanScope/Profiler::Scope and one null
//    check per dispatched event, nothing more;
//  - determinism-neutral: trace ids come from a dedicated RNG forked off the
//    replica seed, trace contexts are excluded from wire sizes, and profiler
//    wall-clock data never enters snapshots — a traced run and an untraced
//    run of the same seed make identical simulation decisions.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/simulator.h"
#include "telemetry/profiler.h"
#include "telemetry/span.h"
#include "telemetry/trace_context.h"

namespace viator::telemetry {

struct TelemetryConfig {
  bool enable_tracing = false;
  bool enable_profiling = false;
  /// Bound on retained spans; past it new spans are dropped (and counted).
  std::size_t span_capacity = 65536;
};

class Telemetry {
 public:
  /// `id_seed` seeds the span collector's private id RNG — derived from the
  /// network seed so traces are reproducible, distinct from the network's
  /// own stream so they do not perturb it.
  Telemetry(sim::Simulator& simulator, const TelemetryConfig& config,
            std::uint64_t id_seed)
      : simulator_(simulator),
        config_(config),
        spans_(id_seed, config.span_capacity) {
    if (config_.enable_profiling) profiler_.Attach(simulator_);
  }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  bool tracing_enabled() const { return config_.enable_tracing; }
  bool profiling_enabled() const { return config_.enable_profiling; }

  /// Fresh trace context for a newly injected capsule (inactive context when
  /// tracing is off, so callers need no branch of their own).
  TraceContext StartTrace() {
    return config_.enable_tracing ? spans_.StartTrace() : TraceContext{};
  }

  SpanCollector& spans() { return spans_; }
  const SpanCollector& spans() const { return spans_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  sim::Simulator& simulator() { return simulator_; }

 private:
  sim::Simulator& simulator_;
  TelemetryConfig config_;
  SpanCollector spans_;
  Profiler profiler_;
};

/// RAII span: opens a child span of `parent` on construction, commits it
/// with the current virtual time on destruction. When tracing is disabled or
/// the parent context is inactive, the scope is inert and `context()` simply
/// echoes `parent` — instrumented code stays branch-free:
///
///   SpanScope span(telemetry, shuttle.trace, id, "svc.caching", "get");
///   reply.trace = span.context();   // children of this span
///
/// `component` and `name` must outlive the scope (string literals in
/// practice).
class SpanScope {
 public:
  SpanScope(Telemetry& telemetry, const TraceContext& parent,
            std::uint64_t ship, std::string_view component,
            std::string_view name)
      : ctx_(parent) {
    if (!telemetry.tracing_enabled() || !parent.active()) return;
    collector_ = &telemetry.spans();
    simulator_ = &telemetry.simulator();
    ctx_.span_id = collector_->NextSpanId();
    ctx_.parent_span_id = parent.span_id;
    ship_ = ship;
    component_ = component;
    name_ = name;
    start_ = simulator_->now();
  }
  ~SpanScope() {
    if (collector_ == nullptr) return;
    SpanRecord record;
    record.trace_id = ctx_.trace_id;
    record.span_id = ctx_.span_id;
    record.parent_span_id = ctx_.parent_span_id;
    record.ship = ship_;
    record.component = std::string(component_);
    record.name = std::string(name_);
    record.start = start_;
    record.end = simulator_->now();
    collector_->Commit(std::move(record));
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Context for work caused by this span: stamp it onto outgoing shuttles.
  const TraceContext& context() const { return ctx_; }

 private:
  TraceContext ctx_;
  SpanCollector* collector_ = nullptr;
  sim::Simulator* simulator_ = nullptr;
  std::uint64_t ship_ = 0;
  std::string_view component_;
  std::string_view name_;
  sim::TimePoint start_ = 0;
};

}  // namespace viator::telemetry
